"""Parallel-execution substrate: the supervised process-parallel
shared-memory engine, Hogwild collision analysis, seeded fault injection,
and the thread-scaling models."""
from .faults import FaultPlan, FaultSpec, InjectedFault, resolve_fault_plan
from .hogwild import CollisionReport, expected_collision_probability, measure_collisions
from .scaling import (
    ThreadScalingResult,
    cpu_thread_scaling,
    chunk_schedule,
    cpu_cache_profile,
)
from .shm import (
    SharedArrayBlock,
    ShmHogwildEngine,
    recovery_stream_states,
    run_workers_inline,
    worker_stream_states,
)
from .supervise import (
    BarrierTimeout,
    ParallelRuntimeError,
    WorkerCrash,
    WorkerStall,
    WorkerSupervisor,
)

__all__ = [
    "CollisionReport",
    "expected_collision_probability",
    "measure_collisions",
    "ThreadScalingResult",
    "cpu_thread_scaling",
    "chunk_schedule",
    "cpu_cache_profile",
    "SharedArrayBlock",
    "ShmHogwildEngine",
    "recovery_stream_states",
    "run_workers_inline",
    "worker_stream_states",
    "ParallelRuntimeError",
    "WorkerCrash",
    "WorkerStall",
    "BarrierTimeout",
    "WorkerSupervisor",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "resolve_fault_plan",
]
