#!/usr/bin/env python3
"""GPU optimisation study: ablation ladder and data-reuse trade-off.

Reproduces, on a Chr.1-like graph, the paper's Sec. VII-C/D analyses:

1. the successive-optimisation ladder (CPU baseline → CPU+CDL → base CUDA
   kernel → +CDL → +CRS → +WM) with each stage's modelled run time and the
   hardware counters each optimisation improves, and
2. the warp-shuffle data-reuse design-space exploration (Fig. 17), measuring
   both the modelled speedup and the real layout quality of every
   (DRF, SRF) scheme.

Run with:  python examples/gpu_optimization_study.py
"""
from __future__ import annotations

import numpy as np

from repro.bench import ablation_ladder, format_table
from repro.core import GpuKernelConfig, LayoutParams, OptimizedGpuEngine
from repro.core.layout import Layout
from repro.gpusim import RTX_A6000
from repro.metrics import classify_quality, sampled_path_stress
from repro.synth import chr1_like


def optimisation_ladder(graph, params) -> None:
    ladder = ablation_ladder(graph, params, n_trace_terms=1536)
    base = ladder["cpu-baseline"]
    rows = [[stage, f"{seconds:.4g}", f"{base / seconds:.1f}x"]
            for stage, seconds in ladder.items()]
    print(format_table(["Stage", "Modelled time (s)", "Speedup vs CPU baseline"], rows,
                       title="Successive optimisations (Fig. 16 shape; paper: 1x, 3.1x, 14.6x, ..., 27.7x)"))

    # Show the counter each optimisation targets.
    counter_rows = []
    for label, cfg in [
        ("base kernel", GpuKernelConfig.baseline()),
        ("+ cache-friendly data layout", GpuKernelConfig(cache_friendly_layout=True,
                                                         coalesced_random_states=False,
                                                         warp_merging=False)),
        ("+ coalesced random states", GpuKernelConfig(cache_friendly_layout=True,
                                                      coalesced_random_states=True,
                                                      warp_merging=False)),
        ("+ warp merging (fully optimized)", GpuKernelConfig()),
    ]:
        profile = OptimizedGpuEngine(graph, params, cfg).profile(
            device=RTX_A6000, n_sample_terms=1536)
        counter_rows.append([
            label,
            f"{profile.traffic.dram_bytes:.3g}",
            f"{profile.rng_sectors_per_request:.1f}",
            f"{profile.warp_stats.avg_active_threads:.1f}",
            f"{profile.runtime_s:.4g}",
        ])
    print()
    print(format_table(
        ["Configuration", "DRAM bytes", "RNG sectors/req", "Active threads/warp",
         "Modelled time (s)"],
        counter_rows,
        title="Hardware counters per optimisation stage (Tables IX, X, XI)",
    ))


def data_reuse_tradeoff(graph, params) -> None:
    rng = np.random.default_rng(5)
    scrambled = Layout(rng.uniform(0, 1000.0, size=(2 * graph.n_nodes, 2)))
    rows = []
    baseline_runtime = None
    baseline_sps = None
    for drf, srf in [(1, 1.0), (2, 1.5), (4, 1.5), (2, 1.75), (4, 2.0), (8, 2.0), (8, 2.5)]:
        cfg = GpuKernelConfig(data_reuse_factor=drf, step_reduction_factor=srf)
        engine = OptimizedGpuEngine(graph, params, cfg)
        profile = engine.profile(device=RTX_A6000, n_sample_terms=1024)
        result = engine.run(initial=scrambled)
        sps = sampled_path_stress(result.layout, graph, samples_per_step=20, seed=0)
        if drf == 1:
            baseline_runtime, baseline_sps = profile.runtime_s, max(sps.value, 1e-12)
        rows.append([
            f"({drf}, {srf})",
            f"{baseline_runtime / profile.runtime_s:.2f}x",
            f"{sps.value:.4g}",
            classify_quality(sps.value, baseline_sps).value,
        ])
    print()
    print(format_table(
        ["Scheme (DRF, SRF)", "Normalized speedup", "Sampled path stress", "Quality band"],
        rows,
        title="Warp-shuffle data-reuse design space (Fig. 17 shape)",
    ))


def main() -> None:
    graph = chr1_like(scale=0.1)
    print(f"Chr.1-like graph: {graph.n_nodes} nodes, {graph.n_paths} paths, "
          f"{graph.total_steps} path steps\n")
    model_params = LayoutParams(iter_max=30, steps_per_step_unit=10.0, seed=9399)
    quality_params = LayoutParams(iter_max=20, steps_per_step_unit=4.0, seed=9399)
    optimisation_ladder(graph, model_params)
    data_reuse_tradeoff(graph, quality_params)


if __name__ == "__main__":
    main()
