"""Variation graph data model.

A variation graph ``G = (P, V, E)`` (paper Sec. II-A) is a directed graph in
which every *node* carries a nucleotide sequence, every *edge* connects an
ordered, oriented pair of nodes, and every *path* is a walk over oriented
nodes that spells out one of the input genomes. Nodes shared by many paths
represent homologous sequence; nodes private to a few paths are the variants
the layout is meant to reveal.

This module provides the mutable, dictionary-backed "full" representation
analogous to ODGI's graph class: handy for construction, editing and I/O, but
deliberately richer than the layout algorithm needs. The layout engines never
consume it directly — they consume the flat, array-based
:class:`repro.graph.lean.LeanGraph` extracted from it (paper Sec. V-A, the
"lean data structure").
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Node", "Edge", "Step", "Path", "VariationGraph"]


@dataclass(frozen=True)
class Node:
    """A node holds a nucleotide sequence (or just its length).

    The layout algorithm only ever uses ``len(sequence)``; storing the raw
    string mirrors ODGI, and dropping it is exactly the "lean data structure"
    optimisation the paper describes.
    """

    node_id: int
    sequence: str

    @property
    def length(self) -> int:
        """Number of nucleotides in this node."""
        return len(self.sequence)


@dataclass(frozen=True)
class Edge:
    """A directed edge between two oriented node ends.

    ``from_rev`` / ``to_rev`` express whether the edge leaves/enters the
    reverse complement of the node (GFA orientation signs).
    """

    from_id: int
    to_id: int
    from_rev: bool = False
    to_rev: bool = False

    def key(self) -> Tuple[int, bool, int, bool]:
        """Canonical dictionary key for this edge."""
        return (self.from_id, self.from_rev, self.to_id, self.to_rev)


@dataclass(frozen=True)
class Step:
    """One step of a path: an oriented visit to a node."""

    node_id: int
    is_reverse: bool = False


@dataclass
class Path:
    """A named walk through the graph representing one input genome."""

    name: str
    steps: List[Step] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def node_ids(self) -> List[int]:
        """The node identifiers visited, in order."""
        return [s.node_id for s in self.steps]

    def append(self, node_id: int, is_reverse: bool = False) -> None:
        """Append a step to the walk."""
        self.steps.append(Step(node_id, is_reverse))


class VariationGraph:
    """Mutable variation graph (ODGI-style full representation).

    The class enforces referential integrity: edges and path steps may only
    reference existing nodes, and removing a node removes its incident edges
    and is refused while any path still visits it.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._edges: Dict[Tuple[int, bool, int, bool], Edge] = {}
        self._paths: Dict[str, Path] = {}
        self._adjacency: Dict[int, set] = {}

    # ------------------------------------------------------------------ nodes
    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def path_count(self) -> int:
        """Number of paths."""
        return len(self._paths)

    def has_node(self, node_id: int) -> bool:
        """Whether ``node_id`` exists."""
        return node_id in self._nodes

    def add_node(self, node_id: int, sequence: str) -> Node:
        """Add a node; duplicate ids are rejected, empty sequences allowed."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already exists")
        if node_id < 0:
            raise ValueError("node ids must be non-negative")
        node = Node(node_id, sequence)
        self._nodes[node_id] = node
        self._adjacency[node_id] = set()
        return node

    def get_node(self, node_id: int) -> Node:
        """Return the node with ``node_id`` (KeyError if absent)."""
        return self._nodes[node_id]

    def node_length(self, node_id: int) -> int:
        """Sequence length of a node."""
        return self._nodes[node_id].length

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._nodes.values())

    def node_ids(self) -> List[int]:
        """All node ids in insertion order."""
        return list(self._nodes.keys())

    def remove_node(self, node_id: int) -> None:
        """Remove an isolated-from-paths node and its incident edges."""
        if node_id not in self._nodes:
            raise KeyError(node_id)
        for path in self._paths.values():
            if any(s.node_id == node_id for s in path.steps):
                raise ValueError(
                    f"node {node_id} is still referenced by path '{path.name}'"
                )
        doomed = [k for k in self._edges if k[0] == node_id or k[2] == node_id]
        for k in doomed:
            del self._edges[k]
        for neigh in self._adjacency.pop(node_id, set()):
            self._adjacency.get(neigh, set()).discard(node_id)
        del self._nodes[node_id]

    # ------------------------------------------------------------------ edges
    def has_edge(
        self, from_id: int, to_id: int, from_rev: bool = False, to_rev: bool = False
    ) -> bool:
        """Whether the oriented edge exists."""
        return (from_id, from_rev, to_id, to_rev) in self._edges

    def add_edge(
        self, from_id: int, to_id: int, from_rev: bool = False, to_rev: bool = False
    ) -> Edge:
        """Add an edge between existing nodes; duplicates are idempotent."""
        if from_id not in self._nodes:
            raise KeyError(f"edge references missing node {from_id}")
        if to_id not in self._nodes:
            raise KeyError(f"edge references missing node {to_id}")
        edge = Edge(from_id, to_id, from_rev, to_rev)
        key = edge.key()
        if key not in self._edges:
            self._edges[key] = edge
            self._adjacency[from_id].add(to_id)
            self._adjacency[to_id].add(from_id)
        return self._edges[key]

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in insertion order."""
        return iter(self._edges.values())

    def neighbors(self, node_id: int) -> set:
        """Undirected neighbourhood of a node."""
        return set(self._adjacency[node_id])

    def degree(self, node_id: int) -> int:
        """Undirected degree of a node."""
        return len(self._adjacency[node_id])

    # ------------------------------------------------------------------ paths
    def has_path(self, name: str) -> bool:
        """Whether a path with this name exists."""
        return name in self._paths

    def add_path(self, name: str, steps: Optional[Iterable[Tuple[int, bool]]] = None) -> Path:
        """Create a path; ``steps`` is an iterable of (node_id, is_reverse)."""
        if name in self._paths:
            raise ValueError(f"path '{name}' already exists")
        path = Path(name)
        if steps is not None:
            for node_id, is_reverse in steps:
                self.append_step(path, node_id, is_reverse)
        self._paths[name] = path
        return path

    def append_step(self, path: Path, node_id: int, is_reverse: bool = False) -> None:
        """Append an oriented node visit to a path."""
        if node_id not in self._nodes:
            raise KeyError(f"path step references missing node {node_id}")
        path.append(node_id, is_reverse)

    def get_path(self, name: str) -> Path:
        """Return the path with this name (KeyError if absent)."""
        return self._paths[name]

    def paths(self) -> Iterator[Path]:
        """Iterate over paths in insertion order."""
        return iter(self._paths.values())

    def path_names(self) -> List[str]:
        """All path names in insertion order."""
        return list(self._paths.keys())

    # ------------------------------------------------------------- aggregates
    def total_sequence_length(self) -> int:
        """Total number of nucleotides stored across all nodes (# Nuc.)."""
        return sum(n.length for n in self._nodes.values())

    def total_path_steps(self) -> int:
        """Sum over paths of the number of steps (the paper's Σ|p|)."""
        return sum(len(p) for p in self._paths.values())

    def total_path_nucleotides(self) -> int:
        """Total nucleotide length of all paths (counts shared nodes repeatedly)."""
        return sum(
            sum(self._nodes[s.node_id].length for s in p.steps)
            for p in self._paths.values()
        )

    def path_length_nucleotides(self, name: str) -> int:
        """Nucleotide length of one path."""
        path = self._paths[name]
        return sum(self._nodes[s.node_id].length for s in path.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VariationGraph(nodes={self.node_count}, edges={self.edge_count}, "
            f"paths={self.path_count})"
        )
