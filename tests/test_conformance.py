"""Cross-engine / cross-backend conformance matrix.

Ground truth is :class:`SerialReferenceEngine` on the NumPy reference
backend: the exact term-at-a-time Alg. 1. Every registered backend must
reproduce it — through every engine and every write-merge policy — within
1e-9 (and bit-for-bit on the NumPy backend itself).

Two matrices:

* **Serial-degenerate**: each engine configured so its trajectory collapses
  to the serial algorithm (singleton batches, one PRNG stream — stream 0 of
  the multi-stream Xoshiro is invariant to the stream count, which is what
  makes this exact). Any deviation is a backend/engine arithmetic bug, not a
  batching artefact.
* **Cross-backend**: each engine in its *default* batched configuration run
  on backend B vs the NumPy backend — real batches, real collisions, so the
  merge kernels are exercised under load.

plus a **fused axis** (``TestFusedConformance``): every engine × merge ×
backend run through the fused per-iteration path vs both the serial
reference and its own unfused run — byte-identical on NumPy, ≤1e-9
elsewhere, with counters proving eligible engines really fused and
hook-overriding engines really fell back.

Backends whose toolchain is absent (numba/cupy on a CPU-only CI box) skip
cleanly with the registry's recorded reason. Registering a new backend makes
it appear in these matrices with no test changes — passing this module is
the acceptance bar for any future backend PR (see ROADMAP).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, backend_failures, backend_names, get_backend
from repro.core import (
    BatchedLayoutEngine,
    CpuBaselineEngine,
    GpuKernelConfig,
    LayoutParams,
    OptimizedGpuEngine,
    PairSampler,
    SerialReferenceEngine,
    UpdateWorkspace,
    apply_batch,
    initialize_layout,
)
from repro.prng import Xoshiro256Plus
from repro.synth import PangenomeConfig, simulate_pangenome

MERGES = ("hogwild", "accumulate", "last_writer")
BACKENDS = backend_names()
ATOL = 1e-9


def _backend_or_skip(name: str):
    if name not in available_backends():
        pytest.skip(f"backend {name!r} unavailable: "
                    f"{backend_failures().get(name, 'not registered')}")
    return get_backend(name)


@pytest.fixture(scope="module")
def conf_graph():
    """Small synthetic pangenome: several paths, bubbles, a loop."""
    cfg = PangenomeConfig(
        n_backbone_nodes=60,
        n_paths=4,
        mean_node_length=5.0,
        bubble_rate=0.1,
        deletion_rate=0.02,
        n_structural_variants=1,
        sv_length_nodes=6,
        loop_rate=0.1,
        seed=5,
        name="conformance",
    )
    return simulate_pangenome(cfg)


def _params(merge: str, backend: str) -> LayoutParams:
    return LayoutParams(iter_max=3, steps_per_step_unit=1.0, seed=17,
                        merge_policy=merge, backend=backend)


#: The serial reference depends only on the merge policy (3 runs), not on the
#: (engine × backend) axes of the 27-case matrix — cache it per merge.
_REFERENCE_CACHE: dict = {}


def _serial_reference(graph, merge: str):
    if merge not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[merge] = SerialReferenceEngine(
            graph, _params(merge, "numpy")).run().layout.coords
    return _REFERENCE_CACHE[merge]


def _serial_degenerate_engine(kind: str, graph, params: LayoutParams):
    """An engine whose batch plan and PRNG collapse to the serial algorithm."""
    if kind == "cpu":
        return CpuBaselineEngine(graph, params, hogwild_round=1)
    if kind == "batch":
        return BatchedLayoutEngine(graph, params.with_(batch_size=1))
    if kind == "gpu":
        return OptimizedGpuEngine(graph, params, GpuKernelConfig(
            warp_size=1, concurrent_threads=1, warp_merging=False,
            cache_friendly_layout=False, coalesced_random_states=False))
    raise AssertionError(kind)


def _default_engine(kind: str, graph, params: LayoutParams):
    """The engine in its stock batched configuration (real merge collisions)."""
    if kind == "cpu":
        return CpuBaselineEngine(graph, params.with_(simulated_threads=4))
    if kind == "batch":
        return BatchedLayoutEngine(graph, params.with_(batch_size=64))
    if kind == "gpu":
        return OptimizedGpuEngine(graph, params)
    raise AssertionError(kind)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("merge", MERGES)
@pytest.mark.parametrize("engine_kind", ("cpu", "batch", "gpu"))
class TestSerialReferenceConformance:
    def test_matches_serial_reference(self, conf_graph, engine_kind, merge,
                                      backend_name):
        _backend_or_skip(backend_name)
        reference = _serial_reference(conf_graph, merge)
        engine = _serial_degenerate_engine(
            engine_kind, conf_graph, _params(merge, backend_name))
        got = engine.run().layout.coords
        np.testing.assert_allclose(got, reference, atol=ATOL, rtol=0)
        if backend_name == "numpy":
            # The reference backend is held to bit-identity, not closeness.
            np.testing.assert_array_equal(got, reference)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("merge", MERGES)
@pytest.mark.parametrize("engine_kind", ("cpu", "batch", "gpu"))
class TestCrossBackendConformance:
    def test_default_config_matches_numpy_backend(self, conf_graph, engine_kind,
                                                  merge, backend_name):
        _backend_or_skip(backend_name)
        baseline = _default_engine(
            engine_kind, conf_graph, _params(merge, "numpy")).run()
        candidate = _default_engine(
            engine_kind, conf_graph, _params(merge, backend_name)).run()
        assert candidate.total_terms == baseline.total_terms
        np.testing.assert_allclose(candidate.layout.coords,
                                   baseline.layout.coords, atol=ATOL, rtol=0)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("merge", MERGES)
@pytest.mark.parametrize("engine_kind", ("cpu", "batch", "gpu"))
class TestMultilevelConformance:
    """Multilevel axis: a flat hierarchy must not perturb any engine.

    ``MultilevelDriver(levels=1)`` (and any driver whose graph does not
    contract) delegates to the wrapped flat engine; the contract is
    byte-identity — same params, same seed, same PRNG draws — for every
    engine × merge policy × backend the registry reports available.
    """

    def test_levels1_byte_identical_to_flat_engine(self, conf_graph,
                                                   engine_kind, merge,
                                                   backend_name):
        from repro.core.api import make_engine
        from repro.multilevel import MultilevelDriver

        _backend_or_skip(backend_name)
        # Realistic batched configuration (same knobs _default_engine turns),
        # expressed through params so driver and flat engine see one config.
        params = _params(merge, backend_name).with_(simulated_threads=4,
                                                    batch_size=64)
        flat = make_engine(conf_graph, engine_kind, params).run()
        driver = MultilevelDriver(conf_graph, params, engine=engine_kind)
        multi = driver.run()
        assert driver.hierarchy.depth == 1
        assert multi.total_terms == flat.total_terms
        np.testing.assert_array_equal(multi.layout.coords, flat.layout.coords)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("merge", MERGES)
@pytest.mark.parametrize("engine_kind", ("cpu", "batch", "gpu"))
class TestFusedConformance:
    """Fused axis: the per-iteration execution path must not move layouts.

    ``LayoutParams(fused=True)`` routes eligible engines through
    ``backend.run_iteration`` (one dispatch per iteration); engines with
    per-batch hooks (batch/gpu) fall back to the unfused loop, which this
    matrix also verifies. The bar mirrors the rest of the suite: ≤1e-9
    against the serial reference in the degenerate configs, fused vs
    unfused agreement in the stock configs, and *byte*-identity for both on
    the NumPy backend.
    """

    def test_fused_matches_serial_reference(self, conf_graph, engine_kind,
                                            merge, backend_name):
        _backend_or_skip(backend_name)
        reference = _serial_reference(conf_graph, merge)
        engine = _serial_degenerate_engine(
            engine_kind, conf_graph,
            _params(merge, backend_name).with_(fused=True))
        got = engine.run().layout.coords
        np.testing.assert_allclose(got, reference, atol=ATOL, rtol=0)
        if backend_name == "numpy":
            np.testing.assert_array_equal(got, reference)

    def test_fused_matches_unfused_default_config(self, conf_graph,
                                                  engine_kind, merge,
                                                  backend_name):
        _backend_or_skip(backend_name)
        params = _params(merge, backend_name)
        unfused = _default_engine(engine_kind, conf_graph,
                                  params.with_(fused=False)).run()
        fused = _default_engine(engine_kind, conf_graph,
                                params.with_(fused=True)).run()
        assert fused.total_terms == unfused.total_terms
        np.testing.assert_allclose(fused.layout.coords, unfused.layout.coords,
                                   atol=ATOL, rtol=0)
        if backend_name == "numpy":
            np.testing.assert_array_equal(fused.layout.coords,
                                          unfused.layout.coords)
        if engine_kind == "cpu":
            # Not vacuous: the cpu engine really took the fused path...
            assert fused.counters["fused_iterations"] > 0
        else:
            # ...while hook-overriding engines are required to fall back.
            assert fused.counters["fused_iterations"] == 0.0

    @pytest.mark.parametrize("budget", (1, "64MB"))
    def test_memory_budget_preserves_layout(self, conf_graph, engine_kind,
                                            merge, backend_name, budget):
        """Chunked megablock (PR 8): the budget is an execution knob only.

        A 1-byte budget forces one chunk per segment — the maximally
        chunked schedule — while "64MB" covers the whole iteration and
        must degrade to the single unchunked dispatch. Both must leave the
        layout untouched: ≤1e-9 everywhere, byte-identical on NumPy.
        """
        _backend_or_skip(backend_name)
        params = _params(merge, backend_name).with_(fused=True)
        unbudgeted = _default_engine(engine_kind, conf_graph, params).run()
        budgeted = _default_engine(
            engine_kind, conf_graph,
            params.with_(memory_budget=budget)).run()
        assert budgeted.total_terms == unbudgeted.total_terms
        np.testing.assert_allclose(budgeted.layout.coords,
                                   unbudgeted.layout.coords,
                                   atol=ATOL, rtol=0)
        if backend_name == "numpy":
            np.testing.assert_array_equal(budgeted.layout.coords,
                                          unbudgeted.layout.coords)
        if engine_kind == "cpu" and budget == 1:
            # Not vacuous: a 1-byte budget yields exactly one chunk per
            # batch-plan segment (chunking never splits inside a segment).
            engine = _default_engine(engine_kind, conf_graph, params)
            plan = engine.batch_plan(
                engine.params.steps_per_iteration(conf_graph.total_steps))
            assert budgeted.counters["fused_chunks"] == len(plan)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("merge", MERGES)
class TestShmConformance:
    """Process-parallel axis: one shm worker must not move any layout.

    ``ShmHogwildEngine(workers=1)`` runs the flat engine's full batch plan
    on the flat engine's PRNG streams inside a real worker process over a
    real shared-memory mapping; the contract is *byte*-identity with the
    flat engine for every merge policy on every host-resident backend —
    the process machinery is pure plumbing, never arithmetic. The
    deterministic in-process serialisation of the multi-worker race
    (``run_inline``) must conserve the term budget and reproduce itself.
    """

    @staticmethod
    def _host_backend_or_skip(backend_name: str):
        be = _backend_or_skip(backend_name)
        probe = np.zeros(1)
        if be.from_host(probe) is not probe:
            pytest.skip(f"backend {backend_name!r} is not host-resident; "
                        "the shm engine needs host-mapped coordinates")
        return be

    def test_workers1_byte_identical_to_flat_engine(self, conf_graph, merge,
                                                    backend_name):
        from repro.parallel.shm import ShmHogwildEngine

        self._host_backend_or_skip(backend_name)
        params = _params(merge, backend_name).with_(simulated_threads=4)
        flat = CpuBaselineEngine(conf_graph, params).run()
        shm = ShmHogwildEngine(conf_graph, params.with_(workers=1)).run()
        assert shm.total_terms == flat.total_terms
        np.testing.assert_array_equal(shm.layout.coords, flat.layout.coords)

    def test_inline_two_workers_deterministic(self, conf_graph, merge,
                                              backend_name):
        from repro.parallel.shm import run_workers_inline

        self._host_backend_or_skip(backend_name)
        params = _params(merge, backend_name).with_(simulated_threads=4,
                                                    workers=2)
        flat = CpuBaselineEngine(conf_graph, params).run()
        a = run_workers_inline(conf_graph, params)
        b = run_workers_inline(conf_graph, params)
        assert a.total_terms == flat.total_terms
        assert np.all(np.isfinite(a.layout.coords))
        np.testing.assert_array_equal(a.layout.coords, b.layout.coords)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("merge", MERGES)
class TestKernelLevelConformance:
    def test_apply_batch_matches_numpy_backend(self, conf_graph, merge,
                                               backend_name):
        """Heavily colliding sampled batches through the bare kernels."""
        be = _backend_or_skip(backend_name)
        ref_be = get_backend("numpy")
        sampler = PairSampler(conf_graph, LayoutParams())
        rng = Xoshiro256Plus(23, n_streams=64)
        base = initialize_layout(conf_graph, seed=2).coords
        for batch_size in (1, 33, 256):
            batch = sampler.sample(rng, batch_size, iteration=0)
            expect_host = base.copy()
            ref_stats = apply_batch(expect_host, batch, 0.8, merge=merge,
                                    workspace=UpdateWorkspace(batch_size,
                                                              backend=ref_be))
            coords_dev = be.from_host(base.copy())
            got_stats = apply_batch(coords_dev, batch, 0.8, merge=merge,
                                    workspace=UpdateWorkspace(batch_size,
                                                              backend=be))
            np.testing.assert_allclose(be.to_host(coords_dev), expect_host,
                                       atol=ATOL, rtol=0)
            assert got_stats.n_point_collisions == ref_stats.n_point_collisions
            assert got_stats.n_terms == ref_stats.n_terms
