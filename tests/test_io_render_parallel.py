"""Tests for layout I/O, rendering, Hogwild analysis, thread scaling and the CLI."""
from __future__ import annotations

import io
import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import initialize_layout
from repro.core.layout import Layout
from repro.io import LayFormatError, read_lay, read_tsv, write_lay, write_tsv
from repro.parallel import (
    chunk_schedule,
    cpu_thread_scaling,
    expected_collision_probability,
    measure_collisions,
)
from repro.render import layout_similarity, rasterize, render_svg, save_svg, write_ppm
from repro.bench import format_hms, format_markdown_table, format_sci, format_table


class TestLayoutIO:
    def test_lay_round_trip(self, small_synthetic, tmp_path):
        layout = initialize_layout(small_synthetic, seed=8)
        path = tmp_path / "g.lay"
        write_lay(layout, path)
        back = read_lay(path)
        assert np.allclose(back.coords, layout.coords)

    def test_lay_round_trip_via_handles(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=1)
        buf = io.BytesIO()
        write_lay(layout, buf)
        buf.seek(0)
        back = read_lay(buf)
        assert np.allclose(back.coords, layout.coords)

    def test_lay_bad_magic(self, tmp_path):
        path = tmp_path / "bad.lay"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(LayFormatError):
            read_lay(path)

    def test_lay_truncated(self, tmp_path, tiny_graph):
        layout = initialize_layout(tiny_graph)
        path = tmp_path / "t.lay"
        write_lay(layout, path)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(LayFormatError):
            read_lay(path)

    def test_lay_too_small(self):
        with pytest.raises(LayFormatError):
            read_lay(io.BytesIO(b"RP"))

    def test_tsv_round_trip(self, tiny_graph, tmp_path):
        layout = initialize_layout(tiny_graph, seed=2)
        path = tmp_path / "layout.tsv"
        write_tsv(layout, path)
        back = read_tsv(path)
        assert np.allclose(back.coords, layout.coords, atol=1e-5)

    def test_tsv_bad_row(self):
        with pytest.raises(LayFormatError):
            read_tsv(io.StringIO("#header\n1\t2\t3\n"))

    def test_tsv_empty(self):
        with pytest.raises(LayFormatError):
            read_tsv(io.StringIO("#only a header\n"))

    def test_tsv_rows_placed_by_node_id(self, tiny_graph):
        # Reordered rows must land on their node's slots, not on file order.
        layout = initialize_layout(tiny_graph, seed=2)
        buf = io.StringIO()
        write_tsv(layout, buf)
        lines = buf.getvalue().strip().splitlines()
        header, rows = lines[0], lines[1:]
        shuffled = "\n".join([header] + rows[::-1]) + "\n"
        back = read_tsv(io.StringIO(shuffled))
        assert np.allclose(back.coords, layout.coords, atol=1e-5)

    def test_tsv_duplicate_node_id(self):
        text = ("#h\n0\t0\t0\t1\t1\n0\t2\t2\t3\t3\n")
        with pytest.raises(LayFormatError, match="duplicate"):
            read_tsv(io.StringIO(text))

    def test_tsv_non_contiguous_node_ids(self):
        text = ("#h\n0\t0\t0\t1\t1\n2\t2\t2\t3\t3\n")
        with pytest.raises(LayFormatError, match="contiguous"):
            read_tsv(io.StringIO(text))

    def test_tsv_non_integer_node_id(self):
        with pytest.raises(LayFormatError, match="node_id"):
            read_tsv(io.StringIO("#h\nx\t0\t0\t1\t1\n"))


class TestRendering:
    def test_svg_contains_all_segments(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=0)
        svg = render_svg(layout, graph=tiny_graph)
        assert svg.startswith("<svg")
        assert svg.count("<line") == tiny_graph.n_nodes

    def test_svg_without_graph(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=0)
        svg = render_svg(layout)
        assert svg.count("<line") == tiny_graph.n_nodes

    def test_svg_margin_validation(self, tiny_graph):
        layout = initialize_layout(tiny_graph)
        with pytest.raises(ValueError):
            render_svg(layout, width=20, height=20, margin=20)

    def test_save_svg(self, tiny_graph, tmp_path):
        layout = initialize_layout(tiny_graph)
        out = tmp_path / "layout.svg"
        save_svg(layout, out, graph=tiny_graph)
        assert out.exists() and out.stat().st_size > 100

    def test_rasterize_shape_and_range(self, small_synthetic):
        layout = initialize_layout(small_synthetic, seed=1)
        grid = rasterize(layout, width=80, height=60)
        assert grid.shape == (60, 80)
        assert 0.0 <= grid.min() and grid.max() <= 1.0
        assert grid.sum() > 0

    def test_rasterize_invalid(self, tiny_graph):
        with pytest.raises(ValueError):
            rasterize(initialize_layout(tiny_graph), width=1, height=10)

    def test_similarity_self_is_one(self, small_synthetic):
        layout = initialize_layout(small_synthetic, seed=1)
        assert layout_similarity(layout, layout) == pytest.approx(1.0)

    def test_similarity_detects_difference(self, small_synthetic, rng):
        a = initialize_layout(small_synthetic, seed=1)
        b = Layout(rng.uniform(0, 100, a.coords.shape))
        assert layout_similarity(a, b) < layout_similarity(a, a)

    def test_write_ppm(self, tiny_graph, tmp_path):
        grid = rasterize(initialize_layout(tiny_graph), width=32, height=16)
        out = tmp_path / "img.ppm"
        write_ppm(grid, out)
        data = out.read_bytes()
        assert data.startswith(b"P6\n32 16\n255\n")
        assert len(data) == len(b"P6\n32 16\n255\n") + 32 * 16 * 3

    def test_write_ppm_validates(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(np.zeros(5), tmp_path / "x.ppm")

    # ----------------------------- degenerate bounding boxes (regression)
    # A 1-node graph (or a fully contracted multilevel layout) can produce
    # coordinates with zero extent on one or both axes; rendering must not
    # divide by zero or emit non-finite geometry.

    def _single_node_layout(self):
        # Zero-length node: both visualisation points coincide exactly.
        return Layout(np.full((2, 2), 7.25, dtype=np.float64))

    def test_svg_single_node_degenerate_bbox(self):
        from repro.graph import LeanGraph

        graph = LeanGraph.from_paths(node_lengths=[0], paths=[[0]])
        svg = render_svg(self._single_node_layout(), graph=graph)
        assert svg.count("<line") == 1
        assert "nan" not in svg.lower() and "inf" not in svg.lower()

    def test_svg_degenerate_single_axis(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=0)
        layout.coords[:, 1] = 3.0  # collapse the Y extent only
        svg = render_svg(layout)
        assert svg.count("<line") == tiny_graph.n_nodes
        assert "nan" not in svg.lower() and "inf" not in svg.lower()

    def test_rasterize_single_node_degenerate_bbox(self):
        grid = rasterize(self._single_node_layout(), width=16, height=8)
        assert grid.shape == (8, 16)
        assert np.isfinite(grid).all()
        assert grid.max() == 1.0  # the single point is drawn

    def test_similarity_degenerate_layouts(self):
        layout = self._single_node_layout()
        assert layout_similarity(layout, layout) == pytest.approx(1.0)

    def test_ppm_single_node_degenerate_bbox(self, tmp_path):
        grid = rasterize(self._single_node_layout(), width=8, height=8)
        out = tmp_path / "dot.ppm"
        write_ppm(grid, out)
        assert out.read_bytes().startswith(b"P6\n8 8\n255\n")


class TestHogwild:
    def test_expected_probability_monotone(self):
        p1 = expected_collision_probability(10_000, 32)
        p2 = expected_collision_probability(10_000, 1024)
        assert 0 <= p1 < p2 < 1
        assert expected_collision_probability(10_000, 1) == 0.0

    def test_expected_probability_validation(self):
        with pytest.raises(ValueError):
            expected_collision_probability(0, 4)
        with pytest.raises(ValueError):
            expected_collision_probability(100, 0)

    def test_measured_collisions_small_for_sparse_graph(self, medium_synthetic):
        report = measure_collisions(medium_synthetic, concurrency=32, n_batches=4)
        # Paper Sec. III-A: collisions are rare on sparse pangenome graphs.
        assert report.mean_colliding_fraction < 0.2
        assert report.concurrency == 32

    def test_more_concurrency_more_collisions(self, small_synthetic):
        low = measure_collisions(small_synthetic, concurrency=8, n_batches=4)
        high = measure_collisions(small_synthetic, concurrency=256, n_batches=4)
        assert high.mean_colliding_fraction > low.mean_colliding_fraction


class TestThreadScaling:
    def test_scaling_near_linear(self, small_synthetic, fast_params):
        result = cpu_thread_scaling(small_synthetic, "small", fast_params,
                                    thread_counts=[1, 2, 4, 8, 16, 32],
                                    n_trace_terms=512)
        speedups = result.speedup()
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[32] > 10          # Fig. 4: near-linear scaling
        assert speedups[2] > 1.6
        eff = result.parallel_efficiency()
        assert all(0 < e <= 1.01 for e in eff.values())

    def test_times_decrease_with_threads(self, small_synthetic, fast_params):
        result = cpu_thread_scaling(small_synthetic, "small", fast_params,
                                    thread_counts=[1, 4, 16], n_trace_terms=512)
        assert result.times_s[1] > result.times_s[4] > result.times_s[16]

    def test_chunk_schedule_covers_all_steps(self):
        seen = []
        for round_assignments in chunk_schedule(1000, n_workers=7, round_size=13):
            for start, stop in round_assignments:
                seen.extend(range(start, stop))
        assert seen == list(range(1000))

    def test_chunk_schedule_round_sizes(self):
        rounds = list(chunk_schedule(100, n_workers=4, round_size=10))
        for assignments in rounds[:-1]:
            assert sum(stop - start for start, stop in assignments) == 40

    def test_chunk_schedule_validation(self):
        with pytest.raises(ValueError):
            list(chunk_schedule(-1, 2, 2))
        with pytest.raises(ValueError):
            list(chunk_schedule(10, 0, 2))


class TestBenchTables:
    def test_format_hms(self):
        assert format_hms(0) == "0:00:00"
        assert format_hms(9158) == "2:32:38"
        with pytest.raises(ValueError):
            format_hms(-1)

    def test_format_sci(self):
        assert format_sci(1.1e7) == "1.1e7"
        assert format_sci(0) == "0"
        assert format_sci(2.2e4) == "2.2e4"

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text and "a" in text and "2.5" in text
        assert len(text.splitlines()) == 5

    def test_format_markdown_table(self):
        md = format_markdown_table(["col"], [[1.23456]])
        assert md.splitlines()[1] == "|---|"
        assert "1.23" in md


class TestCLI:
    def test_parser_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_run_with_outputs(self, tmp_path, capsys):
        lay = tmp_path / "out.lay"
        svg = tmp_path / "out.svg"
        code = main([
            "--dataset", "HLA-DRB1", "--scale", "0.05", "--gpu",
            "--iter-max", "3", "--steps-factor", "1.0",
            "--out-lay", str(lay), "--out-svg", str(svg), "--stress",
        ])
        assert code == 0
        assert lay.exists() and svg.exists()
        out = capsys.readouterr().out
        assert "sampled path stress" in out

    def test_gfa_input(self, tmp_path, fig1_graph, capsys):
        from repro.graph import write_gfa

        gfa = tmp_path / "toy.gfa"
        write_gfa(fig1_graph, gfa)
        tsv = tmp_path / "toy.tsv"
        code = main(["--gfa", str(gfa), "--iter-max", "2", "--steps-factor", "1.0",
                     "--out-tsv", str(tsv)])
        assert code == 0
        assert tsv.exists()
        assert "layout complete" in capsys.readouterr().out
