"""Table III — batch-size sweep of the PyTorch-style implementation.

Sweeps the batched engine's batch size on the MHC-like graph, measuring
(1) the modelled GPU run time / speedup over the modelled 32-thread CPU
baseline and (2) the layout quality band derived from sampled path stress
relative to the CPU baseline layout. The paper's shape: run time falls as the
batch grows, speedup saturates around 1M, and very large batches degrade
quality from Good to Satisfying/Poor.
"""
from __future__ import annotations

from ...core import BatchedLayoutEngine, CpuBaselineEngine
from ...core.layout import Layout
from ...gpusim import RTX_A6000, WorkloadCounters, XEON_6246R, cpu_runtime, gpu_runtime
from ...metrics import classify_quality, sampled_path_stress
from ...parallel import cpu_cache_profile
from ..registry import CaseResult, bench_case
from ..tables import format_table

# Batch sizes scaled down with the dataset (paper: 10K .. 100M on 2.3e5 nodes).
BATCH_SIZES = [64, 512, 4096, 32768]


@bench_case("table03_batch_sweep", source="Table III", suites=("tables",))
def run(ctx) -> CaseResult:
    """Batched-engine run time amortises with batch size; huge batches cost quality."""
    graph = ctx.mhc_graph
    params = ctx.quality_bench_params
    rng = ctx.rng("table03/scramble")
    scrambled = Layout(rng.uniform(0, 1000.0, size=(2 * graph.n_nodes, 2)))
    sps_seed = ctx.seed_for("table03/sps")

    # Reference: CPU baseline layout quality and modelled run time.
    cpu_result = CpuBaselineEngine(graph, params).run(initial=scrambled)
    cpu_sps = sampled_path_stress(cpu_result.layout, graph, samples_per_step=25,
                                  seed=sps_seed)
    traffic, traced = cpu_cache_profile(graph, params, n_trace_terms=1024)
    total_terms = float(params.iter_max * params.steps_per_iteration(graph.total_steps))
    cpu_time = cpu_runtime(
        XEON_6246R, total_terms, traffic.scaled(total_terms / traced),
        WorkloadCounters(), n_threads=32,
    )

    results = {}
    for batch_size in BATCH_SIZES:
        engine = BatchedLayoutEngine(graph, params.with_(batch_size=batch_size))
        result = engine.run(initial=scrambled)
        sps = sampled_path_stress(result.layout, graph, samples_per_step=25,
                                  seed=sps_seed)
        modelled = gpu_runtime(
            RTX_A6000,
            n_terms=total_terms,
            traffic=traffic.scaled(total_terms / traced),
            kernel_launches=engine.kernel_launches_for(int(total_terms)),
            sectors_per_request=24.0,
        )
        results[batch_size] = (modelled.total_s, sps, engine.op_profile.total_launches)

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    rows = []
    times = []
    for batch_size, (gpu_s, sps, launches) in results.items():
        quality = classify_quality(sps.value, max(cpu_sps.value, 1e-9))
        speedup = cpu_time.total_s / gpu_s
        times.append(gpu_s)
        rows.append([batch_size, f"{gpu_s:.3g}", f"{speedup:.1f}x",
                     f"{sps.value:.3g}", quality.value, launches])
    # Run time decreases (then flattens) as the batch size grows, because the
    # kernel-launch overhead amortises — the Table III / Table IV shape.
    assert times[0] > times[-1]
    assert times[1] >= times[2] * 0.9
    # Small/medium batches preserve quality relative to the CPU layout.
    small_quality = classify_quality(results[BATCH_SIZES[0]][1].value,
                                     max(cpu_sps.value, 1e-9))
    assert small_quality.value in ("Good", "Satisfying")
    # Larger batches never improve quality below the small-batch stress.
    assert results[BATCH_SIZES[-1]][1].value >= results[BATCH_SIZES[0]][1].value * 0.5

    out.add("cpu_modelled_s", cpu_time.total_s, unit="s(model)", direction="lower")
    out.add("gpu_modelled_smallest_batch_s", times[0], unit="s(model)", direction="lower")
    out.add("gpu_modelled_largest_batch_s", times[-1], unit="s(model)", direction="lower")
    out.add("largest_batch_speedup", cpu_time.total_s / times[-1],
            unit="x", direction="higher")
    out.add("launch_amortisation", times[0] / times[-1], unit="x", direction="info")

    out.tables.append(format_table(
        ["Batch size", "Modelled GPU s", "Speedup vs CPU", "Sampled stress", "Quality",
         "Kernel launches"],
        rows,
        title=f"Table III: batch-size sweep on MHC-like graph (CPU stress {cpu_sps.value:.3g}, "
              f"modelled CPU {cpu_time.total_s:.3g}s)",
    ))
    return out
