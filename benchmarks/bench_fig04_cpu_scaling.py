"""Pytest shim for the fig04_cpu_scaling benchmark case.

The case body lives in :mod:`repro.bench.cases.fig04_cpu_scaling`. Run it directly
with ``python benchmarks/bench_fig04_cpu_scaling.py``, through ``pytest
benchmarks/bench_fig04_cpu_scaling.py``, or as part of ``repro bench run``.
"""
from __future__ import annotations

import pytest

from repro.bench.cases.fig04_cpu_scaling import run as case_run

_CASE = case_run.case


@pytest.mark.paper_table(_CASE.source)
def test_fig04_cpu_scaling(bench_ctx):
    result = _CASE.run(bench_ctx)
    for table in result.tables:
        print()
        print(table)


if __name__ == "__main__":
    from repro.bench.runner import run_case

    run_case(_CASE.name)
