"""Paper-style table formatting for the benchmark harness.

Every benchmark prints the rows/series of the table or figure it reproduces.
The helpers here keep that output consistent: fixed-width ASCII tables,
h:mm:ss run-time formatting (as in Table VII), scientific notation matching
the paper's dataset tables, and geometric means for the summary rows.
"""
from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_hms", "format_sci", "geometric_mean", "format_markdown_table"]


def format_hms(seconds: float) -> str:
    """Format seconds as ``h:mm:ss`` (paper Table VII style)."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    total = int(round(seconds))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


def format_sci(value: float, digits: int = 1) -> str:
    """Scientific notation like the paper's dataset tables (e.g. ``1.1e7``)."""
    if value == 0:
        return "0"
    exponent = int(np.floor(np.log10(abs(value))))
    mantissa = value / 10 ** exponent
    return f"{mantissa:.{digits}f}e{exponent}"


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used for the speedup summary rows)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.3g}",
) -> str:
    """Render an ASCII table with aligned columns."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.3g}",
) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)
