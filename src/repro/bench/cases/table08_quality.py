"""Table VIII — layout quality comparison between CPU and GPU engines.

Runs the CPU baseline and the optimized GPU engine on a subset of the
chromosome suite (every chromosome would take minutes; the subset spans the
size range) from the same scrambled initial layout, computes the sampled path
stress of both with 95% confidence intervals, and checks that the SPS ratio
stays near 1 — the paper's geometric means are 1.08 (A6000) and 1.03 (A100).
"""
from __future__ import annotations

from ...core import CpuBaselineEngine, OptimizedGpuEngine
from ...core.layout import Layout
from ...metrics import sampled_path_stress, stress_ratio
from ..registry import CaseResult, bench_case
from ..tables import format_table, geometric_mean

SUBSET = ["Chr.1", "Chr.5", "Chr.10", "Chr.16", "Chr.19", "Chr.Y"]


@bench_case("table08_quality", source="Table VIII", suites=("tables",))
def run(ctx) -> CaseResult:
    """GPU layouts match CPU layout quality (SPS ratio near 1)."""
    params = ctx.quality_bench_params
    sps_seed = ctx.seed_for("table08/sps")

    results = {}
    for name in SUBSET:
        graph = ctx.chromosome_graphs[name]
        rng = ctx.rng(f"table08/scramble/{name}")
        scrambled = Layout(rng.uniform(0, 1000.0, size=(2 * graph.n_nodes, 2)))
        cpu = CpuBaselineEngine(graph, params).run(initial=scrambled)
        gpu = OptimizedGpuEngine(graph, params).run(initial=scrambled)
        cpu_sps = sampled_path_stress(cpu.layout, graph, samples_per_step=30, seed=sps_seed)
        gpu_sps = sampled_path_stress(gpu.layout, graph, samples_per_step=30, seed=sps_seed)
        results[name] = (cpu_sps, gpu_sps)

    rows = []
    ratios = []
    out = CaseResult()
    for name, (cpu_sps, gpu_sps) in results.items():
        ratio = stress_ratio(gpu_sps, cpu_sps)
        ratios.append(max(ratio, 1e-3))
        rows.append([
            name,
            f"[{cpu_sps.ci_low:.3g}, {cpu_sps.ci_high:.3g}]",
            f"[{gpu_sps.ci_low:.3g}, {gpu_sps.ci_high:.3g}]",
            f"{ratio:.2f}",
        ])
        # Per-chromosome: the GPU layout is never catastrophically worse (the
        # paper's per-chromosome ratios range from 0.47 to 2.31).
        assert ratio < 4.0
        out.add(f"{name.replace('.', '_')}_sps_ratio", ratio, direction="info")

    gm = geometric_mean(ratios)
    rows.append(["GeoMean", "-", "-", f"{gm:.2f}"])
    # Paper: geometric-mean SPS ratio 1.08 (A6000) / 1.03 (A100) — i.e. no
    # quality loss on average. Allow a modest band at this reduced scale.
    assert 0.4 < gm < 2.0
    out.add("geomean_sps_ratio", gm, direction="lower")

    out.tables.append(format_table(
        ["Pan.", "CPU SPS CI95%", "GPU SPS CI95%", "SPS ratio (GPU/CPU)"],
        rows,
        title="Table VIII: layout quality comparison, CPU vs optimized GPU engine",
    ))
    return out
