"""Tests for the variation-graph model, GFA I/O and the graph builder."""
from __future__ import annotations

import io

import numpy as np
import pytest

from repro.graph import (
    GFAError,
    LeanGraph,
    VariationGraph,
    build_from_variants,
    compute_stats,
    deletion,
    figure1_example,
    gfa_to_text,
    insertion,
    parse_gfa_text,
    snv,
    validate_graph,
    validate_lean,
    write_gfa,
)


class TestVariationGraph:
    def test_add_and_query_nodes(self):
        g = VariationGraph()
        g.add_node(0, "ACGT")
        g.add_node(1, "T")
        assert g.node_count == 2
        assert g.node_length(0) == 4
        assert g.has_node(1)
        assert not g.has_node(5)

    def test_duplicate_node_rejected(self):
        g = VariationGraph()
        g.add_node(0, "A")
        with pytest.raises(ValueError):
            g.add_node(0, "C")

    def test_negative_node_id_rejected(self):
        g = VariationGraph()
        with pytest.raises(ValueError):
            g.add_node(-1, "A")

    def test_edges_require_existing_nodes(self):
        g = VariationGraph()
        g.add_node(0, "A")
        with pytest.raises(KeyError):
            g.add_edge(0, 1)

    def test_edge_idempotent(self):
        g = VariationGraph()
        g.add_node(0, "A")
        g.add_node(1, "C")
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        assert g.edge_count == 1

    def test_degree_and_neighbors(self):
        g = figure1_example()
        lengths = [g.degree(n.node_id) for n in g.nodes()]
        assert max(lengths) >= 2
        assert 2 in g.neighbors(0) or 1 in g.neighbors(0)

    def test_paths_and_lengths(self):
        g = figure1_example()
        assert g.path_count == 3
        p2 = g.get_path("path2")
        assert len(p2) == 7
        # path2 spells AA T GC C CA AA C = 2+1+2+1+2+2+1 = 11 nucleotides
        assert g.path_length_nucleotides("path2") == 11

    def test_duplicate_path_rejected(self):
        g = VariationGraph()
        g.add_node(0, "A")
        g.add_path("p", [(0, False)])
        with pytest.raises(ValueError):
            g.add_path("p", [(0, False)])

    def test_path_step_missing_node(self):
        g = VariationGraph()
        g.add_node(0, "A")
        with pytest.raises(KeyError):
            g.add_path("p", [(3, False)])

    def test_remove_node_blocked_by_path(self):
        g = figure1_example()
        with pytest.raises(ValueError):
            g.remove_node(0)

    def test_remove_isolated_node(self):
        g = VariationGraph()
        g.add_node(0, "A")
        g.add_node(1, "C")
        g.add_edge(0, 1)
        g.remove_node(1)
        assert g.node_count == 1
        assert g.edge_count == 0

    def test_totals(self):
        g = figure1_example()
        assert g.total_sequence_length() == sum(n.length for n in g.nodes())
        assert g.total_path_steps() == 6 + 5 + 7


class TestGFA:
    GFA_TEXT = "\n".join([
        "H\tVN:Z:1.0",
        "S\ts1\tAA",
        "S\ts2\tT",
        "S\ts3\tGC",
        "L\ts1\t+\ts2\t+\t0M",
        "L\ts2\t+\ts3\t+\t0M",
        "L\ts1\t+\ts3\t+\t0M",
        "P\tpathA\ts1+,s2+,s3+\t*",
        "P\tpathB\ts1+,s3+\t*",
    ]) + "\n"

    def test_parse_basic(self):
        g = parse_gfa_text(self.GFA_TEXT)
        assert g.node_count == 3
        assert g.edge_count == 3
        assert g.path_count == 2
        assert g.path_length_nucleotides("pathA") == 5

    def test_round_trip(self):
        g = parse_gfa_text(self.GFA_TEXT)
        text = gfa_to_text(g)
        g2 = parse_gfa_text(text)
        assert g2.node_count == g.node_count
        assert g2.edge_count == g.edge_count
        assert g2.path_count == g.path_count
        assert g2.path_length_nucleotides("pathA") == 5

    def test_round_trip_without_sequence(self):
        g = parse_gfa_text(self.GFA_TEXT)
        text = gfa_to_text(g, store_sequence=False)
        g2 = parse_gfa_text(text)
        assert g2.node_length(0) == 2  # preserved via LN tag

    def test_star_sequence_requires_ln(self):
        with pytest.raises(GFAError):
            parse_gfa_text("S\tx\t*\n")

    def test_star_sequence_with_ln(self):
        g = parse_gfa_text("S\tx\t*\tLN:i:7\n")
        assert g.node_length(0) == 7

    def test_duplicate_segment_rejected(self):
        with pytest.raises(GFAError):
            parse_gfa_text("S\ta\tA\nS\ta\tC\n")

    def test_link_to_unknown_segment(self):
        with pytest.raises(GFAError):
            parse_gfa_text("S\ta\tA\nL\ta\t+\tzz\t+\t0M\n")

    def test_path_with_unknown_segment(self):
        with pytest.raises(GFAError):
            parse_gfa_text("S\ta\tA\nP\tp\ta+,b+\t*\n")

    def test_bad_orientation(self):
        with pytest.raises(GFAError):
            parse_gfa_text("S\ta\tA\nS\tb\tC\nL\ta\t?\tb\t+\t0M\n")

    def test_unknown_record_type(self):
        with pytest.raises(GFAError):
            parse_gfa_text("Z\tnope\n")

    def test_reverse_orientation_steps(self):
        text = "S\ta\tAC\nS\tb\tGG\nL\ta\t+\tb\t-\t0M\nP\tp\ta+,b-\t*\n"
        g = parse_gfa_text(text)
        lean = LeanGraph.from_variation_graph(g)
        assert lean.step_reverse.tolist() == [False, True]

    def test_write_to_handle(self):
        g = parse_gfa_text(self.GFA_TEXT)
        buf = io.StringIO()
        write_gfa(g, buf)
        assert "P\tpathA" in buf.getvalue()

    def test_parse_from_handle(self):
        g = parse_gfa_text(self.GFA_TEXT)
        assert g.segment_names[0] == "s1"


class TestBuilder:
    def test_figure1_structure(self):
        g = figure1_example()
        assert g.node_count == 8
        lean = LeanGraph.from_variation_graph(g)
        # path1 skips the deleted node (v6) relative to path0.
        assert lean.path_step_counts.tolist() == [6, 5, 7]

    def test_build_from_variants_snv(self):
        ref = "ACGTACGTACGT"
        g = build_from_variants(ref, [snv(4, "T", carriers=[1])], n_genomes=2,
                                segment_length=4)
        lean = LeanGraph.from_variation_graph(g)
        # Both genomes traverse the same number of steps; one uses the alt node.
        assert lean.n_paths == 2
        g0 = lean.step_nodes[lean.path_steps(0)]
        g1 = lean.step_nodes[lean.path_steps(1)]
        assert not np.array_equal(g0, g1)
        assert g.path_length_nucleotides("genome0") == len(ref)
        assert g.path_length_nucleotides("genome1") == len(ref)

    def test_build_from_variants_deletion(self):
        ref = "A" * 40
        g = build_from_variants(ref, [deletion(8, 8, carriers=[0])], n_genomes=2,
                                segment_length=8)
        assert g.path_length_nucleotides("genome0") == 32
        assert g.path_length_nucleotides("genome1") == 40

    def test_build_from_variants_insertion(self):
        ref = "C" * 20
        g = build_from_variants(ref, [insertion(10, "TTTT", carriers=[1])], n_genomes=2,
                                segment_length=5)
        assert g.path_length_nucleotides("genome0") == 20
        assert g.path_length_nucleotides("genome1") == 24

    def test_variant_out_of_range(self):
        with pytest.raises(ValueError):
            build_from_variants("ACGT", [snv(10, "A", [0])], n_genomes=1)

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            snv(0, "AC", [0])
        with pytest.raises(ValueError):
            deletion(0, 0, [0])
        with pytest.raises(ValueError):
            insertion(0, "", [0])


class TestValidation:
    def test_figure1_valid(self, fig1_graph):
        report = validate_graph(fig1_graph)
        assert report.ok

    def test_lean_valid(self, tiny_graph):
        assert validate_lean(tiny_graph).ok

    def test_orphan_node_warning(self):
        lean = LeanGraph.from_paths([2, 3, 4], [[0, 1]])
        report = validate_lean(lean)
        assert report.ok
        assert any("not visited" in w for w in report.warnings)

    def test_inconsistent_positions_detected(self, tiny_graph):
        broken = LeanGraph(
            node_lengths=tiny_graph.node_lengths,
            path_offsets=tiny_graph.path_offsets,
            step_nodes=tiny_graph.step_nodes,
            step_reverse=tiny_graph.step_reverse,
            step_positions=tiny_graph.step_positions + 1,
            path_names=list(tiny_graph.path_names),
        )
        report = validate_lean(broken)
        assert not report.ok

    def test_raise_if_invalid(self, tiny_graph):
        report = validate_lean(tiny_graph)
        report.raise_if_invalid()  # should not raise
        report.errors.append("boom")
        with pytest.raises(ValueError):
            report.raise_if_invalid()

    def test_stats_on_fig1(self, fig1_graph):
        st = compute_stats(fig1_graph, name="fig1")
        assert st.n_nodes == 8
        assert st.n_paths == 3
        assert st.n_edges == fig1_graph.edge_count
        assert st.avg_degree > 0
