"""Quality classification bands used in the paper's case studies.

Table III labels layouts "Good" / "Satisfying" / "Poor" and Fig. 17 defines
the bands quantitatively: a layout whose (sampled) path stress is below 2×
the reference layout's stress is *good*, below 10× is *satisfying*, and
anything above is *poor*. The same bands are used for the batch-size sweep
and the data-reuse design-space exploration.
"""
from __future__ import annotations

from enum import Enum

__all__ = ["QualityBand", "classify_quality", "GOOD_THRESHOLD", "SATISFYING_THRESHOLD"]

GOOD_THRESHOLD = 2.0
SATISFYING_THRESHOLD = 10.0


class QualityBand(str, Enum):
    """Qualitative layout-quality label."""

    GOOD = "Good"
    SATISFYING = "Satisfying"
    POOR = "Poor"


def classify_quality(
    stress_value: float,
    reference_stress: float,
    good_threshold: float = GOOD_THRESHOLD,
    satisfying_threshold: float = SATISFYING_THRESHOLD,
) -> QualityBand:
    """Classify a layout's stress relative to a reference layout's stress."""
    if reference_stress < 0 or stress_value < 0:
        raise ValueError("stress values must be non-negative")
    if good_threshold <= 0 or satisfying_threshold <= good_threshold:
        raise ValueError("thresholds must satisfy 0 < good < satisfying")
    if reference_stress == 0:
        return QualityBand.GOOD if stress_value == 0 else QualityBand.POOR
    ratio = stress_value / reference_stress
    if ratio < good_threshold:
        return QualityBand.GOOD
    if ratio < satisfying_threshold:
        return QualityBand.SATISFYING
    return QualityBand.POOR
