"""Hot-path regression tests: O(batch) merges, workspace reuse, bulk draws.

The reworked ``apply_batch`` compacts over the touched points instead of
allocating graph-sized scratch per batch; these tests pin its numerical
equivalence (within 1e-9) to the seed implementation for every merge policy,
the collision counters, the degenerate cases, and the sampler's single-loop
bulk uniform draw (byte-identical to the historical nested-loop draw order).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LayoutParams,
    PairSampler,
    StepBatch,
    UpdateWorkspace,
    apply_batch,
    compact_points,
    compute_displacements,
    initialize_layout,
    split_into_batches,
)
from repro.core.updates import _MIN_DISTANCE
from repro.prng import Xoshiro256Plus


# --------------------------------------------------------------------------
# Seed (pre-rework) reference implementations, kept verbatim for equivalence.
# --------------------------------------------------------------------------

def seed_apply_batch(coords, batch, eta, merge):
    """The original full-array implementation of apply_batch's write merge."""
    d_ref = batch.d_ref
    valid = d_ref > 0
    d_safe = np.where(valid, d_ref, 1.0)
    mu = np.minimum(eta / (d_safe * d_safe), 1.0)
    point_i = 2 * batch.node_i + batch.vis_i
    point_j = 2 * batch.node_j + batch.vis_j
    diff = coords[point_i] - coords[point_j]
    mag = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    mag_safe = np.maximum(mag, _MIN_DISTANCE)
    delta_scalar = np.where(valid, mu * (mag - d_safe) / 2.0, 0.0)
    unit = diff / mag_safe[:, None]
    coincident = mag < _MIN_DISTANCE
    if np.any(coincident):
        unit[coincident] = np.array([1.0, 0.0])
    delta = unit * delta_scalar[:, None]
    all_points = np.concatenate([point_i, point_j])
    all_deltas = np.concatenate([-delta, delta])
    n_collisions = int(all_points.size - np.unique(all_points).size)
    if merge == "accumulate":
        np.add.at(coords, all_points, all_deltas)
    elif merge == "hogwild":
        summed = np.zeros_like(coords)
        counts = np.zeros(coords.shape[0], dtype=np.float64)
        np.add.at(summed, all_points, all_deltas)
        np.add.at(counts, all_points, 1.0)
        touched = counts > 0
        coords[touched] += summed[touched] / counts[touched, None]
    else:
        reversed_points = all_points[::-1]
        _, first_in_reversed = np.unique(reversed_points, return_index=True)
        keep = all_points.size - 1 - first_in_reversed
        coords[all_points[keep]] += all_deltas[keep]
    return n_collisions


def seed_uniforms(rng, batch_size, n_vectors):
    """The original nested-loop _uniforms (defines the draw-order contract)."""
    first = np.asarray(rng.next_double(), dtype=np.float64)
    n_streams = first.size
    need_calls = int(np.ceil(batch_size / n_streams))
    rows = np.empty((n_vectors, need_calls * n_streams), dtype=np.float64)
    rows[0, :n_streams] = first
    for c in range(1, need_calls):
        rows[0, c * n_streams:(c + 1) * n_streams] = rng.next_double()
    for v in range(1, n_vectors):
        for c in range(need_calls):
            rows[v, c * n_streams:(c + 1) * n_streams] = rng.next_double()
    return rows[:, :batch_size]


def make_batch(node_i, node_j, vis_i, vis_j, d_ref):
    n = len(node_i)
    return StepBatch(
        path=np.zeros(n, dtype=np.int64),
        flat_i=np.zeros(n, dtype=np.int64),
        flat_j=np.zeros(n, dtype=np.int64),
        node_i=np.asarray(node_i, dtype=np.int64),
        node_j=np.asarray(node_j, dtype=np.int64),
        vis_i=np.asarray(vis_i, dtype=np.int64),
        vis_j=np.asarray(vis_j, dtype=np.int64),
        d_ref=np.asarray(d_ref, dtype=np.float64),
        in_cooling=np.zeros(n, dtype=bool),
    )


MERGES = ("hogwild", "accumulate", "last_writer")


class TestMergeEquivalence:
    @pytest.mark.parametrize("merge", MERGES)
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 256])
    def test_matches_seed_implementation(self, small_synthetic, merge, batch_size):
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(11, n_streams=64)
        batch = sampler.sample(rng, batch_size, iteration=0)
        base = initialize_layout(small_synthetic, seed=4).coords
        expected = base.copy()
        seed_collisions = seed_apply_batch(expected, batch, 0.7, merge)
        got = base.copy()
        stats = apply_batch(got, batch, 0.7, merge=merge)
        np.testing.assert_allclose(got, expected, atol=1e-9, rtol=0)
        assert stats.n_point_collisions == seed_collisions

    @pytest.mark.parametrize("merge", MERGES)
    def test_heavily_colliding_batch(self, merge):
        # Every term hits the same two points: maximal collisions.
        n = 32
        coords = np.array([[0.0, 0.0], [1.0, 0.5], [5.0, 0.0], [6.0, 1.0]])
        batch = make_batch([0] * n, [1] * n, [0] * n, [1] * n, [2.0] * n)
        expected = coords.copy()
        seed_collisions = seed_apply_batch(expected, batch, 1.0, merge)
        got = coords.copy()
        stats = apply_batch(got, batch, 1.0, merge=merge)
        np.testing.assert_allclose(got, expected, atol=1e-9, rtol=0)
        assert stats.n_point_collisions == seed_collisions == 2 * n - 2

    @pytest.mark.parametrize("merge", MERGES)
    def test_coincident_points_get_degeneracy_nudge(self, merge):
        # Both endpoints at the same location: the x-nudge branch fires.
        coords = np.array([[1.0, 1.0], [1.0, 1.0], [1.0, 1.0], [1.0, 1.0]])
        batch = make_batch([0, 0], [1, 1], [0, 1], [0, 1], [3.0, 3.0])
        expected = coords.copy()
        seed_apply_batch(expected, batch, 1.0, merge)
        got = coords.copy()
        apply_batch(got, batch, 1.0, merge=merge)
        np.testing.assert_allclose(got, expected, atol=1e-9, rtol=0)
        assert not np.allclose(got, coords)

    @pytest.mark.parametrize("merge", MERGES)
    def test_zero_reference_terms_do_not_move(self, merge):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0], [6.0, 0.0]])
        batch = make_batch([0], [1], [0], [0], [0.0])
        got = coords.copy()
        stats = apply_batch(got, batch, 1.0, merge=merge)
        np.testing.assert_array_equal(got, coords)
        assert stats.n_zero_ref == 1

    def test_empty_batch_with_workspace(self, small_synthetic):
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(5, n_streams=16)
        batch = sampler.sample(rng, 16, iteration=0)
        empty = StepBatch(**{k: getattr(batch, k)[:0] for k in (
            "path", "flat_i", "flat_j", "node_i", "node_j",
            "vis_i", "vis_j", "d_ref", "in_cooling")})
        coords = initialize_layout(small_synthetic).coords
        before = coords.copy()
        stats = apply_batch(coords, empty, 0.1, workspace=UpdateWorkspace(4))
        assert stats.n_terms == 0
        np.testing.assert_array_equal(coords, before)


class TestWorkspace:
    def test_workspace_and_default_paths_agree(self, small_synthetic):
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(3, n_streams=128)
        batch = sampler.sample(rng, 128, iteration=0)
        base = initialize_layout(small_synthetic, seed=1).coords
        for merge in MERGES:
            with_ws = base.copy()
            without = base.copy()
            ws = UpdateWorkspace(128)
            s1 = apply_batch(with_ws, batch, 0.5, merge=merge, workspace=ws)
            s2 = apply_batch(without, batch, 0.5, merge=merge)
            np.testing.assert_array_equal(with_ws, without)
            assert s1 == s2

    def test_workspace_reused_across_batches(self, small_synthetic):
        # The same buffers back successive calls: no steady-state growth.
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(9, n_streams=64)
        coords = initialize_layout(small_synthetic, seed=2).coords
        ws = UpdateWorkspace(64)
        buffers = (ws.merge_points, ws.merge_delta, ws.term_delta)
        for _ in range(4):
            batch = sampler.sample(rng, 64, iteration=0)
            apply_batch(coords, batch, 0.3, workspace=ws)
        assert (ws.merge_points, ws.merge_delta, ws.term_delta) == buffers

    def test_workspace_grows_on_demand(self, small_synthetic):
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(9, n_streams=64)
        ws = UpdateWorkspace(8)
        batch = sampler.sample(rng, 200, iteration=0)
        coords = initialize_layout(small_synthetic, seed=2).coords
        apply_batch(coords, batch, 0.3, workspace=ws)
        assert ws.max_batch >= 200

    def test_displacement_views_come_from_workspace(self, small_synthetic):
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(9, n_streams=32)
        batch = sampler.sample(rng, 32, iteration=0)
        coords = initialize_layout(small_synthetic, seed=2).coords
        ws = UpdateWorkspace(32)
        _, _, delta = compute_displacements(coords, batch, 0.5, workspace=ws)
        assert delta.base is ws.term_delta


class TestCompactPoints:
    def test_compaction_matches_unique(self):
        points = np.array([5, 3, 5, 9, 3, 5])
        uniq, inverse, counts = compact_points(points)
        np.testing.assert_array_equal(uniq, [3, 5, 9])
        np.testing.assert_array_equal(uniq[inverse], points)
        np.testing.assert_array_equal(counts, [2, 3, 1])

    def test_collision_free_batch(self):
        uniq, inverse, counts = compact_points(np.array([1, 2, 3]))
        assert uniq.size == 3
        assert np.all(counts == 1)


class TestSplitIntoBatches:
    def test_even_and_remainder(self):
        assert split_into_batches(10, 4) == [4, 4, 2]
        assert split_into_batches(8, 4) == [4, 4]

    def test_chunk_clamped(self):
        assert split_into_batches(3, 100) == [3]
        assert split_into_batches(3, 0) == [1, 1, 1]

    def test_empty(self):
        assert split_into_batches(0, 4) == []


class TestBulkUniforms:
    @pytest.mark.parametrize("n_streams", [1, 3, 64, 256])
    @pytest.mark.parametrize("batch_size", [1, 5, 63, 64, 65, 256, 300])
    def test_matches_seed_draw_order(self, n_streams, batch_size):
        r_new = Xoshiro256Plus(7, n_streams=n_streams)
        r_old = Xoshiro256Plus(7, n_streams=n_streams)
        got = PairSampler._uniforms(r_new, batch_size, 8)
        # The historical scheme: a 6-vector draw followed by a 2-vector draw.
        expected = np.vstack([seed_uniforms(r_old, batch_size, 6),
                              seed_uniforms(r_old, batch_size, 2)])
        np.testing.assert_array_equal(got, expected)
        # Both consumed the exact same number of PRNG calls.
        np.testing.assert_array_equal(r_new.state, r_old.state)

    def test_shape_and_range(self):
        rng = Xoshiro256Plus(1, n_streams=16)
        block = PairSampler._uniforms(rng, 40, 3)
        assert block.shape == (3, 40)
        assert np.all((block >= 0.0) & (block < 1.0))

    def test_single_stream_single_term(self):
        rng = Xoshiro256Plus(2, n_streams=1)
        block = PairSampler._uniforms(rng, 1, 2)
        assert block.shape == (2, 1)

    def test_more_streams_than_batch(self):
        rng = Xoshiro256Plus(2, n_streams=512)
        block = PairSampler._uniforms(rng, 10, 4)
        assert block.shape == (4, 10)

    def test_invalid_sizes_rejected(self):
        rng = Xoshiro256Plus(2, n_streams=4)
        with pytest.raises(ValueError):
            PairSampler._uniforms(rng, 0, 2)
        with pytest.raises(ValueError):
            PairSampler._uniforms(rng, 4, 0)

    def test_uniforms_block_fill_matches_per_call_fallback(self):
        """The next_double_block fast path equals the per-call legacy fill.

        ``_uniforms`` consults ``n_streams``/``next_double_block`` when the
        generator has them; a minimal next_double-only generator takes the
        historical loop. Both must consume the streams identically — this is
        the draw-order contract that keeps the smoke baseline pinned.
        """

        class CallOnly:
            def __init__(self, inner):
                self.inner = inner

            def next_double(self):
                return self.inner.next_double()

        for n_streams, batch in ((1, 9), (16, 40), (64, 64), (64, 130)):
            fast = Xoshiro256Plus(31, n_streams=n_streams)
            legacy = CallOnly(Xoshiro256Plus(31, n_streams=n_streams))
            got = PairSampler._uniforms(fast, batch, 8)
            expect = PairSampler._uniforms(legacy, batch, 8)
            np.testing.assert_array_equal(got, expect)
            np.testing.assert_array_equal(fast.state, legacy.inner.state)

    def test_sample_unchanged_by_call_merging(self, small_synthetic):
        """sample()'s one 8-vector draw equals the historical 6+2 split."""
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(13, n_streams=64)
        reference = Xoshiro256Plus(13, n_streams=64)
        batch = sampler.sample(rng, 100, iteration=0)
        draws = seed_uniforms(reference, 100, 6)
        vis = seed_uniforms(reference, 100, 2)
        np.testing.assert_array_equal(
            batch.path, sampler.index.sample_paths(draws[0]))
        np.testing.assert_array_equal(batch.vis_i, (vis[0] < 0.5).astype(np.int64))
        np.testing.assert_array_equal(batch.vis_j, (vis[1] < 0.5).astype(np.int64))
        np.testing.assert_array_equal(rng.state, reference.state)
