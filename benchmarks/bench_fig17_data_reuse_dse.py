"""Fig. 17 — design-space exploration of the warp-shuffle data-reuse schemes.

Sweeps the (data-reuse factor, step-reduction factor) schemes of the paper's
case study on the Chr.1-like and Chr.2-like graphs, measuring the modelled
speedup over the fully optimized kernel and the sampled path stress of the
actual layouts. Paper shape: higher reuse → more speedup but higher stress;
DRF=2 schemes remain good/satisfying while DRF=8 schemes turn poor; an extra
~1.5x speedup is attainable while preserving good quality.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.bench import format_table
from repro.core import GpuKernelConfig, OptimizedGpuEngine
from repro.core.layout import Layout
from repro.gpusim import RTX_A6000
from repro.metrics import classify_quality, sampled_path_stress
from repro.synth import chromosome_suite

SCHEMES = [(1, 1.0), (2, 1.5), (4, 1.5), (2, 1.75), (4, 2.0), (8, 2.0), (8, 2.5)]


@pytest.mark.paper_table("Fig. 17")
def test_fig17_data_reuse_design_space(benchmark, chr1_graph, quality_bench_params):
    graphs = {"Chr.1-like": chr1_graph,
              "Chr.2-like": chromosome_suite(scale=0.35, quick=True)["Chr.2"]}
    params = quality_bench_params

    def explore():
        out = {}
        for graph_name, graph in graphs.items():
            rng = np.random.default_rng(23)
            scrambled = Layout(rng.uniform(0, 1000.0, size=(2 * graph.n_nodes, 2)))
            baseline_runtime = None
            baseline_stress = None
            rows = []
            for drf, srf in SCHEMES:
                cfg = GpuKernelConfig(data_reuse_factor=drf, step_reduction_factor=srf)
                engine = OptimizedGpuEngine(graph, params, cfg)
                profile = engine.profile(device=RTX_A6000, n_sample_terms=1024)
                result = engine.run(initial=scrambled)
                sps = sampled_path_stress(result.layout, graph, samples_per_step=20, seed=0)
                if (drf, srf) == (1, 1.0):
                    baseline_runtime = profile.runtime_s
                    baseline_stress = max(sps.value, 1e-9)
                rows.append(((drf, srf), profile.runtime_s, sps.value))
            out[graph_name] = (baseline_runtime, baseline_stress, rows)
        return out

    results = benchmark.pedantic(explore, rounds=1, iterations=1)

    for graph_name, (base_rt, base_sps, entries) in results.items():
        table_rows = []
        speedups = {}
        stresses = {}
        for (drf, srf), runtime, sps in entries:
            speedup = base_rt / runtime
            quality = classify_quality(sps, base_sps)
            speedups[(drf, srf)] = speedup
            stresses[(drf, srf)] = sps
            table_rows.append([f"({drf}, {srf})", f"{speedup:.2f}x", f"{sps:.3g}",
                               quality.value])
        print()
        print(format_table(
            ["Scheme (DRF, SRF)", "Normalized speedup", "Sampled path stress", "Quality"],
            table_rows,
            title=f"Fig. 17: data-reuse design space on {graph_name} "
                  f"(baseline stress {base_sps:.3g})",
        ))
        # Shape assertions (the paper's trade-off frontier): reuse schemes are
        # faster than the (1,1) baseline, the most aggressive scheme is the
        # fastest and attains the paper's ~1.5x-or-better extra speedup, and
        # stress grows with reuse aggressiveness — mild reuse (DRF=2) sits in
        # the attractive corner with far lower stress than DRF=8 schemes.
        assert speedups[(8, 2.5)] > speedups[(2, 1.5)] > 1.0
        assert speedups[(2, 1.5)] > 1.3
        assert speedups[(8, 2.5)] > 1.8
        assert stresses[(8, 2.5)] > stresses[(2, 1.5)]
        assert stresses[(8, 2.0)] >= stresses[(2, 1.5)]
        assert stresses[(2, 1.5)] < stresses[(8, 2.5)] / 5.0
