"""Benchmark subsystem: orchestration, result schema, regression gate.

Layers:

* :mod:`~repro.bench.tables` / :mod:`~repro.bench.perfmodel` — formatting
  helpers and the end-to-end performance model (pre-existing).
* :mod:`~repro.bench.registry` — ``BenchCase`` registry with decorator-based
  registration and suite resolution (``smoke``/``figures``/``tables``/``all``).
* :mod:`~repro.bench.context` — master-seeded datasets/parameters shared by
  cases; the determinism backbone.
* :mod:`~repro.bench.runner` — executes suites with warmup/repeat control and
  writes versioned ``BENCH_<suite>.json`` documents.
* :mod:`~repro.bench.schema` — the versioned result-file schema.
* :mod:`~repro.bench.compare` — diffs two result files and gates regressions.
* :mod:`~repro.bench.cases` — the built-in paper-reproduction and CI smoke
  cases (imported lazily via :func:`load_builtin_cases`).
"""
from .tables import (
    format_table,
    format_markdown_table,
    format_hms,
    format_sci,
    geometric_mean,
)
from .perfmodel import (
    GraphPerformanceReport,
    evaluate_graph_performance,
    ablation_ladder,
)
from .registry import (
    REGISTRY,
    BenchCase,
    BenchError,
    BenchRegistry,
    CaseResult,
    DuplicateCaseError,
    KNOWN_SUITES,
    Metric,
    UnknownCaseError,
    UnknownSuiteError,
    bench_case,
    load_builtin_cases,
)
from .context import BenchContext, DEFAULT_MASTER_SEED
from .schema import (
    SCHEMA_VERSION,
    SchemaError,
    default_output_path,
    load_results,
    validate_results,
    write_results,
)
from .compare import (
    ComparisonReport,
    MetricDelta,
    compare_documents,
    compare_files,
    parse_threshold,
)
from .runner import SuiteRunError, run_case, run_suite

__all__ = [
    "format_table",
    "format_markdown_table",
    "format_hms",
    "format_sci",
    "geometric_mean",
    "GraphPerformanceReport",
    "evaluate_graph_performance",
    "ablation_ladder",
    "REGISTRY",
    "BenchCase",
    "BenchError",
    "BenchRegistry",
    "CaseResult",
    "DuplicateCaseError",
    "KNOWN_SUITES",
    "Metric",
    "UnknownCaseError",
    "UnknownSuiteError",
    "bench_case",
    "load_builtin_cases",
    "BenchContext",
    "DEFAULT_MASTER_SEED",
    "SCHEMA_VERSION",
    "SchemaError",
    "default_output_path",
    "load_results",
    "validate_results",
    "write_results",
    "ComparisonReport",
    "MetricDelta",
    "compare_documents",
    "compare_files",
    "parse_threshold",
    "SuiteRunError",
    "run_case",
    "run_suite",
]
