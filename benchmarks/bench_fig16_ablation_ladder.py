"""Fig. 16 — speedup through successive optimisations.

Builds the full optimisation ladder on the Chr.1-like graph: CPU baseline,
CPU + cache-friendly data layout, base CUDA kernel, then the three GPU kernel
optimisations added one at a time. The paper's anchors: CPU+CDL ≈ 3.1×,
base CUDA ≈ 14.6×, fully optimized ≈ 27.7× over the CPU baseline.
"""
from __future__ import annotations

import pytest

from repro.bench import ablation_ladder, format_table

PAPER_SPEEDUPS = {
    "cpu-baseline": 1.0,
    "cpu+cdl": 3.1,
    "gpu-base": 14.6,
    "gpu+cdl+crs+wm": 27.7,
}

ORDER = ["cpu-baseline", "cpu+cdl", "gpu-base", "gpu+cdl", "gpu+cdl+crs", "gpu+cdl+crs+wm"]


@pytest.mark.paper_table("Fig. 16")
def test_fig16_successive_optimisations(benchmark, chr1_graph, bench_params):
    ladder = benchmark.pedantic(
        lambda: ablation_ladder(chr1_graph, bench_params, n_trace_terms=1536),
        rounds=1, iterations=1,
    )

    base = ladder["cpu-baseline"]
    rows = []
    for stage in ORDER:
        speedup = base / ladder[stage]
        rows.append([stage, f"{ladder[stage]:.3g}", f"{speedup:.1f}x",
                     f"{PAPER_SPEEDUPS.get(stage, float('nan')):.1f}x"
                     if stage in PAPER_SPEEDUPS else "-"])

    # Orderings the paper reports (the reproduction target is the shape).
    assert ladder["cpu+cdl"] < ladder["cpu-baseline"]
    assert ladder["gpu-base"] < ladder["cpu-baseline"]
    assert ladder["gpu+cdl"] < ladder["gpu-base"]
    assert ladder["gpu+cdl+crs"] < ladder["gpu+cdl"]
    assert ladder["gpu+cdl+crs+wm"] < ladder["gpu+cdl+crs"]
    # Magnitude bands (generous): CPU+CDL gives a clear win, the GPU base
    # kernel is >4x over the CPU, the full ladder is >8x, and the three kernel
    # optimisations together roughly double the base kernel (paper: 14.6x ->
    # 27.7x, i.e. 1.9x).
    assert base / ladder["cpu+cdl"] > 1.3
    assert base / ladder["gpu-base"] > 4.0
    assert base / ladder["gpu+cdl+crs+wm"] > 8.0
    assert ladder["gpu-base"] / ladder["gpu+cdl+crs+wm"] > 1.4

    print()
    print(format_table(
        ["Stage", "Modelled time (s)", "Speedup", "Paper speedup"],
        rows,
        title="Fig. 16: speedup through successive optimisations (Chr.1-like)",
    ))
