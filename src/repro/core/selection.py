"""Random path and node-pair selection (Alg. 1 lines 5–13).

Every update step of the path-guided SGD algorithm selects

1. a path ``p`` with probability proportional to its step count,
2. a pair of steps ``(i, j)`` on that path — uniformly during the exploration
   phase, or with a Zipf-distributed hop distance during the *cooling* phase
   (second half of the run plus a coin flip earlier), so that late updates
   refine local structure, and
3. one visualisation endpoint (segment start or end) per node, by coin flip.

The paper identifies this randomness as both essential for quality
(Sec. III-C, Fig. 6) and the source of the workload's irregular memory
accesses. All selection here is vectorised over a batch of steps, driven by
any of the multi-stream PRNGs in :mod:`repro.prng`.

Selection runs on the sampler backend's *host* namespace
(``backend.host_xp``): the PRNG streams produce host arrays and the selected
:class:`StepBatch` stays host-resident — device backends upload it per batch
inside the update kernels. The dispatch seam is here so a future
device-resident sampler only has to override ``host_xp``.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional, Protocol

import numpy as np

from ..backend import ArrayBackend, get_backend
from ..graph.lean import LeanGraph
from ..graph.path_index import PathIndex
from .params import LayoutParams

__all__ = ["StepBatch", "PairSampler", "SelectionArrays", "zipf_hop_distances"]


class _MultiStreamRNG(Protocol):
    """The minimal PRNG interface the sampler needs (uniform doubles).

    ``next_double`` (one call, one value per stream) is the portable core.
    Generators additionally exposing ``n_streams`` and a bulk
    ``next_double_block(n_calls)`` (:class:`~repro.prng.xoshiro.Xoshiro256Plus`)
    let the sampler fill its uniform blocks without a Python loop per call;
    the draw order is identical either way.
    """

    def next_double(self) -> np.ndarray: ...  # pragma: no cover - protocol


class SelectionArrays(NamedTuple):
    """The graph/index arrays term selection reads, in one memory space.

    The host sampler builds one bundle over the lean graph's NumPy arrays;
    device backends with a device-resident fused path convert the same bundle
    once per run (``backend.asarray``) so per-iteration selection runs where
    the coordinates live instead of round-tripping batches through the host.
    """

    cum_steps: np.ndarray
    """``(n_paths + 1,)`` cumulative step counts (inverse-CDF path sampling)."""
    path_offsets: np.ndarray
    """``(n_paths + 1,)`` flat step offsets per path."""
    path_counts: np.ndarray
    """``(n_paths,)`` step count per path."""
    step_nodes: np.ndarray
    """``(total_steps,)`` node id per flat step."""
    step_positions: np.ndarray
    """``(total_steps,)`` nucleotide position per flat step."""


@dataclass
class StepBatch:
    """One batch of selected update terms.

    All arrays have the same length (the batch size). ``flat_i`` / ``flat_j``
    index into the lean graph's flat step arrays; ``node_i`` / ``node_j`` are
    the corresponding graph nodes; ``vis_i`` / ``vis_j`` select the segment
    endpoint (0 = start, 1 = end); ``d_ref`` is the reference nucleotide
    distance along the shared path; ``in_cooling`` records which branch chose
    the pair (used by the warp-divergence model).
    """

    path: np.ndarray
    flat_i: np.ndarray
    flat_j: np.ndarray
    node_i: np.ndarray
    node_j: np.ndarray
    vis_i: np.ndarray
    vis_j: np.ndarray
    d_ref: np.ndarray
    in_cooling: np.ndarray

    def __len__(self) -> int:
        return int(self.flat_i.size)

    def slice(self, start: int, stop: int) -> "StepBatch":
        """Zero-copy view of terms ``[start, stop)`` (shares this batch's arrays).

        The fused iteration path selects a whole iteration's terms in one
        vectorised pass and walks the planned segments as views; mutating a
        slice mutates the parent.
        """
        return StepBatch(
            path=self.path[start:stop],
            flat_i=self.flat_i[start:stop],
            flat_j=self.flat_j[start:stop],
            node_i=self.node_i[start:stop],
            node_j=self.node_j[start:stop],
            vis_i=self.vis_i[start:stop],
            vis_j=self.vis_j[start:stop],
            d_ref=self.d_ref[start:stop],
            in_cooling=self.in_cooling[start:stop],
        )

    def nonzero_terms(self) -> "StepBatch":
        """Drop terms whose reference distance is zero (no gradient defined).

        In the common case every sampled pair has ``d_ref > 0`` (two distinct
        steps of one path start at distinct nucleotide positions unless a
        zero-length node intervenes); the batch is then returned *as is* —
        no 9-array fancy-index copy on the hot path. Callers must treat the
        result as read-only aliasing of the input, which they already did:
        the filtered batch was always backed by fresh copies only when the
        mask removed something.
        """
        keep = self.d_ref > 0
        if bool(keep.all()):
            return self
        return StepBatch(
            path=self.path[keep],
            flat_i=self.flat_i[keep],
            flat_j=self.flat_j[keep],
            node_i=self.node_i[keep],
            node_j=self.node_j[keep],
            vis_i=self.vis_i[keep],
            vis_j=self.vis_j[keep],
            d_ref=self.d_ref[keep],
            in_cooling=self.in_cooling[keep],
        )


def zipf_hop_distances(
    uniform: np.ndarray, theta: float, space_max: int, xp=np
) -> np.ndarray:
    """Map uniform draws to Zipf(θ)-distributed hop distances in [1, space_max].

    Uses the standard inverse-CDF approximation for the (truncated) Zipf
    distribution ("rejection-inversion" simplified to its inversion step),
    which is what odgi-layout's ``dirty_zipfian_int_distribution`` computes.
    For θ→1 the distribution approaches ``P(k) ∝ 1/k``. ``xp`` is the array
    namespace to compute in (the sampler passes its backend's host namespace).
    """
    if space_max < 1:
        raise ValueError("space_max must be >= 1")
    if theta <= 0:
        raise ValueError("theta must be positive")
    u = xp.clip(xp.asarray(uniform, dtype=np.float64), 0.0, 1.0 - 1e-12)
    if space_max == 1:
        return xp.ones_like(u, dtype=np.int64)
    one_minus_theta = 1.0 - theta
    if abs(one_minus_theta) < 1e-9:
        # θ == 1: CDF(k) ∝ log(k), invert directly.
        k = xp.exp(u * xp.log(space_max + 1.0))
    else:
        h_max = ((space_max + 1.0) ** one_minus_theta - 1.0) / one_minus_theta
        h = u * h_max
        k = (h * one_minus_theta + 1.0) ** (1.0 / one_minus_theta)
    return xp.clip(xp.floor(k).astype(np.int64), 1, space_max)


class PairSampler:
    """Vectorised sampler of update terms over a lean graph."""

    def __init__(self, graph: LeanGraph, params: LayoutParams,
                 index: Optional[PathIndex] = None,
                 backend: Optional[ArrayBackend] = None):
        self.graph = graph
        self.params = params
        self.backend = backend if backend is not None else get_backend(params.backend)
        self._xp = self.backend.host_xp
        self.index = index if index is not None else PathIndex(graph)
        if graph.total_steps == 0:
            raise ValueError("cannot sample node pairs from a graph without path steps")
        self._offsets = graph.path_offsets
        self._counts = graph.path_step_counts
        # Host-side bundle of everything selection reads; the fused iteration
        # path hands (a device copy of) this to select_from_uniforms.
        self.arrays = SelectionArrays(
            cum_steps=self.index.cum_steps,
            path_offsets=graph.path_offsets,
            path_counts=graph.path_step_counts,
            step_nodes=graph.step_nodes,
            step_positions=graph.step_positions,
        )

    @classmethod
    def from_arrays(cls, arrays: SelectionArrays, params: LayoutParams,
                    backend: Optional[ArrayBackend] = None) -> "PairSampler":
        """Sampler over a bare :class:`SelectionArrays` bundle — no graph.

        The shared-memory workers (:mod:`repro.parallel.shm`) receive the
        selection arrays as views into one shared segment rather than a
        pickled :class:`LeanGraph`; this constructor rebuilds a sampler
        around them. :meth:`sample` and :meth:`select_from_uniforms` read
        only ``params`` and the bundle, so batches drawn here are
        byte-identical to the graph-built sampler's. Graph-dependent extras
        (``sample_fixed_hop``) are unavailable — ``graph``/``index`` are
        ``None``.
        """
        self = cls.__new__(cls)
        self.graph = None
        self.index = None
        self.params = params
        self.backend = backend if backend is not None else get_backend(params.backend)
        self._xp = self.backend.host_xp
        self._offsets = arrays.path_offsets
        self._counts = arrays.path_counts
        self.arrays = arrays
        return self

    # ------------------------------------------------------------------ API
    def sample(
        self,
        rng: _MultiStreamRNG,
        batch_size: int,
        iteration: int,
        forced_cooling: Optional[bool] = None,
        cooling_mask: Optional[np.ndarray] = None,
        path_override: Optional[np.ndarray] = None,
    ) -> StepBatch:
        """Draw ``batch_size`` update terms for ``iteration``.

        ``forced_cooling`` overrides the cooling decision for every term and
        ``cooling_mask`` overrides it per term (used by the warp-merging
        kernel, where one control thread decides for the whole warp, and by
        the quality study of Fig. 6). ``path_override`` forces the selected
        path per term (used by the warp-shuffle data-reuse scheme, which
        keeps every warp on one path).
        """
        # One bulk draw covers everything the batch needs: vectors 0-5 drive
        # path/cooling/pair selection and vectors 6-7 the endpoint coin flips
        # of lines 12-13. Drawing all 8 at once halves the Python-level call
        # overhead while consuming the PRNG streams in the exact order the
        # historical two-call scheme did, so sampled batches are unchanged.
        draws = self._uniforms(rng, batch_size, 8)
        return self.select_from_uniforms(
            draws,
            batch_size,
            iteration,
            forced_cooling=forced_cooling,
            cooling_mask=cooling_mask,
            path_override=path_override,
        )

    def select_from_uniforms(
        self,
        draws: np.ndarray,
        batch_size: int,
        iteration: int,
        forced_cooling: Optional[bool] = None,
        cooling_mask: Optional[np.ndarray] = None,
        path_override: Optional[np.ndarray] = None,
        xp=None,
        arrays: Optional[SelectionArrays] = None,
    ) -> StepBatch:
        """Term selection over a pre-drawn ``(8, batch_size)`` uniform block.

        This is the selection half of :meth:`sample` — the exact historical
        call sequence, with the PRNG draws supplied by the caller instead of
        drawn here. The fused iteration path slices one per-iteration
        megablock into these 8-vector views, so selection issues from one
        bulk draw per *iteration* rather than one per batch; the selected
        terms are byte-identical either way.

        ``xp``/``arrays`` default to the sampler's host namespace and host
        :class:`SelectionArrays`; a device backend passes its own namespace
        plus a device-resident copy of the bundle to keep selection (and the
        resulting :class:`StepBatch`) off the host entirely.
        """
        xp = self._xp if xp is None else xp
        arrays = self.arrays if arrays is None else arrays
        # Line 5: path selection proportional to step count — inverse CDF
        # over the cumulative step counts (PathIndex.sample_paths verbatim).
        if path_override is not None:
            paths = xp.asarray(path_override, dtype=np.int64)
            if paths.size != batch_size:
                raise ValueError("path_override must have one entry per term")
        else:
            total = arrays.cum_steps[-1]
            targets = xp.minimum((draws[0] * total).astype(np.int64), total - 1)
            paths = xp.searchsorted(arrays.cum_steps, targets, side="right") - 1
        starts = arrays.path_offsets[paths]
        counts = arrays.path_counts[paths]
        # Line 6: cooling decision = (iter >= iter_max/2) or coin flip.
        if cooling_mask is not None:
            cooling = xp.asarray(cooling_mask, dtype=bool)
            if cooling.size != batch_size:
                raise ValueError("cooling_mask must have one entry per term")
        elif forced_cooling is None:
            always = iteration >= self.params.first_cooling_iteration()
            cooling = xp.full(batch_size, always, dtype=bool) | (draws[1] < 0.5)
        else:
            cooling = xp.full(batch_size, bool(forced_cooling))
        # First step of the pair: uniform within the path.
        local_i = xp.minimum((draws[2] * counts).astype(np.int64), counts - 1)
        # Second step: uniform (exploration) or Zipf hop (cooling).
        local_j_uniform = xp.minimum((draws[3] * counts).astype(np.int64), counts - 1)
        hops = zipf_hop_distances(draws[4], self.params.zipf_theta,
                                  self.params.zipf_space_max, xp=xp)
        hops = xp.minimum(hops, xp.maximum(counts - 1, 1))
        direction = xp.where(draws[5] < 0.5, -1, 1)
        local_j_zipf = local_i + direction * hops
        # Reflect out-of-range hops back into the path.
        local_j_zipf = xp.where(local_j_zipf < 0, local_i + hops, local_j_zipf)
        local_j_zipf = xp.where(local_j_zipf >= counts, local_i - hops, local_j_zipf)
        local_j_zipf = xp.clip(local_j_zipf, 0, xp.maximum(counts - 1, 0))
        local_j = xp.where(cooling, local_j_zipf, local_j_uniform)
        # Avoid degenerate i == j pairs where the path has room.
        same = (local_j == local_i) & (counts > 1)
        local_j = xp.where(same, (local_i + 1) % counts, local_j)

        flat_i = starts + local_i
        flat_j = starts + local_j
        node_i = arrays.step_nodes[flat_i]
        node_j = arrays.step_nodes[flat_j]
        d_ref = xp.abs(
            arrays.step_positions[flat_i] - arrays.step_positions[flat_j]
        ).astype(np.float64)
        # Lines 12-13: endpoint coin flips (vectors 6-7 of the bulk draw).
        vis_i = (draws[6] < 0.5).astype(np.int64)
        vis_j = (draws[7] < 0.5).astype(np.int64)
        return StepBatch(
            path=paths,
            flat_i=flat_i,
            flat_j=flat_j,
            node_i=node_i,
            node_j=node_j,
            vis_i=vis_i,
            vis_j=vis_j,
            d_ref=d_ref,
            in_cooling=cooling,
        )

    def sample_fixed_hop(self, rng: _MultiStreamRNG, batch_size: int, hop: int) -> StepBatch:
        """Degenerate sampler forcing every pair to be exactly ``hop`` steps apart.

        Reproduces the Fig. 6 experiment: removing randomness from node-pair
        selection prevents convergence.
        """
        if hop < 1:
            raise ValueError("hop must be >= 1")
        # Single 4-vector bulk draw (path, step, both endpoints) — same stream
        # consumption order as the historical two 2-vector draws.
        xp = self._xp
        draws = self._uniforms(rng, batch_size, 4)
        paths = self.index.sample_paths(draws[0])
        starts = self._offsets[paths]
        counts = self._counts[paths]
        local_i = xp.minimum((draws[1] * counts).astype(np.int64), counts - 1)
        local_j = xp.clip(local_i + hop, 0, xp.maximum(counts - 1, 0))
        flat_i = starts + local_i
        flat_j = starts + local_j
        d_ref = xp.abs(
            self.graph.step_positions[flat_i] - self.graph.step_positions[flat_j]
        ).astype(np.float64)
        vis = draws[2:]
        return StepBatch(
            path=paths,
            flat_i=flat_i,
            flat_j=flat_j,
            node_i=self.graph.step_nodes[flat_i],
            node_j=self.graph.step_nodes[flat_j],
            vis_i=(vis[0] < 0.5).astype(np.int64),
            vis_j=(vis[1] < 0.5).astype(np.int64),
            d_ref=d_ref,
            in_cooling=np.zeros(batch_size, dtype=bool),
        )

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _uniforms(rng: _MultiStreamRNG, batch_size: int, n_vectors: int) -> np.ndarray:
        """Draw ``n_vectors`` independent uniform vectors of length ``batch_size``.

        Multi-stream PRNGs return one value per stream per call; when the
        stream count differs from the batch size the draws are tiled/cropped,
        which preserves decorrelation across the batch because consecutive
        calls advance every stream.

        The whole ``(n_vectors × batch_size)`` block comes from one bulk
        ``next_double_block`` fill (generators without the bulk API fall back
        to a flat per-call loop). The consumption order (vector-major,
        call-minor) is the sampler's determinism contract: every call
        advances each stream once, and call ``c`` of vector ``v`` is PRNG
        call ``v · ceil(batch/streams) + c`` — byte-identical between the
        bulk and per-call fills (pinned by ``tests/test_update_hotpath.py``).
        Changing this order changes every sampled batch and therefore
        requires regenerating the committed smoke baseline (see ROADMAP).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if n_vectors < 1:
            raise ValueError("n_vectors must be >= 1")
        n_streams = getattr(rng, "n_streams", 0)
        if n_streams and hasattr(rng, "next_double_block"):
            need_calls = -(-batch_size // n_streams)
            block = rng.next_double_block(n_vectors * need_calls)
        else:
            first = np.asarray(rng.next_double(), dtype=np.float64)
            n_streams = first.size
            need_calls = int(np.ceil(batch_size / n_streams))
            block = np.empty((n_vectors * need_calls, n_streams), dtype=np.float64)
            block[0] = first
            for call in range(1, block.shape[0]):
                block[call] = rng.next_double()
        return block.reshape(n_vectors, need_calls * n_streams)[:, :batch_size]
