"""Fig. 5 — microarchitecture bottleneck analysis (top-down categories).

The paper's VTune analysis shows the CPU baseline is memory-bound on all
three representative graphs (53.5% → 65.4% → 70.9% of pipeline slots from
HLA-DRB1 to Chr.1). Here the same categories are derived from the cache
profile of the real access trace.
"""
from __future__ import annotations

from ...gpusim import WorkloadCounters, XEON_6246R, memory_bound_analysis
from ...parallel import cpu_cache_profile
from ..registry import CaseResult, bench_case
from ..tables import format_table

PAPER_MEMORY_BOUND = {"HLA-DRB1": 0.535, "MHC": 0.654, "Chr.1": 0.709}


@bench_case("fig05_bottleneck", source="Fig. 5", suites=("figures",))
def run(ctx) -> CaseResult:
    """Memory-bound top-down category dominates the CPU baseline."""
    params = ctx.bench_params
    profiles = {}
    for name, graph in ctx.representative_graphs.items():
        traffic, n_terms = cpu_cache_profile(graph, params, n_trace_terms=2048)
        profiles[name] = memory_bound_analysis(
            XEON_6246R, traffic, WorkloadCounters(), n_terms=n_terms
        )

    out = CaseResult()
    rows = []
    for name, prof in profiles.items():
        d = prof.as_dict()
        rows.append([
            name,
            f"{d['memory_bound']:.1%}", f"{PAPER_MEMORY_BOUND[name]:.1%}",
            f"{d['core_bound']:.1%}", f"{d['front_end_bound']:.1%}",
            f"{d['bad_speculation']:.1%}",
        ])
        # The workload must be dominated by the memory-bound category.
        assert d["memory_bound"] == max(d.values())
        assert d["memory_bound"] > 0.4
        out.add(f"{name}_memory_bound", d["memory_bound"], unit="frac", direction="info")
    # Larger graphs are more memory-bound (bigger working set, worse locality).
    assert profiles["Chr.1"].memory_bound >= profiles["HLA-DRB1"].memory_bound - 0.05

    out.tables.append(format_table(
        ["Pangenome", "MemBound", "MemBound(paper)", "CoreBound", "FrontEnd", "BadSpec"],
        rows,
        title="Fig. 5: top-down bottleneck categories of the CPU baseline",
    ))
    return out
