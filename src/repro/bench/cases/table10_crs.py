"""Table X — effects of coalesced random states (CRS).

Measures the sectors-per-request of the per-thread XORWOW state accesses and
the modelled cache/DRAM traffic of the GPU kernel with the AoS (cuRAND
default) versus SoA (coalesced) state layout. Paper anchors: 26.8 → 9.9 L1
sectors per request, 1.8x less L1 traffic, 1.3x less DRAM traffic, 1.2x
speedup.
"""
from __future__ import annotations

from ...core import GpuKernelConfig, OptimizedGpuEngine
from ...gpusim import RTX_A6000
from ..registry import CaseResult, bench_case
from ..tables import format_table


@bench_case("table10_crs", source="Table X", suites=("tables",))
def run(ctx) -> CaseResult:
    """Coalescing PRNG state cuts per-warp sectors and modelled run time."""
    graph = ctx.chr1_graph
    params = ctx.bench_params
    seed = ctx.seed_for("table10/profile")

    results = {}
    for label, crs in (("w/o CRS", False), ("w/ CRS", True)):
        cfg = GpuKernelConfig(cache_friendly_layout=False,
                              coalesced_random_states=crs, warp_merging=False)
        results[label] = OptimizedGpuEngine(graph, params, cfg).profile(
            device=RTX_A6000, n_sample_terms=1536, seed=seed)
    without, with_crs = results["w/o CRS"], results["w/ CRS"]

    rows = [
        ["RNG sectors / request", f"{without.rng_sectors_per_request:.1f}",
         f"{with_crs.rng_sectors_per_request:.1f}",
         f"{without.rng_sectors_per_request / with_crs.rng_sectors_per_request:.2f}x", "2.7x"],
        ["L1 traffic (bytes)", f"{without.traffic.l1_bytes:.3g}", f"{with_crs.traffic.l1_bytes:.3g}",
         f"{without.traffic.l1_bytes / with_crs.traffic.l1_bytes:.2f}x", "1.8x"],
        ["L2 traffic (bytes)", f"{without.traffic.l2_bytes:.3g}", f"{with_crs.traffic.l2_bytes:.3g}",
         f"{without.traffic.l2_bytes / max(with_crs.traffic.l2_bytes, 1):.2f}x", "1.7x"],
        ["DRAM traffic (bytes)", f"{without.traffic.dram_bytes:.3g}", f"{with_crs.traffic.dram_bytes:.3g}",
         f"{without.traffic.dram_bytes / max(with_crs.traffic.dram_bytes, 1):.2f}x", "1.3x"],
        ["GPU run time (model, s)", f"{without.runtime_s:.3g}", f"{with_crs.runtime_s:.3g}",
         f"{without.runtime_s / with_crs.runtime_s:.2f}x", "1.2x"],
    ]

    # Paper-shape assertions: the AoS state layout is badly uncoalesced (tens
    # of sectors per warp request); SoA reaches the 4-sector ideal.
    assert without.rng_sectors_per_request > 20.0
    assert with_crs.rng_sectors_per_request < 6.0
    assert with_crs.traffic.l1_bytes < without.traffic.l1_bytes
    assert with_crs.traffic.dram_bytes <= without.traffic.dram_bytes * 1.05
    assert with_crs.runtime_s < without.runtime_s

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("rng_sectors_without_crs", without.rng_sectors_per_request, direction="info")
    out.add("rng_sectors_with_crs", with_crs.rng_sectors_per_request, direction="lower")
    out.add("l1_traffic_improvement",
            without.traffic.l1_bytes / with_crs.traffic.l1_bytes,
            unit="x", direction="higher")
    out.add("crs_speedup", without.runtime_s / with_crs.runtime_s,
            unit="x", direction="higher")
    out.add("gpu_time_with_crs_s", with_crs.runtime_s, unit="s(model)", direction="lower")

    out.tables.append(format_table(
        ["Metric", "w/o CRS", "w/ CRS", "Improvement", "Paper"],
        rows,
        title="Table X: effects of coalesced random states (Chr.1-like)",
    ))
    return out
