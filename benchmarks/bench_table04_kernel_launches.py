"""Table IV — CUDA kernel-launch overhead of the PyTorch-style engine.

Counts the tensor-op kernel launches required per batch size and the modelled
fraction of time spent in launch overhead, reproducing the paper's
observation that small batches spend most of their time in the CUDA API
(76.4% at 100K) while large batches amortise it (2.1% at 10M). The optimized
CUDA kernel launches only iter_max+1 kernels in total.
"""
from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import BatchedLayoutEngine, LayoutParams, OptimizedGpuEngine

BATCH_SIZES = [256, 2048, 16384]


@pytest.mark.paper_table("Table IV")
def test_table04_kernel_launch_overhead(benchmark, mhc_graph, bench_params):
    graph = mhc_graph
    params = bench_params

    def run_sweep():
        out = {}
        for batch_size in BATCH_SIZES:
            engine = BatchedLayoutEngine(graph, params.with_(batch_size=batch_size))
            engine.run()
            out[batch_size] = (
                engine.op_profile.total_launches,
                engine.op_profile.api_overhead_fraction,
            )
        return out

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    gpu_engine = OptimizedGpuEngine(graph, params)
    optimized_launches = gpu_engine.kernel_launches()

    rows = []
    launches_list = []
    overhead_list = []
    for batch_size, (launches, overhead) in results.items():
        launches_list.append(launches)
        overhead_list.append(overhead)
        rows.append([batch_size, launches, f"{overhead:.1%}"])
    rows.append(["optimized CUDA kernel", optimized_launches, "-"])

    # Kernel launches are inversely proportional to batch size.
    assert launches_list[0] > launches_list[1] > launches_list[2]
    assert launches_list[0] > 4 * launches_list[2]
    # API overhead fraction shrinks with the batch size.
    assert overhead_list[0] > overhead_list[-1]
    # The custom kernel launches orders of magnitude fewer kernels (Sec. V-A).
    assert optimized_launches < launches_list[-1] / 10
    assert optimized_launches == params.iter_max + 1

    print()
    print(format_table(
        ["Batch size", "Kernel launches", "CUDA API time share"],
        rows,
        title="Table IV: kernel launching overhead (PyTorch-style engine vs optimized kernel)",
    ))
