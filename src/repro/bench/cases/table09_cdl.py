"""Table IX — effects of the cache-friendly data layout (CDL).

Measures, on the Chr.1-like graph, the LLC loads/misses and run time of the
CPU baseline with and without CDL, and the DRAM traffic and modelled run time
of the GPU kernel with and without CDL. Paper anchors: 3.2x fewer LLC loads,
3.3x fewer LLC misses, 3.1x CPU speedup; 1.3x less GPU DRAM traffic, 1.4x GPU
speedup.
"""
from __future__ import annotations

from ...core import GpuKernelConfig, OptimizedGpuEngine
from ...core.layout import NodeDataLayout
from ...gpusim import RTX_A6000, WorkloadCounters, XEON_6246R, cpu_runtime
from ...parallel import cpu_cache_profile
from ..registry import CaseResult, bench_case
from ..tables import format_table


@bench_case("table09_cdl", source="Table IX", suites=("tables",))
def run(ctx) -> CaseResult:
    """Cache-friendly data layout cuts LLC traffic and run time on CPU and GPU."""
    graph = ctx.chr1_graph
    params = ctx.bench_params
    seed = ctx.seed_for("table09/profile")
    total_terms = float(params.iter_max * params.steps_per_iteration(graph.total_steps))

    results = {}
    for label, layout_kind in (("w/o CDL", NodeDataLayout.SOA), ("w/ CDL", NodeDataLayout.AOS)):
        traffic, traced = cpu_cache_profile(graph, params, n_trace_terms=2048,
                                            seed=seed, data_layout=layout_kind)
        scaled = traffic.scaled(total_terms / traced)
        cpu_time = cpu_runtime(XEON_6246R, total_terms, scaled,
                               WorkloadCounters(), n_threads=32)
        gpu_cfg = GpuKernelConfig(cache_friendly_layout=(layout_kind == NodeDataLayout.AOS),
                                  coalesced_random_states=False, warp_merging=False)
        gpu_prof = OptimizedGpuEngine(graph, params, gpu_cfg).profile(
            device=RTX_A6000, n_sample_terms=1536, seed=seed)
        results[label] = (scaled, cpu_time, gpu_prof)

    without, with_cdl = results["w/o CDL"], results["w/ CDL"]
    rows = [
        ["CPU LLC loads", f"{without[0].llc_loads:.3g}", f"{with_cdl[0].llc_loads:.3g}",
         f"{without[0].llc_loads / with_cdl[0].llc_loads:.2f}x", "3.2x"],
        ["CPU LLC misses", f"{without[0].llc_load_misses:.3g}", f"{with_cdl[0].llc_load_misses:.3g}",
         f"{without[0].llc_load_misses / max(with_cdl[0].llc_load_misses, 1):.2f}x", "3.3x"],
        ["CPU run time (model, s)", f"{without[1].total_s:.3g}", f"{with_cdl[1].total_s:.3g}",
         f"{without[1].total_s / with_cdl[1].total_s:.2f}x", "3.1x"],
        ["GPU DRAM bytes", f"{without[2].traffic.dram_bytes:.3g}", f"{with_cdl[2].traffic.dram_bytes:.3g}",
         f"{without[2].traffic.dram_bytes / with_cdl[2].traffic.dram_bytes:.2f}x", "1.3x"],
        ["GPU run time (model, s)", f"{without[2].runtime_s:.3g}", f"{with_cdl[2].runtime_s:.3g}",
         f"{without[2].runtime_s / with_cdl[2].runtime_s:.2f}x", "1.4x"],
    ]

    # Direction and rough magnitude of every effect.
    assert with_cdl[0].llc_loads < without[0].llc_loads / 1.5
    assert with_cdl[0].llc_load_misses < without[0].llc_load_misses
    assert with_cdl[1].total_s < without[1].total_s
    assert with_cdl[2].traffic.dram_bytes < without[2].traffic.dram_bytes
    assert with_cdl[2].runtime_s < without[2].runtime_s

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("cpu_llc_load_improvement", without[0].llc_loads / with_cdl[0].llc_loads,
            unit="x", direction="higher")
    out.add("cpu_speedup", without[1].total_s / with_cdl[1].total_s,
            unit="x", direction="higher")
    out.add("gpu_dram_improvement",
            without[2].traffic.dram_bytes / with_cdl[2].traffic.dram_bytes,
            unit="x", direction="higher")
    out.add("gpu_speedup", without[2].runtime_s / with_cdl[2].runtime_s,
            unit="x", direction="higher")
    out.add("cpu_time_with_cdl_s", with_cdl[1].total_s, unit="s(model)", direction="lower")
    out.add("gpu_time_with_cdl_s", with_cdl[2].runtime_s, unit="s(model)", direction="lower")

    out.tables.append(format_table(
        ["Metric", "w/o CDL", "w/ CDL", "Improvement", "Paper"],
        rows,
        title="Table IX: effects of the cache-friendly data layout (Chr.1-like)",
    ))
    return out
