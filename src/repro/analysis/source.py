"""Analysed-file model: one parse per file, shared by every checker.

A :class:`SourceFile` bundles everything a checker reads — the parsed AST,
the raw lines (for snippets and pragma scanning) and the resolved import
aliases — so the engine parses each file exactly once regardless of how
many checkers run over it.
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .astutil import import_aliases
from .registry import AnalysisError

__all__ = ["SourceFile", "collect_python_files", "load_source_file"]

#: Directory names whose contents are never analysed.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}

#: Package sub-directories holding determinism-critical hot-path code.
#: DET001's wall-clock rule and ALLOC001's run-path rule scope to these.
HOT_PATH_DIRS = ("core", "backend", "multilevel", "parallel", "prng")


@dataclass
class SourceFile:
    """One parsed Python source file under analysis."""

    path: Path                     # as given / resolved on disk
    rel: str                       # display path (posix, relative to CWD)
    source: str
    lines: List[str]
    tree: Optional[ast.Module]
    parse_error: Optional[str] = None
    aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def parts(self) -> tuple:
        return tuple(Path(self.rel).parts)

    def in_hot_path_dir(self) -> bool:
        """Whether the file lives under a determinism-critical directory."""
        return any(part in HOT_PATH_DIRS for part in self.parts[:-1])

    def snippet(self, line: int) -> str:
        """The stripped source line (baseline key; '' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def collect_python_files(paths: List[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    out: List[Path] = []
    seen = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            candidates = [p]
        elif p.is_dir():
            candidates = sorted(
                f for f in p.rglob("*.py")
                if not any(part in SKIP_DIRS for part in f.parts)
            )
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
        for f in candidates:
            key = f.resolve()
            if key not in seen:
                seen.add(key)
                out.append(f)
    return out


def load_source_file(path: Path) -> SourceFile:
    """Read and parse one file; parse failures are recorded, not raised."""
    rel = path.as_posix()
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return SourceFile(path=path, rel=rel, source=source, lines=lines,
                          tree=None, parse_error=f"{exc.msg} (line {exc.lineno})")
    return SourceFile(path=path, rel=rel, source=source, lines=lines,
                      tree=tree, aliases=import_aliases(tree))
