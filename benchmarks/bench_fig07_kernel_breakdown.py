"""Pytest shim for the fig07_kernel_breakdown benchmark case.

The case body lives in :mod:`repro.bench.cases.fig07_kernel_breakdown`. Run it directly
with ``python benchmarks/bench_fig07_kernel_breakdown.py``, through ``pytest
benchmarks/bench_fig07_kernel_breakdown.py``, or as part of ``repro bench run``.
"""
from __future__ import annotations

import pytest

from repro.bench.cases.fig07_kernel_breakdown import run as case_run

_CASE = case_run.case


@pytest.mark.paper_table(_CASE.source)
def test_fig07_kernel_breakdown(bench_ctx):
    result = _CASE.run(bench_ctx)
    for table in result.tables:
        print()
        print(table)


if __name__ == "__main__":
    from repro.bench.runner import run_case

    run_case(_CASE.name)
