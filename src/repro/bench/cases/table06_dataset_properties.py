"""Table VI — properties of the 24-chromosome human pangenome suite.

Computes the min / max / mean statistics of the synthetic chromosome suite
and compares the intensive properties (average degree, sparsity) against the
paper's full-scale values; extensive properties (node counts etc.) differ by
the documented scale factor.
"""
from __future__ import annotations

from ...graph import aggregate_stats, compute_stats
from ..registry import CaseResult, bench_case
from ..tables import format_sci, format_table

PAPER = {
    "min": {"n_nucleotides": 8.8e7, "n_nodes": 3.2e5, "n_paths": 4.4e4 / 1e3, "avg_degree": 1.4,
            "density": 1.3e-7},
    "max": {"n_nucleotides": 1.1e9, "n_nodes": 1.1e7, "n_paths": 5.0e5 / 1e3, "avg_degree": 1.4,
            "density": 4.4e-6},
    "mean": {"n_nucleotides": 3.0e8, "n_nodes": 4.0e6, "n_paths": 2.3e5 / 1e3, "avg_degree": 1.4,
             "density": 3.5e-7},
}


@bench_case("table06_dataset_properties", source="Table VI", suites=("tables",))
def run(ctx) -> CaseResult:
    """Chromosome suite matches the paper's intensive properties at scale."""
    stats = [compute_stats(g, name) for name, g in ctx.chromosome_graphs.items()]
    agg = aggregate_stats(stats)

    rows = []
    for label in ("min", "max", "mean"):
        row = agg[label]
        rows.append([
            label,
            format_sci(row["n_nucleotides"]), format_sci(PAPER[label]["n_nucleotides"]),
            format_sci(row["n_nodes"]), format_sci(PAPER[label]["n_nodes"]),
            int(row["n_paths"]),
            f"{row['avg_degree']:.2f}", f"{PAPER[label]['avg_degree']:.1f}",
            format_sci(row["density"]), format_sci(PAPER[label]["density"]),
        ])

    assert len(stats) == 24
    # Intensive properties must match the paper's regime: node degree around
    # 1.4-2 and extreme sparsity, on every chromosome.
    for st in stats:
        assert 1.0 < st.avg_degree < 3.0
        assert st.density < 1e-1
    # The suite spans a wide size range with Chr.1-like the largest.
    assert agg["max"]["n_nodes"] > 3 * agg["min"]["n_nodes"]

    out = CaseResult()
    out.add("n_chromosomes", len(stats), direction="info")
    out.add("mean_avg_degree", agg["mean"]["avg_degree"], direction="info")
    out.add("max_n_nodes", agg["max"]["n_nodes"], direction="info")
    out.add("min_n_nodes", agg["min"]["n_nodes"], direction="info")

    out.tables.append(format_table(
        ["", "#Nuc", "#Nuc(paper)", "#Nodes", "#Nodes(paper)", "#Paths",
         "deg", "deg(paper)", "density", "density(paper)"],
        rows,
        title="Table VI: 24-chromosome suite properties (scaled reproduction vs paper)",
    ))
    return out
