"""Versioned on-disk schema for benchmark results (``BENCH_<suite>.json``).

Schema version 1 layout::

    {
      "schema_version": 1,
      "suite": "smoke",
      "master_seed": 9399,
      "environment": {"python": ..., "numpy": ..., "git": ...},
      "runner": {"warmup": 0, "repeats": 1},
      "cases": [
        {
          "name": "smoke_layout_cpu",
          "source": "Alg. 1",
          "suites": ["smoke"],
          "wall_time": {"repeats": 1, "min_s": 0.12, "mean_s": 0.12,
                        "times_s": [0.12]},
          "metrics": {"sampled_stress": {"value": 1.3, "unit": "",
                                         "direction": "lower"}},
          "graph_properties": {"n_nodes": 800.0, ...}
        }, ...
      ]
    }

Per-case ``wall_time`` blocks describe the machine the file was produced on
and are **not** compared by the regression gate. ``metrics`` are byte-identical
across runs of the same commit and seed, with one exception: a metric carrying
``"deterministic": false`` (the hot-path perf cases' measured wall times) is
exempt from the byte-identity contract while still being gated directionally
by ``repro bench compare``. The key is omitted when true, so documents
produced before the flag existed validate and diff unchanged.
"""
from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping

from .registry import DIRECTIONS

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "default_output_path",
    "validate_results",
    "write_results",
    "load_results",
    "case_index",
    "metric_values",
    "list_tracked_metrics",
]

SCHEMA_VERSION = 1


class SchemaError(Exception):
    """A result document does not conform to the published schema."""


def default_output_path(suite: str, directory: str = ".") -> str:
    """Canonical result filename for a suite: ``BENCH_<suite>.json``."""
    return os.path.join(directory, f"BENCH_{suite}.json")


def _require(doc: Mapping, key: str, kind, where: str):
    if key not in doc:
        raise SchemaError(f"{where}: missing required key {key!r}")
    value = doc[key]
    kinds = kind if isinstance(kind, tuple) else (kind,)
    # bool subclasses int in Python; JSON true/false are never valid numbers
    # or counts anywhere in this schema.
    if not isinstance(value, kind) or (isinstance(value, bool) and bool not in kinds):
        raise SchemaError(
            f"{where}.{key}: expected {'/'.join(k.__name__ for k in kinds)}, "
            f"got {type(value).__name__}"
        )
    return value


def _validate_metric(name: str, metric: Mapping, where: str) -> None:
    value = _require(metric, "value", (int, float), f"{where}.metrics[{name!r}]")
    if isinstance(value, bool):
        raise SchemaError(f"{where}.metrics[{name!r}].value: booleans are not metrics")
    _require(metric, "unit", str, f"{where}.metrics[{name!r}]")
    direction = _require(metric, "direction", str, f"{where}.metrics[{name!r}]")
    if direction not in DIRECTIONS:
        raise SchemaError(
            f"{where}.metrics[{name!r}].direction: {direction!r} not in {DIRECTIONS}"
        )
    if "deterministic" in metric and not isinstance(metric["deterministic"], bool):
        raise SchemaError(
            f"{where}.metrics[{name!r}].deterministic: expected bool, "
            f"got {type(metric['deterministic']).__name__}"
        )


def _validate_case(case: Mapping, index: int) -> None:
    where = f"cases[{index}]"
    name = _require(case, "name", str, where)
    if not name:
        raise SchemaError(f"{where}.name: must be non-empty")
    _require(case, "source", str, where)
    suites = _require(case, "suites", list, where)
    if not all(isinstance(s, str) for s in suites):
        raise SchemaError(f"{where}.suites: entries must be strings")
    wall = _require(case, "wall_time", dict, where)
    repeats = _require(wall, "repeats", int, f"{where}.wall_time")
    times = _require(wall, "times_s", list, f"{where}.wall_time")
    if repeats != len(times):
        raise SchemaError(f"{where}.wall_time: repeats={repeats} but "
                          f"{len(times)} times recorded")
    for key in ("min_s", "mean_s"):
        _require(wall, key, (int, float), f"{where}.wall_time")
    metrics = _require(case, "metrics", dict, where)
    for metric_name, metric in metrics.items():
        if not isinstance(metric, Mapping):
            raise SchemaError(f"{where}.metrics[{metric_name!r}]: expected object")
        _validate_metric(metric_name, metric, where)
    props = _require(case, "graph_properties", dict, where)
    for key, value in props.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"{where}.graph_properties[{key!r}]: expected number")


def validate_results(doc: Mapping) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid result document."""
    if not isinstance(doc, Mapping):
        raise SchemaError(f"document: expected object, got {type(doc).__name__}")
    version = _require(doc, "schema_version", int, "document")
    if version != SCHEMA_VERSION:
        raise SchemaError(f"document.schema_version: {version} unsupported "
                          f"(this build reads version {SCHEMA_VERSION})")
    suite = _require(doc, "suite", str, "document")
    if not suite:
        raise SchemaError("document.suite: must be non-empty")
    _require(doc, "master_seed", int, "document")
    _require(doc, "environment", dict, "document")
    runner = _require(doc, "runner", dict, "document")
    _require(runner, "warmup", int, "document.runner")
    _require(runner, "repeats", int, "document.runner")
    cases = _require(doc, "cases", list, "document")
    seen: Dict[str, int] = {}
    for i, case in enumerate(cases):
        if not isinstance(case, Mapping):
            raise SchemaError(f"cases[{i}]: expected object")
        _validate_case(case, i)
        name = case["name"]
        if name in seen:
            raise SchemaError(f"cases[{i}]: duplicate case name {name!r} "
                              f"(first at cases[{seen[name]}])")
        seen[name] = i


def write_results(doc: Mapping, path: str) -> None:
    """Validate and atomically write a result document."""
    validate_results(doc)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def load_results(path: str) -> Dict:
    """Read and validate a result document."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    validate_results(doc)
    return doc


def case_index(doc: Mapping) -> Dict[str, Mapping]:
    """Map case name -> case record for one validated document."""
    return {case["name"]: case for case in doc["cases"]}


def metric_values(doc: Mapping) -> Dict[str, Dict[str, float]]:
    """Flatten ``{case: {metric: value}}`` — the determinism-relevant payload.

    Metrics flagged ``"deterministic": false`` (measured wall times) are
    excluded: they are gate-relevant but not part of the byte-identity
    contract.
    """
    out: Dict[str, Dict[str, float]] = {}
    for case in doc["cases"]:
        out[case["name"]] = {
            name: m["value"] for name, m in case["metrics"].items()
            if m.get("deterministic", True)
        }
    return out


def list_tracked_metrics(doc: Mapping) -> List[str]:
    """``case/metric`` identifiers of gate-relevant (non-info) metrics."""
    tracked = []
    for case in doc["cases"]:
        for name, metric in sorted(case["metrics"].items()):
            if metric["direction"] != "info":
                tracked.append(f"{case['name']}/{name}")
    return tracked
