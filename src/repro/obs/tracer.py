"""Structured run tracing: phase-attributed spans with a near-zero off path.

The paper's analysis (Sec. V, Tables II/IV/VII) attributes runtime to
phases — selection, displacement/merge, transfer — and this module is the
interpreter-side analogue: engines emit one :class:`TraceEvent` per phase
per iteration (aggregated over batches/chunks, so event volume is
O(iterations), never O(terms)), and ``repro trace summarize`` renders the
phase breakdown from the recorded events.

Span taxonomy (the ``name`` field; see also :data:`PHASE_NAMES` in
:mod:`repro.obs.ring`):

``schedule``
    Per-run setup: plan/workspace/fused-plan construction, worker spawn.
``transfer``
    Host/device coordinate movement (one event per direction per run).
``draw``
    Per-iteration PRNG megablock draws (fused path), aggregated over chunks.
``dispatch``
    Per-iteration ``backend.run_iteration`` calls, aggregated over chunks.
``selection`` / ``merge``
    The two halves of the update work: term selection and the sequential
    per-segment write merge. Emitted by :func:`repro.core.fused
    .run_iteration_host` per chunk (fused) or aggregated per iteration by
    the engine loop (unfused).
``iteration``
    The whole-iteration span enclosing the above.
``level`` / ``prolong``
    Multilevel V-cycle: one span per hierarchy level, one per prolongation.

Cost discipline: engines read ``tracer.enabled`` once into a local and
guard every clock read with it, so the disabled path costs one branch per
guarded site — the ``perf_trace_overhead`` smoke gate holds the enabled
path's overhead too. Tracing only ever *reads* the clock and appends
events; it never touches coordinates or PRNG draw order, so traced and
untraced layouts are byte-identical (asserted by the same gate).
"""
from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from . import clock

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER", "event_structure"]


@dataclass
class TraceEvent:
    """One recorded span: a named phase with a start time and a duration.

    ``iteration`` is ``-1`` for per-run events (setup, transfers);
    ``count`` carries the phase's work-unit count (chunks dispatched, terms
    selected, segments merged — see the taxonomy above). ``labels`` is the
    emitting tracer's label set (engine/backend/level/worker) and is shared,
    not copied, per event; label dicts are never mutated after binding.
    """

    name: str
    t0: float
    dur: float
    iteration: int = -1
    count: int = 1
    labels: Mapping[str, str] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """JSONL-ready record (see :mod:`repro.obs.trace_file`)."""
        record: Dict[str, Any] = {
            "record": "event",
            "name": self.name,
            "t0": float(self.t0),
            "dur": float(self.dur),
            "iteration": int(self.iteration),
            "count": int(self.count),
        }
        if self.labels:
            record["labels"] = dict(self.labels)
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            name=str(record["name"]),
            t0=float(record["t0"]),
            dur=float(record["dur"]),
            iteration=int(record.get("iteration", -1)),
            count=int(record.get("count", 1)),
            labels=dict(record.get("labels", {})),
        )


def event_structure(events) -> List[Tuple]:
    """Timestamp-free view of a trace: ``(name, iteration, count, labels)``.

    This is the byte-stable part of a trace — two runs of the same commit
    and seed produce identical structures even though every timestamp
    differs. Tests and the ``perf_trace_overhead`` gate compare this.
    """
    return [
        (e.name, int(e.iteration), int(e.count), tuple(sorted(e.labels.items())))
        for e in events
    ]


class Tracer:
    """Collects :class:`TraceEvent` spans into a shared in-memory list.

    A tracer is a *view* onto one event list plus a label set:
    :meth:`bind` returns a new view sharing the same list with labels
    merged in, which is how the multilevel driver hands each level engine a
    ``level=k``-labelled tracer and the inline shm path labels per-worker
    events — everything still lands in one ordered stream.

    Engines hold :data:`NULL_TRACER` (``enabled = False``) unless tracing
    was requested; hot loops read ``enabled`` once and skip every clock
    read when it is false.
    """

    enabled = True

    def __init__(self, labels: Optional[Mapping[str, str]] = None,
                 events: Optional[List[TraceEvent]] = None):
        self.labels: Dict[str, str] = {k: str(v)
                                       for k, v in (labels or {}).items()}
        self.events: List[TraceEvent] = [] if events is None else events

    def now(self) -> float:
        """Clock read for span endpoints (routes through ``obs.clock``)."""
        return clock.perf_counter()

    def emit(self, name: str, t0: float, dur: float, iteration: int = -1,
             count: int = 1) -> None:
        """Record one pre-measured span."""
        self.events.append(
            TraceEvent(name, t0, dur, iteration, count, self.labels))

    @contextmanager
    def span(self, name: str, iteration: int = -1,
             count: int = 1) -> Iterator[None]:
        """Record the enclosed region as one span (coarse phases only —
        per-chunk sites use explicit ``now()``/``emit()`` to keep guarded
        reads out of the disabled path)."""
        t0 = self.now()
        try:
            yield
        finally:
            self.emit(name, t0, self.now() - t0, iteration, count)

    def bind(self, **labels) -> "Tracer":
        """Label-augmented view sharing this tracer's event list."""
        merged = dict(self.labels)
        merged.update({k: str(v) for k, v in labels.items()})
        return Tracer(labels=merged, events=self.events)


class _NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op, ``bind`` included."""

    enabled = False

    def emit(self, name, t0, dur, iteration=-1, count=1):  # pragma: no cover
        # Unreachable through correctly guarded call sites; kept total so a
        # stray unguarded emit is silent rather than a crash.
        return None

    @contextmanager
    def span(self, name, iteration=-1, count=1):
        yield

    def bind(self, **labels) -> "Tracer":
        return self


#: Shared disabled tracer; engines default to this so the hot path's only
#: tracing cost is the ``enabled`` branch.
NULL_TRACER: Tracer = _NullTracer()
