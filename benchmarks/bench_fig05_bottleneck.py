"""Fig. 5 — microarchitecture bottleneck analysis (top-down categories).

The paper's VTune analysis shows the CPU baseline is memory-bound on all
three representative graphs (53.5% → 65.4% → 70.9% of pipeline slots from
HLA-DRB1 to Chr.1). Here the same categories are derived from the cache
profile of the real access trace, and the benchmark times that analysis.
"""
from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.gpusim import WorkloadCounters, XEON_6246R, memory_bound_analysis
from repro.parallel import cpu_cache_profile

PAPER_MEMORY_BOUND = {"HLA-DRB1": 0.535, "MHC": 0.654, "Chr.1": 0.709}


@pytest.mark.paper_table("Fig. 5")
def test_fig05_memory_bound_analysis(benchmark, representative_graphs, bench_params):
    def analyze():
        out = {}
        for name, graph in representative_graphs.items():
            traffic, n_terms = cpu_cache_profile(graph, bench_params, n_trace_terms=2048)
            out[name] = memory_bound_analysis(
                XEON_6246R, traffic, WorkloadCounters(), n_terms=n_terms
            )
        return out

    profiles = benchmark.pedantic(analyze, rounds=3, iterations=1)

    rows = []
    for name, prof in profiles.items():
        d = prof.as_dict()
        rows.append([
            name,
            f"{d['memory_bound']:.1%}", f"{PAPER_MEMORY_BOUND[name]:.1%}",
            f"{d['core_bound']:.1%}", f"{d['front_end_bound']:.1%}",
            f"{d['bad_speculation']:.1%}",
        ])
        # The workload must be dominated by the memory-bound category.
        assert d["memory_bound"] == max(d.values())
        assert d["memory_bound"] > 0.4
    # Larger graphs are more memory-bound (bigger working set, worse locality).
    assert profiles["Chr.1"].memory_bound >= profiles["HLA-DRB1"].memory_bound - 0.05

    print()
    print(format_table(
        ["Pangenome", "MemBound", "MemBound(paper)", "CoreBound", "FrontEnd", "BadSpec"],
        rows,
        title="Fig. 5: top-down bottleneck categories of the CPU baseline",
    ))
