"""Regression gate: diff two benchmark result files and classify every metric.

``repro bench compare OLD NEW --max-regress 10%`` loads two schema-valid
documents, matches their cases by name, and classifies each *tracked* metric
(direction ``lower`` or ``higher``; ``info`` metrics are recorded but never
gated):

* ``ok``      — no change, or the change goes in the good direction
* ``improved``— the change beats the old value by more than the warn band
* ``warn``    — regressed, but within the allowed threshold
* ``fail``    — regressed beyond ``--max-regress``
* ``missing`` — the case or metric disappeared from the new file (a silent
  coverage loss counts as a failure unless explicitly allowed)
* ``new``     — tracked metric only present in the new file (never fails)

Measured wall-clock metrics (``"deterministic": false`` with a time unit,
see :data:`WALL_TIME_UNITS`) are gated like any other tracked metric **when
the two documents come from the same timing environment** (same
platform/machine/interpreter). When the environments differ — e.g. a
baseline produced on a developer machine compared on a CI runner — a raw
wall-time regression beyond threshold is downgraded to ``warn`` with a
note, because absolute wall times are not comparable across machines;
regenerate the baseline on the comparing machine to re-arm that gate.
Dimensionless measured metrics (e.g. the hogwild/accumulate cost *ratio*,
unit ``x``) are machine-independent and therefore hard-gate everywhere —
they are the cross-machine guard against hot-path scaling regressions.

The exit code contract the CI gate relies on: 0 when nothing failed,
1 when any metric regressed beyond threshold or coverage was lost.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from .schema import case_index, load_results
from .tables import format_table

__all__ = [
    "MetricDelta",
    "ComparisonReport",
    "parse_threshold",
    "compare_documents",
    "compare_files",
]

#: Relative change below which a difference is reported as plain ``ok``.
NOISE_BAND = 1e-12

#: Units marking a metric as an *absolute* wall-clock duration. Only these
#: are eligible for the cross-environment fail→warn downgrade; measured but
#: dimensionless metrics (ratios) stay hard-gated on every machine.
WALL_TIME_UNITS = ("s", "ms", "us")


@dataclass(frozen=True)
class MetricDelta:
    """Outcome for one ``case/metric`` pair."""

    case: str
    metric: str
    direction: str
    old: Optional[float]
    new: Optional[float]
    rel_change: Optional[float]
    status: str

    @property
    def label(self) -> str:
        return f"{self.case}/{self.metric}"


@dataclass
class ComparisonReport:
    """All metric deltas plus the headline verdict."""

    max_regress: float
    deltas: List[MetricDelta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return any(d.status in ("fail", "missing") for d in self.deltas)

    @property
    def exit_code(self) -> int:
        return 1 if self.failed else 0

    def by_status(self, status: str) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == status]

    def summary_line(self) -> str:
        counts: Dict[str, int] = {}
        for delta in self.deltas:
            counts[delta.status] = counts.get(delta.status, 0) + 1
        parts = [f"{counts[s]} {s}" for s in
                 ("fail", "missing", "warn", "improved", "ok", "new") if s in counts]
        verdict = "FAIL" if self.failed else "PASS"
        return (f"bench compare: {verdict} "
                f"({', '.join(parts) if parts else 'no tracked metrics'}; "
                f"threshold {self.max_regress:.1%})")

    def format(self, include_ok: bool = True) -> str:
        rows = []
        order = {"fail": 0, "missing": 1, "warn": 2, "improved": 3, "ok": 4, "new": 5}
        for delta in sorted(self.deltas, key=lambda d: (order[d.status], d.label)):
            if not include_ok and delta.status in ("ok", "new"):
                continue
            rows.append([
                delta.label,
                delta.direction,
                "-" if delta.old is None else f"{delta.old:.6g}",
                "-" if delta.new is None else f"{delta.new:.6g}",
                "-" if delta.rel_change is None else f"{delta.rel_change:+.2%}",
                delta.status.upper(),
            ])
        table = format_table(
            ["case/metric", "dir", "old", "new", "change", "status"],
            rows or [["(no tracked metrics)", "-", "-", "-", "-", "-"]],
            title="Benchmark regression gate",
        )
        lines = [table]
        lines.extend(f"[note] {note}" for note in self.notes)
        lines.append(self.summary_line())
        return "\n".join(lines)


def parse_threshold(text: str) -> float:
    """Parse ``"10%"`` or ``"0.1"`` into a fraction; reject nonsense."""
    raw = text.strip()
    try:
        value = float(raw[:-1]) / 100.0 if raw.endswith("%") else float(raw)
    except ValueError:
        raise ValueError(f"cannot parse regression threshold {text!r}") from None
    if not 0.0 <= value < 10.0:
        raise ValueError(f"regression threshold {text!r} out of range [0, 1000%)")
    return value


def _relative_change(old: float, new: float) -> float:
    """Relative change of ``new`` vs ``old``; sign follows raw value movement."""
    if old == 0.0:
        return 0.0 if new == 0.0 else float("inf") if new > 0 else float("-inf")
    return (new - old) / abs(old)


def _classify(direction: str, old: float, new: float, max_regress: float) -> str:
    rel = _relative_change(old, new)
    # A "worsening" is movement against the metric's good direction.
    worsening = rel if direction == "lower" else -rel
    if abs(rel) <= NOISE_BAND:
        return "ok"
    if worsening <= 0:
        return "improved" if -worsening > max_regress else "ok"
    return "fail" if worsening > max_regress else "warn"


def compare_documents(
    old_doc: Mapping,
    new_doc: Mapping,
    max_regress: float = 0.10,
    allow_missing: bool = False,
) -> ComparisonReport:
    """Diff two validated result documents."""
    report = ComparisonReport(max_regress=max_regress)
    old_cases = case_index(old_doc)
    new_cases = case_index(new_doc)

    # Wall-clock metrics are only hard-gated between runs of the same timing
    # environment; across machines the threshold degrades to a warning.
    timing_keys = ("platform", "machine", "executable", "python")
    same_timing_env = all(
        old_doc["environment"].get(key) == new_doc["environment"].get(key)
        for key in timing_keys
    )
    timing_downgrades = 0

    for env_key in ("python", "numpy"):
        old_env = old_doc["environment"].get(env_key)
        new_env = new_doc["environment"].get(env_key)
        if old_env != new_env:
            report.notes.append(
                f"environment mismatch: {env_key} {old_env} -> {new_env} "
                "(metric values are only bit-reproducible under identical numerics)"
            )
    if old_doc.get("master_seed") != new_doc.get("master_seed"):
        report.notes.append(
            f"master seed differs: {old_doc.get('master_seed')} -> "
            f"{new_doc.get('master_seed')}; values are not directly comparable"
        )

    for case_name, old_case in sorted(old_cases.items()):
        new_case = new_cases.get(case_name)
        for metric_name, old_metric in sorted(old_case["metrics"].items()):
            direction = old_metric["direction"]
            if direction == "info":
                continue
            old_value = float(old_metric["value"])
            new_metric = None if new_case is None else new_case["metrics"].get(metric_name)
            if new_metric is None:
                report.deltas.append(MetricDelta(
                    case=case_name, metric=metric_name, direction=direction,
                    old=old_value, new=None, rel_change=None,
                    status="ok" if allow_missing else "missing",
                ))
                continue
            new_value = float(new_metric["value"])
            status = _classify(direction, old_value, new_value, max_regress)
            wall_clock = (
                not (old_metric.get("deterministic", True)
                     and new_metric.get("deterministic", True))
                and old_metric.get("unit") in WALL_TIME_UNITS
            )
            if status == "fail" and wall_clock and not same_timing_env:
                status = "warn"
                timing_downgrades += 1
            report.deltas.append(MetricDelta(
                case=case_name, metric=metric_name, direction=direction,
                old=old_value, new=new_value,
                rel_change=_relative_change(old_value, new_value),
                status=status,
            ))

    for case_name, new_case in sorted(new_cases.items()):
        old_case = old_cases.get(case_name, {"metrics": {}})
        for metric_name, new_metric in sorted(new_case["metrics"].items()):
            if new_metric["direction"] == "info":
                continue
            # A metric whose old record was untracked ("info") only became
            # gateable now — surface it as "new" rather than dropping it.
            old_metric = old_case["metrics"].get(metric_name)
            if old_metric is None or old_metric["direction"] == "info":
                report.deltas.append(MetricDelta(
                    case=case_name, metric=metric_name,
                    direction=new_metric["direction"],
                    old=None, new=float(new_metric["value"]),
                    rel_change=None, status="new",
                ))
    if timing_downgrades:
        report.notes.append(
            f"{timing_downgrades} wall-clock metric(s) regressed beyond threshold "
            "but the documents come from different timing environments "
            f"(differing {', '.join(k for k in timing_keys if old_doc['environment'].get(k) != new_doc['environment'].get(k))}); "
            "downgraded to warn — regenerate the baseline on this machine to re-arm the gate"
        )
    return report


def compare_files(
    old_path: str,
    new_path: str,
    max_regress: float = 0.10,
    allow_missing: bool = False,
) -> ComparisonReport:
    """Load, validate and diff two ``BENCH_*.json`` files."""
    return compare_documents(
        load_results(old_path), load_results(new_path),
        max_regress=max_regress, allow_missing=allow_missing,
    )
