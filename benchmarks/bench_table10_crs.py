"""Pytest shim for the table10_crs benchmark case.

The case body lives in :mod:`repro.bench.cases.table10_crs`. Run it directly
with ``python benchmarks/bench_table10_crs.py``, through ``pytest
benchmarks/bench_table10_crs.py``, or as part of ``repro bench run``.
"""
from __future__ import annotations

import pytest

from repro.bench.cases.table10_crs import run as case_run

_CASE = case_run.case


@pytest.mark.paper_table(_CASE.source)
def test_table10_crs(bench_ctx):
    result = _CASE.run(bench_ctx)
    for table in result.tables:
        print()
        print(table)


if __name__ == "__main__":
    from repro.bench.runner import run_case

    run_case(_CASE.name)
