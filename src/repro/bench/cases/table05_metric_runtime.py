"""Table V — run time of the quality metrics (full vs sampled path stress).

Measures the actual wall-clock cost of exact path stress and sampled path
stress on the representative graphs. The paper's point: the exact metric's
quadratic cost is intractable at chromosome scale (estimated 194 GPU-hours
for Chr.1), while the sampled metric stays linear; at our reduced scales the
same super-linear vs linear gap must appear.

Wall-clock timings go into the human-readable table only; the persisted
metrics are the deterministic quantities (pair counts and stress values).
"""
from __future__ import annotations

import time

from ...core import initialize_layout
from ...metrics import count_path_pairs, path_stress, sampled_path_stress
from ..registry import CaseResult, bench_case
from ..tables import format_table


@bench_case("table05_metric_runtime", source="Table V", suites=("tables",))
def run(ctx) -> CaseResult:
    """Sampled path stress is far cheaper than the exact quadratic metric."""
    graphs = ctx.representative_graphs
    init_seed = ctx.seed_for("table05/init")
    sps_seed = ctx.seed_for("table05/sps")
    layouts = {name: initialize_layout(g, seed=init_seed) for name, g in graphs.items()}

    results = {}
    for name, graph in graphs.items():
        layout = layouts[name]
        t0 = time.perf_counter()
        # Exact metric only where it is tractable (as in the paper, where
        # the Chr.1 value is an estimate); cap at ~2e6 pairs here.
        pairs = count_path_pairs(graph)
        if pairs <= 2_000_000:
            exact_value = path_stress(layout, graph)
            exact_time = time.perf_counter() - t0
        else:
            exact_value, exact_time = None, None
        t1 = time.perf_counter()
        sampled = sampled_path_stress(layout, graph, samples_per_step=50, seed=sps_seed)
        sampled_time = time.perf_counter() - t1
        results[name] = (pairs, exact_value, exact_time, sampled.value, sampled_time)

    rows = []
    for name, (pairs, exact_value, exact_time, sampled_value, sampled_time) in results.items():
        rows.append([
            name,
            graphs[name].n_nodes,
            pairs,
            f"{exact_time:.3g}s" if exact_time is not None else "(est. intractable)",
            f"{sampled_time:.3g}s",
            f"{exact_value:.3g}" if exact_value is not None else "-",
            f"{sampled_value:.3g}",
        ])

    # The sampled metric must be far cheaper than the exact metric wherever
    # both run, and must remain cheap on the largest graph.
    hla = results["HLA-DRB1"]
    assert hla[2] is not None
    assert hla[4] < hla[2]
    chr1 = results["Chr.1"]
    assert chr1[4] < 30.0
    # Sampled tracks exact to within the expected band where both exist. (The
    # two estimators weight paths differently — per-pair vs per-sample — so
    # only order-of-magnitude agreement is expected here; the linear
    # correlation across layouts is checked by the Fig. 13 benchmark.)
    if hla[1] is not None and hla[1] > 0:
        assert 0.2 < hla[3] / hla[1] < 5.0

    out = CaseResult()
    for name, (pairs, exact_value, _, sampled_value, _) in results.items():
        out.add(f"{name}_path_pairs", pairs, direction="info")
        out.add(f"{name}_sampled_stress", sampled_value, direction="info")
        if exact_value is not None:
            out.add(f"{name}_exact_stress", exact_value, direction="info")

    out.tables.append(format_table(
        ["Pangenome", "#Nodes", "#Pairs", "Path stress RT", "Sampled RT",
         "Path stress", "Sampled"],
        rows,
        title="Table V: run time of metric computation (exact vs sampled)",
    ))
    return out
