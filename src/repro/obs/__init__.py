"""``repro.obs`` — run telemetry: tracing, metrics, progress (PR 9).

The observability layer shared by every engine and worker:

* :mod:`repro.obs.clock` — the one sanctioned monotonic-clock seam
  (enforced by the OBS001 contract checker);
* :mod:`repro.obs.tracer` — phase-attributed span tracing with a
  near-zero-cost disabled path;
* :mod:`repro.obs.metrics` — typed counters/gauges/timers behind
  ``LayoutResult.summary()``;
* :mod:`repro.obs.trace_file` — the versioned JSONL trace sink
  (``LayoutParams(trace=...)`` / ``repro layout --trace``);
* :mod:`repro.obs.ring` — per-worker shared-memory ring buffers the shm
  parent merges into one ordered trace;
* :mod:`repro.obs.summarize` — ``repro trace summarize/compare`` rendering.

Deliberately a leaf package: it imports nothing from ``repro.core`` (or
above), so every layer — core, parallel, multilevel, bench, cli — can
depend on it without cycles.
"""
from . import clock
from .metrics import MetricsRegistry, MetricsSnapshot
from .trace_file import (TRACE_SCHEMA_VERSION, TraceDoc, TraceSchemaError,
                         merge_events, read_trace, write_trace)
from .tracer import NULL_TRACER, TraceEvent, Tracer, event_structure

__all__ = [
    "clock",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TRACE_SCHEMA_VERSION",
    "TraceDoc",
    "TraceSchemaError",
    "merge_events",
    "read_trace",
    "write_trace",
    "NULL_TRACER",
    "TraceEvent",
    "Tracer",
    "event_structure",
]
