"""Named synthetic datasets mirroring the paper's evaluation inputs.

Three representative pangenomes (Table I) and the 24-chromosome HPRC suite
(Table VI) are reproduced as *scaled* synthetic graphs. The scale factor
keeps the experiments tractable on one CPU core while preserving the
properties that drive algorithmic behaviour (path-length skew, node degree,
density, nucleotides-per-node). Paper-reported full-scale statistics are
attached to every dataset so benchmark tables can print "paper vs. measured"
columns side by side.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..graph.lean import LeanGraph
from .simulator import PangenomeConfig, simulate_pangenome

__all__ = [
    "DatasetSpec",
    "PaperStats",
    "REPRESENTATIVE_SPECS",
    "CHROMOSOME_PAPER_RUNTIMES",
    "hla_drb1_like",
    "mhc_like",
    "chr1_like",
    "load_dataset",
    "chromosome_suite",
    "small_graph_collection",
]


@dataclass(frozen=True)
class PaperStats:
    """Full-scale statistics reported by the paper for a dataset."""

    n_nucleotides: float
    n_nodes: float
    n_edges: float
    n_paths: float


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset: generator config plus paper reference values."""

    name: str
    config: PangenomeConfig
    paper: PaperStats
    scale: float  # fraction of the paper's node count represented here


# Paper Table I.
_PAPER_HLA = PaperStats(2.2e4, 5.0e3, 6.8e3, 12)
_PAPER_MHC = PaperStats(5.9e6, 2.3e5, 3.2e5, 99)
_PAPER_CHR1 = PaperStats(1.1e9, 1.1e7, 1.5e7, 2262)


def _make_config(
    name: str,
    n_backbone: int,
    n_paths: int,
    mean_node_length: float,
    seed: int,
    n_svs: int,
    loop_rate: float = 0.1,
) -> PangenomeConfig:
    return PangenomeConfig(
        n_backbone_nodes=n_backbone,
        n_paths=n_paths,
        mean_node_length=mean_node_length,
        bubble_rate=0.10,
        deletion_rate=0.03,
        n_structural_variants=n_svs,
        sv_length_nodes=max(10, n_backbone // 100),
        sv_carrier_fraction=0.2,
        loop_rate=loop_rate,
        path_dropout=0.12,
        seed=seed,
        name=name,
    )


REPRESENTATIVE_SPECS: Dict[str, DatasetSpec] = {
    # HLA-DRB1 is small enough to simulate at full node count.
    "HLA-DRB1": DatasetSpec(
        name="HLA-DRB1",
        config=_make_config("HLA-DRB1", n_backbone=4500, n_paths=12,
                            mean_node_length=4.4, seed=101, n_svs=2),
        paper=_PAPER_HLA,
        scale=1.0,
    ),
    # MHC scaled ~1:16 in nodes, path count preserved in spirit (sampled).
    "MHC": DatasetSpec(
        name="MHC",
        config=_make_config("MHC", n_backbone=13000, n_paths=48,
                            mean_node_length=25.0, seed=202, n_svs=4),
        paper=_PAPER_MHC,
        scale=13000 / 2.3e5,
    ),
    # Chr.1 scaled ~1:500 in nodes and paths.
    "Chr.1": DatasetSpec(
        name="Chr.1",
        config=_make_config("Chr.1", n_backbone=20000, n_paths=56,
                            mean_node_length=100.0, seed=303, n_svs=6),
        paper=_PAPER_CHR1,
        scale=20000 / 1.1e7,
    ),
}


# Paper Table VII CPU / A6000 / A100 run times in seconds, used by the
# benchmark harness to print paper-vs-model comparisons. Keyed by chromosome.
CHROMOSOME_PAPER_RUNTIMES: Dict[str, Dict[str, float]] = {
    "Chr.1": {"cpu": 9158, "a6000": 299, "a100": 162},
    "Chr.2": {"cpu": 4623, "a6000": 213, "a100": 61},
    "Chr.3": {"cpu": 5321, "a6000": 207, "a100": 91},
    "Chr.4": {"cpu": 6452, "a6000": 220, "a100": 126},
    "Chr.5": {"cpu": 6069, "a6000": 199, "a100": 67},
    "Chr.6": {"cpu": 4435, "a6000": 169, "a100": 87},
    "Chr.7": {"cpu": 4606, "a6000": 180, "a100": 94},
    "Chr.8": {"cpu": 4647, "a6000": 177, "a100": 101},
    "Chr.9": {"cpu": 4609, "a6000": 173, "a100": 55},
    "Chr.10": {"cpu": 2914, "a6000": 142, "a100": 44},
    "Chr.11": {"cpu": 3385, "a6000": 127, "a100": 37},
    "Chr.12": {"cpu": 2645, "a6000": 127, "a100": 49},
    "Chr.13": {"cpu": 3812, "a6000": 142, "a100": 53},
    "Chr.14": {"cpu": 3081, "a6000": 124, "a100": 46},
    "Chr.15": {"cpu": 4293, "a6000": 172, "a100": 76},
    "Chr.16": {"cpu": 8387, "a6000": 296, "a100": 778},
    "Chr.17": {"cpu": 3825, "a6000": 121, "a100": 67},
    "Chr.18": {"cpu": 3029, "a6000": 110, "a100": 68},
    "Chr.19": {"cpu": 2423, "a6000": 89, "a100": 27},
    "Chr.20": {"cpu": 3094, "a6000": 90, "a100": 61},
    "Chr.21": {"cpu": 2658, "a6000": 86, "a100": 38},
    "Chr.22": {"cpu": 2399, "a6000": 97, "a100": 30},
    "Chr.X": {"cpu": 3846, "a6000": 109, "a100": 49},
    "Chr.Y": {"cpu": 115, "a6000": 3, "a100": 4},
}


def load_dataset(name: str, scale: float = 1.0, seed: Optional[int] = None) -> LeanGraph:
    """Load one of the representative datasets (optionally rescaled).

    ``scale`` multiplies the backbone node count and path count of the stored
    spec; ``seed`` overrides the spec's seed for replication studies.
    """
    if name not in REPRESENTATIVE_SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(REPRESENTATIVE_SPECS)}")
    spec = REPRESENTATIVE_SPECS[name]
    cfg = spec.config
    if scale != 1.0 or seed is not None:
        cfg = PangenomeConfig(
            n_backbone_nodes=max(16, int(cfg.n_backbone_nodes * scale)),
            n_paths=max(2, int(round(cfg.n_paths * max(scale, 0.25)))),
            mean_node_length=cfg.mean_node_length,
            bubble_rate=cfg.bubble_rate,
            deletion_rate=cfg.deletion_rate,
            n_structural_variants=cfg.n_structural_variants,
            sv_length_nodes=max(5, int(cfg.sv_length_nodes * scale)),
            sv_carrier_fraction=cfg.sv_carrier_fraction,
            loop_rate=cfg.loop_rate,
            path_dropout=cfg.path_dropout,
            seed=cfg.seed if seed is None else seed,
            name=cfg.name,
        )
    return simulate_pangenome(cfg)


def hla_drb1_like(scale: float = 1.0, seed: Optional[int] = None) -> LeanGraph:
    """HLA-DRB1-like gene-scale pangenome (Table I row 1)."""
    return load_dataset("HLA-DRB1", scale=scale, seed=seed)


def mhc_like(scale: float = 1.0, seed: Optional[int] = None) -> LeanGraph:
    """MHC-like region-scale pangenome (Table I row 2, scaled)."""
    return load_dataset("MHC", scale=scale, seed=seed)


def chr1_like(scale: float = 1.0, seed: Optional[int] = None) -> LeanGraph:
    """Chr.1-like chromosome-scale pangenome (Table I row 3, scaled)."""
    return load_dataset("Chr.1", scale=scale, seed=seed)


def chromosome_suite(
    scale: float = 1.0, seed: int = 7, quick: bool = False
) -> Dict[str, LeanGraph]:
    """The 24-chromosome suite (Chr.1..Chr.22, Chr.X, Chr.Y), scaled.

    Chromosome sizes follow the relative CPU-run-time ordering of Table VII
    (run time ∝ total path length), with Chr.Y much smaller than the rest, as
    in the paper. ``quick=True`` shrinks everything further for unit tests.
    """
    names = [f"Chr.{i}" for i in range(1, 23)] + ["Chr.X", "Chr.Y"]
    # Relative total-path-length weights derived from the paper's CPU times.
    weights = np.array([CHROMOSOME_PAPER_RUNTIMES[n]["cpu"] for n in names], dtype=np.float64)
    weights = weights / weights.max()
    base_backbone = 1200 if quick else 6000
    base_paths = 6 if quick else 20
    suite: Dict[str, LeanGraph] = {}
    rng = np.random.default_rng(seed)  # det-ok: seeded by the caller's explicit seed argument
    for i, name in enumerate(names):
        w = weights[i]
        n_backbone = max(64, int(base_backbone * w * scale))
        n_paths = max(2, int(round(base_paths * (0.5 + w) * max(scale, 0.3))))
        cfg = _make_config(
            name,
            n_backbone=n_backbone,
            n_paths=n_paths,
            mean_node_length=75.0,
            seed=int(rng.integers(0, 2**31 - 1)),
            n_svs=max(1, int(4 * w)),
            loop_rate=0.08,
        )
        suite[name] = simulate_pangenome(cfg)
    return suite


def small_graph_collection(n_graphs: int = 30, seed: int = 13) -> List[LeanGraph]:
    """Many small pangenome graphs for the metric-correlation study (Fig. 13).

    The paper used 1824 small layouts; we default to a smaller collection so
    the benchmark finishes quickly, with the count configurable.
    """
    if n_graphs < 2:
        raise ValueError("need at least two graphs for a correlation study")
    rng = np.random.default_rng(seed)  # det-ok: seeded by the caller's explicit seed argument
    graphs: List[LeanGraph] = []
    for i in range(n_graphs):
        cfg = PangenomeConfig(
            n_backbone_nodes=int(rng.integers(60, 400)),
            n_paths=int(rng.integers(3, 14)),
            mean_node_length=float(rng.uniform(2.0, 12.0)),
            bubble_rate=float(rng.uniform(0.02, 0.18)),
            deletion_rate=float(rng.uniform(0.0, 0.05)),
            n_structural_variants=int(rng.integers(0, 3)),
            sv_length_nodes=int(rng.integers(5, 20)),
            loop_rate=float(rng.uniform(0.0, 0.2)),
            path_dropout=float(rng.uniform(0.0, 0.2)),
            seed=int(rng.integers(0, 2**31 - 1)),
            name=f"small{i}",
        )
        graphs.append(simulate_pangenome(cfg))
    return graphs
