"""Profiling aggregates: memory traffic, stall fractions, top-down categories.

Reproduces the *kinds* of numbers the paper extracts with Perf, VTune and
Nsight Compute:

* Table II — memory-stall cycle percentage and LLC-load miss rate of the CPU
  baseline;
* Fig. 5 — top-down microarchitecture bound categories (memory bound / core
  bound / front-end / bad speculation);
* Tables IX–XI — LLC loads/misses, L1/L2/DRAM traffic, sectors per request,
  executed instructions, active threads per warp.

The inputs are counters produced by the cache simulator, the coalescing model
and the warp model over address traces generated from the *actual* layout
engines; the formulas here combine them into the derived quantities.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .cache import CacheHierarchy, CacheStats
from .device import DeviceSpec

__all__ = ["MemoryTrafficProfile", "TopDownProfile", "memory_bound_analysis", "WorkloadCounters"]


@dataclass
class MemoryTrafficProfile:
    """Byte traffic through the memory hierarchy for some unit of work."""

    l1_bytes: float = 0.0
    l2_bytes: float = 0.0
    dram_bytes: float = 0.0
    llc_loads: float = 0.0
    llc_load_misses: float = 0.0
    sectors_per_request: float = 0.0

    @property
    def llc_miss_rate(self) -> float:
        """LLC-load miss rate (Table II row 3)."""
        if self.llc_loads == 0:
            return 0.0
        return self.llc_load_misses / self.llc_loads

    def scaled(self, factor: float) -> "MemoryTrafficProfile":
        """Scale every extensive quantity by ``factor`` (ratios unchanged)."""
        return MemoryTrafficProfile(
            l1_bytes=self.l1_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
            dram_bytes=self.dram_bytes * factor,
            llc_loads=self.llc_loads * factor,
            llc_load_misses=self.llc_load_misses * factor,
            sectors_per_request=self.sectors_per_request,
        )

    @classmethod
    def from_hierarchy(cls, hierarchy: CacheHierarchy, sectors_per_request: float = 0.0) -> "MemoryTrafficProfile":
        """Build a profile from a replayed cache hierarchy."""
        levels = hierarchy.levels
        l1 = levels[0].stats if levels else CacheStats()
        l2 = levels[1].stats if len(levels) > 1 else CacheStats()
        llc = levels[-1].stats
        l1_bytes = float(l1.accesses * levels[0].config.line_bytes) if levels else 0.0
        l2_bytes = float(l2.accesses * levels[1].config.line_bytes) if len(levels) > 1 else float(l1.bytes_from_lower)
        return cls(
            l1_bytes=l1_bytes,
            l2_bytes=l2_bytes,
            dram_bytes=float(hierarchy.dram_bytes),
            llc_loads=float(llc.accesses),
            llc_load_misses=float(llc.misses),
            sectors_per_request=sectors_per_request,
        )


@dataclass
class WorkloadCounters:
    """Per-update-term work characterisation used by the timing model."""

    flops_per_term: float = 40.0
    node_loads_per_term: float = 6.0      # length + x + y for both endpoints
    rng_loads_per_term: float = 6.0       # PRNG state words touched
    bytes_per_node_load: float = 8.0
    bytes_per_rng_load: float = 4.0

    @property
    def bytes_per_term(self) -> float:
        """Request-level bytes one term asks the memory system for."""
        return (
            self.node_loads_per_term * self.bytes_per_node_load
            + self.rng_loads_per_term * self.bytes_per_rng_load
        )


@dataclass
class TopDownProfile:
    """Top-down pipeline-slot breakdown (Yasin 2014), as plotted in Fig. 5."""

    memory_bound: float
    core_bound: float
    front_end_bound: float
    bad_speculation: float
    retiring: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for table formatting."""
        return {
            "memory_bound": self.memory_bound,
            "core_bound": self.core_bound,
            "front_end_bound": self.front_end_bound,
            "bad_speculation": self.bad_speculation,
            "retiring": self.retiring,
        }

    def normalised(self) -> "TopDownProfile":
        """Scale the categories to sum to 1."""
        total = (
            self.memory_bound + self.core_bound + self.front_end_bound
            + self.bad_speculation + self.retiring
        )
        if total <= 0:
            return self
        return TopDownProfile(
            memory_bound=self.memory_bound / total,
            core_bound=self.core_bound / total,
            front_end_bound=self.front_end_bound / total,
            bad_speculation=self.bad_speculation / total,
            retiring=self.retiring / total,
        )


def memory_bound_analysis(
    device: DeviceSpec,
    traffic: MemoryTrafficProfile,
    counters: WorkloadCounters,
    n_terms: float,
    llc_hit_latency_cycles: float = 45.0,
    dram_latency_cycles: float = 220.0,
    l2_hit_latency_cycles: float = 14.0,
) -> TopDownProfile:
    """Estimate the top-down breakdown from traffic counters.

    Memory-bound slots are the cycles an in-order view of the workload spends
    waiting on cache/DRAM; core-bound slots are the arithmetic cycles; small
    fixed fractions model front-end and branch-misprediction losses (the
    workload has a data-dependent branch per step). The output reproduces the
    *dominance* of the memory-bound category and its growth with graph size
    (53% → 71% across HLA-DRB1 → Chr.1 in the paper).
    """
    if n_terms <= 0:
        raise ValueError("n_terms must be positive")
    loads = traffic.llc_loads
    misses = traffic.llc_load_misses
    hits = max(loads - misses, 0.0)
    mem_cycles = hits * llc_hit_latency_cycles + misses * dram_latency_cycles
    # L1/L2 hits below the LLC level contribute smaller latencies.
    l2_like = max((traffic.l2_bytes - traffic.dram_bytes), 0.0) / max(device.cache_line_bytes, 1)
    mem_cycles += l2_like * l2_hit_latency_cycles
    compute_cycles = n_terms * counters.flops_per_term / max(device.flops_per_cycle_per_sm, 1.0)
    front_end = 0.05 * (mem_cycles + compute_cycles)
    bad_spec = 0.04 * (mem_cycles + compute_cycles)
    retiring = 0.10 * compute_cycles
    return TopDownProfile(
        memory_bound=mem_cycles,
        core_bound=compute_cycles,
        front_end_bound=front_end,
        bad_speculation=bad_spec,
        retiring=retiring,
    ).normalised()
