"""Tests for layout params, schedule, layout state, selection and updates."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LayoutParams,
    Layout,
    NodeDataLayout,
    PairSampler,
    apply_batch,
    batch_stress,
    compute_displacements,
    distance_bounds,
    initialize_layout,
    make_schedule,
    node_record_addresses,
    zipf_hop_distances,
)
from repro.prng import Xoshiro256Plus


class TestParams:
    def test_defaults_match_paper(self):
        p = LayoutParams()
        assert p.iter_max == 30
        assert p.steps_per_step_unit == 10.0
        assert p.cooling_start == 0.5

    def test_steps_per_iteration(self):
        p = LayoutParams(steps_per_step_unit=10.0)
        assert p.steps_per_iteration(1000) == 10000
        assert p.steps_per_iteration(0) == p.min_term_updates

    def test_first_cooling_iteration(self):
        p = LayoutParams(iter_max=30, cooling_start=0.5)
        assert p.first_cooling_iteration() == 15

    def test_with_replaces_fields(self):
        p = LayoutParams().with_(iter_max=5, seed=1)
        assert p.iter_max == 5 and p.seed == 1
        assert LayoutParams().iter_max == 30

    @pytest.mark.parametrize("kwargs", [
        {"iter_max": 0},
        {"steps_per_step_unit": 0},
        {"eps": 0},
        {"cooling_start": 1.5},
        {"zipf_theta": -1},
        {"zipf_space_max": 0},
        {"simulated_threads": 0},
        {"workers": 0},
        {"batch_size": 0},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            LayoutParams(**kwargs)


class TestSchedule:
    def test_distance_bounds(self, tiny_graph):
        d_min, d_max = distance_bounds(tiny_graph)
        assert d_min >= 1.0
        assert d_max >= d_min
        # Longest path spans 15 nucleotides.
        assert d_max == 15.0

    def test_schedule_monotone_decreasing(self, small_synthetic):
        p = LayoutParams(iter_max=20)
        sched = make_schedule(small_synthetic, p)
        assert sched.shape == (20,)
        assert np.all(np.diff(sched) < 0)

    def test_schedule_endpoints(self, small_synthetic):
        p = LayoutParams(iter_max=10, eps=0.05)
        d_min, d_max = distance_bounds(small_synthetic)
        sched = make_schedule(small_synthetic, p)
        assert sched[0] == pytest.approx(d_max ** 2)
        assert sched[-1] == pytest.approx(p.eps * d_min ** 2, rel=1e-6)

    def test_single_iteration_schedule(self, tiny_graph):
        sched = make_schedule(tiny_graph, LayoutParams(iter_max=1))
        assert sched.shape == (1,)

    def test_eta_max_override(self, tiny_graph):
        sched = make_schedule(tiny_graph, LayoutParams(iter_max=5, eta_max=100.0))
        assert sched[0] == pytest.approx(100.0)


class TestLayoutState:
    def test_initialize_shape_and_positions(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=1)
        assert layout.coords.shape == (10, 2)
        # Node 0's start X is its first path position (0); end X adds its length.
        assert layout.coords[0, 0] == pytest.approx(0.0)
        assert layout.coords[1, 0] == pytest.approx(3.0)

    def test_initialize_unvisited_nodes(self):
        from repro.graph import LeanGraph
        g = LeanGraph.from_paths([2, 2, 2], [[0, 1]])
        layout = initialize_layout(g, seed=0)
        # Unvisited node 2 is placed past the visited span.
        assert layout.coords[4, 0] > layout.coords[2, 0]

    def test_initialize_unvisited_nodes_clear_final_extent(self):
        from repro.graph import LeanGraph
        # Node 0 (length 5) is the only on-path node; path-less node 1
        # (length 2) must start past node 0's *end* (x=5), not its step
        # start (x=0) — the seed placed it at x=2, inside node 0's segment.
        g = LeanGraph.from_paths([5, 2], [[0]])
        layout = initialize_layout(g, seed=0)
        on_path_end_x = layout.coords[1, 0]
        appended_start_x = layout.coords[2, 0]
        assert on_path_end_x == pytest.approx(5.0)
        assert appended_start_x >= on_path_end_x

    def test_initialize_unvisited_nodes_do_not_overlap_each_other(self):
        from repro.graph import LeanGraph
        # A longer path-less node followed by a shorter one: with an
        # inclusive prefix sum node 2 would land inside node 1's segment.
        g = LeanGraph.from_paths([3, 5, 2], [[0]])
        layout = initialize_layout(g, seed=0)
        spans = [(layout.coords[2 * n, 0], layout.coords[2 * n + 1, 0])
                 for n in range(3)]
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert start_b >= end_a

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            Layout(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            Layout(np.zeros((4, 3)))

    def test_views_and_segment(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=0)
        assert layout.start_points().shape == (5, 2)
        assert layout.end_points().shape == (5, 2)
        s, e = layout.node_segment(2)
        assert s.shape == (2,) and e.shape == (2,)

    def test_bounding_box(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=0)
        min_x, min_y, max_x, max_y = layout.bounding_box()
        assert min_x <= max_x and min_y <= max_y

    def test_aos_round_trip(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=3)
        aos = layout.to_aos_array(tiny_graph.node_lengths)
        assert aos.shape == (5, 5)
        back = Layout.from_aos_array(aos)
        assert np.allclose(back.coords, layout.coords)
        # A layout rebuilt from packed AoS records carries the AoS tag.
        assert back.data_layout == NodeDataLayout.AOS

    def test_aos_requires_matching_lengths(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=3)
        with pytest.raises(ValueError):
            layout.to_aos_array(np.ones(3))

    def test_copy_independent(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=0)
        clone = layout.copy()
        clone.coords += 1.0
        assert not np.allclose(clone.coords, layout.coords)

    def test_with_data_layout(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=0)
        aos = layout.with_data_layout(NodeDataLayout.AOS)
        assert aos.data_layout == NodeDataLayout.AOS
        assert np.allclose(aos.coords, layout.coords)


class TestNodeRecordAddresses:
    def test_aos_addresses_within_one_record(self):
        addrs = node_record_addresses(np.array([7]), np.array([1]),
                                      NodeDataLayout.AOS, n_nodes=100)
        assert addrs.shape == (1, 3)
        span = addrs.max() - addrs.min()
        assert span < 5 * 8  # all fields inside the 40-byte record

    def test_soa_addresses_spread_across_arrays(self):
        addrs = node_record_addresses(np.array([7]), np.array([0]),
                                      NodeDataLayout.SOA, n_nodes=100)
        span = addrs.max() - addrs.min()
        assert span > 100 * 8  # length / X / Y arrays are far apart

    def test_endpoint_changes_address(self):
        a0 = node_record_addresses(np.array([3]), np.array([0]), NodeDataLayout.AOS, 10)
        a1 = node_record_addresses(np.array([3]), np.array([1]), NodeDataLayout.AOS, 10)
        assert a0[0, 1] != a1[0, 1]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            node_record_addresses(np.array([1, 2]), np.array([0]), NodeDataLayout.AOS, 10)


class TestZipf:
    def test_bounds(self, rng):
        hops = zipf_hop_distances(rng.random(5000), theta=0.99, space_max=100)
        assert hops.min() >= 1
        assert hops.max() <= 100

    def test_small_hops_dominate(self, rng):
        hops = zipf_hop_distances(rng.random(20000), theta=0.99, space_max=1000)
        # A uniform draw would put only 1% of mass on hops <= 10 and ~63% on
        # hops in the largest decade; the Zipf distribution concentrates mass
        # on short hops instead.
        assert (hops <= 10).mean() > 0.25
        assert (hops > 500).mean() < 0.15

    def test_space_max_one(self, rng):
        hops = zipf_hop_distances(rng.random(100), theta=1.0, space_max=1)
        assert np.all(hops == 1)

    def test_theta_one_exact_branch(self, rng):
        hops = zipf_hop_distances(rng.random(1000), theta=1.0, space_max=50)
        assert hops.min() >= 1 and hops.max() <= 50

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_hop_distances(np.array([0.5]), theta=0.9, space_max=0)
        with pytest.raises(ValueError):
            zipf_hop_distances(np.array([0.5]), theta=0, space_max=10)


class TestPairSampler:
    def _sampler(self, graph, **kwargs):
        params = LayoutParams(**kwargs) if kwargs else LayoutParams()
        return PairSampler(graph, params), Xoshiro256Plus(0, n_streams=256)

    def test_batch_fields_consistent(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic)
        batch = sampler.sample(rng, 512, iteration=0)
        assert len(batch) == 512
        # Nodes must match the steps they were derived from.
        assert np.array_equal(batch.node_i, small_synthetic.step_nodes[batch.flat_i])
        assert np.array_equal(batch.node_j, small_synthetic.step_nodes[batch.flat_j])
        # Both steps must belong to the selected path.
        offsets = small_synthetic.path_offsets
        assert np.all(batch.flat_i >= offsets[batch.path])
        assert np.all(batch.flat_i < offsets[batch.path + 1])
        assert np.all(batch.flat_j >= offsets[batch.path])
        assert np.all(batch.flat_j < offsets[batch.path + 1])

    def test_d_ref_matches_positions(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic)
        batch = sampler.sample(rng, 256, iteration=0)
        expected = np.abs(
            small_synthetic.step_positions[batch.flat_i]
            - small_synthetic.step_positions[batch.flat_j]
        )
        assert np.array_equal(batch.d_ref, expected.astype(float))

    def test_endpoints_binary(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic)
        batch = sampler.sample(rng, 256, iteration=0)
        assert set(np.unique(batch.vis_i)) <= {0, 1}
        assert set(np.unique(batch.vis_j)) <= {0, 1}

    def test_cooling_always_in_second_half(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic, iter_max=10)
        late = sampler.sample(rng, 256, iteration=9)
        assert np.all(late.in_cooling)

    def test_cooling_mixed_in_first_half(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic, iter_max=10)
        early = sampler.sample(rng, 2048, iteration=0)
        frac = early.in_cooling.mean()
        assert 0.3 < frac < 0.7

    def test_cooling_pairs_are_closer(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic, zipf_space_max=50)
        cool = sampler.sample(rng, 2048, iteration=0, forced_cooling=True)
        hot = sampler.sample(rng, 2048, iteration=0, forced_cooling=False)
        hop_cool = np.abs(cool.flat_i - cool.flat_j)
        hop_hot = np.abs(hot.flat_i - hot.flat_j)
        assert np.median(hop_cool) < np.median(hop_hot)

    def test_cooling_mask_override(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic)
        mask = np.zeros(128, dtype=bool)
        mask[::2] = True
        batch = sampler.sample(rng, 128, iteration=0, cooling_mask=mask)
        assert np.array_equal(batch.in_cooling, mask)

    def test_path_override(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic)
        override = np.full(64, 2, dtype=np.int64)
        batch = sampler.sample(rng, 64, iteration=0, path_override=override)
        assert np.all(batch.path == 2)

    def test_fixed_hop_sampler(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic)
        batch = sampler.sample_fixed_hop(rng, 256, hop=10)
        hop = np.abs(batch.flat_i - batch.flat_j)
        assert np.all(hop <= 10)
        assert np.median(hop) == 10

    def test_nonzero_terms_filter(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic)
        batch = sampler.sample(rng, 512, iteration=0).nonzero_terms()
        assert np.all(batch.d_ref > 0)

    def test_nonzero_terms_fast_path_skips_copy(self, small_synthetic):
        # When every d_ref > 0 (the common case) the batch is returned as
        # is — no 9-array fancy-index copy on the hot path.
        sampler, rng = self._sampler(small_synthetic)
        batch = sampler.sample(rng, 64, iteration=0)
        clean = batch.nonzero_terms()  # pre-filtered: all-positive already
        assert clean.nonzero_terms() is clean
        assert clean.nonzero_terms().d_ref is clean.d_ref
        # A batch with zero-reference terms still takes the filtering copy.
        dirty = type(batch)(**{k: getattr(clean, k).copy() for k in (
            "path", "flat_i", "flat_j", "node_i", "node_j",
            "vis_i", "vis_j", "d_ref", "in_cooling")})
        dirty.d_ref[0] = 0.0
        filtered = dirty.nonzero_terms()
        assert filtered is not dirty
        assert len(filtered) == len(dirty) - 1
        assert np.all(filtered.d_ref > 0)

    def test_batch_slice_returns_views(self, small_synthetic):
        sampler, rng = self._sampler(small_synthetic)
        batch = sampler.sample(rng, 32, iteration=0)
        part = batch.slice(4, 12)
        assert len(part) == 8
        assert part.node_i.base is batch.node_i
        np.testing.assert_array_equal(part.d_ref, batch.d_ref[4:12])

    def test_empty_graph_rejected(self):
        from repro.graph import LeanGraph
        empty = LeanGraph.from_paths([1, 1], [])
        with pytest.raises(ValueError):
            PairSampler(empty, LayoutParams())


class TestUpdates:
    def test_single_term_moves_points_toward_reference(self, tiny_graph):
        layout = initialize_layout(tiny_graph, seed=0)
        coords = layout.coords
        sampler = PairSampler(tiny_graph, LayoutParams())
        rng = Xoshiro256Plus(3, n_streams=8)
        batch = sampler.sample(rng, 8, iteration=0).nonzero_terms()
        before = batch_stress(coords, batch)
        apply_batch(coords, batch, eta=1.0)
        after = batch_stress(coords, batch)
        assert after <= before

    def test_displacements_antisymmetric(self, small_synthetic):
        layout = initialize_layout(small_synthetic, seed=0)
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(1, n_streams=64)
        batch = sampler.sample(rng, 64, iteration=0)
        pi, pj, delta = compute_displacements(layout.coords, batch, eta=0.5)
        assert pi.shape == pj.shape == (64,)
        assert delta.shape == (64, 2)
        # Zero-reference terms get zero displacement.
        assert np.all(delta[batch.d_ref <= 0] == 0)

    def test_merge_policies_touch_same_points(self, small_synthetic):
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(5, n_streams=128)
        batch = sampler.sample(rng, 128, iteration=0)
        base = initialize_layout(small_synthetic, seed=2).coords
        results = {}
        for merge in ("hogwild", "accumulate", "last_writer"):
            coords = base.copy()
            stats = apply_batch(coords, batch, eta=0.5, merge=merge)
            results[merge] = coords
            assert stats.n_terms == 128
        # All policies move the layout somewhere (but not necessarily equally).
        for merge, coords in results.items():
            assert not np.allclose(coords, base), merge

    def test_invalid_merge_policy(self, small_synthetic):
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(5, n_streams=16)
        batch = sampler.sample(rng, 16, iteration=0)
        with pytest.raises(ValueError):
            apply_batch(initialize_layout(small_synthetic).coords, batch, 0.1, merge="bogus")

    def test_empty_batch(self, small_synthetic):
        sampler = PairSampler(small_synthetic, LayoutParams())
        rng = Xoshiro256Plus(5, n_streams=16)
        batch = sampler.sample(rng, 16, iteration=0)
        empty = batch.nonzero_terms()
        empty = type(batch)(**{k: getattr(batch, k)[:0] for k in (
            "path", "flat_i", "flat_j", "node_i", "node_j", "vis_i", "vis_j", "d_ref", "in_cooling")})
        stats = apply_batch(initialize_layout(small_synthetic).coords, empty, 0.1)
        assert stats.n_terms == 0

    def test_mu_cap_prevents_overshoot(self, tiny_graph):
        # With a huge learning rate a single term must not overshoot past the
        # reference distance by more than the pre-update error.
        layout = initialize_layout(tiny_graph, seed=0)
        coords = layout.coords
        sampler = PairSampler(tiny_graph, LayoutParams())
        rng = Xoshiro256Plus(7, n_streams=1)
        batch = sampler.sample(rng, 1, iteration=0).nonzero_terms()
        if len(batch) == 0:
            pytest.skip("degenerate draw")
        pi = 2 * batch.node_i + batch.vis_i
        pj = 2 * batch.node_j + batch.vis_j
        before_err = abs(np.linalg.norm(coords[pi] - coords[pj]) - batch.d_ref[0])
        apply_batch(coords, batch, eta=1e12)
        after_err = abs(np.linalg.norm(coords[pi] - coords[pj]) - batch.d_ref[0])
        assert after_err <= before_err + 1e-6
