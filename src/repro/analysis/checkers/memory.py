"""MEM001 — the bounded-iteration-memory contract (PR 8).

The fused path's original formulation materialised O(terms-per-iteration)
transient state (~:data:`~repro.core.fused.FUSED_BYTES_PER_TERM` bytes per
term) — fine at smoke scale, a latent OOM at the paper's chromosome-scale
workloads. The chunked megablock (``LayoutParams.memory_budget`` /
:func:`~repro.core.fused.build_iteration_plans`) exists so that footprint
is bounded by a budget instead.

This pass keeps it that way: it flags allocating calls (the ALLOC001 set
plus the PRNG bulk draw ``next_double_block``) in hot-path directories
whose argument expressions reference an *iteration-scale* quantity —
``total_terms``, ``calls_per_iteration`` and friends — i.e. sites that
materialise whole-iteration-sized state and therefore bypass the chunk
machinery. The chunk machinery itself necessarily draws per-chunk blocks
through the same spelling (``next_double_block(chunk.calls_per_iteration)``
where the plan is budget-bounded); those sites carry ``# mem-ok: <reason>``
pragmas documenting why the quantity is bounded. Severity is ``warning``
(a perf/capacity smell, not a correctness bug), but CI runs ``--strict``
so it gates all the same.
"""
from __future__ import annotations

import ast
from typing import List

from ..astutil import dotted_name
from ..registry import Finding, checker
from ..source import SourceFile
from .alloc import ALLOC_CALLS

__all__ = ["check_mem001"]

#: Identifier / attribute names that denote an iteration-scale quantity.
#: Sizing an allocation (or a PRNG bulk draw) by one of these is exactly the
#: O(terms-per-iteration) materialisation the chunked fused path removes.
ITER_SCALE_NAMES = {
    "total_terms",
    "terms_per_iteration",
    "iteration_terms",
    "calls_per_iteration",
    "steps_per_iter",
    "steps_per_iteration",
}

#: Calls that materialise memory proportional to their size argument: every
#: ALLOC001 allocator plus the Xoshiro bulk draw (a ``(calls, n_streams)``
#: float64 block — the fused megablock itself).
MEM_ALLOC_CALLS = ALLOC_CALLS | {"next_double_block"}


def _mem_alloc_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute) and call.func.attr in MEM_ALLOC_CALLS:
        return dotted_name(call.func) or call.func.attr
    if isinstance(call.func, ast.Name) and call.func.id in MEM_ALLOC_CALLS:
        return call.func.id
    return ""


def _iteration_scale_ref(call: ast.Call) -> str:
    """Name of the iteration-scale quantity referenced in the call's
    arguments ('' when none is)."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in ITER_SCALE_NAMES:
                return node.id
            if isinstance(node, ast.Attribute) and node.attr in ITER_SCALE_NAMES:
                return node.attr
    return ""


@checker("MEM001", pragma="mem-ok", severity="warning", scope="file")
def check_mem001(src: SourceFile) -> List[Finding]:
    """Whole-iteration-sized materialisation bypassing the chunk machinery."""
    if not src.in_hot_path_dir():
        return []
    out: List[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _mem_alloc_name(node)
        if not name:
            continue
        scale = _iteration_scale_ref(node)
        if not scale:
            continue
        out.append(Finding(
            rule="MEM001", path=src.rel, line=node.lineno,
            col=node.col_offset, severity="warning",
            message=(f"'{name}()' sized by iteration-scale quantity "
                     f"'{scale}' in a hot path — whole-iteration "
                     "materialisations bypass the chunked fused path "
                     "(LayoutParams.memory_budget / build_iteration_plans); "
                     "size it to a chunk or justify with "
                     "'# mem-ok: <reason>'"),
            snippet=src.snippet(node.lineno)))
    return out
