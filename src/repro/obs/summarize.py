"""Phase-attributed trace reports (``repro trace summarize/compare``).

The interpreter analogue of the paper's Table IV kernel breakdown: given a
trace file, attribute recorded time to phases (selection, merge, dispatch,
transfer, ...) and render where a run actually spent itself — the question
every perf regression investigation starts with. ``compare`` diffs two
traces phase by phase, the reading-a-trace counterpart of
``repro bench compare``.

Attribution uses the *leaf* phases, not the enclosing ``iteration``/
``level`` spans: nested spans overlap by construction, so summing every
span would double-count. The enclosing spans are reported as their own
rows but excluded from the share denominator.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .trace_file import TraceDoc
from .tracer import TraceEvent

__all__ = ["phase_breakdown", "render_summary", "render_compare"]

#: Spans that *enclose* other spans; excluded from the share denominator.
ENCLOSING_SPANS = ("iteration", "level")


def phase_breakdown(events: Sequence[TraceEvent]
                    ) -> Dict[str, Tuple[int, int, float]]:
    """Per-phase ``(events, units, total_seconds)`` in first-seen order."""
    out: Dict[str, Tuple[int, int, float]] = {}
    for event in events:
        n_events, units, total = out.get(event.name, (0, 0, 0.0))
        out[event.name] = (n_events + 1, units + int(event.count),
                           total + float(event.dur))
    return out


def _format_rows(headers: List[str], rows: List[List[str]]) -> str:
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) if i == 0 else
                         cell.rjust(widths[i]) for i, cell in enumerate(cells))
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), rule] + [line(r) for r in rows])


def _workers_in(events: Sequence[TraceEvent]) -> List[str]:
    return sorted({e.labels["worker"] for e in events if "worker" in e.labels})


def render_summary(doc: TraceDoc, source: Optional[str] = None) -> str:
    """Human-readable per-phase breakdown of one trace."""
    breakdown = phase_breakdown(doc.events)
    leaf_total = sum(total for name, (_, _, total) in breakdown.items()
                     if name not in ENCLOSING_SPANS)
    rows: List[List[str]] = []
    ordered = sorted(breakdown.items(), key=lambda kv: -kv[1][2])
    for name, (n_events, units, total) in ordered:
        share = (f"{100.0 * total / leaf_total:.1f}%"
                 if leaf_total > 0 and name not in ENCLOSING_SPANS else "-")
        rows.append([name, str(n_events), str(units),
                     f"{total * 1e3:.2f}", share])
    meta = doc.meta
    head = [f"trace{f' {source}' if source else ''}: "
            f"schema {doc.schema_version}, {len(doc.events)} event(s)"
            + (f", {doc.dropped} dropped" if doc.dropped else "")]
    described = ", ".join(f"{k}={meta[k]}" for k in sorted(meta))
    if described:
        head.append(f"meta: {described}")
    workers = _workers_in(doc.events)
    if workers:
        head.append(f"workers: {', '.join(workers)}")
    table = _format_rows(["phase", "events", "units", "total ms", "share"],
                         rows)
    return "\n".join(head + [table])


def render_compare(old: TraceDoc, new: TraceDoc) -> str:
    """Phase-by-phase diff of two traces (old -> new)."""
    old_phases = phase_breakdown(old.events)
    new_phases = phase_breakdown(new.events)
    names = list(old_phases)
    names.extend(n for n in new_phases if n not in old_phases)
    rows: List[List[str]] = []
    for name in sorted(names, key=lambda n: -(new_phases.get(n, (0, 0, 0.0))[2]
                                              or old_phases.get(n, (0, 0, 0.0))[2])):
        old_s = old_phases.get(name, (0, 0, 0.0))[2]
        new_s = new_phases.get(name, (0, 0, 0.0))[2]
        ratio = f"{new_s / old_s:.2f}x" if old_s > 0 else "-"
        rows.append([name, f"{old_s * 1e3:.2f}", f"{new_s * 1e3:.2f}", ratio])
    old_total = sum(t for n, (_, _, t) in old_phases.items()
                    if n not in ENCLOSING_SPANS)
    new_total = sum(t for n, (_, _, t) in new_phases.items()
                    if n not in ENCLOSING_SPANS)
    total_ratio = (f"{new_total / old_total:.2f}x" if old_total > 0 else "-")
    head = (f"trace compare: {len(old.events)} -> {len(new.events)} event(s), "
            f"leaf total {old_total * 1e3:.2f} -> {new_total * 1e3:.2f} ms "
            f"({total_ratio})")
    table = _format_rows(["phase", "old ms", "new ms", "ratio"], rows)
    return "\n".join([head, table])
