"""Command-line interface: ``repro-layout``.

Mirrors the shape of ``odgi layout``: read a GFA (or generate a named
synthetic dataset), run the chosen engine, write the layout and optionally an
SVG rendering, and report the sampled path stress. The ``--gpu`` flag selects
the optimized kernel, matching the paper's statement that GPU acceleration is
enabled in the ODGI pipeline by simply adding ``--gpu``.
"""
from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .core import GpuKernelConfig, LayoutParams, layout_graph
from .graph import LeanGraph, parse_gfa, validate_lean
from .io import write_lay, write_tsv
from .metrics import sampled_path_stress
from .render import save_svg
from .synth import REPRESENTATIVE_SPECS, load_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-layout",
        description="Path-guided SGD pangenome graph layout (SC'24 reproduction)",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--gfa", help="input GFA v1 file")
    source.add_argument(
        "--dataset",
        choices=sorted(REPRESENTATIVE_SPECS),
        help="generate a named synthetic dataset instead of reading a GFA",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale factor for synthetic datasets (default 1.0)")
    parser.add_argument("--gpu", action="store_true",
                        help="use the optimized GPU kernel engine")
    parser.add_argument("--engine", default=None,
                        choices=["cpu", "serial", "batch", "gpu", "gpu-base"],
                        help="explicit engine selection (overrides --gpu)")
    parser.add_argument("--iter-max", type=int, default=30, help="SGD iterations")
    parser.add_argument("--steps-factor", type=float, default=10.0,
                        help="updates per iteration as a multiple of total path steps")
    parser.add_argument("--seed", type=int, default=9399, help="PRNG seed")
    parser.add_argument("--threads", type=int, default=1,
                        help="emulated Hogwild worker count for the CPU engine")
    parser.add_argument("--out-lay", help="write the layout to a .lay binary file")
    parser.add_argument("--out-tsv", help="write the layout to a TSV file")
    parser.add_argument("--out-svg", help="render the layout to an SVG file")
    parser.add_argument("--stress", action="store_true",
                        help="report the sampled path stress of the result")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip structural validation of the input graph")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.gfa:
        graph = LeanGraph.from_variation_graph(parse_gfa(args.gfa))
        source_name = args.gfa
    else:
        graph = load_dataset(args.dataset, scale=args.scale)
        source_name = f"{args.dataset} (scale={args.scale})"

    if not args.no_validate:
        report = validate_lean(graph)
        for warning in report.warnings:
            print(f"[warn] {warning}", file=sys.stderr)
        report.raise_if_invalid()

    engine = args.engine or ("gpu" if args.gpu else "cpu")
    params = LayoutParams(
        iter_max=args.iter_max,
        steps_per_step_unit=args.steps_factor,
        seed=args.seed,
        n_threads=args.threads,
    )
    print(f"laying out {source_name}: {graph.n_nodes} nodes, {graph.n_paths} paths, "
          f"{graph.total_steps} steps, engine={engine}")
    t0 = time.perf_counter()
    result = layout_graph(graph, engine=engine, params=params,
                          gpu_config=GpuKernelConfig() if engine == "gpu" else None)
    elapsed = time.perf_counter() - t0
    print(f"layout complete in {elapsed:.2f}s ({result.total_terms} update terms)")

    if args.out_lay:
        write_lay(result.layout, args.out_lay)
        print(f"wrote layout to {args.out_lay}")
    if args.out_tsv:
        write_tsv(result.layout, args.out_tsv)
        print(f"wrote TSV to {args.out_tsv}")
    if args.out_svg:
        save_svg(result.layout, args.out_svg, graph=graph)
        print(f"wrote SVG to {args.out_svg}")
    if args.stress:
        sps = sampled_path_stress(result.layout, graph, samples_per_step=25, seed=args.seed)
        print(f"sampled path stress: {sps.value:.4f} "
              f"(95% CI [{sps.ci_low:.4f}, {sps.ci_high:.4f}], n={sps.n_samples})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
