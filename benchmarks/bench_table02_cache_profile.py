"""Table II — memory stall and LLC cache performance of the CPU baseline.

Replays real access traces of the CPU baseline through the scaled LLC model
and reports LLC-load miss rates and an estimated memory-stall-cycle fraction
next to the paper's Perf measurements (67.7–78.1% stalls, 75–90% miss rate).
"""
from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.gpusim import WorkloadCounters, XEON_6246R, memory_bound_analysis
from repro.parallel import cpu_cache_profile

PAPER = {
    "HLA-DRB1": {"stall": 0.6767, "miss": 0.7509},
    "MHC": {"stall": 0.7807, "miss": 0.7784},
    "Chr.1": {"stall": 0.7738, "miss": 0.8988},
}


@pytest.mark.paper_table("Table II")
def test_table02_cache_profile(benchmark, representative_graphs, bench_params):
    def collect():
        out = {}
        for name, graph in representative_graphs.items():
            traffic, n_terms = cpu_cache_profile(graph, bench_params, n_trace_terms=4096)
            topdown = memory_bound_analysis(XEON_6246R, traffic, WorkloadCounters(), n_terms)
            out[name] = (traffic, topdown)
        return out

    results = benchmark.pedantic(collect, rounds=3, iterations=1)

    rows = []
    for name, (traffic, topdown) in results.items():
        stall = topdown.memory_bound
        rows.append([
            name,
            f"{stall:.1%}", f"{PAPER[name]['stall']:.1%}",
            f"{traffic.llc_miss_rate:.1%}", f"{PAPER[name]['miss']:.1%}",
            int(traffic.llc_loads), int(traffic.llc_load_misses),
        ])
        # The shape to reproduce: the majority of slots stall on memory and
        # the LLC miss rate is high under random node access.
        assert stall > 0.4
        assert traffic.llc_miss_rate > 0.3
    # Miss rate grows with graph size, as in the paper.
    assert results["Chr.1"][0].llc_miss_rate >= results["HLA-DRB1"][0].llc_miss_rate - 0.05

    print()
    print(format_table(
        ["Pangenome", "MemStall", "MemStall(paper)", "LLC miss", "LLC miss(paper)",
         "LLC loads(trace)", "LLC misses(trace)"],
        rows,
        title="Table II: memory stall and cache performance of the CPU baseline",
    ))
