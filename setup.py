"""Legacy setuptools entry point.

Kept because the evaluation environment has no ``wheel`` package, so modern
PEP 517 editable installs (``pip install -e .``) cannot build a wheel; with
this file present, ``pip install -e . --no-build-isolation`` falls back to the
setuptools develop path, and ``python setup.py develop --no-deps`` also works
offline. All metadata lives in ``pyproject.toml``.
"""
from setuptools import setup

setup()
