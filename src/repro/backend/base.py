"""The :class:`ArrayBackend` contract every execution backend implements.

A backend bundles an array-API-style namespace (``backend.xp``) with the
handful of operations the update hot path cannot express portably through
that namespace alone: touched-point compaction, the three write-merge
scatters, row-wise squared norms, and host/device transfers. The generic
implementations here are written against ``self.xp`` only, so a subclass
that merely swaps the namespace (CuPy) inherits working kernels, while a
subclass keeping NumPy arrays (Numba) overrides just the merge kernels it
accelerates.

Two namespaces are exposed on purpose:

* ``xp`` — where the *coordinate state* lives and the update arithmetic
  runs. This is the namespace :class:`~repro.core.updates.UpdateWorkspace`
  allocates its scratch buffers from.
* ``host_xp`` — where PRNG-driven *selection* runs. Term selection consumes
  multi-stream PRNGs that produce host arrays, so every current backend
  keeps selection on NumPy and transfers the selected batch to ``xp`` inside
  :func:`~repro.core.updates.compute_displacements` (a no-op when
  ``xp is numpy``). A future device-resident sampler would override this.

Determinism contract: on the default NumPy backend every operation here must
be *the exact call sequence* the pre-backend code issued, so layouts — and
therefore the committed smoke baseline — are byte-identical. New backends
are held to the weaker cross-backend contract enforced by the registry
self-test and ``tests/test_conformance.py``: within 1e-9 of the NumPy
reference for every engine × merge policy.
"""
from __future__ import annotations

from typing import Any, Tuple

import numpy as np

__all__ = ["ArrayBackend", "MERGE_POLICIES"]

#: The write-merge policies every backend must implement in ``merge_scatter``.
MERGE_POLICIES = ("hogwild", "accumulate", "last_writer")


class ArrayBackend:
    """Array namespace plus the non-portable kernels of the update hot path.

    Subclasses set :attr:`name` and :attr:`xp`; the generic method bodies
    below only use ``self.xp`` and standard array-API-compatible calls, so a
    NumPy-like namespace gets a complete backend for free.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    #: Array namespace holding coordinate state and workspace buffers.
    xp: Any = None

    #: Namespace for PRNG-driven selection (host-side for all current backends).
    host_xp: Any = np

    #: Advertises the fused per-iteration execution path. The generic
    #: :meth:`run_iteration` below works for any namespace, so the base
    #: contract is "advertised"; a backend whose namespace cannot support it
    #: sets this ``False`` and engines fall back to the per-batch loop.
    supports_fused_iteration: bool = True

    #: When ``True``, :func:`repro.core.fused.run_iteration_host` uploads the
    #: per-iteration uniform megablock once and runs term *selection* in this
    #: backend's namespace over a device-resident selection bundle, instead
    #: of selecting on the host and shipping every batch across. Host
    #: backends keep the default (their ``xp`` is the host).
    fused_device_selection: bool = False

    # ------------------------------------------------------------- memory
    def empty(self, shape, dtype) -> Any:
        """Uninitialised array in this backend's memory space."""
        return self.xp.empty(shape, dtype=dtype)

    def asarray(self, a, dtype=None) -> Any:
        """Coerce ``a`` into this backend's array type (no copy if possible)."""
        if dtype is None:
            return self.xp.asarray(a)
        return self.xp.asarray(a, dtype=dtype)

    def from_host(self, a: np.ndarray) -> Any:
        """Move a host (NumPy) array into this backend's memory space.

        Host-resident backends return the input array itself so in-place
        updates remain visible to the caller.
        """
        return self.xp.asarray(a)

    def to_host(self, a) -> np.ndarray:
        """Move a backend array back to host memory (identity when host-resident)."""
        return np.asarray(a)

    def synchronize(self) -> None:
        """Block until queued device work is complete (no-op on host backends)."""

    # ---------------------------------------------------------- hot path
    def compact_points(self, points) -> Tuple[Any, Any, Any]:
        """``(unique_points, inverse, counts)`` of a flat point-index array."""
        xp = self.xp
        points = xp.asarray(points)
        unique_points, inverse = xp.unique(points, return_inverse=True)
        counts = xp.bincount(inverse, minlength=unique_points.size)
        return unique_points, inverse, counts

    def rowwise_sqnorm(self, a, out=None) -> Any:
        """Per-row squared L2 norm of an ``(n, 2)`` array."""
        result = self.xp.sum(a * a, axis=1)
        if out is not None:
            out[...] = result
            return out
        return result

    def merge_scatter(self, coords, touched, inverse, counts, all_deltas,
                      merge: str) -> None:
        """Merge per-term deltas into ``coords`` over the compacted point space.

        ``touched``/``inverse``/``counts`` come from :meth:`compact_points`
        over the term endpoints; ``all_deltas`` holds one delta row per
        endpoint occurrence. Mutates ``coords`` in place.
        """
        xp = self.xp
        m = int(touched.size)
        if merge == "accumulate":
            coords[touched, 0] += xp.bincount(inverse, weights=all_deltas[:, 0],
                                              minlength=m)
            coords[touched, 1] += xp.bincount(inverse, weights=all_deltas[:, 1],
                                              minlength=m)
        elif merge == "hogwild":
            coords[touched, 0] += xp.bincount(inverse, weights=all_deltas[:, 0],
                                              minlength=m) / counts
            coords[touched, 1] += xp.bincount(inverse, weights=all_deltas[:, 1],
                                              minlength=m) / counts
        elif merge == "last_writer":
            # Sequential assignment through ``inverse`` leaves each slot
            # holding its last occurrence's index (the store race model).
            last = xp.empty(m, dtype=xp.int64)
            last[inverse] = xp.arange(inverse.shape[0])
            coords[touched] += all_deltas[last]
        else:  # pragma: no cover - callers validate before dispatch
            raise ValueError(f"unknown merge policy {merge!r}")

    # ------------------------------------------------------ fused iteration
    def run_iteration(self, plan, coords, uniforms, eta: float,
                      iteration: int):
        """Run one full SGD iteration as a single backend dispatch.

        The fused-path kernel contract (see :mod:`repro.core.fused`): given
        the run's :class:`~repro.core.fused.FusedIterationPlan`, the
        coordinate state (in this backend's memory space), the iteration's
        pre-drawn ``(calls, n_streams)`` uniform megablock and the learning
        rate, perform selection + displacement + write merge for every
        planned batch segment *inside this one call* and return
        :class:`~repro.core.fused.FusedIterationStats`.

        Semantics every implementation must preserve:

        * **segments stay sequential** — each term reads coordinates as of
          its segment's start and the per-segment merge is the backend's
          ordinary ``merge_scatter`` semantics, so fused and unfused runs
          agree (bit-for-bit on NumPy, ≤1e-9 elsewhere; enforced by the
          conformance matrix's fused axis);
        * **stream order** — the megablock is consumed vector-major /
          call-minor per segment, segments in plan order, i.e. exactly the
          unfused per-batch draw order.

        Under ``LayoutParams.memory_budget`` the engine calls this once per
        budget-sized *chunk* of the iteration's batch plan instead of once
        per iteration (:func:`~repro.core.fused.build_iteration_plans`);
        each chunk arrives as its own plan object with its own ``cache``, so
        implementations that stash plan-shaped derived state (device
        arrays, compiled-arg tuples) need no chunk awareness — the two
        invariants above already make chunked execution byte-identical.
        Implementations must size transients to *this plan's* terms, never
        to the whole iteration (enforced by the MEM001 contract check).

        The generic implementation executes through this backend's own
        namespace and kernels (host selection, or device selection when
        :attr:`fused_device_selection` is set); subclasses with a genuinely
        fused kernel (Numba's single ``@njit`` loop) override it wholesale.
        """
        from ..core.fused import run_iteration_host  # runtime import: the
        # module dependency points core -> backend, never the reverse.

        return run_iteration_host(self, plan, coords, uniforms, eta, iteration)

    # ----------------------------------------------------------- checking
    def self_test(self) -> None:
        """Cheap registration-time conformance check against NumPy reference.

        Runs each hot-path kernel on a small fixed input and compares with a
        plain NumPy computation. A backend whose toolchain is present but
        broken (driver mismatch, JIT failure, …) fails here and is reported
        unavailable instead of corrupting layouts at run time.
        """
        rng = np.random.default_rng(20240)  # det-ok: fixed-literal conformance-test seed, not a layout stream
        points = np.array([4, 1, 4, 7, 1, 4, 0, 7], dtype=np.int64)
        deltas = rng.normal(size=(points.size, 2))
        coords0 = rng.normal(size=(9, 2))

        touched, inverse, counts = self.compact_points(self.asarray(points))
        np.testing.assert_array_equal(self.to_host(touched), [0, 1, 4, 7])
        np.testing.assert_array_equal(self.to_host(counts), [1, 2, 3, 2])
        np.testing.assert_array_equal(np.asarray(points),
                                      self.to_host(touched)[self.to_host(inverse)])

        for merge in MERGE_POLICIES:
            expect = coords0.copy()
            if merge == "accumulate":
                np.add.at(expect, points, deltas)
            elif merge == "hogwild":
                summed = np.zeros_like(expect)
                cnt = np.zeros(expect.shape[0])
                np.add.at(summed, points, deltas)
                np.add.at(cnt, points, 1.0)
                mask = cnt > 0
                expect[mask] += summed[mask] / cnt[mask, None]
            else:  # last writer: final occurrence per point wins
                seen = {}
                for k, p in enumerate(points):
                    seen[int(p)] = k
                for p, k in seen.items():
                    expect[p] += deltas[k]
            got = self.from_host(coords0.copy())
            self.merge_scatter(got, touched, inverse, counts,
                               self.asarray(deltas), merge)
            np.testing.assert_allclose(self.to_host(got), expect,
                                       atol=1e-12, rtol=0)

        sq = self.rowwise_sqnorm(self.asarray(deltas))
        np.testing.assert_allclose(self.to_host(sq), (deltas * deltas).sum(axis=1),
                                   atol=1e-12, rtol=0)
        self.synchronize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayBackend {self.name}>"
