"""Multilevel V-cycle benchmark cases (smoke gate + levels-sweep figure).

``perf_multilevel`` is the CI gate for the multilevel subsystem: on the
Chr.1-like graph, starting flat SGD and the levels=3 V-cycle from the *same*
scrambled layout (untangling a bad embedding is exactly the work the paper's
early iterations spend their time on), the V-cycle must reach the flat run's
final quality while spending measurably fewer SGD terms. Quality is judged
by :func:`repro.metrics.tail_pair_stress` — the upper-quantile pair stress
over one fixed master-seeded pair sample shared by both layouts — because
the *mean* sampled path stress is far too heavy-tailed to compare two runs
reliably (one unlucky short-range pair dominates half a million samples; the
mean is still recorded for paper comparability, as ``info``).

The hard gate is the machine-independent ``terms_to_quality_ratio``: total
multilevel SGD terms over total flat terms when the quality bar is met, an
explicit 2.0 penalty value when it is not — so either a cost or a quality
regression moves the metric against its ``lower`` direction. Wall times
ride along as ``deterministic=False`` metrics, like the other ``perf_*``
cases.

``fig18_multilevel_quality`` sweeps the hierarchy depth and records the
quality/cost frontier (levels vs tail stress vs terms) in the style of the
paper's figure-series studies.
"""
from __future__ import annotations

import time

from ...core import CpuBaselineEngine
from ...core.layout import Layout
from ...metrics import sampled_path_stress, tail_pair_stress
from ...multilevel import MultilevelDriver
from ..registry import CaseResult, bench_case
from ..tables import format_table

#: Hierarchy depth of the gated configuration (`repro layout --levels 3`).
_GATE_LEVELS = 3

#: Penalty value recorded when the V-cycle misses the flat quality bar: far
#: above the healthy ~0.65 ratio, so the 10% gate trips unambiguously.
_QUALITY_MISS_PENALTY = 2.0


def _scrambled(ctx, graph, label: str) -> Layout:
    rng = ctx.rng(label)
    return Layout(rng.uniform(0, 500.0, size=(2 * graph.n_nodes, 2)))


@bench_case("perf_multilevel", source="Multilevel V-cycle (smoke)",
            suites=("smoke",))
def run_perf_multilevel(ctx) -> CaseResult:
    """levels=3 V-cycle reaches flat quality in fewer SGD terms (gated < 1)."""
    graph = ctx.chr1_graph
    params = ctx.smoke_params
    scrambled = _scrambled(ctx, graph, "perf_multilevel/scramble")
    sps_seed = ctx.seed_for("perf_multilevel/sps")
    tail_seed = ctx.seed_for("perf_multilevel/tail")

    t0 = time.perf_counter()
    flat = CpuBaselineEngine(graph, params).run(initial=scrambled)
    flat_s = time.perf_counter() - t0

    driver = MultilevelDriver(graph, params.with_(levels=_GATE_LEVELS),
                              engine="cpu")
    assert driver.hierarchy.depth == _GATE_LEVELS
    t0 = time.perf_counter()
    multi = driver.run(initial=scrambled)
    multi_s = time.perf_counter() - t0

    flat_tail = tail_pair_stress(flat.layout, graph, seed=tail_seed)
    multi_tail = tail_pair_stress(multi.layout, graph, seed=tail_seed)
    quality_reached = multi_tail <= flat_tail
    term_ratio = multi.total_terms / max(flat.total_terms, 1)
    # A quality miss is recorded as the penalty value and left for `bench
    # compare` to trip against the committed baseline — no assert here, so
    # the rest of the suite's metrics survive the run and the failure shows
    # up as a gate diff, not an aborted suite. The term ratio itself *is*
    # structural (the V-cycle splits the iteration budget across graphs with
    # no more steps than the finest), so that much is safe to assert.
    gated = term_ratio if quality_reached else _QUALITY_MISS_PENALTY
    assert term_ratio < 1.0

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("terms_to_quality_ratio", gated, unit="x", direction="lower")
    out.add("tangle_improvement", flat_tail / max(multi_tail, 1e-12),
            unit="x", direction="higher")
    out.add("flat_total_terms", flat.total_terms, direction="info")
    out.add("multilevel_total_terms", multi.total_terms, direction="info")
    out.add("flat_tail_stress", flat_tail, direction="info")
    out.add("multilevel_tail_stress", multi_tail, direction="info")
    out.add("flat_sampled_stress",
            sampled_path_stress(flat.layout, graph, samples_per_step=20,
                                seed=sps_seed).value, direction="info")
    out.add("multilevel_sampled_stress",
            sampled_path_stress(multi.layout, graph, samples_per_step=20,
                                seed=sps_seed).value, direction="info")
    out.add("hierarchy_depth", driver.hierarchy.depth, direction="info")
    out.add("coarsest_nodes", driver.hierarchy.graphs[-1].n_nodes,
            direction="info")
    out.add("flat_wall_s", flat_s, unit="s", direction="lower",
            deterministic=False)
    out.add("multilevel_wall_s", multi_s, unit="s", direction="lower",
            deterministic=False)
    out.tables.append(format_table(
        ["Run", "SGD terms", "q99 pair stress", "Wall (s)"],
        [["flat cpu", flat.total_terms, f"{flat_tail:.4g}", f"{flat_s:.3f}"],
         [f"V-cycle levels={_GATE_LEVELS}", multi.total_terms,
          f"{multi_tail:.4g}", f"{multi_s:.3f}"]],
        title="Smoke: multilevel V-cycle vs flat (Chr.1-like @0.1, scrambled start)",
    ))
    return out


@bench_case("fig18_multilevel_quality", source="Multilevel levels sweep",
            suites=("figures",))
def run_fig18_multilevel_quality(ctx) -> CaseResult:
    """Hierarchy-depth sweep: tail pair stress and SGD cost per level count."""
    graph = ctx.chr1_graph
    # The constrained smoke schedule is where hierarchy depth matters: at
    # generous budgets the flat run converges anyway and every depth merely
    # matches its quality at lower cost (a flatter, less informative sweep).
    params = ctx.smoke_params
    scrambled = _scrambled(ctx, graph, "fig18/scramble")
    tail_seed = ctx.seed_for("fig18/tail")

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    rows = []
    tails = {}
    terms = {}
    for levels in (1, 2, 3, 4):
        driver = MultilevelDriver(graph, params.with_(levels=levels),
                                  engine="cpu")
        result = driver.run(initial=scrambled)
        tail = tail_pair_stress(result.layout, graph, seed=tail_seed)
        tails[levels] = tail
        terms[levels] = result.total_terms
        out.add(f"tail_stress_levels{levels}", tail, direction="info")
        out.add(f"terms_levels{levels}", result.total_terms, direction="info")
        rows.append([levels,
                     "->".join(str(n) for n in driver.hierarchy.node_counts()),
                     result.total_terms, f"{tail:.4g}"])

    # Deep hierarchies must beat the flat run from a scrambled start, and
    # every coarsened run must be strictly cheaper in SGD terms. (levels=2
    # jumps straight to the contraction fixpoint and is only required to
    # stay in the flat run's quality neighbourhood.)
    assert tails[3] < tails[1]
    assert tails[4] < tails[1]
    assert tails[2] < 1.5 * tails[1]
    assert all(terms[lv] < terms[1] for lv in (2, 3, 4))
    out.add("tangle_improvement_levels3", tails[1] / max(tails[3], 1e-12),
            unit="x", direction="higher")
    out.tables.append(format_table(
        ["Levels", "Hierarchy", "SGD terms", "q99 pair stress"], rows,
        title="Fig. 18-style: layout quality vs hierarchy depth (Chr.1-like @0.1)",
    ))
    return out
