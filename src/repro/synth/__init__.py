"""Synthetic pangenome generation (HPRC dataset stand-in).

Provides the configurable pangenome simulator and the named, scaled datasets
matching the paper's evaluation inputs (Table I's representative graphs and
Table VI's 24-chromosome suite).
"""
from .simulator import PangenomeConfig, simulate_pangenome, simulate_sequence
from .scale import SCALE_GRAPH_SEED, scale_graph
from .datasets import (
    DatasetSpec,
    PaperStats,
    REPRESENTATIVE_SPECS,
    CHROMOSOME_PAPER_RUNTIMES,
    hla_drb1_like,
    mhc_like,
    chr1_like,
    load_dataset,
    chromosome_suite,
    small_graph_collection,
)

__all__ = [
    "PangenomeConfig",
    "simulate_pangenome",
    "simulate_sequence",
    "DatasetSpec",
    "PaperStats",
    "REPRESENTATIVE_SPECS",
    "CHROMOSOME_PAPER_RUNTIMES",
    "hla_drb1_like",
    "mhc_like",
    "chr1_like",
    "load_dataset",
    "chromosome_suite",
    "small_graph_collection",
    "SCALE_GRAPH_SEED",
    "scale_graph",
]
