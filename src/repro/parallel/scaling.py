"""CPU thread-scaling model (Fig. 4) and chunked work scheduling.

The paper measures odgi-layout's run time at 1–32 threads on the three
representative graphs and observes near-linear scaling. Only one physical
core is available here, so the scaling curve is produced from a calibrated
model: the single-thread cost per update term is derived from the CPU cache
profile of the actual workload (via :func:`repro.gpusim.timing.cpu_runtime`),
and parallel efficiency degrades gently as threads contend for DRAM
bandwidth — the same shape as the measured figure.

The module also provides the deterministic chunk scheduler used by the
Hogwild emulation: given a step budget and a worker count it yields the
per-round work assignments, which tests use to verify that every step is
executed exactly once regardless of worker count.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.cpu_baseline import CpuBaselineEngine
from ..core.params import LayoutParams
from ..gpusim.cache import CacheConfig, CacheHierarchy
from ..gpusim.device import DeviceSpec, XEON_6246R
from ..gpusim.profiler import MemoryTrafficProfile, WorkloadCounters
from ..gpusim.timing import TimingBreakdown, cpu_runtime, hogwild_thread_scaling
from ..graph.lean import LeanGraph

__all__ = ["ThreadScalingResult", "cpu_thread_scaling", "chunk_schedule", "cpu_cache_profile"]


@dataclass
class ThreadScalingResult:
    """Modelled run time per thread count for one graph."""

    graph_name: str
    total_terms: float
    times_s: Dict[int, float]
    reference: TimingBreakdown
    traffic: MemoryTrafficProfile

    def speedup(self) -> Dict[int, float]:
        """Speedup of each thread count relative to one thread."""
        t1 = self.times_s[min(self.times_s)]
        return {t: t1 / v for t, v in self.times_s.items()}

    def parallel_efficiency(self) -> Dict[int, float]:
        """Speedup divided by thread count."""
        return {t: s / t for t, s in self.speedup().items()}


def cpu_cache_profile(
    graph: LeanGraph,
    params: Optional[LayoutParams] = None,
    device: DeviceSpec = XEON_6246R,
    n_trace_terms: int = 4096,
    seed: int = 0,
    data_layout=None,
) -> Tuple[MemoryTrafficProfile, float]:
    """Replay a CPU baseline access trace through an LLC-like cache.

    Returns the traffic profile of the sampled trace plus the number of terms
    traced (so callers can scale the extensive counters to a full run).
    Reproduces Table II's LLC-load miss rate and feeds Table IX's CPU rows.

    The LLC capacity is scaled by the same factor as the dataset (see
    :func:`repro.gpusim.device.scaled_cache_bytes`) so that the working-set to
    cache ratio — which determines hit rates under random access — matches the
    paper's full-scale runs. ``data_layout`` optionally overrides the node-data
    layout used for the trace (SoA baseline vs. the AoS cache-friendly layout).
    """
    from ..gpusim.device import scaled_cache_bytes

    params = params or LayoutParams()
    engine = CpuBaselineEngine(graph, params)
    trace = engine.access_trace(n_terms=n_trace_terms, seed=seed, data_layout=data_layout)
    # A small per-core L1 sits in front of the shared last-level cache. Its
    # capacity barely matters for random accesses over a large layout array,
    # but it captures the intra-record locality that the cache-friendly data
    # layout creates (three fields of one packed record share a line), which
    # is what turns CDL into fewer LLC loads (Table IX).
    l1 = CacheConfig("L1", 32 * 1024, line_bytes=device.cache_line_bytes, associativity=8)
    full_llc = int(device.llc_mb * 1024 * 1024) if device.llc_mb else 2 * 1024 * 1024
    llc_bytes = scaled_cache_bytes(full_llc, graph.n_nodes,
                                   device.cache_line_bytes, 16)
    llc = CacheConfig("LLC", llc_bytes, line_bytes=device.cache_line_bytes, associativity=16)
    hierarchy = CacheHierarchy([l1, llc])
    hierarchy.access_trace(trace)
    profile = MemoryTrafficProfile.from_hierarchy(hierarchy)
    return profile, float(n_trace_terms)


def cpu_thread_scaling(
    graph: LeanGraph,
    graph_name: str = "graph",
    params: Optional[LayoutParams] = None,
    thread_counts: Optional[List[int]] = None,
    device: DeviceSpec = XEON_6246R,
    n_trace_terms: int = 4096,
    seed: int = 0,
) -> ThreadScalingResult:
    """Model odgi-layout run time across thread counts for one graph."""
    params = params or LayoutParams()
    thread_counts = thread_counts or [1, 2, 4, 8, 16, 32]
    sample_traffic, traced = cpu_cache_profile(
        graph, params, device, n_trace_terms=n_trace_terms, seed=seed
    )
    total_terms = float(params.iter_max * params.steps_per_iteration(graph.total_steps))
    traffic = sample_traffic.scaled(total_terms / traced)
    counters = WorkloadCounters()
    reference_threads = max(thread_counts)
    reference = cpu_runtime(
        device, total_terms, traffic, counters, n_threads=reference_threads
    )
    times = hogwild_thread_scaling(
        reference, np.asarray(thread_counts), reference_threads=reference_threads
    )
    return ThreadScalingResult(
        graph_name=graph_name,
        total_terms=total_terms,
        times_s=times,
        reference=reference,
        traffic=traffic,
    )


def chunk_schedule(
    total_steps: int, n_workers: int, round_size: int
) -> Iterator[List[Tuple[int, int]]]:
    """Yield rounds of per-worker (start, stop) step ranges.

    Every step index in ``[0, total_steps)`` is assigned to exactly one worker
    in exactly one round; rounds contain at most ``n_workers × round_size``
    steps split evenly.
    """
    if total_steps < 0:
        raise ValueError("total_steps must be non-negative")
    if n_workers < 1 or round_size < 1:
        raise ValueError("n_workers and round_size must be >= 1")
    cursor = 0
    while cursor < total_steps:
        round_total = min(n_workers * round_size, total_steps - cursor)
        base, extra = divmod(round_total, n_workers)
        assignments = []
        for w in range(n_workers):
            size = base + (1 if w < extra else 0)
            if size == 0:
                continue
            assignments.append((cursor, cursor + size))
            cursor += size
        yield assignments
