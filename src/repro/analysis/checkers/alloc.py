"""ALLOC001 — the zero-alloc hot-loop contract (PR 2).

The update inner loop is memory-bound: per-batch allocation of staging
arrays was the 7× regression PR 2 removed, and the per-run
:class:`~repro.core.updates.UpdateWorkspace` exists precisely so the loop
never allocates in steady state. This pass flags array-allocating calls
(``zeros``, ``empty``, ``unique``, ``concatenate``, ``.copy()``, …) inside
``for``/``while`` bodies of the scoped hot-loop code:

* the whole of ``core/updates.py`` and ``core/fused.py``;
* engine run paths — functions named ``run`` / ``run_inline`` /
  ``run_fixed_hop`` / ``run_iteration`` / ``run_iteration_host`` /
  ``_worker_main`` — in any hot-path directory.

Per-iteration functions (:data:`PER_ITERATION_FUNCS`) are additionally
scanned over their *whole* body, loop or not: the engine calls them every
iteration, so a function-top allocation there is a steady-state allocation
even though no loop syntax surrounds it. (This is the extension that would
have caught ``iteration_draws`` allocating its ``(8, total_terms)``
selection block afresh each iteration — fixed in PR 8 by hoisting the
buffer into the plan cache.)

Deliberate in-loop allocation (a grow-on-demand path, a once-per-run
setup loop) is annotated ``# alloc-ok: <reason>``. Severity is
``warning``: an allocation is a perf smell, not a correctness bug, but CI
runs ``--strict`` so it gates all the same.
"""
from __future__ import annotations

import ast
from typing import List

from ..astutil import dotted_name, loop_bodies
from ..registry import Finding, checker
from ..source import SourceFile

__all__ = ["check_alloc001"]

#: Call names that allocate a fresh array wherever they appear. Matched as
#: the final attribute (``xp.zeros``, ``be.empty``, ``arr.copy``) or a bare
#: name (``from numpy import zeros``). ``reshape``/``asarray`` are excluded
#: — usually views/no-ops — so the rule stays low-noise; fancy-index copies
#: are likewise syntactically indistinguishable from scalar indexing and
#: are left to review.
ALLOC_CALLS = {
    "zeros", "ones", "empty", "full",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "unique", "concatenate", "stack", "vstack", "hstack", "column_stack",
    "dstack", "tile", "repeat", "copy", "array", "arange", "linspace",
}

#: (parent directory, file name) pairs scoped in their entirety.
HOT_LOOP_FILES = {("core", "updates.py"), ("core", "fused.py")}

#: Function names treated as engine run paths inside hot-path directories.
RUN_PATH_FUNCS = {"run", "run_inline", "run_fixed_hop", "run_iteration",
                  "run_iteration_host", "_worker_main"}

#: Functions the engine invokes once (or more) per iteration: their whole
#: body is per-iteration steady state, so allocation is flagged anywhere in
#: it, not only inside loop bodies.
PER_ITERATION_FUNCS = {"run_iteration", "run_iteration_host",
                       "iteration_draws"}


def _is_hot_loop_file(src: SourceFile) -> bool:
    parts = src.parts
    return len(parts) >= 2 and (parts[-2], parts[-1]) in HOT_LOOP_FILES


def _alloc_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute) and call.func.attr in ALLOC_CALLS:
        return dotted_name(call.func) or call.func.attr
    if isinstance(call.func, ast.Name) and call.func.id in ALLOC_CALLS:
        return call.func.id
    return ""


def _finding(src: SourceFile, node: ast.Call, name: str,
             where: str) -> Finding:
    return Finding(
        rule="ALLOC001", path=src.rel, line=node.lineno,
        col=node.col_offset, severity="warning",
        message=(f"array allocation '{name}()' {where} "
                 "— the update hot path must stay allocation-free "
                 "(hoist into the per-run UpdateWorkspace) or justify "
                 "with '# alloc-ok: <reason>'"),
        snippet=src.snippet(node.lineno))


def _scan_region(src: SourceFile, region: ast.AST,
                 where: str) -> List[Finding]:
    out: List[Finding] = []
    seen = set()
    for node in loop_bodies(region):
        if not isinstance(node, ast.Call):
            continue
        name = _alloc_name(node)
        if not name:
            continue
        key = (node.lineno, node.col_offset)
        if key in seen:
            continue
        seen.add(key)
        out.append(_finding(src, node, name,
                            f"inside a {where} loop body"))
    return out


def _scan_whole_function(src: SourceFile,
                         func: ast.FunctionDef) -> List[Finding]:
    """Every allocating call in ``func``'s body, loop or not."""
    out: List[Finding] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = _alloc_name(node)
        if not name:
            continue
        out.append(_finding(
            src, node, name,
            f"in per-iteration function '{func.name}' (runs every "
            "iteration even outside a loop)"))
    return out


@checker("ALLOC001", pragma="alloc-ok", severity="warning", scope="file")
def check_alloc001(src: SourceFile) -> List[Finding]:
    """Array allocation in hot-loop bodies and per-iteration functions."""
    out: List[Finding] = []
    hot_file = _is_hot_loop_file(src)
    if hot_file:
        out.extend(_scan_region(src, src.tree, "hot-path"))
    elif src.in_hot_path_dir():
        for node in ast.walk(src.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in RUN_PATH_FUNCS):
                out.extend(_scan_region(src, node, f"'{node.name}' run-path"))
    else:
        return []
    # Per-iteration functions: the whole body is steady state.
    reported = {(f.line, f.col) for f in out}
    for node in ast.walk(src.tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in PER_ITERATION_FUNCS):
            for finding in _scan_whole_function(src, node):
                if (finding.line, finding.col) not in reported:
                    reported.add((finding.line, finding.col))
                    out.append(finding)
    return out
