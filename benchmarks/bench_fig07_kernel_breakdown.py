"""Fig. 7 — kernel-time breakdown of the PyTorch-style implementation.

The paper's Nsight profiling shows the irregular gather/scatter ("index")
kernels consuming the largest share (~34–36%) of GPU time at every batch
size. This benchmark runs the batched engine at three batch sizes and prints
the modelled per-op time shares.
"""
from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import BatchedLayoutEngine

PAPER_INDEX_SHARE = {"small": 0.345, "medium": 0.360, "large": 0.340}
BATCH_SIZES = {"small": 256, "medium": 2048, "large": 16384}


@pytest.mark.paper_table("Fig. 7")
def test_fig07_kernel_time_breakdown(benchmark, mhc_graph, bench_params):
    def run_all():
        out = {}
        for label, batch_size in BATCH_SIZES.items():
            engine = BatchedLayoutEngine(mhc_graph, bench_params.with_(batch_size=batch_size))
            engine.run()
            out[label] = engine.op_profile.time_breakdown()
        return out

    breakdowns = benchmark.pedantic(run_all, rounds=1, iterations=1)

    ops = sorted({op for b in breakdowns.values() for op in b})
    rows = []
    for label, breakdown in breakdowns.items():
        rows.append([label, BATCH_SIZES[label]]
                    + [f"{breakdown.get(op, 0.0):.1%}" for op in ops])
        # The index (gather/scatter) kernels dominate at every batch size.
        assert breakdown["index"] == max(breakdown.values())
        assert breakdown["index"] > 0.25
        assert sum(breakdown.values()) == pytest.approx(1.0, rel=1e-6)

    print()
    print(format_table(
        ["Batch", "Size"] + ops,
        rows,
        title="Fig. 7: kernel time breakdown of the PyTorch-style engine "
              f"(paper: index ≈ {PAPER_INDEX_SHARE['medium']:.0%})",
    ))
