"""Path index (XP-style) for reference-distance queries.

``odgi-layout`` consults a *path index* (the ``.xp`` file in the artifact) to
answer, for any two steps of the same path, the nucleotide distance between
them along the path — the reference distance ``d_ref`` in the stress term of
Alg. 1. The index also supports weighted random path selection (probability
proportional to path length, Alg. 1 line 5) and per-node path membership
queries used by the quality metrics.

The implementation is array-based: for every path we keep the sorted step
positions (already available in :class:`~repro.graph.lean.LeanGraph`), a
cumulative step-count table for weighted path sampling, and an inverted
node→steps index built on demand.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .lean import LeanGraph

__all__ = ["PathIndex"]


class PathIndex:
    """Precomputed structures for path-centric queries over a lean graph."""

    def __init__(self, graph: LeanGraph):
        self.graph = graph
        counts = graph.path_step_counts.astype(np.float64)
        total = counts.sum()
        if total > 0:
            self._path_weights = counts / total
        else:
            self._path_weights = counts
        self._cum_steps = np.concatenate(([0], np.cumsum(graph.path_step_counts)))
        self._node_index: Optional[Dict[int, List[Tuple[int, int]]]] = None

    # ----------------------------------------------------------- path lookup
    @property
    def n_paths(self) -> int:
        """Number of paths in the underlying graph."""
        return self.graph.n_paths

    @property
    def path_weights(self) -> np.ndarray:
        """Per-path selection probabilities (∝ number of steps)."""
        return self._path_weights

    @property
    def cum_steps(self) -> np.ndarray:
        """``(n_paths + 1,)`` cumulative step counts backing path sampling.

        This is the inverse-CDF table :meth:`sample_paths` searches; the
        fused iteration kernels consume it directly so their in-kernel path
        selection is the same table lookup.
        """
        return self._cum_steps

    def path_of_global_step(self, global_step: np.ndarray) -> np.ndarray:
        """Map flat step indices to the owning path index (vectorised)."""
        global_step = np.asarray(global_step, dtype=np.int64)
        return np.searchsorted(self.graph.path_offsets, global_step, side="right") - 1

    def step_range(self, path_index: int) -> Tuple[int, int]:
        """Return the (start, stop) flat step range of a path."""
        sl = self.graph.path_steps(path_index)
        return sl.start, sl.stop

    # ------------------------------------------------------------ distances
    def reference_distance(
        self, path_index: int, step_a: np.ndarray, step_b: np.ndarray
    ) -> np.ndarray:
        """Nucleotide distance along ``path_index`` between two local steps.

        ``step_a`` / ``step_b`` are indices *within* the path (0-based). The
        distance is measured between step start positions, matching the XP
        index semantics odgi-layout uses for ``d_ref``.
        """
        start, stop = self.step_range(path_index)
        length = stop - start
        step_a = np.asarray(step_a, dtype=np.int64)
        step_b = np.asarray(step_b, dtype=np.int64)
        if np.any((step_a < 0) | (step_a >= length) | (step_b < 0) | (step_b >= length)):
            raise IndexError("step index out of range for path")
        pos = self.graph.step_positions
        return np.abs(pos[start + step_a] - pos[start + step_b])

    def reference_distance_global(
        self, global_a: np.ndarray, global_b: np.ndarray
    ) -> np.ndarray:
        """Distance between flat step indices assumed to lie on the same path."""
        pos = self.graph.step_positions
        global_a = np.asarray(global_a, dtype=np.int64)
        global_b = np.asarray(global_b, dtype=np.int64)
        return np.abs(pos[global_a] - pos[global_b])

    # -------------------------------------------------------- node membership
    def _build_node_index(self) -> Dict[int, List[Tuple[int, int]]]:
        index: Dict[int, List[Tuple[int, int]]] = {}
        offsets = self.graph.path_offsets
        nodes = self.graph.step_nodes
        for p in range(self.n_paths):
            for local, flat in enumerate(range(int(offsets[p]), int(offsets[p + 1]))):
                index.setdefault(int(nodes[flat]), []).append((p, local))
        return index

    def steps_on_node(self, node_id: int) -> List[Tuple[int, int]]:
        """All (path_index, local_step) pairs that visit ``node_id``."""
        if self._node_index is None:
            self._node_index = self._build_node_index()
        return list(self._node_index.get(int(node_id), []))

    def paths_through_node(self, node_id: int) -> List[int]:
        """Sorted unique path indices that visit ``node_id``."""
        return sorted({p for p, _ in self.steps_on_node(node_id)})

    # ------------------------------------------------------------- sampling
    def sample_paths(self, rng_uniform: np.ndarray) -> np.ndarray:
        """Map uniform [0,1) draws to path indices with probability ∝ |p|.

        Implemented as inverse-CDF over the cumulative step counts, which is
        exactly how odgi-layout realises Alg. 1 line 5: draw a global step
        uniformly, then take the path that owns it.
        """
        rng_uniform = np.asarray(rng_uniform, dtype=np.float64)
        total = self._cum_steps[-1]
        if total == 0:
            raise ValueError("graph has no path steps to sample")
        targets = np.minimum((rng_uniform * total).astype(np.int64), total - 1)
        return np.searchsorted(self._cum_steps, targets, side="right") - 1

    def memory_bytes(self) -> int:
        """Footprint of the index arrays (excludes the lazy node index)."""
        return int(self._cum_steps.nbytes + self._path_weights.nbytes)
