"""Property-based invariants of the multilevel coarsening pipeline (hypothesis).

Randomised adversarial lean graphs — duplicate steps, zero-length nodes,
path-less nodes, reverse orientations, repeated spans — against the
contraction contract, at every level of the hierarchy:

* the projection is **total and single-valued**: every fine node maps to
  exactly one coarse node, and the chain membership listing is a permutation
  of the fine node ids;
* **path sequence order is preserved**: expanding each coarse step into its
  chain members reproduces the fine step sequence verbatim;
* **nucleotide lengths are preserved**: per node-sum, per path and per step
  position (reference distances are differences of step positions, so this
  is what keeps the schedule's distance model honest);
* ``prolongate`` after ``restrict`` **touches every node** with finite
  coordinates and round-trips the coarse layout exactly.

``hypothesis`` is an optional dev dependency: when it is not installed the
module skips at collection time, like ``test_update_properties.py``.
"""
from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.layout import Layout  # noqa: E402
from repro.graph import LeanGraph  # noqa: E402
from repro.multilevel import (  # noqa: E402
    build_hierarchy,
    coarsen_graph,
    prolongate,
    restrict,
)

COMMON_SETTINGS = settings(deadline=None, max_examples=60)


@st.composite
def lean_graphs(draw) -> LeanGraph:
    """Small adversarial lean graphs: arbitrary revisits and orientations."""
    n_nodes = draw(st.integers(min_value=1, max_value=14))
    node_lengths = draw(st.lists(st.integers(min_value=0, max_value=9),
                                 min_size=n_nodes, max_size=n_nodes))
    n_paths = draw(st.integers(min_value=1, max_value=4))
    node_ids = st.integers(min_value=0, max_value=n_nodes - 1)
    paths = []
    orientations = []
    for _ in range(n_paths):
        steps = draw(st.lists(node_ids, min_size=1, max_size=20))
        paths.append(steps)
        orientations.append(draw(st.lists(st.booleans(), min_size=len(steps),
                                          max_size=len(steps))))
    return LeanGraph.from_paths(node_lengths, paths,
                                orientations=orientations)


def _assert_level_invariants(level) -> None:
    fine, coarse = level.fine, level.coarse
    # Total, single-valued projection over the full fine node range.
    assert level.projection.shape == (fine.n_nodes,)
    assert level.projection.min() >= 0
    assert level.projection.max() == level.n_coarse - 1
    np.testing.assert_array_equal(np.sort(level.chain_members),
                                  np.arange(fine.n_nodes))
    # Members agree with the projection and chain offsets.
    np.testing.assert_array_equal(
        level.projection[level.chain_members],
        np.repeat(np.arange(level.n_coarse), level.chain_sizes()))
    # Nucleotide mass is conserved globally and per chain.
    assert coarse.total_sequence_length == fine.total_sequence_length
    summed = np.zeros(level.n_coarse, dtype=np.int64)
    np.add.at(summed, level.projection, fine.node_lengths)
    np.testing.assert_array_equal(summed, coarse.node_lengths)
    # Paths: same count, same names, order-preserving expansion, same spans.
    assert coarse.n_paths == fine.n_paths
    co, cm = level.chain_offsets, level.chain_members
    for p in range(fine.n_paths):
        fine_steps = fine.step_nodes[fine.path_steps(p)]
        coarse_steps = coarse.step_nodes[coarse.path_steps(p)]
        if coarse_steps.size:
            expanded = np.concatenate([cm[co[c]:co[c + 1]]
                                       for c in coarse_steps])
        else:
            expanded = np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(expanded, fine_steps)
        assert (coarse.path_nucleotide_length(p)
                == fine.path_nucleotide_length(p))
        # Coarse step positions are the fine positions of the chain heads.
        heads_mask = np.isin(fine_steps, cm[co[:-1]])
        np.testing.assert_array_equal(
            coarse.step_positions[coarse.path_steps(p)],
            fine.step_positions[fine.path_steps(p)][heads_mask])


class TestCoarseningInvariants:
    @COMMON_SETTINGS
    @given(lean_graphs())
    def test_single_round_invariants(self, graph):
        _assert_level_invariants(coarsen_graph(graph))

    @COMMON_SETTINGS
    @given(lean_graphs(), st.integers(min_value=1, max_value=4))
    def test_capped_round_invariants(self, graph, cap):
        level = coarsen_graph(graph, max_chain=cap)
        assert int(level.chain_sizes().max(initial=0)) <= cap
        _assert_level_invariants(level)

    @COMMON_SETTINGS
    @given(lean_graphs(), st.integers(min_value=2, max_value=4))
    def test_hierarchy_invariants_at_every_level(self, graph, max_levels):
        hierarchy = build_hierarchy(graph, max_levels, min_nodes=1)
        assert hierarchy.depth <= max_levels
        counts = hierarchy.node_counts()
        assert all(a > b for a, b in zip(counts, counts[1:]))
        for level in hierarchy.levels:
            _assert_level_invariants(level)

    @COMMON_SETTINGS
    @given(lean_graphs())
    def test_coarsening_is_deterministic(self, graph):
        a, b = coarsen_graph(graph), coarsen_graph(graph)
        np.testing.assert_array_equal(a.projection, b.projection)
        np.testing.assert_array_equal(a.chain_members, b.chain_members)
        np.testing.assert_array_equal(a.coarse.step_nodes, b.coarse.step_nodes)
        np.testing.assert_array_equal(a.coarse.step_positions,
                                      b.coarse.step_positions)


class TestTransferInvariants:
    @COMMON_SETTINGS
    @given(lean_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_prolongate_restrict_roundtrip_touches_every_node(self, graph, seed):
        level = coarsen_graph(graph)
        rng = np.random.default_rng(seed)
        coarse = Layout(rng.uniform(-100.0, 100.0,
                                    size=(2 * level.n_coarse, 2)))
        fine = prolongate(coarse, level)
        # Total operator: every fine node receives finite coordinates.
        assert fine.n_nodes == graph.n_nodes
        assert np.isfinite(fine.coords).all()
        # Members never leave their coarse segment's bounding box.
        starts = coarse.coords[0::2][level.projection]
        ends = coarse.coords[1::2][level.projection]
        lo = np.minimum(starts, ends) - 1e-9
        hi = np.maximum(starts, ends) + 1e-9
        assert np.all((fine.coords[0::2] >= lo) & (fine.coords[0::2] <= hi))
        assert np.all((fine.coords[1::2] >= lo) & (fine.coords[1::2] <= hi))
        # The adjoint restriction reproduces the coarse layout.
        back = restrict(fine, level)
        np.testing.assert_allclose(back.coords, coarse.coords, atol=1e-9)
