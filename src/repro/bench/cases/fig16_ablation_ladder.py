"""Fig. 16 — speedup through successive optimisations.

Builds the full optimisation ladder on the Chr.1-like graph: CPU baseline,
CPU + cache-friendly data layout, base CUDA kernel, then the three GPU kernel
optimisations added one at a time. The paper's anchors: CPU+CDL ≈ 3.1×,
base CUDA ≈ 14.6×, fully optimized ≈ 27.7× over the CPU baseline.
"""
from __future__ import annotations

from ..perfmodel import ablation_ladder
from ..registry import CaseResult, bench_case
from ..tables import format_table

PAPER_SPEEDUPS = {
    "cpu-baseline": 1.0,
    "cpu+cdl": 3.1,
    "gpu-base": 14.6,
    "gpu+cdl+crs+wm": 27.7,
}

ORDER = ["cpu-baseline", "cpu+cdl", "gpu-base", "gpu+cdl", "gpu+cdl+crs", "gpu+cdl+crs+wm"]


@bench_case("fig16_ablation_ladder", source="Fig. 16", suites=("figures",))
def run(ctx) -> CaseResult:
    """Each successive optimisation stage strictly improves the modelled time."""
    ladder = ablation_ladder(ctx.chr1_graph, ctx.bench_params, n_trace_terms=1536,
                             seed=ctx.seed_for("fig16/profile"))

    base = ladder["cpu-baseline"]
    rows = []
    for stage in ORDER:
        speedup = base / ladder[stage]
        rows.append([stage, f"{ladder[stage]:.3g}", f"{speedup:.1f}x",
                     f"{PAPER_SPEEDUPS.get(stage, float('nan')):.1f}x"
                     if stage in PAPER_SPEEDUPS else "-"])

    # Orderings the paper reports (the reproduction target is the shape).
    assert ladder["cpu+cdl"] < ladder["cpu-baseline"]
    assert ladder["gpu-base"] < ladder["cpu-baseline"]
    assert ladder["gpu+cdl"] < ladder["gpu-base"]
    assert ladder["gpu+cdl+crs"] < ladder["gpu+cdl"]
    assert ladder["gpu+cdl+crs+wm"] < ladder["gpu+cdl+crs"]
    # Magnitude bands (generous): CPU+CDL gives a clear win, the GPU base
    # kernel is >4x over the CPU, the full ladder is >8x, and the three kernel
    # optimisations together roughly double the base kernel (paper: 14.6x ->
    # 27.7x, i.e. 1.9x).
    assert base / ladder["cpu+cdl"] > 1.3
    assert base / ladder["gpu-base"] > 4.0
    assert base / ladder["gpu+cdl+crs+wm"] > 8.0
    assert ladder["gpu-base"] / ladder["gpu+cdl+crs+wm"] > 1.4

    out = CaseResult(graph_properties=ctx.graph_properties(ctx.chr1_graph))
    for stage in ORDER:
        out.add(f"time_{stage.replace('+', '_')}_s", ladder[stage],
                unit="s(model)", direction="lower")
    out.add("full_ladder_speedup", base / ladder["gpu+cdl+crs+wm"],
            unit="x", direction="higher")
    out.add("kernel_opt_speedup", ladder["gpu-base"] / ladder["gpu+cdl+crs+wm"],
            unit="x", direction="higher")

    out.tables.append(format_table(
        ["Stage", "Modelled time (s)", "Speedup", "Paper speedup"],
        rows,
        title="Fig. 16: speedup through successive optimisations (Chr.1-like)",
    ))
    return out
