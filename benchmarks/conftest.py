"""Shared fixtures for the benchmark harness.

Every benchmark module is a thin pytest shim over a case registered in
:mod:`repro.bench.cases`. The only fixture the shims need is ``bench_ctx`` —
a session-scoped :class:`repro.bench.context.BenchContext` carrying the
cached datasets and the **single master seed** every stochastic choice is
derived from. Override the seed with ``--bench-master-seed`` (or the
``BENCH_MASTER_SEED`` environment variable) to replicate a run under
different randomness; with the same seed, two sessions produce byte-identical
metric values.
"""
from __future__ import annotations

import os

import pytest

from repro.bench.context import DEFAULT_MASTER_SEED, BenchContext


def pytest_addoption(parser):
    parser.addoption(
        "--bench-master-seed",
        default=None,
        help="master seed threaded through every benchmark case "
             f"(default: {DEFAULT_MASTER_SEED}, env: BENCH_MASTER_SEED)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_table(id): which paper element a benchmark reproduces"
    )


@pytest.fixture(scope="session")
def bench_ctx(request) -> BenchContext:
    """The shared benchmark context (datasets + master-seeded randomness)."""
    raw = request.config.getoption("--bench-master-seed")
    if raw is None:
        raw = os.environ.get("BENCH_MASTER_SEED", DEFAULT_MASTER_SEED)
    try:
        seed = int(raw)
    except ValueError:
        raise pytest.UsageError(
            f"invalid benchmark master seed {raw!r} "
            "(from --bench-master-seed or BENCH_MASTER_SEED)"
        ) from None
    return BenchContext(master_seed=seed)
