"""Golden-layout regression test: end-to-end byte-level determinism.

A tiny fixture pangenome (``tests/data/golden/tiny.gfa``) is laid out by all
three batched engines at the default seed (odgi's 9399) and the resulting
``.lay`` bytes are compared against committed golden files. This pins the
*whole* pipeline — GFA parsing, lean-graph construction, initialisation,
PRNG streams, sampler draw order, schedule, update kernels, ``.lay``
serialisation — so any refactor that silently changes a layout (a reordered
draw, a different reduction order, a backend that isn't byte-faithful on
the default path) fails here with a precise diff, not as a mysterious smoke
baseline drift.

Regenerating (only when a layout change is *intended*, e.g. a draw-order
rework — the same commits that must regenerate the smoke baseline)::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_layout.py

and commit the rewritten ``tests/data/golden/*.lay`` with the change.
"""
from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import LayoutParams, layout_graph
from repro.graph import LeanGraph, parse_gfa
from repro.io import read_lay, write_lay

GOLDEN_DIR = Path(__file__).parent / "data" / "golden"
ENGINES = ("cpu", "batch", "gpu")

#: Stock parameters at odgi's default seed; small enough that the full
#: three-engine run stays under a second on the 12-node fixture.
GOLDEN_PARAMS = LayoutParams(seed=9399)


@pytest.fixture(scope="module")
def golden_graph() -> LeanGraph:
    graph = parse_gfa(GOLDEN_DIR / "tiny.gfa")
    lean = LeanGraph.from_variation_graph(graph)
    # The fixture is part of the contract: changing it invalidates the goldens.
    assert lean.n_nodes == 12
    assert lean.n_paths == 3
    assert lean.total_steps == 28
    return lean


def _lay_bytes(graph: LeanGraph, engine: str) -> bytes:
    result = layout_graph(graph, engine=engine, params=GOLDEN_PARAMS)
    buf = io.BytesIO()
    write_lay(result.layout, buf)
    return buf.getvalue()


@pytest.mark.parametrize("engine", ENGINES)
def test_layout_matches_golden_bytes(golden_graph, engine):
    golden_path = GOLDEN_DIR / f"tiny_{engine}.lay"
    produced = _lay_bytes(golden_graph, engine)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        golden_path.write_bytes(produced)
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path.name}; run with "
        "REPRO_REGEN_GOLDEN=1 to create it")
    expected = golden_path.read_bytes()
    if produced != expected:
        got = read_lay(io.BytesIO(produced)).coords
        want = read_lay(io.BytesIO(expected)).coords
        worst = float(np.abs(got - want).max())
        raise AssertionError(
            f"{engine} layout diverged from {golden_path.name}: "
            f"max |Δcoord| = {worst:.3e}. If this change is intended "
            "(sampler draw order / schedule / kernel rework), regenerate the "
            "goldens AND the smoke baseline in this commit.")


@pytest.mark.parametrize("engine", ENGINES)
def test_layout_is_run_to_run_deterministic(golden_graph, engine):
    assert _lay_bytes(golden_graph, engine) == _lay_bytes(golden_graph, engine)


def test_goldens_differ_across_engines(golden_graph):
    """The three engines batch differently, so their layouts must differ —
    guards against a fixture so degenerate the golden test can't discriminate."""
    blobs = {engine: (GOLDEN_DIR / f"tiny_{engine}.lay").read_bytes()
             for engine in ENGINES
             if (GOLDEN_DIR / f"tiny_{engine}.lay").exists()}
    if len(blobs) < len(ENGINES):
        pytest.skip("goldens not generated yet")
    assert len(set(blobs.values())) == len(ENGINES)
