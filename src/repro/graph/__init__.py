"""Variation-graph substrate (ODGI stand-in).

Provides the full mutable graph model, GFA v1 I/O, the lean array-based
structure consumed by the layout engines, the XP-style path index used for
reference-distance queries, statistics for the paper's dataset tables, and
structural validation.
"""
from .variation_graph import VariationGraph, Node, Edge, Path, Step
from .gfa import parse_gfa, parse_gfa_text, write_gfa, gfa_to_text, GFAError
from .lean import LeanGraph, ODGI_NODE_OVERHEAD_BYTES, LEAN_NODE_BYTES
from .path_index import PathIndex
from .stats import GraphStats, compute_stats, aggregate_stats, estimate_edge_count
from .validate import ValidationReport, validate_graph, validate_lean
from .builder import (
    Variant,
    snv,
    insertion,
    deletion,
    GraphBuilder,
    build_from_variants,
    figure1_example,
)

__all__ = [
    "VariationGraph",
    "Node",
    "Edge",
    "Path",
    "Step",
    "parse_gfa",
    "parse_gfa_text",
    "write_gfa",
    "gfa_to_text",
    "GFAError",
    "LeanGraph",
    "ODGI_NODE_OVERHEAD_BYTES",
    "LEAN_NODE_BYTES",
    "PathIndex",
    "GraphStats",
    "compute_stats",
    "aggregate_stats",
    "estimate_edge_count",
    "ValidationReport",
    "validate_graph",
    "validate_lean",
    "Variant",
    "snv",
    "insertion",
    "deletion",
    "GraphBuilder",
    "build_from_variants",
    "figure1_example",
]
