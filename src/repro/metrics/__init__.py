"""Layout-quality metrics: path stress, sampled path stress, quality bands."""
from .stress import pair_stress_terms, path_stress, count_path_pairs
from .sampled_stress import (
    SampledStress,
    sampled_path_stress,
    sample_step_pairs,
    tail_pair_stress,
    stress_ratio,
    correlation_study,
)
from .quality import (
    QualityBand,
    classify_quality,
    GOOD_THRESHOLD,
    SATISFYING_THRESHOLD,
)

__all__ = [
    "pair_stress_terms",
    "path_stress",
    "count_path_pairs",
    "SampledStress",
    "sampled_path_stress",
    "sample_step_pairs",
    "tail_pair_stress",
    "stress_ratio",
    "correlation_study",
    "QualityBand",
    "classify_quality",
    "GOOD_THRESHOLD",
    "SATISFYING_THRESHOLD",
]
