"""Rasterisation of layouts to pixel grids and PPM images.

Complements the SVG renderer with a dependency-free raster backend: segments
are drawn into a NumPy occupancy grid (useful for programmatic comparison of
two layouts, e.g. CPU vs GPU renderings in the Fig. 14 style example) and can
be written out as binary PPM images viewable by any image tool.
"""
from __future__ import annotations

import os
from typing import Union

import numpy as np

from ..core.layout import Layout

__all__ = ["rasterize", "layout_similarity", "write_ppm"]


def rasterize(
    layout: Layout, width: int = 400, height: int = 240, supersample: int = 1
) -> np.ndarray:
    """Draw the layout's segments into a ``(height, width)`` float grid.

    Returns an intensity image in [0, 1]; overlapping segments accumulate and
    are clipped. ``supersample`` draws on a finer grid and box-downsamples,
    reducing aliasing for comparison metrics.
    """
    if width < 2 or height < 2 or supersample < 1:
        raise ValueError("invalid raster dimensions")
    W, H = width * supersample, height * supersample
    grid = np.zeros((H, W), dtype=np.float64)
    coords = layout.coords
    min_x, min_y, max_x, max_y = layout.bounding_box()
    # Degenerate bounding boxes (single-node or fully contracted layouts)
    # must not divide by zero: an axis without extent maps every coordinate
    # to pixel 0 instead of stretching float noise across the grid.
    span_x = max_x - min_x
    span_y = max_y - min_y
    sx = (W - 1) / span_x if span_x > 0 else 0.0
    sy = (H - 1) / span_y if span_y > 0 else 0.0
    starts = coords[0::2]
    ends = coords[1::2]
    # Sample each segment at a resolution proportional to its pixel length.
    for (x0, y0), (x1, y1) in zip(starts, ends):
        px0, py0 = (x0 - min_x) * sx, (y0 - min_y) * sy
        px1, py1 = (x1 - min_x) * sx, (y1 - min_y) * sy
        length = max(abs(px1 - px0), abs(py1 - py0))
        n_samples = int(length) + 2
        t = np.linspace(0.0, 1.0, n_samples)
        xs = np.clip(np.round(px0 + (px1 - px0) * t).astype(int), 0, W - 1)
        ys = np.clip(np.round(py0 + (py1 - py0) * t).astype(int), 0, H - 1)
        grid[ys, xs] += 1.0
    if supersample > 1:
        grid = grid.reshape(height, supersample, width, supersample).mean(axis=(1, 3))
    if grid.max() > 0:
        grid = grid / grid.max()
    return grid


def layout_similarity(a: Layout, b: Layout, width: int = 200, height: int = 120) -> float:
    """Cosine similarity between two layouts' rasterisations (0..1).

    Used by the CPU-vs-GPU qualitative comparison (Fig. 14): two layouts of
    the same graph that reveal the same structure rasterise to similar
    occupancy patterns even if rotated details differ slightly.
    """
    ga = rasterize(a, width, height).ravel()
    gb = rasterize(b, width, height).ravel()
    na, nb = np.linalg.norm(ga), np.linalg.norm(gb)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.dot(ga, gb) / (na * nb))


def write_ppm(grid: np.ndarray, destination: Union[str, os.PathLike]) -> None:
    """Write an intensity grid as a binary greyscale PPM (P6) image."""
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError("grid must be 2-D")
    img = (255 * (1.0 - np.clip(grid, 0.0, 1.0))).astype(np.uint8)  # dark on white
    h, w = img.shape
    rgb = np.repeat(img[:, :, None], 3, axis=2)
    header = f"P6\n{w} {h}\n255\n".encode("ascii")
    with open(destination, "wb") as handle:
        handle.write(header)
        handle.write(rgb.tobytes())
