"""Multilevel coarsening pipeline: path-preserving hierarchy + V-cycle driver.

Contracts runs of nodes traversed identically by every path into a hierarchy
of progressively smaller lean graphs (:mod:`repro.multilevel.coarsen`), lifts
coarse solutions back down by cumulative sequence offset
(:mod:`repro.multilevel.prolong`), and drives any flat layout engine coarse
to fine (:mod:`repro.multilevel.driver`). Enabled through
``LayoutParams(levels=N)`` / ``repro layout --levels N``.
"""
from .coarsen import (
    CoarseningLevel,
    Hierarchy,
    build_hierarchy,
    chain_merge_links,
    coarsen_graph,
)
from .driver import MultilevelDriver, split_iterations
from .prolong import prolongate, restrict

__all__ = [
    "CoarseningLevel",
    "Hierarchy",
    "build_hierarchy",
    "chain_merge_links",
    "coarsen_graph",
    "MultilevelDriver",
    "split_iterations",
    "prolongate",
    "restrict",
]
