"""Pytest shim for the fig13_correlation benchmark case.

The case body lives in :mod:`repro.bench.cases.fig13_correlation`. Run it directly
with ``python benchmarks/bench_fig13_correlation.py``, through ``pytest
benchmarks/bench_fig13_correlation.py``, or as part of ``repro bench run``.
"""
from __future__ import annotations

import pytest

from repro.bench.cases.fig13_correlation import run as case_run

_CASE = case_run.case


@pytest.mark.paper_table(_CASE.source)
def test_fig13_correlation(bench_ctx):
    result = _CASE.run(bench_ctx)
    for table in result.tables:
        print()
        print(table)


if __name__ == "__main__":
    from repro.bench.runner import run_case

    run_case(_CASE.name)
