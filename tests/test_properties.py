"""Property-based tests (hypothesis) on core data structures and invariants."""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import format_hms, geometric_mean
from repro.core import (
    LayoutParams,
    PairSampler,
    apply_batch,
    initialize_layout,
    make_schedule,
    zipf_hop_distances,
)
from repro.core.layout import Layout, NodeDataLayout, node_record_addresses
from repro.graph import LeanGraph
from repro.gpusim import merge_branch_decisions, sectors_for_request, simulate_warp_execution
from repro.io import read_lay, write_lay
from repro.metrics import path_stress, sampled_path_stress
from repro.prng import Xoshiro256Plus, seed_streams
import io


# ---------------------------------------------------------------- strategies
@st.composite
def lean_graphs(draw):
    """Random small lean graphs: valid node lengths and same-node-set paths."""
    n_nodes = draw(st.integers(min_value=2, max_value=40))
    lengths = draw(st.lists(st.integers(min_value=1, max_value=50),
                            min_size=n_nodes, max_size=n_nodes))
    n_paths = draw(st.integers(min_value=1, max_value=5))
    paths = []
    for _ in range(n_paths):
        length = draw(st.integers(min_value=2, max_value=30))
        path = draw(st.lists(st.integers(min_value=0, max_value=n_nodes - 1),
                             min_size=length, max_size=length))
        paths.append(path)
    return LeanGraph.from_paths(lengths, paths)


settings.register_profile(
    "repro", deadline=None, max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


class TestGraphProperties:
    @given(lean_graphs())
    def test_step_positions_monotone_per_path(self, graph):
        for p in range(graph.n_paths):
            sl = graph.path_steps(p)
            assert np.all(np.diff(graph.step_positions[sl]) >= 0)

    @given(lean_graphs())
    def test_positions_consistent_with_lengths(self, graph):
        for p in range(graph.n_paths):
            sl = graph.path_steps(p)
            nodes = graph.step_nodes[sl]
            expected = np.concatenate(([0], np.cumsum(graph.node_lengths[nodes])[:-1]))
            assert np.array_equal(graph.step_positions[sl], expected)

    @given(lean_graphs())
    def test_offsets_partition_steps(self, graph):
        assert graph.path_offsets[0] == 0
        assert graph.path_offsets[-1] == graph.total_steps
        assert int(graph.path_step_counts.sum()) == graph.total_steps


class TestSamplerProperties:
    @given(lean_graphs(), st.integers(min_value=1, max_value=200),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_sampled_pairs_share_a_path(self, graph, batch_size, seed):
        params = LayoutParams(seed=seed)
        sampler = PairSampler(graph, params)
        rng = Xoshiro256Plus(seed, n_streams=64)
        batch = sampler.sample(rng, batch_size, iteration=0)
        offsets = graph.path_offsets
        assert np.all(batch.flat_i >= offsets[batch.path])
        assert np.all(batch.flat_i < offsets[batch.path + 1])
        assert np.all(batch.flat_j >= offsets[batch.path])
        assert np.all(batch.flat_j < offsets[batch.path + 1])
        assert np.all(batch.d_ref >= 0)
        assert np.all((batch.vis_i == 0) | (batch.vis_i == 1))

    @given(lean_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_update_preserves_finiteness(self, graph, seed):
        params = LayoutParams(seed=seed)
        layout = initialize_layout(graph, seed=seed)
        sampler = PairSampler(graph, params)
        rng = Xoshiro256Plus(seed, n_streams=64)
        sched = make_schedule(graph, params)
        batch = sampler.sample(rng, 64, iteration=0)
        apply_batch(layout.coords, batch, float(sched[0]))
        assert np.all(np.isfinite(layout.coords))


class TestScheduleProperties:
    @given(lean_graphs(), st.integers(min_value=2, max_value=60))
    def test_schedule_positive_and_decreasing(self, graph, iters):
        sched = make_schedule(graph, LayoutParams(iter_max=iters))
        assert sched.shape == (iters,)
        assert np.all(sched > 0)
        assert np.all(np.diff(sched) <= 0)


class TestZipfProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
                    min_size=1, max_size=200),
           st.floats(min_value=0.3, max_value=2.5),
           st.integers(min_value=1, max_value=5000))
    def test_zipf_in_range(self, uniforms, theta, space_max):
        hops = zipf_hop_distances(np.array(uniforms), theta, space_max)
        assert np.all(hops >= 1)
        assert np.all(hops <= space_max)


class TestMetricProperties:
    @given(lean_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_stress_non_negative_and_sampled_consistent(self, graph, seed):
        layout = initialize_layout(graph, seed=seed)
        exact = path_stress(layout, graph, max_pairs=200_000)
        sampled = sampled_path_stress(layout, graph, samples_per_step=30, seed=seed)
        assert exact >= 0
        assert sampled.value >= 0
        assert sampled.ci_low <= sampled.value <= sampled.ci_high

    @given(st.lists(st.integers(min_value=1, max_value=40), min_size=3, max_size=40),
           st.floats(min_value=0.25, max_value=20.0),
           st.integers(min_value=0, max_value=1000))
    def test_uniform_scaling_of_a_converged_layout_increases_stress(self, lengths, factor, seed):
        # Stress is zero-minimised at the correct distances: for a single-path
        # line graph whose layout places every node exactly at its path
        # position, the path stress is 0, and any uniform rescaling away from
        # the reference distances can only increase it.
        graph = LeanGraph.from_paths(lengths, [list(range(len(lengths)))])
        coords = np.zeros((2 * graph.n_nodes, 2))
        sl = graph.path_steps(0)
        for flat in range(sl.start, sl.stop):
            node = graph.step_nodes[flat]
            coords[2 * node] = (graph.step_positions[flat], 0.0)
            coords[2 * node + 1] = (graph.step_positions[flat], 0.0)
        base = Layout(coords)
        scaled = Layout(coords * factor)
        s_base = sampled_path_stress(base, graph, samples_per_step=20, seed=seed).value
        s_scaled = sampled_path_stress(scaled, graph, samples_per_step=20, seed=seed).value
        assert s_base == pytest.approx(0.0, abs=1e-12)
        assert s_scaled >= s_base - 1e-12


class TestAddressProperties:
    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=2, max_value=10_000))
    def test_aos_record_addresses_stay_in_record(self, n_requests, n_nodes):
        rng = np.random.default_rng(n_requests)
        nodes = rng.integers(0, n_nodes, size=n_requests)
        endpoints = rng.integers(0, 2, size=n_requests)
        addrs = node_record_addresses(nodes, endpoints, NodeDataLayout.AOS, n_nodes)
        record_start = nodes * 40
        assert np.all(addrs[:, 0] >= record_start)
        assert np.all(addrs.max(axis=1) < record_start + 40)

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=8, max_value=128))
    def test_sectors_bounded(self, n_threads, access_bytes, sector_bytes):
        rng = np.random.default_rng(n_threads * access_bytes)
        addrs = rng.integers(0, 1 << 20, size=n_threads)
        sectors = sectors_for_request(addrs, access_bytes, sector_bytes)
        max_possible = n_threads * (1 + (access_bytes - 1) // sector_bytes + 1)
        assert 1 <= sectors <= max_possible


class TestWarpProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=256),
           st.integers(min_value=1, max_value=64))
    def test_merged_decisions_uniform_per_warp(self, decisions, warp_size):
        arr = np.array(decisions, dtype=bool)
        merged = merge_branch_decisions(arr, warp_size)
        for start in range(0, arr.size, warp_size):
            chunk = merged[start:start + warp_size]
            assert np.all(chunk == chunk[0])

    @given(st.lists(st.booleans(), min_size=1, max_size=512))
    def test_merging_never_increases_instructions(self, decisions):
        arr = np.array(decisions, dtype=bool)
        plain = simulate_warp_execution(arr, warp_merging=False)
        merged = simulate_warp_execution(arr, warp_merging=True)
        assert merged.executed_instructions <= plain.executed_instructions
        assert merged.avg_active_threads >= plain.avg_active_threads - 1e-9


class TestRoundTripProperties:
    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_lay_round_trip_arbitrary_coords(self, n_nodes, seed):
        rng = np.random.default_rng(seed)
        layout = Layout(rng.normal(0, 1e6, size=(2 * n_nodes, 2)))
        buf = io.BytesIO()
        write_lay(layout, buf)
        buf.seek(0)
        assert np.array_equal(read_lay(buf).coords, layout.coords)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_format_hms_parses_back(self, seconds):
        text = format_hms(seconds)
        h, m, s = text.split(":")
        assert int(h) * 3600 + int(m) * 60 + int(s) == seconds
        assert 0 <= int(m) < 60 and 0 <= int(s) < 60


class TestPrngProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1),
           st.integers(min_value=1, max_value=128))
    def test_seed_streams_shape_and_nonzero(self, seed, n):
        words = seed_streams(seed, n)
        assert words.shape == (n, 4)
        assert not np.any(np.all(words == 0, axis=1))

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=1_000_000))
    def test_next_below_always_in_range(self, seed, n_streams, bound):
        gen = Xoshiro256Plus(seed, n_streams=n_streams)
        vals = gen.next_below(bound)
        assert np.all((vals >= 0) & (vals < bound))

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=30))
    def test_geometric_mean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= gm <= max(values) * (1 + 1e-9)
