"""Layout parameters shared by every PG-SGD engine.

The defaults follow ``odgi-layout`` (and the paper's experimental setup):
30 iterations, ``N_steps = 10 × Σ|p|`` updates per iteration, a Zipf-like
"cooling" node-pair distribution that activates in the second half of the
run, and the Zheng-et-al. exponentially decaying learning-rate schedule.

For the scaled datasets used in this reproduction the per-iteration step
budget is configurable (``steps_per_step_unit``), because the paper's 10×
multiplier targets million-node graphs; the ratios studied in the benchmarks
are insensitive to the multiplier.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["LayoutParams"]


@dataclass(frozen=True)
class LayoutParams:
    """Hyper-parameters of the path-guided SGD layout (Alg. 1)."""

    iter_max: int = 30
    """Total number of outer iterations (N_iters in Alg. 1)."""

    steps_per_step_unit: float = 10.0
    """Updates per iteration expressed as a multiple of Σ|p| (paper: 10)."""

    min_term_updates: int = 10
    """Lower bound on updates per iteration for tiny graphs."""

    eps: float = 0.01
    """Learning-rate floor parameter (η_min = eps / w_max)."""

    eta_max: Optional[float] = None
    """Explicit η_max override; default is d_max² (1 / w_min)."""

    cooling_start: float = 0.5
    """Fraction of iterations after which every step uses the cooling branch."""

    zipf_theta: float = 0.99
    """Exponent of the Zipf distribution used for cooling node-pair selection."""

    zipf_space_max: int = 1000
    """Maximum hop distance the Zipf cooling distribution can select."""

    seed: int = 9399
    """PRNG seed (odgi-layout's default seed is 9399 for the path SGD)."""

    n_threads: int = 1
    """Simulated worker count for the Hogwild CPU baseline."""

    batch_size: int = 65536
    """Node-pair batch size for the batched (PyTorch-style) engine."""

    record_history: bool = False
    """Whether engines record per-iteration stress snapshots."""

    merge_policy: str = "hogwild"
    """Write-merge policy for colliding in-batch updates (``hogwild`` /
    ``accumulate`` / ``last_writer``; see :mod:`repro.core.updates`)."""

    backend: Optional[str] = None
    """Execution backend name (see :mod:`repro.backend`). ``None`` resolves
    via the ``REPRO_BACKEND`` environment variable, then ``"numpy"``; the
    name is validated when the engine is constructed, so an unavailable
    backend fails fast with the recorded reason."""

    fused: Optional[bool] = None
    """Fused per-iteration execution path (:mod:`repro.core.fused`): run
    selection + displacement + merge for a whole iteration as one backend
    dispatch instead of one ``sample``/``apply_batch`` round trip per batch.
    ``None`` (auto, the default) fuses whenever the backend advertises a
    fused kernel and the engine uses the stock batch hooks; ``False`` forces
    the per-batch loop. Engines that override ``draw_batch``/``on_batch``
    (the batched PyTorch-style engine's kernel accounting, the GPU engine's
    warp merging) and history-recording runs always take the unfused path so
    their per-batch hooks keep firing. Fused and unfused layouts are
    byte-identical on the NumPy backend."""

    levels: int = 1
    """Maximum depth of the multilevel coarsening hierarchy
    (:mod:`repro.multilevel`). ``1`` (the default) runs the flat engine
    untouched; ``N > 1`` coarsens up to ``N - 1`` times and optimises coarse
    to fine."""

    coarsen_min_nodes: int = 32
    """Coarsening stops once a hierarchy level has this many nodes or fewer
    (tiny graphs gain nothing from further contraction)."""

    level_iter_split: float = 0.5
    """Fraction of the remaining iteration budget handed to the *coarser*
    part of the hierarchy at each level boundary (strictly between 0 and 1);
    see :func:`repro.multilevel.split_iterations`."""

    def __post_init__(self) -> None:
        if self.iter_max < 1:
            raise ValueError("iter_max must be >= 1")
        if self.steps_per_step_unit <= 0:
            raise ValueError("steps_per_step_unit must be positive")
        if self.min_term_updates < 1:
            raise ValueError("min_term_updates must be >= 1")
        if self.eps <= 0:
            raise ValueError("eps must be positive")
        if not 0.0 <= self.cooling_start <= 1.0:
            raise ValueError("cooling_start must lie in [0, 1]")
        if self.zipf_theta <= 0:
            raise ValueError("zipf_theta must be positive")
        if self.zipf_space_max < 1:
            raise ValueError("zipf_space_max must be >= 1")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.merge_policy not in ("hogwild", "accumulate", "last_writer"):
            raise ValueError(
                "merge_policy must be 'hogwild', 'accumulate' or 'last_writer'")
        if self.backend is not None and (not isinstance(self.backend, str)
                                         or not self.backend):
            raise ValueError("backend must be None or a non-empty backend name")
        if self.fused is not None and not isinstance(self.fused, bool):
            raise ValueError("fused must be None (auto), True or False")
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if self.coarsen_min_nodes < 1:
            raise ValueError("coarsen_min_nodes must be >= 1")
        if not 0.0 < self.level_iter_split < 1.0:
            raise ValueError("level_iter_split must lie strictly between 0 and 1")

    def with_(self, **kwargs) -> "LayoutParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def steps_per_iteration(self, total_path_steps: int) -> int:
        """N_steps for a graph with ``total_path_steps`` = Σ|p| (Alg. 1 line 1)."""
        return max(self.min_term_updates, int(self.steps_per_step_unit * total_path_steps))

    def first_cooling_iteration(self) -> int:
        """Iteration index at which the cooling branch becomes unconditional."""
        return int(self.cooling_start * self.iter_max)
