"""Fig. 12 — layouts of varying quality differentiated by path stress.

Generates four layouts of the HLA-DRB1-like graph spanning the quality range
(random, barely optimised, partially optimised, fully optimised) and shows
that the path-stress metric orders them correctly, as in the paper's Fig. 12
(142.2 → 22.4 → 1.3 → 0.07).
"""
from __future__ import annotations

from ...core import CpuBaselineEngine, LayoutParams
from ...core.layout import Layout
from ...metrics import sampled_path_stress
from ..registry import CaseResult, bench_case
from ..tables import format_table

PAPER_VALUES = [142.2, 22.4, 1.3, 0.07]


@bench_case("fig12_quality_levels", source="Fig. 12", suites=("figures",))
def run(ctx) -> CaseResult:
    """Sampled path stress strictly orders the quality ladder."""
    graph = ctx.hla_graph
    rng = ctx.rng("fig12/scramble")
    scrambled = Layout(rng.uniform(0, 2000.0, size=(2 * graph.n_nodes, 2)))

    # All three optimised layouts run the complete annealing schedule but
    # with increasing per-iteration step budgets, i.e. increasingly
    # converged results (truncating the schedule instead would leave the
    # layout at a large learning rate and produce garbage, not an
    # intermediate quality level).
    layouts = {"random": scrambled}
    for label, iters, steps in (("early", 8, 0.1), ("partial", 12, 0.6), ("converged", 20, 4.0)):
        params = LayoutParams(iter_max=iters, steps_per_step_unit=steps,
                              seed=ctx.seed_for(f"fig12/{label}"))
        layouts[label] = CpuBaselineEngine(graph, params).run(initial=scrambled).layout

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    rows = []
    values = []
    for (label, layout), paper in zip(layouts.items(), PAPER_VALUES):
        sps = sampled_path_stress(layout, graph, samples_per_step=25,
                                  seed=ctx.seed_for("fig12/sps"))
        values.append(sps.value)
        rows.append([label, f"{sps.value:.3g}", f"[{sps.ci_low:.3g}, {sps.ci_high:.3g}]", paper])
        out.add(f"stress_{label}", sps.value, direction="info")

    # The metric must strictly order the quality ladder, spanning orders of
    # magnitude between the random and the converged layout.
    assert values[0] > values[1] > values[3]
    assert values[2] > values[3]
    assert values[0] / max(values[3], 1e-9) > 50
    out.add("converged_sampled_stress", values[3], direction="lower")
    out.add("quality_dynamic_range", values[0] / max(values[3], 1e-9),
            unit="x", direction="higher")

    out.tables.append(format_table(
        ["Layout", "Sampled path stress", "95% CI", "Paper Fig.12 value"],
        rows,
        title="Fig. 12: path stress differentiates layout quality (HLA-DRB1-like)",
    ))
    return out
