"""Tests for the GPU execution-model simulator (caches, coalescing, warps, timing)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import (
    A100,
    CacheConfig,
    CacheHierarchy,
    CacheSimulator,
    DEVICES,
    MemoryTrafficProfile,
    RTX_A6000,
    WorkloadCounters,
    XEON_6246R,
    analyze_warp_requests,
    cpu_runtime,
    gpu_runtime,
    hogwild_thread_scaling,
    memory_bound_analysis,
    merge_branch_decisions,
    sectors_for_request,
    simulate_warp_execution,
)


class TestDevices:
    def test_registry(self):
        assert RTX_A6000.name in DEVICES and A100.name in DEVICES
        assert XEON_6246R.kind == "cpu"

    def test_a100_has_more_bandwidth(self):
        assert A100.dram_bandwidth_gbs > RTX_A6000.dram_bandwidth_gbs

    def test_derived_quantities(self):
        assert RTX_A6000.concurrent_threads == 84 * 32 * 48
        assert RTX_A6000.peak_gflops > 0


class TestCoalescing:
    def test_contiguous_floats_four_sectors(self):
        addrs = np.arange(32) * 4
        assert sectors_for_request(addrs, access_bytes=4, sector_bytes=32) == 4

    def test_strided_accesses_many_sectors(self):
        addrs = np.arange(32) * 128
        assert sectors_for_request(addrs, access_bytes=4, sector_bytes=32) == 32

    def test_straddling_access(self):
        # One 8-byte access crossing a sector boundary touches two sectors.
        assert sectors_for_request(np.array([28]), access_bytes=8, sector_bytes=32) == 2

    def test_empty_request(self):
        assert sectors_for_request(np.array([], dtype=np.int64)) == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sectors_for_request(np.array([0]), access_bytes=0)

    def test_analyze_warp_requests(self):
        report = analyze_warp_requests([np.arange(32) * 4, np.arange(32) * 128])
        assert report.n_requests == 2
        assert report.total_sectors == 36
        assert report.sectors_per_request == pytest.approx(18.0)
        assert report.bytes_transferred == 36 * 32


class TestCacheSimulator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size_bytes=1000, line_bytes=64, associativity=8)
        with pytest.raises(ValueError):
            CacheConfig("bad", size_bytes=0)

    def test_cold_miss_then_hit(self):
        cache = CacheSimulator(CacheConfig("L1", 4096, 64, 4))
        assert cache.access(0) is False
        assert cache.access(8) is True  # same line
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        # 1 set x 2 ways of 64-byte lines.
        cache = CacheSimulator(CacheConfig("L1", 128, 64, 2))
        assert cache.access(0) is False    # line A: cold miss
        assert cache.access(128) is False  # line B: cold miss (same set)
        assert cache.access(0) is True     # A still resident, now MRU
        assert cache.access(256) is False  # line C evicts the LRU line (B)
        assert cache.access(0) is True     # A survived the eviction
        assert cache.access(128) is False  # B was the one evicted

    def test_working_set_fits(self):
        cache = CacheSimulator(CacheConfig("L1", 64 * 1024, 64, 8))
        addrs = np.tile(np.arange(0, 32 * 1024, 64), 3)
        cache.access_trace(addrs)
        assert cache.stats.miss_rate < 0.4  # only cold misses

    def test_random_large_working_set_misses(self, rng):
        cache = CacheSimulator(CacheConfig("LLC", 64 * 1024, 64, 8))
        addrs = rng.integers(0, 512 * 1024 * 1024, size=4000)
        cache.access_trace(addrs)
        assert cache.stats.miss_rate > 0.9

    def test_reset(self):
        cache = CacheSimulator(CacheConfig("L1", 4096, 64, 4))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is False


class TestCacheHierarchy:
    def _hierarchy(self):
        return CacheHierarchy([
            CacheConfig("L1", 4 * 1024, 64, 4),
            CacheConfig("L2", 64 * 1024, 64, 8),
        ])

    def test_miss_propagates(self):
        h = self._hierarchy()
        assert h.access(0) == "DRAM"
        assert h.access(0) == "L1"
        assert h.dram_accesses == 1

    def test_l2_catches_l1_evictions(self, rng):
        h = self._hierarchy()
        # Working set bigger than L1 but smaller than L2.
        addrs = np.tile(np.arange(0, 32 * 1024, 64), 4)
        h.access_trace(addrs)
        stats = h.stats_by_level()
        assert stats["L2"].accesses == stats["L1"].misses
        assert h.dram_accesses <= stats["L2"].accesses

    def test_summary_keys(self):
        h = self._hierarchy()
        h.access(0)
        summary = h.summary()
        assert "L1_miss_rate" in summary and "dram_bytes" in summary

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestWarpModel:
    def test_merge_branch_decisions(self):
        cooling = np.array([True, False] * 32)
        merged = merge_branch_decisions(cooling, warp_size=32)
        assert np.all(merged[:32] == cooling[0])
        assert np.all(merged[32:] == cooling[32])

    def test_divergent_warp_lower_active_threads(self, rng):
        cooling = rng.random(32 * 64) < 0.5
        diverged = simulate_warp_execution(cooling, warp_merging=False)
        merged = simulate_warp_execution(cooling, warp_merging=True)
        assert merged.avg_active_threads > diverged.avg_active_threads
        assert merged.executed_instructions < diverged.executed_instructions
        assert diverged.avg_active_threads < 32
        assert merged.avg_active_threads == pytest.approx(32.0)

    def test_uniform_warp_no_divergence(self):
        cooling = np.ones(64, dtype=bool)
        stats = simulate_warp_execution(cooling)
        assert stats.avg_active_threads == pytest.approx(32.0)
        assert stats.divergence_overhead == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_warp_execution(np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValueError):
            simulate_warp_execution(np.zeros(4, dtype=bool), warp_size=0)


class TestTopDown:
    def test_memory_bound_dominates_for_high_miss_rates(self):
        traffic = MemoryTrafficProfile(l1_bytes=1e9, l2_bytes=8e8, dram_bytes=6e8,
                                       llc_loads=1e7, llc_load_misses=8.5e6)
        profile = memory_bound_analysis(XEON_6246R, traffic, WorkloadCounters(), n_terms=1e6)
        d = profile.as_dict()
        assert d["memory_bound"] == max(d.values())
        assert d["memory_bound"] > 0.5
        assert sum(d.values()) == pytest.approx(1.0)

    def test_requires_positive_terms(self):
        with pytest.raises(ValueError):
            memory_bound_analysis(XEON_6246R, MemoryTrafficProfile(), WorkloadCounters(), 0)


class TestTiming:
    def _traffic(self, miss_rate=0.8, n_terms=1e6):
        loads = n_terms * 6
        return MemoryTrafficProfile(
            l1_bytes=n_terms * 200,
            l2_bytes=n_terms * 120,
            dram_bytes=n_terms * 80,
            llc_loads=loads,
            llc_load_misses=loads * miss_rate,
            sectors_per_request=20.0,
        )

    def test_cpu_runtime_scales_with_terms(self):
        t1 = cpu_runtime(XEON_6246R, 1e6, self._traffic(n_terms=1e6), n_threads=32)
        t2 = cpu_runtime(XEON_6246R, 1e7, self._traffic(n_terms=1e7), n_threads=32)
        assert t2.total_s > 5 * t1.total_s

    def test_cpu_more_threads_faster(self):
        traffic = self._traffic()
        t1 = cpu_runtime(XEON_6246R, 1e6, traffic, n_threads=1)
        t32 = cpu_runtime(XEON_6246R, 1e6, traffic, n_threads=32)
        assert t1.total_s > 5 * t32.total_s

    def test_higher_miss_rate_slower(self):
        fast = cpu_runtime(XEON_6246R, 1e6, self._traffic(miss_rate=0.2), n_threads=32)
        slow = cpu_runtime(XEON_6246R, 1e6, self._traffic(miss_rate=0.95), n_threads=32)
        assert slow.total_s > fast.total_s

    def test_gpu_faster_than_cpu(self):
        traffic = self._traffic()
        cpu = cpu_runtime(XEON_6246R, 1e7, self._traffic(n_terms=1e7), n_threads=32)
        gpu = gpu_runtime(RTX_A6000, 1e7, self._traffic(n_terms=1e7), kernel_launches=31)
        assert cpu.total_s > gpu.total_s
        # speedup_over(other) = other/self, i.e. the GPU's speedup over the CPU.
        assert gpu.speedup_over(cpu) > 5.0

    def test_a100_faster_than_a6000(self):
        traffic = self._traffic(n_terms=1e7)
        a6000 = gpu_runtime(RTX_A6000, 1e7, traffic)
        a100 = gpu_runtime(A100, 1e7, traffic)
        assert a100.total_s < a6000.total_s

    def test_better_coalescing_faster(self):
        traffic = self._traffic(n_terms=1e7)
        bad = gpu_runtime(RTX_A6000, 1e7, traffic, sectors_per_request=27.0)
        good = gpu_runtime(RTX_A6000, 1e7, traffic, sectors_per_request=10.0)
        assert good.total_s < bad.total_s

    def test_less_divergence_faster_when_compute_bound(self):
        traffic = MemoryTrafficProfile(l1_bytes=1e6, l2_bytes=1e5, dram_bytes=1e4,
                                       llc_loads=1e4, llc_load_misses=1e3)
        diverged = gpu_runtime(RTX_A6000, 1e9, traffic, avg_active_threads=20.0)
        merged = gpu_runtime(RTX_A6000, 1e9, traffic, avg_active_threads=32.0)
        assert merged.total_s <= diverged.total_s

    def test_kernel_launch_overhead_counts(self):
        traffic = self._traffic(n_terms=1e4)
        few = gpu_runtime(RTX_A6000, 1e4, traffic, kernel_launches=31)
        many = gpu_runtime(RTX_A6000, 1e4, traffic, kernel_launches=600_000)
        assert many.total_s > few.total_s
        assert many.overhead_s > few.overhead_s

    def test_thread_scaling_monotone(self):
        base = cpu_runtime(XEON_6246R, 1e6, self._traffic(), n_threads=32)
        times = hogwild_thread_scaling(base, np.array([1, 2, 4, 8, 16, 32]), 32)
        values = [times[t] for t in (1, 2, 4, 8, 16, 32)]
        assert all(a > b for a, b in zip(values[:-1], values[1:]))
        # Near-linear at low thread counts (Fig. 4).
        assert times[1] / times[2] > 1.7

    def test_thread_scaling_invalid(self):
        base = cpu_runtime(XEON_6246R, 1e6, self._traffic(), n_threads=32)
        with pytest.raises(ValueError):
            hogwild_thread_scaling(base, np.array([0]), 32)
