"""Layout state: visualisation-point coordinates and their memory layouts.

Each graph node is drawn as a line segment; its two endpoints are the
*visualisation points* of Alg. 1 (``L[n].start`` / ``L[n].end``). The layout
state therefore has ``2·N`` points in 2-D.

Two memory organisations of this state matter for the paper:

* **SoA (struct of arrays)** — ODGI keeps the X coordinates and Y coordinates
  in two separate arrays (and node lengths in a third). Updating one node
  touches three distant memory regions; this is the baseline layout.
* **AoS (array of structs)** — the paper's *cache-friendly data layout*
  (Sec. V-B1) packs ``[length, sx, sy, ex, ey]`` per node contiguously so a
  single access fetches everything a step update needs.

The numerical engines always operate on a canonical ``(2N, 2)`` float64 array
(NumPy handles the arithmetic identically either way); the
:class:`NodeDataLayout` enum plus the address-generation helpers here tell
the GPU/cache simulator which byte addresses a given logical access touches,
which is how Table IX's LLC/DRAM numbers are reproduced.
"""
from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np

from ..graph.lean import LeanGraph

__all__ = ["NodeDataLayout", "Layout", "initialize_layout", "node_record_addresses"]

_COORD_BYTES = 8  # float64
_LENGTH_BYTES = 8


class NodeDataLayout(str, Enum):
    """Memory organisation of per-node layout data."""

    SOA = "soa"
    """Separate arrays for lengths, X coordinates and Y coordinates (ODGI)."""

    AOS = "aos"
    """One packed record per node (the cache-friendly data layout, CDL)."""


@dataclass
class Layout:
    """2-D layout of a variation graph.

    Attributes
    ----------
    coords:
        ``(2·n_nodes, 2)`` float64; rows ``2n`` and ``2n+1`` are the start and
        end visualisation points of node ``n``.
    data_layout:
        Declared memory organisation (used by the simulator, not by NumPy).
    """

    coords: np.ndarray
    data_layout: NodeDataLayout = NodeDataLayout.SOA

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.float64)
        if self.coords.ndim != 2 or self.coords.shape[1] != 2 or self.coords.shape[0] % 2:
            raise ValueError("coords must have shape (2*n_nodes, 2)")

    @property
    def n_nodes(self) -> int:
        """Number of graph nodes represented."""
        return self.coords.shape[0] // 2

    def copy(self) -> "Layout":
        """Deep copy of the layout."""
        return Layout(self.coords.copy(), self.data_layout)

    def start_points(self) -> np.ndarray:
        """View of all node start points, shape ``(n_nodes, 2)``."""
        return self.coords[0::2]

    def end_points(self) -> np.ndarray:
        """View of all node end points, shape ``(n_nodes, 2)``."""
        return self.coords[1::2]

    def node_segment(self, node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """(start, end) coordinates of one node's segment."""
        return self.coords[2 * node_id].copy(), self.coords[2 * node_id + 1].copy()

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) of all visualisation points."""
        mins = self.coords.min(axis=0)
        maxs = self.coords.max(axis=0)
        return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])

    def with_data_layout(self, data_layout: NodeDataLayout) -> "Layout":
        """Same coordinates, different declared memory organisation."""
        return Layout(self.coords.copy(), data_layout)

    def to_aos_array(self, node_lengths: np.ndarray) -> np.ndarray:
        """Materialise the packed AoS records ``[len, sx, sy, ex, ey]``."""
        n = self.n_nodes
        node_lengths = np.asarray(node_lengths, dtype=np.float64)
        if node_lengths.size != n:
            raise ValueError("node_lengths must have one entry per node")
        out = np.empty((n, 5), dtype=np.float64)
        out[:, 0] = node_lengths
        out[:, 1] = self.coords[0::2, 0]
        out[:, 2] = self.coords[0::2, 1]
        out[:, 3] = self.coords[1::2, 0]
        out[:, 4] = self.coords[1::2, 1]
        return out

    @classmethod
    def from_aos_array(cls, aos: np.ndarray) -> "Layout":
        """Rebuild a layout from packed AoS records (tagged :attr:`NodeDataLayout.AOS`)."""
        aos = np.asarray(aos, dtype=np.float64)
        if aos.ndim != 2 or aos.shape[1] != 5:
            raise ValueError("AoS array must have shape (n_nodes, 5)")
        coords = np.empty((2 * aos.shape[0], 2), dtype=np.float64)
        coords[0::2, 0] = aos[:, 1]
        coords[0::2, 1] = aos[:, 2]
        coords[1::2, 0] = aos[:, 3]
        coords[1::2, 1] = aos[:, 4]
        return cls(coords, NodeDataLayout.AOS)


def initialize_layout(
    graph: LeanGraph,
    seed: int = 0,
    jitter: float = 1.0,
    data_layout: NodeDataLayout = NodeDataLayout.SOA,
) -> Layout:
    """Path-guided initial layout, as in odgi-layout.

    Every node's X coordinates are seeded from its first nucleotide position
    on the first path that visits it (so the initial state is already roughly
    linear, matching the genomic coordinate system), and the Y coordinates
    get small Gaussian jitter to break symmetry. Nodes visited by no path are
    appended past the longest path.
    """
    rng = np.random.default_rng(seed)  # det-ok: seeded by the caller's explicit seed argument
    n = graph.n_nodes
    first_pos = np.full(n, -1.0, dtype=np.float64)
    nodes = graph.step_nodes
    positions = graph.step_positions.astype(np.float64)
    # np.unique returns the first-occurrence index of each node present.
    uniq, first_idx = np.unique(nodes, return_index=True)
    first_pos[uniq] = positions[first_idx]
    # Path-less nodes go past the furthest on-path *extent* (step position plus
    # that node's length), not the furthest step start — otherwise the first
    # appended node can overlap the final on-path node's segment.
    if positions.size:
        max_pos = float((positions + graph.node_lengths[nodes].astype(np.float64)).max())
    else:
        max_pos = 0.0
    missing = first_pos < 0
    if missing.any():
        # Pack the appended nodes end to end from max_pos: an *exclusive*
        # prefix sum of their lengths, so each one starts where the previous
        # one ends regardless of length ordering.
        lengths = graph.node_lengths[missing].astype(np.float64)
        first_pos[missing] = max_pos + np.cumsum(lengths) - lengths
    coords = np.empty((2 * n, 2), dtype=np.float64)
    coords[0::2, 0] = first_pos
    coords[1::2, 0] = first_pos + graph.node_lengths.astype(np.float64)
    coords[0::2, 1] = rng.normal(0.0, jitter, size=n)
    coords[1::2, 1] = coords[0::2, 1] + rng.normal(0.0, jitter * 0.1, size=n)
    return Layout(coords, data_layout)


def node_record_addresses(
    node_ids: np.ndarray,
    endpoint: np.ndarray,
    data_layout: NodeDataLayout,
    n_nodes: int,
    base_address: int = 0,
) -> np.ndarray:
    """Byte addresses touched when loading the selected visualisation points.

    For every (node, endpoint) request the engine must read the node's X and
    Y coordinate (and, in practice, its length for the update bookkeeping).

    * Under :attr:`NodeDataLayout.SOA` the three live in separate arrays
      (lengths, X coords, Y coords), so one request produces three widely
      separated addresses (paper Fig. 9a).
    * Under :attr:`NodeDataLayout.AOS` they are fields of one 40-byte record,
      so the addresses fall in the same cache line (paper Fig. 9b).

    Returns an ``(n_requests, 3)`` int64 array of byte addresses
    (length, x, y), which the cache simulator replays.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    endpoint = np.asarray(endpoint, dtype=np.int64)
    if node_ids.shape != endpoint.shape:
        raise ValueError("node_ids and endpoint must have the same shape")
    out = np.empty((node_ids.size, 3), dtype=np.int64)
    if data_layout == NodeDataLayout.AOS:
        record = base_address + node_ids * (5 * _COORD_BYTES)
        out[:, 0] = record
        out[:, 1] = record + _COORD_BYTES * (1 + 2 * endpoint)
        out[:, 2] = record + _COORD_BYTES * (2 + 2 * endpoint)
    else:
        len_base = base_address
        x_base = len_base + n_nodes * _LENGTH_BYTES
        y_base = x_base + 2 * n_nodes * _COORD_BYTES
        point_index = 2 * node_ids + endpoint
        out[:, 0] = len_base + node_ids * _LENGTH_BYTES
        out[:, 1] = x_base + point_index * _COORD_BYTES
        out[:, 2] = y_base + point_index * _COORD_BYTES
    return out
