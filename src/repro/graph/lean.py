"""Lean, array-based graph representation used by the layout engines.

The paper (Sec. V-A) observes that ODGI's general-purpose graph structure
carries many fields irrelevant to layout (e.g. the nucleotide *content* of a
node when only its *length* matters) and that the GPU kernel needs flat,
statically-sized arrays rather than dynamic containers. It therefore builds a
"lean data structure" holding only:

* per-node data: sequence length and the four layout coordinates of the two
  visualisation endpoints, and
* per-path data: the node id, orientation and nucleotide position of every
  step, stored as flat arrays with per-path offsets.

:class:`LeanGraph` is that structure. It is constructed once from a
:class:`~repro.graph.variation_graph.VariationGraph` (or directly from arrays
by the synthetic generators, which skips the dictionary-backed representation
entirely for large graphs) and consumed by every layout engine and metric in
the package.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .variation_graph import VariationGraph

__all__ = ["LeanGraph", "ODGI_NODE_OVERHEAD_BYTES", "LEAN_NODE_BYTES"]

# Approximate per-node byte footprint of the full ODGI-style structure
# (sequence string object, id, edge lists, metadata) versus the lean record
# (uint32 length + 4 float32/float64 coordinates). Used by the lean-structure
# accounting in benchmarks; the precise numbers only matter as a ratio.
ODGI_NODE_OVERHEAD_BYTES = 120
LEAN_NODE_BYTES = 4 + 4 * 8


@dataclass
class LeanGraph:
    """Flat array representation of a variation graph for layout.

    Attributes
    ----------
    node_lengths:
        ``(n_nodes,)`` int64 — nucleotide length of each node.
    path_offsets:
        ``(n_paths + 1,)`` int64 — prefix offsets into the flat step arrays;
        path ``p`` owns steps ``path_offsets[p]:path_offsets[p+1]``.
    step_nodes:
        ``(total_steps,)`` int64 — node id visited by each step.
    step_reverse:
        ``(total_steps,)`` bool — orientation of each step.
    step_positions:
        ``(total_steps,)`` int64 — nucleotide offset of the step's start
        within its path. Reference distances ``d_ref`` between two steps of
        the same path are differences of these positions (the XP path index
        odgi-layout queries).
    path_names:
        Path names, index-aligned with ``path_offsets``.
    """

    node_lengths: np.ndarray
    path_offsets: np.ndarray
    step_nodes: np.ndarray
    step_reverse: np.ndarray
    step_positions: np.ndarray
    path_names: List[str] = field(default_factory=list)

    # ------------------------------------------------------------ validation
    def __post_init__(self) -> None:
        self.node_lengths = np.asarray(self.node_lengths, dtype=np.int64)
        self.path_offsets = np.asarray(self.path_offsets, dtype=np.int64)
        self.step_nodes = np.asarray(self.step_nodes, dtype=np.int64)
        self.step_reverse = np.asarray(self.step_reverse, dtype=bool)
        self.step_positions = np.asarray(self.step_positions, dtype=np.int64)
        if self.path_offsets.ndim != 1 or self.path_offsets.size < 1:
            raise ValueError("path_offsets must be a non-empty 1-D array")
        if self.path_offsets[0] != 0:
            raise ValueError("path_offsets must start at 0")
        if np.any(np.diff(self.path_offsets) < 0):
            raise ValueError("path_offsets must be non-decreasing")
        if self.path_offsets[-1] != self.step_nodes.size:
            raise ValueError("path_offsets must end at the total step count")
        if self.step_nodes.size != self.step_reverse.size:
            raise ValueError("step_nodes and step_reverse must align")
        if self.step_nodes.size != self.step_positions.size:
            raise ValueError("step_nodes and step_positions must align")
        if self.step_nodes.size and (
            self.step_nodes.min() < 0
            or self.step_nodes.max() >= self.node_lengths.size
        ):
            raise ValueError("step references a node id out of range")
        if not self.path_names:
            self.path_names = [f"path{i}" for i in range(self.n_paths)]
        if len(self.path_names) != self.n_paths:
            raise ValueError("path_names length must match the number of paths")

    # ------------------------------------------------------------ properties
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return int(self.node_lengths.size)

    @property
    def n_paths(self) -> int:
        """Number of paths."""
        return int(self.path_offsets.size - 1)

    @property
    def total_steps(self) -> int:
        """Total number of path steps Σ|p| — drives N_steps in Alg. 1."""
        return int(self.step_nodes.size)

    @property
    def path_step_counts(self) -> np.ndarray:
        """``(n_paths,)`` number of steps per path."""
        return np.diff(self.path_offsets)

    @property
    def total_sequence_length(self) -> int:
        """Total nucleotides across nodes (# Nuc. in the paper's tables)."""
        return int(self.node_lengths.sum())

    def path_steps(self, path_index: int) -> slice:
        """Slice into the flat step arrays owned by path ``path_index``."""
        if not 0 <= path_index < self.n_paths:
            raise IndexError("path index out of range")
        return slice(int(self.path_offsets[path_index]), int(self.path_offsets[path_index + 1]))

    def path_nucleotide_length(self, path_index: int) -> int:
        """Nucleotide length of one path."""
        sl = self.path_steps(path_index)
        if sl.start == sl.stop:
            return 0
        last = sl.stop - 1
        return int(self.step_positions[last] + self.node_lengths[self.step_nodes[last]])

    # ------------------------------------------------------------ accounting
    def heavy_structure_bytes(self) -> int:
        """Approximate footprint of the full ODGI-style structure."""
        return (
            self.n_nodes * ODGI_NODE_OVERHEAD_BYTES
            + int(self.node_lengths.sum())  # sequence characters
            + self.total_steps * 24
        )

    def lean_structure_bytes(self) -> int:
        """Footprint of this lean structure (what the GPU kernel transfers)."""
        return (
            self.node_lengths.nbytes
            + self.path_offsets.nbytes
            + self.step_nodes.nbytes
            + self.step_reverse.nbytes
            + self.step_positions.nbytes
        )

    # ---------------------------------------------------------- construction
    @classmethod
    def from_variation_graph(cls, graph: VariationGraph) -> "LeanGraph":
        """Extract the lean structure from a full variation graph.

        Node ids are densified in insertion order, which matches the GFA
        parser's segment-name mapping.
        """
        node_ids = graph.node_ids()
        id_to_dense = {nid: i for i, nid in enumerate(node_ids)}
        node_lengths = np.fromiter(
            (graph.node_length(nid) for nid in node_ids), dtype=np.int64, count=len(node_ids)
        )
        path_names: List[str] = []
        offsets = [0]
        step_nodes: List[int] = []
        step_rev: List[bool] = []
        step_pos: List[int] = []
        for path in graph.paths():
            path_names.append(path.name)
            pos = 0
            for step in path.steps:
                dense = id_to_dense[step.node_id]
                step_nodes.append(dense)
                step_rev.append(step.is_reverse)
                step_pos.append(pos)
                pos += int(node_lengths[dense])
            offsets.append(len(step_nodes))
        return cls(
            node_lengths=node_lengths,
            path_offsets=np.asarray(offsets, dtype=np.int64),
            step_nodes=np.asarray(step_nodes, dtype=np.int64),
            step_reverse=np.asarray(step_rev, dtype=bool),
            step_positions=np.asarray(step_pos, dtype=np.int64),
            path_names=path_names,
        )

    @classmethod
    def from_paths(
        cls,
        node_lengths: Sequence[int],
        paths: Sequence[Sequence[int]],
        path_names: Optional[Sequence[str]] = None,
        orientations: Optional[Sequence[Sequence[bool]]] = None,
    ) -> "LeanGraph":
        """Build a lean graph directly from node lengths and path node lists.

        This is the fast path used by the synthetic pangenome generators for
        large graphs, bypassing the dictionary-backed representation.
        """
        node_lengths_arr = np.asarray(node_lengths, dtype=np.int64)
        if node_lengths_arr.ndim != 1:
            raise ValueError("node_lengths must be 1-D")
        if np.any(node_lengths_arr < 0):
            raise ValueError("node lengths must be non-negative")
        offsets = [0]
        step_nodes: List[np.ndarray] = []
        step_rev: List[np.ndarray] = []
        step_pos: List[np.ndarray] = []
        for p_idx, path in enumerate(paths):
            nodes = np.asarray(path, dtype=np.int64)
            if nodes.size and (nodes.min() < 0 or nodes.max() >= node_lengths_arr.size):
                raise ValueError(f"path {p_idx} references a node out of range")
            lengths = node_lengths_arr[nodes] if nodes.size else np.empty(0, dtype=np.int64)
            positions = np.concatenate(([0], np.cumsum(lengths)[:-1])) if nodes.size else np.empty(0, dtype=np.int64)
            if orientations is not None:
                rev = np.asarray(orientations[p_idx], dtype=bool)
                if rev.size != nodes.size:
                    raise ValueError(f"orientations for path {p_idx} must align with steps")
            else:
                rev = np.zeros(nodes.size, dtype=bool)
            step_nodes.append(nodes)
            step_rev.append(rev)
            step_pos.append(positions)
            offsets.append(offsets[-1] + nodes.size)
        names = list(path_names) if path_names is not None else None
        return cls(
            node_lengths=node_lengths_arr,
            path_offsets=np.asarray(offsets, dtype=np.int64),
            step_nodes=np.concatenate(step_nodes) if step_nodes else np.empty(0, dtype=np.int64),
            step_reverse=np.concatenate(step_rev) if step_rev else np.empty(0, dtype=bool),
            step_positions=np.concatenate(step_pos) if step_pos else np.empty(0, dtype=np.int64),
            path_names=names or [],
        )

    def subset_paths(self, path_indices: Sequence[int]) -> "LeanGraph":
        """Return a new lean graph containing only the selected paths.

        Node arrays are retained unchanged (ids stay valid); only the step
        arrays are filtered. Useful for per-region experiments.
        """
        indices = list(path_indices)
        offsets = [0]
        nodes_parts: List[np.ndarray] = []
        rev_parts: List[np.ndarray] = []
        pos_parts: List[np.ndarray] = []
        names: List[str] = []
        for idx in indices:
            sl = self.path_steps(idx)
            nodes_parts.append(self.step_nodes[sl])
            rev_parts.append(self.step_reverse[sl])
            pos_parts.append(self.step_positions[sl])
            offsets.append(offsets[-1] + (sl.stop - sl.start))
            names.append(self.path_names[idx])
        return LeanGraph(
            node_lengths=self.node_lengths.copy(),
            path_offsets=np.asarray(offsets, dtype=np.int64),
            step_nodes=np.concatenate(nodes_parts) if nodes_parts else np.empty(0, dtype=np.int64),
            step_reverse=np.concatenate(rev_parts) if rev_parts else np.empty(0, dtype=bool),
            step_positions=np.concatenate(pos_parts) if pos_parts else np.empty(0, dtype=np.int64),
            path_names=names,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeanGraph(nodes={self.n_nodes}, paths={self.n_paths}, "
            f"steps={self.total_steps}, nuc={self.total_sequence_length})"
        )
