"""Fuzz-ish negative tests: malformed inputs raise *typed* errors.

Contract under test: whatever bytes arrive, :mod:`repro.graph.gfa` raises
:class:`GFAError` and :mod:`repro.io.layout_file` raises
:class:`LayFormatError` (both ``ValueError`` subclasses) — never a bare
``KeyError``/``IndexError``/``struct.error`` escaping from parser internals,
and never a crash. Covers truncated records, bad ids, empty paths, binary
garbage and seeded random mutations of valid documents.
"""
from __future__ import annotations

import io
import random
import string

import numpy as np
import pytest

from repro.core import LayoutParams, PairSampler
from repro.core.layout import Layout
from repro.graph import LeanGraph, parse_gfa_text
from repro.graph.gfa import GFAError, gfa_to_text
from repro.io import read_lay, read_tsv, write_lay, write_tsv
from repro.io.layout_file import LayFormatError

VALID_GFA = (
    "H\tVN:Z:1.0\n"
    "S\ta\tACGT\n"
    "S\tb\tTT\n"
    "S\tc\t*\tLN:i:7\n"
    "L\ta\t+\tb\t+\t0M\n"
    "L\tb\t+\tc\t-\t0M\n"
    "P\tp1\ta+,b+,c-\t*\n"
    "P\tp2\ta+,c+\t*\n"
)


class TestGfaNegative:
    @pytest.mark.parametrize("text,reason", [
        ("S\ta\n", "S line missing sequence"),
        ("S\n", "S line with no fields"),
        ("S\ta\tACGT\nS\ta\tTT\n", "duplicate segment"),
        ("S\ta\t*\n", "* sequence without LN tag"),
        ("S\ta\t*\tLN:i:x\n", "unparseable LN tag"),
        ("S\ta\t*\tLN:i:-3\n", "negative LN tag"),
        ("S\ta\tA\nL\ta\t+\ta\n", "truncated L record"),
        ("S\ta\tA\nL\ta\t?\ta\t+\t0M\n", "bad L orientation"),
        ("S\ta\tA\nL\ta\t+\tmissing\t+\t0M\n", "L references unknown id"),
        ("P\tp\ta+\t*\n", "P references unknown id"),
        ("S\ta\tA\nP\tp\ta\t*\n", "path step without orientation"),
        ("S\ta\tA\nP\tp\t,\t*\n", "empty path step"),
        ("S\ta\tA\nP\tp\n", "truncated P record"),
        ("S\ta\tA\nP\tp\ta+\t*\nP\tp\ta+\t*\n", "duplicate path name"),
        ("X\twhatever\n", "unknown record type"),
        ("\x00\x07\tbinary\n", "binary garbage line"),
    ])
    def test_malformed_documents_raise_gfa_error(self, text, reason):
        with pytest.raises(GFAError):
            parse_gfa_text(text)

    def test_empty_paths_are_typed_not_crashes(self):
        # `P name * *` is legal GFA (an empty path); layout then refuses the
        # zero-step graph with a typed error instead of dividing by zero.
        graph = parse_gfa_text("S\ta\tACGT\nP\tempty\t*\t*\n")
        lean = LeanGraph.from_variation_graph(graph)
        assert lean.total_steps == 0
        with pytest.raises(ValueError, match="without path steps"):
            PairSampler(lean, LayoutParams())

    def test_truncated_valid_document_prefixes(self):
        """Every prefix of a valid document parses or raises GFAError."""
        for cut in range(len(VALID_GFA)):
            try:
                parse_gfa_text(VALID_GFA[:cut])
            except GFAError:
                pass

    def test_seeded_random_line_mutations(self):
        """Mutating single characters never escapes the typed-error contract."""
        rng = random.Random(1234)
        alphabet = string.printable + "\x00\xff"
        for _ in range(300):
            pos = rng.randrange(len(VALID_GFA))
            char = rng.choice(alphabet)
            mutated = VALID_GFA[:pos] + char + VALID_GFA[pos + 1:]
            try:
                parse_gfa_text(mutated)
            except GFAError:
                pass

    def test_round_trip_survives(self):
        graph = parse_gfa_text(VALID_GFA)
        again = parse_gfa_text(gfa_to_text(graph))
        assert again.node_count == graph.node_count
        assert again.path_count == graph.path_count


def _valid_lay_bytes() -> bytes:
    coords = np.arange(12, dtype=np.float64).reshape(6, 2)
    buf = io.BytesIO()
    write_lay(Layout(coords), buf)
    return buf.getvalue()


class TestLayNegative:
    @pytest.mark.parametrize("data,reason", [
        (b"", "empty file"),
        (b"RPL", "shorter than magic"),
        (b"NOPE" + b"\x00" * 32, "bad magic"),
        (b"RPLY" + b"\x00" * 4, "truncated header"),
        (b"RPLY" + b"\xff" * 12, "unsupported version"),
    ])
    def test_malformed_headers(self, data, reason):
        with pytest.raises(LayFormatError):
            read_lay(io.BytesIO(data))

    def test_truncated_payload_every_cut(self):
        data = _valid_lay_bytes()
        for cut in range(len(data)):
            with pytest.raises(LayFormatError):
                read_lay(io.BytesIO(data[:cut]))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(LayFormatError, match="size mismatch"):
            read_lay(io.BytesIO(_valid_lay_bytes() + b"extra"))

    def test_huge_node_count_rejected_without_allocation(self):
        # n_nodes = 2^60: the size check must fire before any array allocation.
        import struct
        data = b"RPLY" + struct.pack("<IQ", 1, 1 << 60) + b"\x00" * 64
        with pytest.raises(LayFormatError, match="size mismatch"):
            read_lay(io.BytesIO(data))

    def test_seeded_random_byte_flips(self):
        data = _valid_lay_bytes()
        rng = random.Random(99)
        for _ in range(200):
            pos = rng.randrange(len(data))
            flipped = bytearray(data)
            flipped[pos] ^= 1 << rng.randrange(8)
            try:
                layout = read_lay(io.BytesIO(bytes(flipped)))
                assert layout.coords.shape == (6, 2)  # payload flip: still shaped
            except LayFormatError:
                pass


class TestTsvNegative:
    def _tsv(self) -> str:
        coords = np.arange(12, dtype=np.float64).reshape(6, 2)
        buf = io.StringIO()
        write_tsv(Layout(coords), buf)
        return buf.getvalue()

    @pytest.mark.parametrize("text,reason", [
        ("", "empty document"),
        ("#header only\n", "no data rows"),
        ("0\t1\t2\t3\n", "too few columns"),
        ("0\t1\t2\t3\t4\t5\n", "too many columns"),
        ("zero\t1\t2\t3\t4\n", "non-integer id"),
        ("0\tx\t2\t3\t4\n", "non-float coordinate"),
        ("0\t1\t2\t3\t4\n0\t1\t2\t3\t4\n", "duplicate node id"),
        ("1\t1\t2\t3\t4\n", "ids not starting at 0"),
        ("0\t1\t2\t3\t4\n2\t1\t2\t3\t4\n", "gap in node ids"),
        ("-1\t1\t2\t3\t4\n", "negative node id"),
    ])
    def test_malformed_rows(self, text, reason):
        with pytest.raises(LayFormatError):
            read_tsv(io.StringIO(text))

    def test_reordered_rows_round_trip(self):
        lines = self._tsv().strip().split("\n")
        shuffled = [lines[0]] + lines[:0:-1]
        layout = read_tsv(io.StringIO("\n".join(shuffled) + "\n"))
        np.testing.assert_array_equal(
            layout.coords, np.arange(12, dtype=np.float64).reshape(6, 2))

    def test_seeded_random_field_mutations(self):
        text = self._tsv()
        rng = random.Random(7)
        for _ in range(200):
            pos = rng.randrange(len(text))
            mutated = text[:pos] + rng.choice("abc\t\n-.") + text[pos + 1:]
            try:
                read_tsv(io.StringIO(mutated))
            except LayFormatError:
                pass
