"""The sanctioned monotonic-clock seam (OBS001).

Every wall-clock read on a hot path — engine wall times, tracer spans, the
shm engine's setup/iterate phase timers — routes through this module
instead of calling ``time.perf_counter``/``time.monotonic`` directly. Two
things fall out of funnelling every read through one seam:

* **The determinism contract stays checkable.** DET001 bans raw wall-clock
  reads in the hot-path directories because a timestamp feeding layout math
  would break byte-identity; OBS001 narrows the remaining legitimate use
  (reporting-only timing) to exactly this door. A raw ``time.perf_counter()``
  in ``core/``/``parallel/`` is a lint error; ``clock.perf_counter()`` is
  not, and the seam itself is trivially auditable for "never feeds layout
  math" because it only ever *returns* floats to telemetry consumers.
* **Tests can stub time.** :func:`stub_clock` swaps the underlying reads
  for a deterministic callable, which is how the trace-structure tests
  prove event kinds/counts are byte-stable while timestamps are not.

``time.perf_counter`` reads ``CLOCK_MONOTONIC``(-like) time; on Linux the
epoch is system-wide, so parent and shm-worker reads are directly
comparable — the property the cross-process trace merge relies on. On
platforms without that guarantee per-worker orderings remain valid and only
cross-process interleaving becomes approximate.
"""
from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["perf_counter", "monotonic", "stub_clock"]

# The live implementations. Module-level indirection (rather than direct
# calls) is what makes the seam stub-able without monkeypatching stdlib.
_perf_counter: Callable[[], float] = _time.perf_counter
_monotonic: Callable[[], float] = _time.monotonic


def perf_counter() -> float:
    """Highest-resolution monotonic clock read (seconds, arbitrary epoch)."""
    return _perf_counter()


def monotonic() -> float:
    """Coarse monotonic clock read (seconds, arbitrary epoch)."""
    return _monotonic()


@contextmanager
def stub_clock(fn: Callable[[], float]) -> Iterator[Callable[[], float]]:
    """Temporarily replace both clock reads with ``fn`` (tests only).

    ``fn`` is called for every :func:`perf_counter`/:func:`monotonic` read
    while the context is active; a typical stub returns a deterministic
    ramp (``itertools.count``) so spans get reproducible timestamps. The
    previous implementations are restored on exit, exception or not.
    """
    global _perf_counter, _monotonic
    prev = (_perf_counter, _monotonic)
    _perf_counter = fn
    _monotonic = fn
    try:
        yield fn
    finally:
        _perf_counter, _monotonic = prev
