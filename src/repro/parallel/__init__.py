"""Parallel-execution substrate: the process-parallel shared-memory engine,
Hogwild collision analysis, and the thread-scaling models."""
from .hogwild import CollisionReport, expected_collision_probability, measure_collisions
from .scaling import (
    ThreadScalingResult,
    cpu_thread_scaling,
    chunk_schedule,
    cpu_cache_profile,
)
from .shm import (
    SharedArrayBlock,
    ShmHogwildEngine,
    run_workers_inline,
    worker_stream_states,
)

__all__ = [
    "CollisionReport",
    "expected_collision_probability",
    "measure_collisions",
    "ThreadScalingResult",
    "cpu_thread_scaling",
    "chunk_schedule",
    "cpu_cache_profile",
    "SharedArrayBlock",
    "ShmHogwildEngine",
    "run_workers_inline",
    "worker_stream_states",
]
