"""Table II — memory stall and LLC cache performance of the CPU baseline.

Replays real access traces of the CPU baseline through the scaled LLC model
and reports LLC-load miss rates and an estimated memory-stall-cycle fraction
next to the paper's Perf measurements (67.7–78.1% stalls, 75–90% miss rate).
"""
from __future__ import annotations

from ...gpusim import WorkloadCounters, XEON_6246R, memory_bound_analysis
from ...parallel import cpu_cache_profile
from ..registry import CaseResult, bench_case
from ..tables import format_table

PAPER = {
    "HLA-DRB1": {"stall": 0.6767, "miss": 0.7509},
    "MHC": {"stall": 0.7807, "miss": 0.7784},
    "Chr.1": {"stall": 0.7738, "miss": 0.8988},
}


@bench_case("table02_cache_profile", source="Table II", suites=("tables",))
def run(ctx) -> CaseResult:
    """CPU baseline stalls on memory with a high LLC miss rate."""
    params = ctx.bench_params
    results = {}
    for name, graph in ctx.representative_graphs.items():
        traffic, n_terms = cpu_cache_profile(graph, params, n_trace_terms=4096)
        topdown = memory_bound_analysis(XEON_6246R, traffic, WorkloadCounters(), n_terms)
        results[name] = (traffic, topdown)

    out = CaseResult()
    rows = []
    for name, (traffic, topdown) in results.items():
        stall = topdown.memory_bound
        rows.append([
            name,
            f"{stall:.1%}", f"{PAPER[name]['stall']:.1%}",
            f"{traffic.llc_miss_rate:.1%}", f"{PAPER[name]['miss']:.1%}",
            int(traffic.llc_loads), int(traffic.llc_load_misses),
        ])
        # The shape to reproduce: the majority of slots stall on memory and
        # the LLC miss rate is high under random node access.
        assert stall > 0.4
        assert traffic.llc_miss_rate > 0.3
        out.add(f"{name}_memory_stall", stall, unit="frac", direction="info")
        out.add(f"{name}_llc_miss_rate", traffic.llc_miss_rate, unit="frac",
                direction="info")
    # Miss rate grows with graph size, as in the paper.
    assert results["Chr.1"][0].llc_miss_rate >= results["HLA-DRB1"][0].llc_miss_rate - 0.05

    out.tables.append(format_table(
        ["Pangenome", "MemStall", "MemStall(paper)", "LLC miss", "LLC miss(paper)",
         "LLC loads(trace)", "LLC misses(trace)"],
        rows,
        title="Table II: memory stall and cache performance of the CPU baseline",
    ))
    return out
