"""Sampled path stress: the scalable layout-quality metric (paper Sec. VI-B).

Full path stress is quadratic in path length; the sampled variant estimates
it by drawing ``n = samples_per_step × |p|`` random same-path step pairs per
path (the paper uses 100 samples per step) and averaging their stress terms.
Because the estimate is a sample mean, the central limit theorem gives a 95%
confidence interval ``μ ± 1.96 σ / √n`` that the paper reports alongside
every value (Table VIII).

This module also provides the GPU/CPU comparison helper (the SPS ratio of
Table VIII) and the correlation study against exact path stress (Fig. 13).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.layout import Layout
from ..graph.lean import LeanGraph
from .stress import pair_stress_terms

__all__ = ["SampledStress", "sampled_path_stress", "stress_ratio", "correlation_study"]


@dataclass(frozen=True)
class SampledStress:
    """Result of a sampled-path-stress evaluation."""

    value: float
    ci_low: float
    ci_high: float
    n_samples: int
    std: float

    @property
    def ci_width(self) -> float:
        """Width of the 95% confidence interval."""
        return self.ci_high - self.ci_low

    def as_tuple(self) -> tuple:
        """(value, ci_low, ci_high) convenience tuple."""
        return (self.value, self.ci_low, self.ci_high)


def sampled_path_stress(
    layout: Layout,
    graph: LeanGraph,
    samples_per_step: int = 100,
    seed: int = 0,
    max_total_samples: int = 5_000_000,
) -> SampledStress:
    """Estimate path stress by random same-path pair sampling.

    Every path contributes ``samples_per_step × |p|`` pairs (so each step is
    expected to be sampled ``samples_per_step`` times within its path, as in
    the paper), capped globally at ``max_total_samples`` with proportional
    thinning for extremely large graphs.
    """
    if samples_per_step < 1:
        raise ValueError("samples_per_step must be >= 1")
    rng = np.random.default_rng(seed)
    counts = graph.path_step_counts
    eligible = counts >= 2
    if not np.any(eligible):
        return SampledStress(0.0, 0.0, 0.0, 0, 0.0)
    per_path = counts * samples_per_step
    per_path = np.where(eligible, per_path, 0)
    total_requested = int(per_path.sum())
    if total_requested > max_total_samples:
        scale = max_total_samples / total_requested
        per_path = np.maximum((per_path * scale).astype(np.int64), np.where(eligible, 1, 0))
    all_terms = []
    offsets = graph.path_offsets
    for p in range(graph.n_paths):
        n_samples = int(per_path[p])
        if n_samples == 0:
            continue
        start, stop = int(offsets[p]), int(offsets[p + 1])
        count = stop - start
        local_i = rng.integers(0, count, size=n_samples)
        local_j = rng.integers(0, count, size=n_samples)
        # Re-draw coincident picks once; residual equal pairs contribute 0.
        same = local_i == local_j
        if np.any(same):
            local_j[same] = rng.integers(0, count, size=int(same.sum()))
        terms = pair_stress_terms(layout, graph, start + local_i, start + local_j)
        all_terms.append(terms)
    terms = np.concatenate(all_terms)
    n = terms.size
    mu = float(terms.mean())
    sigma = float(terms.std(ddof=1)) if n > 1 else 0.0
    half = 1.96 * sigma / np.sqrt(n) if n > 0 else 0.0
    return SampledStress(mu, mu - half, mu + half, n, sigma)


def stress_ratio(
    candidate: SampledStress, reference: SampledStress, floor: float = 1e-12
) -> float:
    """SPS ratio = candidate / reference (Table VIII's GPU/CPU column)."""
    return candidate.value / max(reference.value, floor)


def correlation_study(
    pairs: list,
) -> float:
    """Pearson correlation between exact and sampled stress values (Fig. 13).

    ``pairs`` is a list of ``(path_stress_value, sampled_stress_value)``
    tuples collected over many layouts; the paper reports r = 0.995.
    """
    arr = np.asarray(pairs, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] < 2:
        raise ValueError("need at least two (exact, sampled) pairs")
    x, y = arr[:, 0], arr[:, 1]
    if np.allclose(x.std(), 0) or np.allclose(y.std(), 0):
        raise ValueError("degenerate inputs: zero variance")
    return float(np.corrcoef(x, y)[0, 1])
