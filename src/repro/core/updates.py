"""The stress-gradient update shared by every layout engine.

Implements lines 14–15 of Alg. 1 following the odgi-layout / Zheng-et-al.
formulation: each selected term ``(v_i, v_j, d_ref)`` moves both
visualisation points along their connecting line so the layout distance
approaches the reference distance, with a per-term step size
``μ = min(η · d_ref^-2, 1)``.

A *batch* of terms is applied at once. Within a batch every term reads the
coordinates as they were at the start of the batch and the writes are merged
afterwards — exactly the staleness the paper's Hogwild!/large-batch analysis
discusses (Sec. III-A, IV-A): small batches behave like the serial algorithm,
huge batches accumulate stale updates and degrade quality (Table III).

Three write-merge policies are offered:

* ``"hogwild"`` (default) — colliding terms' displacements are averaged per
  point. Sequentially applied full-strength corrections each pull the point
  toward their own target rather than stacking, so the average is the closest
  batched proxy for asynchronous Hogwild stores; collision-free terms are
  unaffected.
* ``"accumulate"`` — displacements of colliding terms add up; faithful to a
  pure gradient-sum formulation but can overshoot when the per-term step is
  saturated (μ = 1), so it is exposed for sensitivity studies only.
* ``"last_writer"`` — only one colliding term survives per point, modelling a
  racy unsynchronised store; provided to study collision sensitivity.

Cost discipline (paper Sec. V-B): the update step is memory-bound, so the
merge must never touch more state than the batch itself. All three policies
operate on the *compacted* index space of the points the batch actually
touches (:func:`compact_points`), making ``apply_batch`` O(batch) per batch
— independent of the graph size — and an :class:`UpdateWorkspace` of
preallocated scratch buffers removes the per-batch allocation of the large
staging arrays (endpoint indices, gathered coordinates, displacement
vectors, merge inputs). A steady-state run therefore allocates nothing
proportional to the graph; what remains per batch is a handful of small
O(batch) temporaries from ``np.where``/``np.unique``/``np.bincount``.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .selection import StepBatch

__all__ = [
    "UpdateStats",
    "UpdateWorkspace",
    "compact_points",
    "compute_displacements",
    "apply_batch",
    "batch_stress",
]

_MIN_DISTANCE = 1e-9


@dataclass
class UpdateStats:
    """Counters describing one applied batch (consumed by profiling models)."""

    n_terms: int
    n_zero_ref: int
    n_point_collisions: int
    mean_step_magnitude: float
    max_step_magnitude: float


class UpdateWorkspace:
    """Reusable scratch buffers for the update hot path.

    One workspace is created per :meth:`LayoutEngine.run` (sized to the
    largest batch of the engine's plan) and threaded through every
    :func:`apply_batch` / :func:`compute_displacements` call of the run, so
    the dominant batch-shaped temporaries — endpoint indices, gathered
    coordinates, displacement vectors and the merge staging arrays — are
    allocated once instead of once per batch. Buffers grow on demand (engines that expand
    batches after planning, e.g. warp-shuffle data reuse, stay correct) and
    never shrink.

    The buffers hold no state between calls; sharing one workspace across
    engines is safe as long as calls do not interleave mid-update.
    """

    def __init__(self, max_batch: int = 1):
        self.max_batch = 0
        self._grow(max(int(max_batch), 1))

    def _grow(self, n: int) -> None:
        self.max_batch = n
        self.point_i = np.empty(n, dtype=np.int64)
        self.point_j = np.empty(n, dtype=np.int64)
        self.gather_i = np.empty((n, 2), dtype=np.float64)
        self.gather_j = np.empty((n, 2), dtype=np.float64)
        self.diff = np.empty((n, 2), dtype=np.float64)
        self.mag = np.empty(n, dtype=np.float64)
        self.mag_safe = np.empty(n, dtype=np.float64)
        self.term_delta = np.empty((n, 2), dtype=np.float64)
        self.merge_points = np.empty(2 * n, dtype=np.int64)
        self.merge_delta = np.empty((2 * n, 2), dtype=np.float64)

    def ensure(self, batch_size: int) -> None:
        """Grow the buffers if ``batch_size`` exceeds the current capacity."""
        if batch_size > self.max_batch:
            self._grow(int(batch_size))


def compact_points(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact flat point indices onto the touched-point index space.

    Returns ``(unique_points, inverse, counts)`` from a single sort-based
    pass (``np.unique(..., return_inverse=True)``): ``inverse`` maps every
    entry of ``points`` to its slot in ``unique_points`` and ``counts`` is
    the per-slot multiplicity. The same compaction serves the bincount-based
    write merges *and* the collision counter, so the hot path never
    materialises graph-sized scratch arrays and never sorts twice.
    """
    points = np.asarray(points)
    unique_points, inverse = np.unique(points, return_inverse=True)
    counts = np.bincount(inverse, minlength=unique_points.size)
    return unique_points, inverse, counts


def compute_displacements(
    coords: np.ndarray,
    batch: StepBatch,
    eta: float,
    workspace: Optional[UpdateWorkspace] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-term displacement vectors for both endpoints of every term.

    Returns ``(point_i, point_j, delta)`` where ``point_*`` are flat indices
    into the ``(2N, 2)`` coordinate array and ``delta`` is the displacement to
    subtract from point ``i`` (and add to point ``j``).

    When a ``workspace`` is supplied the returned arrays are views into its
    buffers and are overwritten by the next call that shares the workspace.
    """
    n = len(batch)
    ws = workspace if workspace is not None else UpdateWorkspace(n)
    ws.ensure(n)

    point_i = ws.point_i[:n]
    point_j = ws.point_j[:n]
    np.multiply(batch.node_i, 2, out=point_i)
    point_i += batch.vis_i
    np.multiply(batch.node_j, 2, out=point_j)
    point_j += batch.vis_j

    d_ref = batch.d_ref
    valid = d_ref > 0
    d_safe = np.where(valid, d_ref, 1.0)
    w = 1.0 / (d_safe * d_safe)
    mu = np.minimum(eta * w, 1.0)

    gathered_i = np.take(coords, point_i, axis=0, out=ws.gather_i[:n])
    gathered_j = np.take(coords, point_j, axis=0, out=ws.gather_j[:n])
    diff = np.subtract(gathered_i, gathered_j, out=ws.diff[:n])
    mag = np.einsum("ij,ij->i", diff, diff, out=ws.mag[:n])
    np.sqrt(mag, out=mag)
    mag_safe = np.maximum(mag, _MIN_DISTANCE, out=ws.mag_safe[:n])
    delta_scalar = np.where(valid, mu * (mag - d_safe) / 2.0, 0.0)
    # Degenerate coincident points: nudge along x to separate them.
    unit = np.divide(diff, mag_safe[:, None], out=ws.term_delta[:n])
    coincident = mag < _MIN_DISTANCE
    if np.any(coincident):
        unit[coincident] = np.array([1.0, 0.0])
    delta = np.multiply(unit, delta_scalar[:, None], out=unit)
    return point_i, point_j, delta


def apply_batch(
    coords: np.ndarray,
    batch: StepBatch,
    eta: float,
    merge: str = "hogwild",
    workspace: Optional[UpdateWorkspace] = None,
) -> UpdateStats:
    """Apply one batch of updates to ``coords`` in place and return statistics.

    Every merge policy works over the compacted touched-point space, so the
    per-batch cost is O(batch · log batch), independent of the graph size.
    Passing the run's :class:`UpdateWorkspace` additionally removes the
    steady-state allocation of all batch-shaped staging arrays.
    """
    if merge not in ("hogwild", "accumulate", "last_writer"):
        raise ValueError("merge must be 'hogwild', 'accumulate' or 'last_writer'")
    if len(batch) == 0:
        return UpdateStats(0, 0, 0, 0.0, 0.0)
    n = len(batch)
    ws = workspace if workspace is not None else UpdateWorkspace(n)
    point_i, point_j, delta = compute_displacements(coords, batch, eta, workspace=ws)

    all_points = ws.merge_points[: 2 * n]
    all_points[:n] = point_i
    all_points[n:] = point_j
    all_deltas = ws.merge_delta[: 2 * n]
    np.negative(delta, out=all_deltas[:n])
    all_deltas[n:] = delta

    touched, inverse, counts = compact_points(all_points)
    n_collisions = int(all_points.size - touched.size)

    if merge == "accumulate":
        coords[touched, 0] += np.bincount(inverse, weights=all_deltas[:, 0])
        coords[touched, 1] += np.bincount(inverse, weights=all_deltas[:, 1])
    elif merge == "hogwild":
        coords[touched, 0] += np.bincount(inverse, weights=all_deltas[:, 0]) / counts
        coords[touched, 1] += np.bincount(inverse, weights=all_deltas[:, 1]) / counts
    else:
        # Last writer wins: keep only the final delta targeting each point,
        # mirroring an unsynchronised store race. Sequential assignment through
        # ``inverse`` leaves each slot holding its last occurrence's index.
        last = np.empty(touched.size, dtype=np.int64)
        last[inverse] = np.arange(all_points.size)
        coords[touched] += all_deltas[last]

    mags = np.einsum("ij,ij->i", delta, delta, out=ws.mag[:n])
    np.sqrt(mags, out=mags)
    return UpdateStats(
        n_terms=n,
        n_zero_ref=int((batch.d_ref <= 0).sum()),
        n_point_collisions=n_collisions,
        mean_step_magnitude=float(mags.mean()) if mags.size else 0.0,
        max_step_magnitude=float(mags.max()) if mags.size else 0.0,
    )


def batch_stress(coords: np.ndarray, batch: StepBatch) -> float:
    """Mean normalised stress of the batch's terms under the current layout.

    This is the quantity minimised by the algorithm (Alg. 1 line 14) and the
    building block of the path-stress metrics in :mod:`repro.metrics`.
    """
    valid = batch.d_ref > 0
    if not np.any(valid):
        return 0.0
    point_i = 2 * batch.node_i + batch.vis_i
    point_j = 2 * batch.node_j + batch.vis_j
    diff = coords[point_i] - coords[point_j]
    mag = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    d = batch.d_ref
    terms = ((mag[valid] - d[valid]) / d[valid]) ** 2
    return float(terms.mean())
