"""Learning-rate schedule for path-guided SGD.

The schedule ``S`` in Alg. 1 follows Zheng, Pawar & Goodman ("Graph drawing
by stochastic gradient descent", TVCG 2019), as adapted by ``odgi-layout``:

* every stress term carries weight ``w_ij = d_ref(i,j)^-2``;
* the per-term step size ``μ = η(t) · w_ij`` is capped at 1 so no single
  update overshoots;
* ``η`` decays exponentially from ``η_max = 1 / w_min = d_max²`` (so the
  weakest term still moves at full strength initially) down to
  ``η_min = eps / w_max = eps · d_min²``.

The decay is computed per-iteration; all engines share this module so their
layouts are comparable.
"""
from __future__ import annotations

import numpy as np

from ..graph.lean import LeanGraph
from .params import LayoutParams

__all__ = ["make_schedule", "distance_bounds"]


def distance_bounds(graph: LeanGraph) -> tuple[float, float]:
    """Return (d_min, d_max): the extreme nonzero reference distances.

    ``d_min`` is the smallest nonzero step-to-step nucleotide distance found
    on any path (at least 1); ``d_max`` is the largest path nucleotide span.
    """
    d_min = np.inf
    d_max = 0.0
    for p in range(graph.n_paths):
        sl = graph.path_steps(p)
        pos = graph.step_positions[sl]
        if pos.size < 2:
            continue
        diffs = np.diff(pos)
        nonzero = diffs[diffs > 0]
        if nonzero.size:
            d_min = min(d_min, float(nonzero.min()))
        last = sl.stop - 1
        span = float(
            graph.step_positions[last]
            + graph.node_lengths[graph.step_nodes[last]]
            - pos[0]
        )
        d_max = max(d_max, span)
    if not np.isfinite(d_min):
        d_min = 1.0
    d_min = max(d_min, 1.0)
    d_max = max(d_max, d_min)
    return d_min, d_max


def make_schedule(graph: LeanGraph, params: LayoutParams) -> np.ndarray:
    """Compute the per-iteration learning rates η[0..iter_max-1].

    Mirrors odgi-layout's ``path_linear_sgd_schedule``: exponential decay from
    η_max to η_min over ``iter_max`` iterations (with a guard for the
    single-iteration case).
    """
    d_min, d_max = distance_bounds(graph)
    w_min = 1.0 / (d_max * d_max)
    w_max = 1.0 / (d_min * d_min)
    eta_max = params.eta_max if params.eta_max is not None else 1.0 / w_min
    eta_min = params.eps / w_max
    if eta_max <= 0 or eta_min <= 0:
        raise ValueError("schedule bounds must be positive")
    n = params.iter_max
    if n == 1:
        return np.array([eta_max], dtype=np.float64)
    lam = np.log(eta_max / eta_min) / (n - 1)
    t = np.arange(n, dtype=np.float64)
    return eta_max * np.exp(-lam * t)
