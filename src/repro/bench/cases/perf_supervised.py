"""CI smoke case gating the supervised parallel runtime's healthy path.

``perf_supervised_overhead`` answers the one question fault tolerance must
keep answering forever: *what does supervision cost when nothing fails?*
It drives the same worker processes twice over the smoke workload —

* the **pre-supervision barrier loop**: the exact parent loop the shm
  engine ran before PR 10 (bare ``conn.recv()`` handshake and iteration
  barriers, untimed joins), reconstructed here as the reference;
* the **supervised engine**: every barrier routed through
  :class:`~repro.parallel.supervise.WorkerSupervisor`'s poll-with-deadline
  liveness loop, policy machinery armed but never triggered —

and gates three things: the two paths stay **byte-identical** on the NumPy
backend at ``workers=1`` (supervision must never touch draw order or the
store pattern), the supervised/bare iterate-time ratio stays under a
floored guard (the poll loop blocks on the pipe exactly like ``recv`` when
the worker is healthy, so the overhead is wakeup noise — the guard trips
only if the supervisor ever grows real per-barrier cost), and the healthy
run's ``worker_failures`` stays at exactly ``0.0`` — a machine-independent
tripwire that the fault machinery never misfires on a clean run.
"""
from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np

from ...backend import get_backend
from ...core.layout import initialize_layout
from ...parallel.shm import ShmHogwildEngine, _worker_main
from ..registry import CaseResult, bench_case
from ..tables import format_table

#: Floor applied to the supervised/bare iterate-time ratio. Healthy runs
#: sit near 1.0 (the liveness poll blocks on the pipe just like the bare
#: recv did); the 10% compare threshold then only trips past ~2.75 —
#: supervision costing multiples of the barrier loop it replaced.
_RATIO_FLOOR = 2.5

#: Repeats per variant; best (minimum) iterate time is recorded.
_REPEATS = 3

#: Iterations per measured run.
_ITER_MAX = 4


def _host_params(ctx, **overrides):
    """Smoke params on a host-resident backend (shm needs mapped host RAM)."""
    params = ctx.smoke_params.with_(iter_max=_ITER_MAX, **overrides)
    probe = np.zeros(1)
    if get_backend(params.backend).from_host(probe) is not probe:
        params = params.with_(backend="numpy")
    return params


def _bare_barrier_run(graph, params):
    """The pre-supervision parent loop, verbatim: the overhead reference.

    Spawns the *same* worker processes the engine does, but drives them
    with the original blocking barriers — bare ``recv()`` for the ready
    handshake and per-iteration collection. Living outside ``parallel/``,
    this reference is exempt from ROBUST001 by construction; it exists
    only to price the supervisor against what it replaced.

    Returns ``(iterate_seconds, final_coords)``.
    """
    engine = ShmHogwildEngine(graph, params)
    layout = initialize_layout(graph, seed=params.seed,
                               data_layout=engine.data_layout())
    sub_plans, states, block = engine._worker_setup(layout)
    ctx_mp = mp.get_context(engine.start_method)
    procs, conns = [], []
    try:
        for w, (sub_plan, state) in enumerate(zip(sub_plans, states)):
            parent_conn, child_conn = ctx_mp.Pipe()
            proc = ctx_mp.Process(
                target=_worker_main,
                args=(w, block.name, block.manifest, params, sub_plan,
                      state, child_conn, None),
                daemon=True)
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        for conn in conns:
            msg = conn.recv()
            assert msg[0] == "ready"
        t0 = time.perf_counter()
        for iteration in range(params.iter_max):
            eta = float(engine.schedule[iteration])
            for conn in conns:
                conn.send(("iter", iteration, eta))
            for conn in conns:
                conn.recv()
        iterate_s = time.perf_counter() - t0
        for conn in conns:
            conn.send(("stop",))
        for proc in procs:
            proc.join(timeout=30.0)
        layout.coords[...] = block.view("coords")
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        block.close()
        block.unlink()
    return iterate_s, layout.coords.copy()


@bench_case("perf_supervised_overhead",
            source="PR 10 (supervised runtime, healthy path)",
            suites=("smoke",))
def run_supervised_overhead(ctx) -> CaseResult:
    """Supervision is free when healthy: identical bytes, bounded overhead."""
    graph = ctx.chr1_graph
    params = _host_params(ctx, workers=1)

    bare_s = float("inf")
    bare_coords = None
    for _ in range(_REPEATS):
        elapsed, coords = _bare_barrier_run(graph, params)
        bare_s = min(bare_s, elapsed)
        bare_coords = coords

    supervised_s = float("inf")
    supervised = None
    for _ in range(_REPEATS):
        candidate = ShmHogwildEngine(graph, params).run()
        supervised_s = min(supervised_s,
                           candidate.counters["parallel_iterate_s"])
        supervised = candidate

    # Byte-identity gate: the supervised path must reproduce the
    # pre-supervision loop bit for bit (numpy, workers=1 — the
    # deterministic cell of the engine matrix).
    if params.backend in (None, "numpy"):
        assert np.array_equal(supervised.layout.coords, bare_coords)
    else:
        np.testing.assert_allclose(supervised.layout.coords, bare_coords,
                                   atol=1e-9, rtol=0)

    ratio = supervised_s / max(bare_s, 1e-12)
    failures = supervised.counters.get("worker_failures", 0.0)

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("bare_iterate_ms", bare_s * 1e3, unit="ms", direction="lower",
            deterministic=False)
    out.add("supervised_iterate_ms", supervised_s * 1e3, unit="ms",
            direction="lower", deterministic=False)
    out.add("supervised_overhead_ratio", ratio, unit="x", direction="info",
            deterministic=False)
    out.add("supervised_overhead_guard", max(ratio, _RATIO_FLOOR), unit="x",
            direction="lower", deterministic=False)
    # Machine-independent tripwire: a healthy run records exactly zero
    # failures — any drift means the supervisor misdiagnosed a live worker.
    out.add("worker_failures", failures, direction="lower")
    out.add("effective_workers", supervised.counters["effective_workers"],
            direction="info")
    out.tables.append(format_table(
        ["Barrier loop", "Iterate (ms)", "Failures"],
        [["pre-supervision (bare recv)", f"{bare_s * 1e3:.1f}", "n/a"],
         ["supervised (poll + liveness)", f"{supervised_s * 1e3:.1f}",
          f"{failures:.0f}"]],
        title="Smoke: supervised runtime healthy-path overhead",
    ))
    return out
