"""cuRAND-style xorshift generator with explicit AoS / SoA state layouts.

The paper's GPU kernel uses the cuRAND XORWOW generator (a member of
Marsaglia's xorshift family). cuRAND represents every per-thread state as a
struct of six 32-bit fields; an array of those structs is an array-of-structs
(AoS) memory layout. Sec. V-B2 of the paper shows that this layout produces
*uncoalesced* memory accesses — threads of a warp touch the same field of
different structs, which are 24 bytes apart — and proposes transposing the
state into a struct-of-arrays (SoA) layout so that a warp's accesses to one
field land in one cache line ("coalesced random states", CRS).

This module provides:

* :class:`XorwowState` — the functional generator over ``n`` streams, with the
  state stored either AoS (``(n, 6)`` uint32) or SoA (``(6, n)`` uint32).
  Both layouts produce bit-identical outputs; only the memory addresses of the
  state words differ.
* :func:`state_addresses` — the byte addresses touched by a warp reading one
  field, used by :mod:`repro.gpusim` to measure sectors-per-request with and
  without CRS (Table X).
"""
from __future__ import annotations

import numpy as np

from .splitmix import seed_streams

__all__ = ["XorwowState", "state_addresses", "AOS", "SOA"]

AOS = "aos"
SOA = "soa"

_U32 = np.uint32
_FIELD_BYTES = 4
_FIELDS = 6  # x, y, z, w, v, d  (five xorshift words + Weyl counter)


class XorwowState:
    """XORWOW generator over ``n`` parallel streams.

    Parameters
    ----------
    seed:
        Scalar seed, expanded through SplitMix64 (one sub-stream per thread,
        mirroring ``curand_init(seed, tid, 0, &state)``).
    n_streams:
        Number of parallel streams (GPU threads).
    layout:
        ``"aos"`` (cuRAND default) or ``"soa"`` (coalesced random states).
    """

    def __init__(self, seed: int = 0, n_streams: int = 1, layout: str = AOS):
        if layout not in (AOS, SOA):
            raise ValueError(f"layout must be '{AOS}' or '{SOA}'")
        self.layout = layout
        words = seed_streams(seed, n_streams, 3)  # 3 x uint64 -> 6 x uint32
        u32 = np.empty((n_streams, _FIELDS), dtype=_U32)
        u32[:, 0] = (words[:, 0] & np.uint64(0xFFFFFFFF)).astype(_U32)
        u32[:, 1] = (words[:, 0] >> np.uint64(32)).astype(_U32)
        u32[:, 2] = (words[:, 1] & np.uint64(0xFFFFFFFF)).astype(_U32)
        u32[:, 3] = (words[:, 1] >> np.uint64(32)).astype(_U32)
        u32[:, 4] = (words[:, 2] & np.uint64(0xFFFFFFFF)).astype(_U32)
        u32[:, 5] = (words[:, 2] >> np.uint64(32)).astype(_U32)
        # xorshift state must not be all zero in the shift registers.
        zero_rows = np.all(u32[:, :5] == 0, axis=1)
        u32[zero_rows, 0] = _U32(0x1234567)
        if layout == AOS:
            self._state = u32
        else:
            self._state = np.ascontiguousarray(u32.T)

    # -- layout helpers -----------------------------------------------------
    def _get(self, field: int) -> np.ndarray:
        if self.layout == AOS:
            return self._state[:, field]
        return self._state[field, :]

    def _set(self, field: int, value: np.ndarray) -> None:
        if self.layout == AOS:
            self._state[:, field] = value
        else:
            self._state[field, :] = value

    @property
    def n_streams(self) -> int:
        """Number of parallel streams."""
        if self.layout == AOS:
            return int(self._state.shape[0])
        return int(self._state.shape[1])

    @property
    def state_bytes(self) -> int:
        """Total bytes of generator state resident in memory."""
        return int(self._state.nbytes)

    def as_layout(self, layout: str) -> "XorwowState":
        """Return a copy of this generator with the requested state layout."""
        new = XorwowState.__new__(XorwowState)
        new.layout = layout
        if layout == self.layout:
            new._state = self._state.copy()
        elif layout == AOS:
            new._state = np.ascontiguousarray(self._state.T)
        elif layout == SOA:
            new._state = np.ascontiguousarray(self._state.T)
        else:
            raise ValueError(f"layout must be '{AOS}' or '{SOA}'")
        return new

    # -- generation ---------------------------------------------------------
    def next_uint32(self) -> np.ndarray:
        """Advance all streams one XORWOW step, returning 32-bit outputs."""
        x = self._get(0).copy()
        y = self._get(1)
        z = self._get(2)
        w = self._get(3)
        v = self._get(4)
        d = self._get(5)
        with np.errstate(over="ignore"):
            t = x ^ (x >> _U32(2))
            self._set(0, y.copy())
            self._set(1, z.copy())
            self._set(2, w.copy())
            self._set(3, v.copy())
            new_v = (v ^ (v << _U32(4))) ^ (t ^ (t << _U32(1)))
            self._set(4, new_v)
            new_d = d + _U32(362437)
            self._set(5, new_d)
            return new_v + new_d

    def next_float(self) -> np.ndarray:
        """One float in [0, 1) per stream."""
        return self.next_uint32().astype(np.float64) * (2.0 ** -32)

    def next_below(self, bound: int | np.ndarray) -> np.ndarray:
        """One integer in [0, bound) per stream via multiply-shift reduction."""
        bound_arr = np.asarray(bound, dtype=np.uint64)
        if np.any(bound_arr == 0):
            raise ValueError("bound must be positive")
        x = self.next_uint32().astype(np.uint64)
        with np.errstate(over="ignore"):
            return ((x * bound_arr) >> np.uint64(32)).astype(np.int64)


def state_addresses(
    n_threads: int,
    field: int,
    layout: str = AOS,
    base_address: int = 0,
    n_fields: int = _FIELDS,
    field_bytes: int = _FIELD_BYTES,
) -> np.ndarray:
    """Byte addresses read when ``n_threads`` threads each load one state field.

    With the AoS layout, thread ``t`` reads ``base + t*(n_fields*field_bytes) +
    field*field_bytes`` — a strided pattern spanning many 32-byte sectors per
    warp. With the SoA layout the same loads are contiguous:
    ``base + field*(n_threads*field_bytes) + t*field_bytes``.

    :mod:`repro.gpusim.coalescing` turns these addresses into the
    sectors-per-request metric reported in Table X.
    """
    if layout not in (AOS, SOA):
        raise ValueError(f"layout must be '{AOS}' or '{SOA}'")
    if not 0 <= field < n_fields:
        raise ValueError("field index out of range")
    t = np.arange(n_threads, dtype=np.int64)
    if layout == AOS:
        return base_address + t * (n_fields * field_bytes) + field * field_bytes
    return base_address + field * (n_threads * field_bytes) + t * field_bytes
