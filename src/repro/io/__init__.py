"""Layout persistence: binary ``.lay`` files and TSV export."""
from .layout_file import write_lay, read_lay, write_tsv, read_tsv, LayFormatError

__all__ = ["write_lay", "read_lay", "write_tsv", "read_tsv", "LayFormatError"]
