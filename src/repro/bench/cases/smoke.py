"""CI smoke suite — the perf-regression gate.

Five fast cases over tiny synthetic graphs (the whole suite runs in seconds,
well under the 60 s budget) covering every layer a speed-oriented PR can
touch: graph construction/statistics, the CPU baseline engine, the optimized
GPU kernel model, the ablation ladder, and the quality metrics. Each case
records deterministic modelled times (direction ``lower``) and speedups
(direction ``higher``) so ``repro bench compare`` can reject regressions
against the committed baseline in ``benchmarks/baselines/``.
"""
from __future__ import annotations

from ...core import CpuBaselineEngine
from ...core.layout import Layout
from ...gpusim import WorkloadCounters, XEON_6246R, cpu_runtime
from ...graph import compute_stats
from ...metrics import count_path_pairs, path_stress, sampled_path_stress
from ...parallel import cpu_cache_profile
from ..perfmodel import ablation_ladder, evaluate_graph_performance
from ..registry import CaseResult, bench_case
from ..tables import format_table


@bench_case("smoke_graph_stats", source="Table I (smoke)", suites=("smoke",))
def run_graph_stats(ctx) -> CaseResult:
    """Tiny-graph construction and statistics stay sane."""
    out = CaseResult()
    rows = []
    for name, graph in (("HLA-DRB1@0.05", ctx.smoke_graph),
                        ("MHC@0.03", ctx.smoke_graph_mhc)):
        st = compute_stats(graph, name)
        assert st.avg_degree < 4.0
        assert st.density < 0.1
        assert graph.total_steps > graph.n_nodes
        key = name.split("@")[0].lower().replace("-", "_")
        out.add(f"{key}_n_nodes", st.n_nodes, direction="info")
        out.add(f"{key}_total_steps", graph.total_steps, direction="info")
        out.add(f"{key}_avg_degree", st.avg_degree, direction="info")
        rows.append([name, st.n_nodes, graph.n_paths, graph.total_steps,
                     f"{st.avg_degree:.2f}"])
    out.graph_properties = ctx.graph_properties(ctx.smoke_graph)
    out.tables.append(format_table(
        ["Graph", "#Nodes", "#Paths", "#Steps", "deg"], rows,
        title="Smoke: synthetic graph statistics",
    ))
    return out


@bench_case("smoke_layout_cpu", source="Alg. 1 (smoke)", suites=("smoke",))
def run_layout_cpu(ctx) -> CaseResult:
    """CPU baseline layout improves a scrambled layout; modelled time is gated."""
    graph = ctx.smoke_graph
    params = ctx.smoke_params
    rng = ctx.rng("smoke_cpu/scramble")
    scrambled = Layout(rng.uniform(0, 500.0, size=(2 * graph.n_nodes, 2)))
    sps_seed = ctx.seed_for("smoke_cpu/sps")

    before = sampled_path_stress(scrambled, graph, samples_per_step=20, seed=sps_seed)
    result = CpuBaselineEngine(graph, params).run(initial=scrambled)
    after = sampled_path_stress(result.layout, graph, samples_per_step=20, seed=sps_seed)
    assert after.value < before.value

    traffic, traced = cpu_cache_profile(graph, params, n_trace_terms=512,
                                        seed=ctx.seed_for("smoke_cpu/profile"))
    total_terms = float(params.iter_max * params.steps_per_iteration(graph.total_steps))
    modelled = cpu_runtime(XEON_6246R, total_terms, traffic.scaled(total_terms / traced),
                           WorkloadCounters(), n_threads=32)

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("stress_before", before.value, direction="info")
    out.add("stress_after", after.value, direction="lower")
    out.add("stress_improvement", before.value / max(after.value, 1e-9),
            unit="x", direction="higher")
    out.add("cpu_modelled_s", modelled.total_s, unit="s(model)", direction="lower")
    out.add("total_terms", result.total_terms, direction="info")
    out.tables.append(format_table(
        ["Metric", "Value"],
        [["stress before", f"{before.value:.4g}"],
         ["stress after", f"{after.value:.4g}"],
         ["modelled CPU time", f"{modelled.total_s:.4g}s"]],
        title="Smoke: CPU baseline layout",
    ))
    return out


@bench_case("smoke_layout_gpu_model", source="Sec. V (smoke)", suites=("smoke",))
def run_layout_gpu_model(ctx) -> CaseResult:
    """Optimized GPU kernel model: speedup over the CPU baseline is gated."""
    graph = ctx.smoke_graph
    params = ctx.smoke_params
    report = evaluate_graph_performance(
        graph, "smoke", params, n_trace_terms=256, cpu_threads=32,
        seed=ctx.seed_for("smoke_gpu/profile"),
    )
    s_a6000 = report.speedup("A6000")
    s_a100 = report.speedup("A100")
    assert s_a6000 > 1.0
    assert s_a100 > s_a6000

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("cpu_modelled_s", report.cpu.total_s, unit="s(model)", direction="lower")
    out.add("a6000_modelled_s", report.gpu["A6000"].total_s, unit="s(model)",
            direction="lower")
    out.add("a100_modelled_s", report.gpu["A100"].total_s, unit="s(model)",
            direction="lower")
    out.add("a6000_speedup", s_a6000, unit="x", direction="higher")
    out.add("a100_speedup", s_a100, unit="x", direction="higher")
    out.tables.append(format_table(
        ["Device", "Modelled time (s)", "Speedup"],
        [["CPU (32 thr)", f"{report.cpu.total_s:.4g}", "1.0x"],
         ["A6000", f"{report.gpu['A6000'].total_s:.4g}", f"{s_a6000:.1f}x"],
         ["A100", f"{report.gpu['A100'].total_s:.4g}", f"{s_a100:.1f}x"]],
        title="Smoke: modelled GPU speedup",
    ))
    return out


@bench_case("smoke_ablation", source="Fig. 16 (smoke)", suites=("smoke",))
def run_ablation(ctx) -> CaseResult:
    """Mini ablation ladder: every optimisation stage keeps paying off."""
    ladder = ablation_ladder(ctx.smoke_graph, ctx.smoke_params, n_trace_terms=256,
                             seed=ctx.seed_for("smoke_ablation/profile"))
    base = ladder["cpu-baseline"]
    full = ladder["gpu+cdl+crs+wm"]
    assert full < ladder["gpu-base"] < base

    out = CaseResult(graph_properties=ctx.graph_properties(ctx.smoke_graph))
    out.add("cpu_baseline_s", base, unit="s(model)", direction="lower")
    out.add("gpu_base_s", ladder["gpu-base"], unit="s(model)", direction="lower")
    out.add("gpu_full_s", full, unit="s(model)", direction="lower")
    out.add("full_ladder_speedup", base / full, unit="x", direction="higher")
    out.tables.append(format_table(
        ["Stage", "Modelled time (s)"],
        [[stage, f"{seconds:.4g}"] for stage, seconds in ladder.items()],
        title="Smoke: optimisation ladder",
    ))
    return out


@bench_case("smoke_quality_metrics", source="Fig. 13 (smoke)", suites=("smoke",))
def run_quality_metrics(ctx) -> CaseResult:
    """Exact and sampled path stress agree on a tiny graph."""
    graph = ctx.smoke_graph_mhc
    rng = ctx.rng("smoke_quality/scramble")
    layout = Layout(rng.uniform(0, 200.0, size=(2 * graph.n_nodes, 2)))

    pairs = count_path_pairs(graph)
    exact = path_stress(layout, graph, max_pairs=3_000_000)
    sampled = sampled_path_stress(layout, graph, samples_per_step=40,
                                  seed=ctx.seed_for("smoke_quality/sps"))
    assert exact > 0
    assert sampled.value > 0
    assert 0.1 < sampled.value / exact < 10.0

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("path_pairs", pairs, direction="info")
    out.add("exact_stress", exact, direction="info")
    out.add("sampled_stress", sampled.value, direction="info")
    out.add("sampled_to_exact_ratio", sampled.value / exact, direction="info")
    out.tables.append(format_table(
        ["Metric", "Value"],
        [["path pairs", pairs], ["exact stress", f"{exact:.4g}"],
         ["sampled stress", f"{sampled.value:.4g}"]],
        title="Smoke: quality metrics",
    ))
    return out
