"""Device descriptions for the execution-model simulator.

The paper evaluates on an NVIDIA RTX A6000, an NVIDIA A100 and a 32-core
Intel Xeon Gold 6246R. No GPU is available in this reproduction environment,
so those devices exist here as parameter sets: SM/warp geometry, cache and
sector sizes, memory bandwidth, and kernel-launch overhead. The cache and
coalescing simulators use the geometric parameters; the analytical timing
model (:mod:`repro.gpusim.timing`) uses the bandwidth/throughput parameters
to turn measured counters into run-time estimates whose *ratios* reproduce
the paper's speedup tables.
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceSpec",
    "RTX_A6000",
    "A100",
    "XEON_6246R",
    "DEVICES",
    "PAPER_REFERENCE_NODE_COUNT",
    "scaled_cache_bytes",
]

#: Mean node count of the paper's 24 HPRC chromosome graphs (Table VI). The
#: reproduction's datasets are scaled down from this size; cache capacities
#: are scaled by the same factor so working-set-to-cache ratios — which decide
#: hit rates under random access — match the full-scale experiments.
PAPER_REFERENCE_NODE_COUNT = 4.0e6


def scaled_cache_bytes(
    full_size_bytes: float,
    graph_n_nodes: int,
    line_bytes: int,
    associativity: int,
    reference_n_nodes: float = PAPER_REFERENCE_NODE_COUNT,
    min_lines: int = 64,
) -> int:
    """Scale a cache capacity to a reduced-size dataset.

    Returns the capacity rounded down to a multiple of ``line_bytes ×
    associativity`` (so it remains a valid set-associative geometry), with a
    floor of ``min_lines`` cache lines.
    """
    if graph_n_nodes <= 0:
        raise ValueError("graph_n_nodes must be positive")
    factor = min(1.0, graph_n_nodes / reference_n_nodes)
    granule = line_bytes * associativity
    scaled = int(full_size_bytes * factor) // granule * granule
    floor = max(granule, min_lines * line_bytes // granule * granule)
    return max(scaled, floor, granule)


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of one execution target."""

    name: str
    kind: str                     # "gpu" or "cpu"
    n_sms: int                    # SMs (GPU) or cores (CPU)
    warp_size: int                # threads per warp (GPU) / SIMD-ish width (CPU: 1)
    max_warps_per_sm: int
    sector_bytes: int             # memory transaction granularity
    cache_line_bytes: int
    l1_kb_per_sm: int
    l2_mb: float
    llc_mb: float                 # CPU last-level cache (0 for GPU)
    dram_bandwidth_gbs: float
    l2_bandwidth_gbs: float
    clock_ghz: float
    kernel_launch_overhead_us: float
    flops_per_cycle_per_sm: float

    @property
    def concurrent_threads(self) -> int:
        """Maximum resident threads (GPU) or hardware threads (CPU)."""
        return self.n_sms * self.warp_size * self.max_warps_per_sm

    @property
    def peak_gflops(self) -> float:
        """Peak double-rate compute throughput used by the roofline model."""
        return self.n_sms * self.flops_per_cycle_per_sm * self.clock_ghz


RTX_A6000 = DeviceSpec(
    name="RTX A6000",
    kind="gpu",
    n_sms=84,
    warp_size=32,
    max_warps_per_sm=48,
    sector_bytes=32,
    cache_line_bytes=128,
    l1_kb_per_sm=128,
    l2_mb=6.0,
    llc_mb=0.0,
    dram_bandwidth_gbs=768.0,
    l2_bandwidth_gbs=2000.0,
    clock_ghz=1.80,
    kernel_launch_overhead_us=8.0,
    flops_per_cycle_per_sm=128.0,
)

A100 = DeviceSpec(
    name="A100",
    kind="gpu",
    n_sms=108,
    warp_size=32,
    max_warps_per_sm=64,
    sector_bytes=32,
    cache_line_bytes=128,
    l1_kb_per_sm=192,
    l2_mb=40.0,
    llc_mb=0.0,
    dram_bandwidth_gbs=1555.0,
    l2_bandwidth_gbs=4000.0,
    clock_ghz=1.41,
    kernel_launch_overhead_us=8.0,
    flops_per_cycle_per_sm=128.0,
)

XEON_6246R = DeviceSpec(
    name="Xeon Gold 6246R (32 threads)",
    kind="cpu",
    n_sms=32,                # hardware threads used by odgi-layout
    warp_size=1,
    max_warps_per_sm=1,
    sector_bytes=64,
    cache_line_bytes=64,
    l1_kb_per_sm=32,
    l2_mb=1.0,
    llc_mb=35.75,
    dram_bandwidth_gbs=140.0,
    l2_bandwidth_gbs=900.0,
    clock_ghz=3.4,
    kernel_launch_overhead_us=0.0,
    flops_per_cycle_per_sm=16.0,
)

DEVICES = {spec.name: spec for spec in (RTX_A6000, A100, XEON_6246R)}
