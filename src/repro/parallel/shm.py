"""Process-parallel hogwild layout over POSIX shared memory.

This is the *measured* realisation of the race that
:mod:`repro.parallel.hogwild` models and the CPU-baseline engine emulates:
the coordinate array lives in one ``multiprocessing.shared_memory`` segment,
``params.workers`` OS processes each run the fused per-iteration path
(:meth:`~repro.backend.base.ArrayBackend.run_iteration`) over a disjoint
contiguous slice of the iteration's batch plan
(:func:`~repro.core.fused.slice_plan`), and every worker scatters its merged
deltas straight into the shared buffer — no locks, last-store-wins at the
byte level, exactly the Hogwild! regime of the paper's CPU baseline
(Sec. III-A) and of odgi-layout itself.

Seed / stream contract
----------------------
Worker ``0`` draws from *the same* Xoshiro256+ streams the flat
:class:`~repro.core.cpu_baseline.CpuBaselineEngine` would construct
(``Xoshiro256Plus(params.seed, n_streams)``); workers ``1..W-1`` draw from
``n_streams`` additional streams appended via
:meth:`~repro.prng.xoshiro.Xoshiro256Plus.jump_streams`, seeded with
``derive_seed(params.seed, "shm-workers")``. Consequences, both pinned by
the test-suite:

* ``workers=1`` runs the full plan on the base streams — **byte-identical**
  to the flat engine (which is itself byte-identical fused vs unfused on the
  NumPy backend);
* ``workers=N`` draws are decorrelated across workers and fully determined
  by ``params.seed`` — only the store interleaving is racy, never the
  sampled terms.

Shared-memory lifecycle
-----------------------
The parent ``create()``\\ s one segment holding the coordinate array plus the
five :class:`~repro.core.selection.SelectionArrays` (graph data ships once,
via the segment — never pickled per batch); workers ``attach()`` by name and
``close()`` their mapping on exit; the parent alone ``unlink()``\\ s, inside a
``finally`` that also terminates stragglers, so a crashed run leaves no
segment behind. Re-registration of the same segment by every attaching
process is harmless: the resource tracker's registry is a set, and only the
parent ever unregisters it (via ``unlink``).

Workers are long-lived — one process per worker for the whole run, fed one
message per iteration over a pipe — so each worker's PRNG streams advance
across iterations exactly like the flat engine's single generator does.
"""
from __future__ import annotations

import multiprocessing as mp
import os
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.base import LayoutResult
from ..core.cpu_baseline import CpuBaselineEngine
from ..core.fused import build_iteration_plans, slice_plan
from ..core.layout import Layout, initialize_layout
from ..core.params import LayoutParams
from ..core.selection import PairSampler, SelectionArrays
from ..core.updates import UpdateWorkspace
from ..prng.splitmix import derive_seed
from ..prng.xoshiro import Xoshiro256Plus

__all__ = [
    "SharedArrayBlock",
    "ShmHogwildEngine",
    "budget_share",
    "worker_stream_states",
    "run_workers_inline",
    "resolve_start_method",
]

#: Environment variable selecting the multiprocessing start method
#: (``fork`` / ``spawn`` / ``forkserver``). CI's parallel job sets ``spawn``
#: to exercise the pickling seams; the default prefers ``fork`` where the
#: platform offers it because it skips the interpreter re-import per worker.
START_METHOD_ENV = "REPRO_SHM_START"

_ALIGN = 16

#: Picklable description of one packed array: (key, dtype string, shape,
#: byte offset into the segment).
Manifest = List[Tuple[str, str, Tuple[int, ...], int]]


def resolve_start_method(explicit: Optional[str] = None) -> str:
    """Start method for worker processes: explicit > env > platform default."""
    method = explicit or os.environ.get(START_METHOD_ENV)
    if method:
        if method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {method!r} unavailable on this platform; "
                f"choose from {mp.get_all_start_methods()}")
        return method
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class SharedArrayBlock:
    """Named NumPy arrays packed into one shared-memory segment.

    ``create()`` (parent) lays the arrays out back to back, 16-byte aligned,
    and copies them in; ``attach()`` (worker) maps the same segment and
    rebuilds zero-copy views from the picklable :data:`Manifest`. Views are
    plain ``np.ndarray`` objects backed by the mapping, so in-place writes
    (the hogwild scatter) are immediately visible to every process.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: Manifest,
                 owner: bool):
        self._shm = shm
        self.manifest = manifest
        self._owner = owner
        self._views: Dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in manifest:
            arr = np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=shm.buf, offset=offset)
            self._views[key] = arr

    # ----------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "SharedArrayBlock":
        """Allocate a segment sized for ``arrays`` and copy them in."""
        manifest: Manifest = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = -(-offset // _ALIGN) * _ALIGN
            manifest.append((key, arr.dtype.str, arr.shape, offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        block = cls(shm, manifest, owner=True)
        for key, arr in arrays.items():
            block._views[key][...] = arr
        return block

    @classmethod
    def attach(cls, name: str, manifest: Manifest) -> "SharedArrayBlock":
        """Map an existing segment by name (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, manifest, owner=False)

    @property
    def name(self) -> str:
        """OS-level segment name workers attach by."""
        return self._shm.name

    def view(self, key: str) -> np.ndarray:
        """Zero-copy array view into the segment."""
        return self._views[key]

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self._views.clear()
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the OS (parent only, exactly once)."""
        if self._owner:
            self._shm.unlink()
            self._owner = False


def budget_share(memory_budget: Optional[int], workers: int) -> Optional[int]:
    """Per-worker slice of the run's memory budget.

    Workers run concurrently, so their transient footprints add up — each
    worker chunks its sub-plan under ``memory_budget // workers`` so the
    *sum* stays within the run's budget. ``None`` (no budget) passes
    through; the share is floored at one byte, which
    :func:`~repro.core.fused.chunk_spans` degrades to one segment per chunk
    (the footprint floor). Chunking never moves a sampled term, so any
    share keeps worker layouts byte-identical to their unbudgeted runs.
    """
    if memory_budget is None:
        return None
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return max(1, int(memory_budget) // int(workers))


def worker_stream_states(base: Xoshiro256Plus, workers: int,
                         seed: int) -> List[np.ndarray]:
    """Per-worker Xoshiro256+ state blocks under the shm seed contract.

    Worker 0 receives ``base``'s streams verbatim (the flat engine's
    generator — this is what makes ``workers=1`` byte-identical); each
    further worker receives ``base.n_streams`` decorrelated streams appended
    via ``jump_streams`` under the stable sub-seed
    ``derive_seed(seed, "shm-workers")``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return [base.state.copy()]
    n = base.n_streams
    jumped = base.jump_streams(n * (workers - 1),
                               seed=derive_seed(seed, "shm-workers"))
    return [jumped.state[w * n:(w + 1) * n].copy() for w in range(workers)]


def _selection_arrays_payload(arrays: SelectionArrays) -> Dict[str, np.ndarray]:
    return {f"sel/{field}": np.asarray(getattr(arrays, field))
            for field in SelectionArrays._fields}


def _worker_main(worker_id: int, shm_name: str, manifest: Manifest,
                 params: LayoutParams, sub_plan: List[int],
                 stream_state: np.ndarray, conn) -> None:
    """Worker loop: attach, rebuild the sampler, run fused sub-iterations.

    Runs in a child process (module-level so ``spawn`` can pickle it by
    reference). The graph never crosses the pickle boundary — selection
    arrays are views into the shared segment; only params, the sub-plan and
    a ``(n_streams, 4)`` PRNG state ride along in the spawn args.
    """
    from ..backend import get_backend

    block = SharedArrayBlock.attach(shm_name, manifest)
    try:
        backend = get_backend(params.backend)
        coords = block.view("coords")
        arrays = SelectionArrays(
            *(block.view(f"sel/{field}") for field in SelectionArrays._fields))
        sampler = PairSampler.from_arrays(arrays, params, backend)
        rng = Xoshiro256Plus(stream_state)
        workspace = UpdateWorkspace(max(sub_plan), backend=backend)
        # Each worker chunks its sub-plan under its share of the run budget
        # (workers race concurrently, so shares must sum to the budget). The
        # share is derived from params here rather than shipped as an extra
        # spawn arg — every worker computes the same figure.
        plans = build_iteration_plans(
            sampler=sampler, workspace=workspace, merge=params.merge_policy,
            plan=sub_plan, n_streams=rng.n_streams,
            memory_budget=budget_share(params.memory_budget, params.workers))
        conn.send(("ready", worker_id, len(plans)))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, iteration, eta = msg
            n_terms = 0
            n_collisions = 0
            for chunk in plans:
                block_draws = rng.next_double_block(chunk.calls_per_iteration)  # mem-ok: chunk plans are bounded by the worker's budget share
                stats = backend.run_iteration(chunk, coords, block_draws, eta,
                                              iteration)
                n_terms += stats.n_terms
                n_collisions += stats.n_point_collisions
            conn.send((n_terms, n_collisions))
    finally:
        conn.close()
        block.close()


class ShmHogwildEngine(CpuBaselineEngine):
    """Real multi-process hogwild over a shared coordinate buffer.

    Subclasses :class:`CpuBaselineEngine` so the batch plan and the PRNG
    stream count are *exactly* the flat engine's — the parallel engine is a
    partition of the flat engine's work, not a different workload. The
    iteration loop is replaced wholesale: per iteration the parent sends the
    scheduled learning rate to every worker, the workers race their fused
    sub-plans into the shared buffer, and the parent collects the per-worker
    term/collision counts. Iteration boundaries are synchronised (the eta
    schedule must advance globally); stores within an iteration are not.

    Requires a host-resident backend (the shared mapping *is* the coordinate
    state) that advertises the fused iteration path.
    """

    name = "shm-hogwild"

    def __init__(self, graph, params: Optional[LayoutParams] = None,
                 hogwild_round: int = 64, start_method: Optional[str] = None):
        super().__init__(graph, params, hogwild_round=hogwild_round)
        self.start_method = resolve_start_method(start_method)
        probe = np.zeros(1)
        if self.backend.from_host(probe) is not probe:
            raise ValueError(
                f"backend {self.backend.name!r} is not host-resident; the "
                "shared-memory engine needs coordinates mapped in host RAM")
        if not getattr(self.backend, "supports_fused_iteration", False):
            raise ValueError(
                f"backend {self.backend.name!r} does not advertise the fused "
                "iteration path the shm workers execute")

    # ------------------------------------------------------------- helpers
    def _worker_setup(self, layout: Layout):
        """Sub-plans, per-worker PRNG states and the shared block for a run."""
        steps_per_iter = self.params.steps_per_iteration(self.graph.total_steps)
        plan = self.batch_plan(steps_per_iter)
        sub_plans = slice_plan(plan, self.params.workers)
        states = worker_stream_states(self.make_rng(), len(sub_plans),
                                      self.params.seed)
        payload = {"coords": layout.coords}
        payload.update(_selection_arrays_payload(self.sampler.arrays))
        block = SharedArrayBlock.create(payload)  # shm-ok: ownership transfers to run(), whose finally unlinks
        return sub_plans, states, block

    # ------------------------------------------------------------------ run
    def run(self, initial: Optional[Layout] = None) -> LayoutResult:
        t_start = time.perf_counter()  # det-ok: reporting-only wall time, never feeds layout math
        params = self.params
        layout = (initial.copy() if initial is not None
                  else initialize_layout(self.graph, seed=params.seed,
                                         data_layout=self.data_layout()))
        sub_plans, states, block = self._worker_setup(layout)
        n_workers = len(sub_plans)
        ctx = mp.get_context(self.start_method)
        procs: List = []
        conns: List = []
        total_terms = 0
        try:
            for w, (sub_plan, state) in enumerate(zip(sub_plans, states)):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(w, block.name, block.manifest, params, sub_plan,
                          state, child_conn),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)
            total_chunks = 0
            for conn in conns:
                msg = conn.recv()
                assert msg[0] == "ready"
                total_chunks += msg[2]
            self.max_counter("fused_chunks", float(total_chunks))
            t_ready = time.perf_counter()  # det-ok: reporting-only wall time, never feeds layout math
            self.add_counter("parallel_setup_s", t_ready - t_start)
            for iteration in range(params.iter_max):
                eta = float(self.schedule[iteration])
                for conn in conns:
                    conn.send(("iter", iteration, eta))
                n_collisions = 0
                n_terms_iter = 0
                for conn in conns:
                    terms, collisions = conn.recv()
                    n_terms_iter += terms
                    n_collisions += collisions
                total_terms += n_terms_iter
                self.add_counter("point_collisions", float(n_collisions))
                self.add_counter("update_dispatches", float(total_chunks))
            self.add_counter("parallel_iterate_s",
                             time.perf_counter() - t_ready)  # det-ok: reporting-only wall time, never feeds layout math
            for conn in conns:
                conn.send(("stop",))
            for proc in procs:
                proc.join(timeout=30.0)
            # Read back the raced coordinates before the mapping goes away.
            layout.coords[...] = block.view("coords")
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            block.close()
            block.unlink()
        self.add_counter("fused_iterations", float(params.iter_max))
        self.add_counter("effective_workers", float(n_workers))
        return LayoutResult(
            layout=layout,
            params=params,
            engine=self.name,
            iterations=params.iter_max,
            total_terms=total_terms,
            counters=dict(self._counters),
            wall_time_s=time.perf_counter() - t_start,  # det-ok: reporting-only wall time, never feeds layout math
        )

    # ------------------------------------------------------------- inline
    def run_inline(self, initial: Optional[Layout] = None) -> LayoutResult:
        """The worker decomposition executed sequentially in-process.

        Runs every worker's fused sub-plan with its contractual PRNG streams,
        workers in index order within each iteration — one *valid*
        serialisation of the hogwild race, with no processes and therefore
        fully deterministic. Property tests quantify the worker
        decomposition against the serial layout through this path without
        inheriting scheduler noise; it is also the natural fallback on
        single-core boxes.
        """
        t_start = time.perf_counter()  # det-ok: reporting-only wall time, never feeds layout math
        params = self.params
        layout = (initial.copy() if initial is not None
                  else initialize_layout(self.graph, seed=params.seed,
                                         data_layout=self.data_layout()))
        steps_per_iter = params.steps_per_iteration(self.graph.total_steps)
        plan = self.batch_plan(steps_per_iter)
        sub_plans = slice_plan(plan, params.workers)
        states = worker_stream_states(self.make_rng(), len(sub_plans),
                                      params.seed)
        coords = self.backend.from_host(layout.coords)
        rngs = [Xoshiro256Plus(state) for state in states]
        # Same decomposition the worker processes build: each worker's
        # sub-plan chunked under its share of the run's memory budget.
        share = budget_share(params.memory_budget, params.workers)
        worker_plans = [
            build_iteration_plans(sampler=self.sampler,
                                  workspace=UpdateWorkspace(max(sub_plan),
                                                            backend=self.backend),
                                  merge=params.merge_policy, plan=sub_plan,
                                  n_streams=rng.n_streams, memory_budget=share)
            for sub_plan, rng in zip(sub_plans, rngs)
        ]
        total_chunks = sum(len(plans) for plans in worker_plans)
        self.max_counter("fused_chunks", float(total_chunks))
        total_terms = 0
        for iteration in range(params.iter_max):
            eta = float(self.schedule[iteration])
            n_collisions = 0
            for rng, plans in zip(rngs, worker_plans):
                for chunk in plans:
                    block = rng.next_double_block(chunk.calls_per_iteration)  # mem-ok: chunk plans are bounded by the worker's budget share
                    stats = self.backend.run_iteration(chunk, coords, block,
                                                       eta, iteration)
                    total_terms += stats.n_terms
                    n_collisions += stats.n_point_collisions
            self.add_counter("point_collisions", float(n_collisions))
            self.add_counter("update_dispatches", float(total_chunks))
        self.add_counter("fused_iterations", float(params.iter_max))
        self.add_counter("effective_workers", float(len(sub_plans)))
        return LayoutResult(
            layout=layout,
            params=params,
            engine=f"{self.name}-inline",
            iterations=params.iter_max,
            total_terms=total_terms,
            counters=dict(self._counters),
            wall_time_s=time.perf_counter() - t_start,  # det-ok: reporting-only wall time, never feeds layout math
        )


def run_workers_inline(graph, params: Optional[LayoutParams] = None,
                       hogwild_round: int = 64,
                       initial: Optional[Layout] = None) -> LayoutResult:
    """Deterministic in-process execution of the worker decomposition.

    Convenience wrapper over :meth:`ShmHogwildEngine.run_inline` — see its
    docstring for the interleaving semantics.
    """
    engine = ShmHogwildEngine(graph, params, hogwild_round=hogwild_round)
    return engine.run_inline(initial=initial)
