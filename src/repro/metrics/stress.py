"""Path stress: the exact (quadratic-cost) layout-quality metric.

Sec. VI-A defines *path stress* as the normalised stress averaged over every
pair of steps that co-occur on a path:

.. math::

    \\text{path stress} = \\frac{\\sum_{p \\in P} \\sum_{n_i, n_j \\in p}
        \\text{stress}(n_i, n_j)}{N_{\\text{total node pairs}}}

where ``stress(n_i, n_j)`` averages the normalised stress
``((||v_i − v_j|| − d_ref) / d_ref)²`` over all four combinations of the two
nodes' segment endpoints, and only same-path pairs contribute (general-graph
stress would also count pairs the layout algorithm never optimises).

The computation is quadratic in path length, which is exactly the paper's
motivation for the sampled variant (Table V: 194 GPU-hours estimated for
Chr.1); this module therefore processes pairs in vectorised blocks and is
intended for small/medium graphs and for validating the sampled metric
(Fig. 13).
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.layout import Layout
from ..graph.lean import LeanGraph

__all__ = ["pair_stress_terms", "path_stress", "count_path_pairs"]


def pair_stress_terms(
    layout: Layout,
    graph: LeanGraph,
    flat_i: np.ndarray,
    flat_j: np.ndarray,
) -> np.ndarray:
    """Normalised stress of specific step pairs (averaged over endpoints).

    ``flat_i`` / ``flat_j`` index the graph's flat step arrays and must refer
    to steps of the same path. Pairs with zero reference distance are
    returned as 0 (they carry no information about the layout).
    """
    flat_i = np.asarray(flat_i, dtype=np.int64)
    flat_j = np.asarray(flat_j, dtype=np.int64)
    node_i = graph.step_nodes[flat_i]
    node_j = graph.step_nodes[flat_j]
    d_ref = np.abs(
        graph.step_positions[flat_i] - graph.step_positions[flat_j]
    ).astype(np.float64)
    valid = d_ref > 0
    d_safe = np.where(valid, d_ref, 1.0)
    coords = layout.coords
    total = np.zeros(flat_i.size, dtype=np.float64)
    # Average over the four endpoint combinations (paper's definition).
    for ei in (0, 1):
        for ej in (0, 1):
            vi = coords[2 * node_i + ei]
            vj = coords[2 * node_j + ej]
            diff = vi - vj
            mag = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            total += ((mag - d_safe) / d_safe) ** 2
    terms = total / 4.0
    return np.where(valid, terms, 0.0)


def count_path_pairs(graph: LeanGraph) -> int:
    """Total number of same-path step pairs N_total (denominator of Eq. 1)."""
    counts = graph.path_step_counts.astype(np.int64)
    return int((counts * (counts - 1) // 2).sum())


def path_stress(
    layout: Layout,
    graph: LeanGraph,
    block_size: int = 200_000,
    max_pairs: Optional[int] = None,
) -> float:
    """Exact path stress over every same-path step pair.

    Parameters
    ----------
    block_size:
        Number of pairs evaluated per vectorised block (memory control).
    max_pairs:
        Optional safety cap; exceeding it raises ``ValueError`` so callers do
        not accidentally start a quadratic computation on a chromosome-scale
        graph (use :func:`repro.metrics.sampled_stress.sampled_path_stress`).
    """
    n_pairs = count_path_pairs(graph)
    if n_pairs == 0:
        return 0.0
    if max_pairs is not None and n_pairs > max_pairs:
        raise ValueError(
            f"path stress would evaluate {n_pairs} pairs (> max_pairs={max_pairs}); "
            "use sampled_path_stress for large graphs"
        )
    total = 0.0
    buf_i = np.empty(block_size, dtype=np.int64)
    buf_j = np.empty(block_size, dtype=np.int64)
    fill = 0
    for p in range(graph.n_paths):
        sl = graph.path_steps(p)
        n = sl.stop - sl.start
        if n < 2:
            continue
        base = sl.start
        for i_local in range(n - 1):
            m = n - 1 - i_local
            start = 0
            while start < m:
                take = min(m - start, block_size - fill)
                buf_i[fill:fill + take] = base + i_local
                buf_j[fill:fill + take] = base + i_local + 1 + start + np.arange(take)
                fill += take
                start += take
                if fill == block_size:
                    total += float(pair_stress_terms(layout, graph, buf_i, buf_j).sum())
                    fill = 0
    if fill:
        total += float(pair_stress_terms(layout, graph, buf_i[:fill], buf_j[:fill]).sum())
    return total / n_pairs
