"""Integration tests for the layout engines and the public API."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchedLayoutEngine,
    CpuBaselineEngine,
    GpuKernelConfig,
    LayoutParams,
    OptimizedGpuEngine,
    SerialReferenceEngine,
    layout_graph,
    make_engine,
)
from repro.core.layout import Layout, NodeDataLayout
from repro.metrics import sampled_path_stress


def _scrambled_layout(graph, seed=0, span=1000.0):
    rng = np.random.default_rng(seed)
    return Layout(rng.uniform(0.0, span, size=(2 * graph.n_nodes, 2)))


class TestEngineFactory:
    def test_all_engine_names(self, small_synthetic, fast_params):
        for name, cls in [
            ("cpu", CpuBaselineEngine),
            ("serial", SerialReferenceEngine),
            ("batch", BatchedLayoutEngine),
            ("gpu", OptimizedGpuEngine),
            ("gpu-base", OptimizedGpuEngine),
        ]:
            engine = make_engine(small_synthetic, name, fast_params)
            assert isinstance(engine, cls)

    def test_unknown_engine(self, small_synthetic):
        with pytest.raises(ValueError):
            make_engine(small_synthetic, "tpu")

    def test_accepts_variation_graph(self, fig1_graph, fast_params):
        engine = make_engine(fig1_graph, "cpu", fast_params)
        assert engine.graph.n_nodes == 8

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            make_engine([1, 2, 3], "cpu")

    def test_gpu_base_has_no_optimisations(self, small_synthetic, fast_params):
        engine = make_engine(small_synthetic, "gpu-base", fast_params)
        assert not engine.config.cache_friendly_layout
        assert not engine.config.coalesced_random_states
        assert not engine.config.warp_merging


class TestLayoutRuns:
    def test_layout_graph_shapes(self, small_synthetic, fast_params):
        result = layout_graph(small_synthetic, engine="cpu", params=fast_params)
        assert result.layout.coords.shape == (2 * small_synthetic.n_nodes, 2)
        assert result.engine == "cpu-baseline"
        assert result.iterations == fast_params.iter_max
        assert result.total_terms > 0
        assert np.all(np.isfinite(result.layout.coords))

    def test_cpu_reduces_stress_from_scrambled(self, small_synthetic, quality_params):
        scrambled = _scrambled_layout(small_synthetic)
        before = sampled_path_stress(scrambled, small_synthetic, samples_per_step=15).value
        engine = CpuBaselineEngine(small_synthetic, quality_params)
        result = engine.run(initial=scrambled)
        after = sampled_path_stress(result.layout, small_synthetic, samples_per_step=15).value
        assert after < before / 10

    def test_gpu_matches_cpu_quality(self, small_synthetic, quality_params):
        scrambled = _scrambled_layout(small_synthetic)
        cpu = CpuBaselineEngine(small_synthetic, quality_params).run(initial=scrambled)
        gpu = OptimizedGpuEngine(small_synthetic, quality_params).run(initial=scrambled)
        s_cpu = sampled_path_stress(cpu.layout, small_synthetic, samples_per_step=15).value
        s_gpu = sampled_path_stress(gpu.layout, small_synthetic, samples_per_step=15).value
        # Paper Table VIII: GPU/CPU sampled-path-stress ratio close to 1;
        # allow a generous band at this tiny scale.
        assert s_gpu < 5 * max(s_cpu, 1e-3)

    def test_serial_reference_runs(self, tiny_graph):
        params = LayoutParams(iter_max=2, steps_per_step_unit=1.0)
        result = SerialReferenceEngine(tiny_graph, params).run()
        assert np.all(np.isfinite(result.layout.coords))

    def test_serial_fixed_hop_does_not_converge_as_well(self, small_synthetic):
        params = LayoutParams(iter_max=4, steps_per_step_unit=1.0)
        scrambled = _scrambled_layout(small_synthetic)
        random_engine = CpuBaselineEngine(small_synthetic, params.with_(iter_max=12,
                                                                        steps_per_step_unit=3.0))
        good = random_engine.run(initial=scrambled)
        fixed = SerialReferenceEngine(small_synthetic, params).run_fixed_hop(hop=10)
        s_good = sampled_path_stress(good.layout, small_synthetic, samples_per_step=10).value
        s_fixed = sampled_path_stress(fixed.layout, small_synthetic, samples_per_step=10).value
        # Fig. 6: removing selection randomness prevents convergence.
        assert s_fixed > s_good

    def test_determinism_same_seed(self, small_synthetic, fast_params):
        a = layout_graph(small_synthetic, engine="cpu", params=fast_params)
        b = layout_graph(small_synthetic, engine="cpu", params=fast_params)
        assert np.allclose(a.layout.coords, b.layout.coords)

    def test_different_seed_differs(self, small_synthetic, fast_params):
        a = layout_graph(small_synthetic, engine="cpu", params=fast_params)
        b = layout_graph(small_synthetic, engine="cpu", params=fast_params.with_(seed=777))
        assert not np.allclose(a.layout.coords, b.layout.coords)

    def test_history_recording(self, small_synthetic):
        params = LayoutParams(iter_max=4, steps_per_step_unit=1.0, record_history=True)
        result = layout_graph(small_synthetic, engine="cpu", params=params)
        assert len(result.history) == 4
        assert result.final_stress() is not None
        etas = [h.eta for h in result.history]
        assert etas == sorted(etas, reverse=True)

    def test_no_history_by_default(self, small_synthetic, fast_params):
        result = layout_graph(small_synthetic, engine="cpu", params=fast_params)
        assert result.history == []
        assert result.final_stress() is None


class TestCpuBaselineDetails:
    def test_batch_plan_covers_all_steps(self, small_synthetic, fast_params):
        engine = CpuBaselineEngine(small_synthetic,
                                   fast_params.with_(simulated_threads=4),
                                   hogwild_round=16)
        steps = fast_params.steps_per_iteration(small_synthetic.total_steps)
        plan = engine.batch_plan(steps)
        assert sum(plan) == steps
        assert max(plan) <= 4 * 16

    def test_invalid_hogwild_round(self, small_synthetic, fast_params):
        with pytest.raises(ValueError):
            CpuBaselineEngine(small_synthetic, fast_params, hogwild_round=0)

    def test_access_trace_layouts_differ(self, small_synthetic, fast_params):
        engine = CpuBaselineEngine(small_synthetic, fast_params)
        soa = engine.access_trace(n_terms=128, data_layout=NodeDataLayout.SOA)
        aos = engine.access_trace(n_terms=128, data_layout=NodeDataLayout.AOS)
        assert soa.shape == aos.shape == (128 * 6,)
        # AoS packs each term's three fields close together; SoA spreads them.
        aos_span = np.abs(np.diff(aos.reshape(-1, 3), axis=1)).max()
        soa_span = np.abs(np.diff(soa.reshape(-1, 3), axis=1)).max()
        assert aos_span < soa_span


class TestGpuEngineDetails:
    def test_wave_capped_by_graph_size(self, small_synthetic, fast_params):
        cfg = GpuKernelConfig(concurrent_threads=1 << 20)
        engine = OptimizedGpuEngine(small_synthetic, fast_params, cfg)
        plan = engine.batch_plan(10000)
        assert max(plan) <= max(32, small_synthetic.n_nodes // 4)

    def test_kernel_launches(self, small_synthetic, fast_params):
        engine = OptimizedGpuEngine(small_synthetic, fast_params)
        assert engine.kernel_launches() == fast_params.iter_max + 1

    def test_data_reuse_total_terms(self, small_synthetic, fast_params):
        cfg = GpuKernelConfig(data_reuse_factor=2, step_reduction_factor=2.0)
        engine = OptimizedGpuEngine(small_synthetic, fast_params, cfg)
        base = OptimizedGpuEngine(small_synthetic, fast_params)
        assert engine.total_terms() == pytest.approx(base.total_terms(), rel=0.01)

    def test_data_reuse_batches_are_larger(self, small_synthetic, fast_params):
        cfg = GpuKernelConfig(data_reuse_factor=4)
        engine = OptimizedGpuEngine(small_synthetic, fast_params, cfg)
        rng = engine.make_rng()
        batch = engine.draw_batch(rng, 64, iteration=0, batch_index=0)
        expanded = engine.on_batch(batch, 0, 0)
        assert len(expanded) == 4 * 64
        # Reused pairs must still be same-path pairs with consistent d_ref.
        assert np.array_equal(
            expanded.d_ref,
            np.abs(small_synthetic.step_positions[expanded.flat_i]
                   - small_synthetic.step_positions[expanded.flat_j]).astype(float),
        )

    def test_warp_merging_uniform_decision_per_warp(self, small_synthetic, fast_params):
        cfg = GpuKernelConfig(warp_merging=True)
        engine = OptimizedGpuEngine(small_synthetic, fast_params, cfg)
        rng = engine.make_rng()
        batch = engine.draw_batch(rng, 128, iteration=0, batch_index=0)
        cooling = batch.in_cooling.reshape(-1, 32)
        assert np.all(cooling.min(axis=1) == cooling.max(axis=1))

    def test_no_warp_merging_mixed_decisions(self, small_synthetic, fast_params):
        cfg = GpuKernelConfig.baseline()
        engine = OptimizedGpuEngine(small_synthetic, fast_params, cfg)
        rng = engine.make_rng()
        batch = engine.draw_batch(rng, 1024, iteration=0, batch_index=0)
        cooling = batch.in_cooling.reshape(-1, 32)
        mixed_warps = np.any(cooling, axis=1) & ~np.all(cooling, axis=1)
        assert mixed_warps.any()

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            GpuKernelConfig(data_reuse_factor=0)
        with pytest.raises(ValueError):
            GpuKernelConfig(step_reduction_factor=0.5)
        with pytest.raises(ValueError):
            GpuKernelConfig(concurrent_threads=8, warp_size=32)

    def test_config_label(self):
        assert GpuKernelConfig().label() == "CDL+CRS+WM"
        assert "reuse(2,1.5)" in GpuKernelConfig(data_reuse_factor=2,
                                                 step_reduction_factor=1.5).label()


class TestBatchedEngine:
    def test_kernel_accounting(self, small_synthetic):
        params = LayoutParams(iter_max=2, steps_per_step_unit=1.0, batch_size=256)
        engine = BatchedLayoutEngine(small_synthetic, params)
        engine.run()
        profile = engine.op_profile
        assert profile.total_launches > 0
        assert "index" in profile.ops
        breakdown = profile.time_breakdown()
        assert pytest.approx(sum(breakdown.values()), rel=1e-6) == 1.0
        # Fig. 7: the index (gather/scatter) kernels dominate the time.
        assert breakdown["index"] == max(breakdown.values())

    def test_smaller_batches_launch_more_kernels(self, small_synthetic):
        small = BatchedLayoutEngine(small_synthetic,
                                    LayoutParams(iter_max=1, steps_per_step_unit=1.0,
                                                 batch_size=64))
        large = BatchedLayoutEngine(small_synthetic,
                                    LayoutParams(iter_max=1, steps_per_step_unit=1.0,
                                                 batch_size=4096))
        total = 100_000
        assert small.kernel_launches_for(total) > large.kernel_launches_for(total)

    def test_api_overhead_grows_with_smaller_batches(self, small_synthetic):
        fractions = []
        for batch_size in (64, 4096):
            params = LayoutParams(iter_max=1, steps_per_step_unit=1.0, batch_size=batch_size)
            engine = BatchedLayoutEngine(small_synthetic, params)
            engine.run()
            fractions.append(engine.op_profile.api_overhead_fraction)
        assert fractions[0] > fractions[1]

    def test_batch_plan(self, small_synthetic):
        params = LayoutParams(iter_max=1, steps_per_step_unit=1.0, batch_size=100)
        engine = BatchedLayoutEngine(small_synthetic, params)
        plan = engine.batch_plan(250)
        assert plan == [100, 100, 50]
