"""CI smoke cases tracking the update/sampling hot-path wall time.

These are the only smoke metrics *measured* in wall-clock time rather than
modelled deterministically. They exist because the hot path's scaling
contract — ``apply_batch`` must cost O(batch), never O(graph) (paper
Sec. V-B's cache-friendly discipline applied to the shared NumPy kernel) —
regressed silently once before: the hogwild merge allocated two graph-sized
scratch arrays per 256-term batch, making the default policy ~7× slower than
``accumulate`` on the Chr.1-like graph while every modelled metric stayed
green.

Each timing is a best-of-``repeats`` mean over an inner loop (stable on an
otherwise idle machine) and is recorded with ``deterministic=False``: the
runner's across-repeat byte-identity check skips it, while ``repro bench
compare`` still gates it directionally against the committed baseline. All
sampled inputs come from master-seeded PRNGs so the *workload* being timed is
identical run to run.
"""
from __future__ import annotations

import time
from typing import Callable

from ...core import PairSampler, initialize_layout
from ...core.cpu_baseline import CpuBaselineEngine
from ...core.updates import UpdateWorkspace, apply_batch
from ...prng.xoshiro import Xoshiro256Plus
from ..registry import CaseResult, bench_case
from ..tables import format_table

#: Batch size of the paper's Table III sweet spot and of the regression that
#: motivated these cases (256 terms per hogwild round).
_BATCH = 256


def _best_ms(fn: Callable[[], object], inner: int, repeats: int = 7,
             warmup: int = 3) -> float:
    """Best mean wall time of ``fn`` in milliseconds over ``repeats`` loops.

    Like ``timeit``, the garbage collector is paused during the timed loops so
    a collection cycle landing inside one repeat cannot masquerade as a
    regression; the min-of-repeats then suppresses scheduler noise.
    """
    import gc

    for _ in range(warmup):
        fn()
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            best = min(best, (time.perf_counter() - t0) / inner)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best * 1e3


@bench_case("perf_apply_batch", source="Sec. V-B (hot path)", suites=("smoke",))
def run_apply_batch(ctx) -> CaseResult:
    """apply_batch wall time per merge policy: O(batch), not O(graph)."""
    graph = ctx.perf_graph
    sampler = PairSampler(graph, ctx.smoke_params)
    rng = Xoshiro256Plus(ctx.seed_for("perf_apply_batch/sample"), n_streams=_BATCH)
    batch = sampler.sample(rng, _BATCH, iteration=0)
    coords = initialize_layout(graph, seed=ctx.seed_for("perf_apply_batch/init")).coords
    # The workspace carries the run's backend (``--backend`` / REPRO_BACKEND)
    # and the coordinate state is uploaded into its memory space, so these
    # wall times measure whichever merge kernels the run selected. The
    # synchronize() in the timed closure makes device backends report
    # completed work, not launch overhead; on host backends both transfer
    # and sync are identities.
    backend = ctx.backend
    workspace = UpdateWorkspace(_BATCH, backend=backend)

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    probe = apply_batch(backend.from_host(coords.copy()), batch, eta=1.0,
                        workspace=workspace)
    out.add("point_collisions", probe.n_point_collisions, direction="info")
    rows = []
    timings = {}
    for merge in ("hogwild", "accumulate", "last_writer"):
        working = backend.from_host(coords.copy())

        def one_batch(working=working, merge=merge):
            apply_batch(working, batch, eta=1.0, merge=merge, workspace=workspace)
            backend.synchronize()

        ms = _best_ms(one_batch, inner=200)
        timings[merge] = ms
        out.add(f"{merge}_ms_per_batch", ms, unit="ms", direction="lower",
                deterministic=False)
        rows.append([merge, f"{ms:.4f}"])
    # Machine-independent scaling guard: the O(N) hogwild bug made the
    # hogwild/accumulate cost ratio ~7, the compacted merge keeps it ~1.
    # Unlike the raw ms metrics (which compare downgrades to warn across
    # timing environments), a dimensionless ratio hard-gates on every
    # machine — including CI runners with a baseline from other hardware.
    # The gated value is floored at 1.5 so benign cross-machine variation
    # of the healthy ~1.0-1.3 band never moves the metric; only a genuine
    # scaling regression (ratio > 1.65 at the 10% threshold) trips it.
    ratio = timings["hogwild"] / max(timings["accumulate"], 1e-9)
    out.add("hogwild_to_accumulate_ratio", ratio, unit="x", direction="info",
            deterministic=False)
    out.add("hogwild_scaling_guard", max(ratio, 1.5), unit="x",
            direction="lower", deterministic=False)
    out.tables.append(format_table(
        ["Merge policy", "ms / 256-term batch"], rows,
        title="Smoke: apply_batch hot-path wall time (Chr.1-like)",
    ))
    return out


@bench_case("perf_sampler", source="Alg. 1 l.5-13 (hot path)", suites=("smoke",))
def run_sampler(ctx) -> CaseResult:
    """PairSampler bulk-draw + term-selection wall time per 256-term batch."""
    graph = ctx.perf_graph
    sampler = PairSampler(graph, ctx.smoke_params)
    rng = Xoshiro256Plus(ctx.seed_for("perf_sampler/stream"), n_streams=_BATCH)

    sample_ms = _best_ms(lambda: sampler.sample(rng, _BATCH, iteration=0), inner=150)
    uniforms_ms = _best_ms(lambda: PairSampler._uniforms(rng, _BATCH, 8), inner=150)

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("sample_ms_per_batch", sample_ms, unit="ms", direction="lower",
            deterministic=False)
    out.add("uniforms8_ms_per_batch", uniforms_ms, unit="ms", direction="lower",
            deterministic=False)
    out.add("draws_per_sample", 8, direction="info")
    out.tables.append(format_table(
        ["Stage", "ms / 256-term batch"],
        [["sample() end to end", f"{sample_ms:.4f}"],
         ["8-vector uniform block", f"{uniforms_ms:.4f}"]],
        title="Smoke: sampler hot-path wall time (Chr.1-like)",
    ))
    return out


@bench_case("perf_engine_iteration", source="Alg. 1 (hot path)", suites=("smoke",))
def run_engine_iteration(ctx) -> CaseResult:
    """One full CPU-baseline iteration (draw + merge over all batches)."""
    graph = ctx.chr1_graph
    params = ctx.smoke_params.with_(iter_max=1, simulated_threads=8)
    engine = CpuBaselineEngine(graph, params)

    result_holder = {}

    def one_iteration():
        result_holder["result"] = engine.run()

    ms = _best_ms(one_iteration, inner=1, repeats=6, warmup=2)
    result = result_holder["result"]

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("iteration_ms", ms, unit="ms", direction="lower", deterministic=False)
    out.add("terms_per_iteration", result.total_terms, direction="info")
    out.add("ms_per_kterm", ms / max(result.total_terms / 1000.0, 1e-9),
            unit="ms", direction="lower", deterministic=False)
    out.tables.append(format_table(
        ["Metric", "Value"],
        [["iteration wall time", f"{ms:.2f} ms"],
         ["terms per iteration", result.total_terms],
         ["ms per 1k terms", f"{ms / max(result.total_terms / 1000.0, 1e-9):.4f}"]],
        title="Smoke: engine iteration wall time (Chr.1-like @0.1)",
    ))
    return out
