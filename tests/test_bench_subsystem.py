"""Tests for the benchmark orchestration subsystem (registry/schema/compare)."""
from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    compare_documents,
    compare_files,
    parse_threshold,
)
from repro.bench.context import BenchContext
from repro.bench.registry import (
    BenchRegistry,
    CaseResult,
    DuplicateCaseError,
    Metric,
    UnknownCaseError,
    UnknownSuiteError,
    bench_case,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    default_output_path,
    list_tracked_metrics,
    load_results,
    metric_values,
    validate_results,
    write_results,
)


def make_case_doc(name, metrics, source="Fig. T"):
    """A schema-valid case record with the given {name: (value, direction)}."""
    return {
        "name": name,
        "source": source,
        "suites": ["smoke"],
        "wall_time": {"repeats": 1, "times_s": [0.5], "min_s": 0.5, "mean_s": 0.5},
        "metrics": {
            metric: {"value": value, "unit": "s", "direction": direction}
            for metric, (value, direction) in metrics.items()
        },
        "graph_properties": {"n_nodes": 100.0},
    }


def make_doc(cases, seed=9399):
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "smoke",
        "master_seed": seed,
        "environment": {"python": "3.11.7", "numpy": "2.4.6"},
        "runner": {"warmup": 0, "repeats": 1},
        "cases": cases,
    }


class TestRegistry:
    def test_decorator_registers_and_annotates(self):
        registry = BenchRegistry()

        @bench_case("case_a", source="Fig. 1", suites=("smoke",), registry=registry)
        def case_a(ctx):
            """Does a thing."""
            return CaseResult()

        assert "case_a" in registry
        assert case_a.case.summary == "Does a thing."
        assert registry.get("case_a").source == "Fig. 1"

    def test_duplicate_name_rejected(self):
        registry = BenchRegistry()

        @bench_case("dup", registry=registry)
        def first(ctx):
            return CaseResult()

        with pytest.raises(DuplicateCaseError, match="already registered"):
            @bench_case("dup", registry=registry)
            def second(ctx):
                return CaseResult()

    def test_unknown_suite_declaration_rejected(self):
        registry = BenchRegistry()
        with pytest.raises(UnknownSuiteError):
            @bench_case("c", suites=("nope",), registry=registry)
            def case(ctx):
                return CaseResult()

    def test_all_is_not_declarable(self):
        registry = BenchRegistry()
        with pytest.raises(UnknownSuiteError):
            @bench_case("c", suites=("all",), registry=registry)
            def case(ctx):
                return CaseResult()

    def test_suite_resolution(self):
        registry = BenchRegistry()

        @bench_case("s1", suites=("smoke",), registry=registry)
        def s1(ctx):
            return CaseResult()

        @bench_case("f1", suites=("figures",), registry=registry)
        def f1(ctx):
            return CaseResult()

        assert [c.name for c in registry.suite("smoke")] == ["s1"]
        assert [c.name for c in registry.suite("figures")] == ["f1"]
        assert [c.name for c in registry.suite("all")] == ["f1", "s1"]
        with pytest.raises(UnknownSuiteError):
            registry.suite("bogus")

    def test_unknown_case_lookup(self):
        with pytest.raises(UnknownCaseError):
            BenchRegistry().get("missing")

    def test_metric_validation(self):
        with pytest.raises(ValueError, match="direction"):
            Metric(1.0, direction="sideways")
        with pytest.raises(TypeError):
            Metric("fast")

    def test_case_result_duplicate_metric(self):
        result = CaseResult()
        result.add("m", 1.0)
        with pytest.raises(ValueError, match="recorded twice"):
            result.add("m", 2.0)


class TestContext:
    def test_seed_derivation_is_deterministic(self):
        a, b = BenchContext(123), BenchContext(123)
        assert a.seed_for("x/y") == b.seed_for("x/y")
        assert a.rng("r").integers(0, 1 << 30) == b.rng("r").integers(0, 1 << 30)

    def test_labels_and_master_seed_decorrelate(self):
        ctx = BenchContext(123)
        assert ctx.seed_for("a") != ctx.seed_for("b")
        assert BenchContext(1).seed_for("a") != BenchContext(2).seed_for("a")

    def test_params_carry_master_seed(self):
        ctx = BenchContext(77)
        assert ctx.bench_params.seed == 77
        assert ctx.quality_bench_params.seed == 77

    def test_invalid_master_seed(self):
        with pytest.raises(ValueError):
            BenchContext(-1)


class TestSchema:
    def test_round_trip(self, tmp_path):
        doc = make_doc([make_case_doc("c1", {"t": (1.5, "lower")})])
        path = tmp_path / "BENCH_smoke.json"
        write_results(doc, str(path))
        back = load_results(str(path))
        assert back == doc
        assert metric_values(back) == {"c1": {"t": 1.5}}
        assert list_tracked_metrics(back) == ["c1/t"]

    def test_default_output_path(self):
        assert default_output_path("smoke").endswith("BENCH_smoke.json")

    def test_unsupported_version(self):
        doc = make_doc([])
        doc["schema_version"] = 99
        with pytest.raises(SchemaError, match="unsupported"):
            validate_results(doc)

    def test_missing_key(self):
        doc = make_doc([])
        del doc["environment"]
        with pytest.raises(SchemaError, match="environment"):
            validate_results(doc)

    def test_duplicate_case_names(self):
        doc = make_doc([make_case_doc("c", {}), make_case_doc("c", {})])
        with pytest.raises(SchemaError, match="duplicate case name"):
            validate_results(doc)

    def test_repeats_times_mismatch(self):
        case = make_case_doc("c", {})
        case["wall_time"]["repeats"] = 3
        with pytest.raises(SchemaError, match="repeats=3"):
            validate_results(make_doc([case]))

    def test_bad_direction(self):
        case = make_case_doc("c", {"m": (1.0, "diagonal")})
        with pytest.raises(SchemaError, match="direction"):
            validate_results(make_doc([case]))

    def test_bool_rejected_for_int_fields(self):
        doc = make_doc([])
        doc["master_seed"] = True
        with pytest.raises(SchemaError, match="master_seed"):
            validate_results(doc)
        doc = make_doc([])
        doc["schema_version"] = True
        with pytest.raises(SchemaError, match="schema_version"):
            validate_results(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SchemaError, match="not valid JSON"):
            load_results(str(path))

    def test_write_rejects_invalid(self, tmp_path):
        with pytest.raises(SchemaError):
            write_results({"schema_version": SCHEMA_VERSION}, str(tmp_path / "x.json"))


class TestCompare:
    def pair(self, old_value, new_value, direction):
        old = make_doc([make_case_doc("c", {"m": (old_value, direction)})])
        new = make_doc([make_case_doc("c", {"m": (new_value, direction)})])
        return old, new

    def test_identical_passes(self):
        report = compare_documents(*self.pair(2.0, 2.0, "lower"))
        assert [d.status for d in report.deltas] == ["ok"]
        assert report.exit_code == 0

    def test_small_regression_warns(self):
        report = compare_documents(*self.pair(2.0, 2.1, "lower"), max_regress=0.10)
        assert [d.status for d in report.deltas] == ["warn"]
        assert report.exit_code == 0

    def test_large_regression_fails(self):
        report = compare_documents(*self.pair(2.0, 2.5, "lower"), max_regress=0.10)
        assert [d.status for d in report.deltas] == ["fail"]
        assert report.exit_code == 1
        assert "FAIL" in report.summary_line()

    def test_higher_direction_inverts(self):
        # Speedup dropping 25% is a failure; rising is an improvement.
        report = compare_documents(*self.pair(10.0, 7.5, "higher"), max_regress=0.10)
        assert [d.status for d in report.deltas] == ["fail"]
        report = compare_documents(*self.pair(10.0, 13.0, "higher"), max_regress=0.10)
        assert [d.status for d in report.deltas] == ["improved"]

    def test_info_metrics_ignored(self):
        report = compare_documents(*self.pair(1.0, 99.0, "info"))
        assert report.deltas == []
        assert report.exit_code == 0

    def test_missing_case_fails_unless_allowed(self):
        old = make_doc([make_case_doc("gone", {"m": (1.0, "lower")})])
        new = make_doc([])
        assert compare_documents(old, new).exit_code == 1
        assert compare_documents(old, new, allow_missing=True).exit_code == 0

    def test_new_metric_never_fails(self):
        old = make_doc([])
        new = make_doc([make_case_doc("fresh", {"m": (1.0, "lower")})])
        report = compare_documents(old, new)
        assert [d.status for d in report.deltas] == ["new"]
        assert report.exit_code == 0

    def test_info_to_gated_transition_reported_as_new(self):
        # A metric that was untracked (info) in the baseline but gated in the
        # candidate must surface as "new", not silently vanish.
        old = make_doc([make_case_doc("c", {"m": (1.0, "info")})])
        new = make_doc([make_case_doc("c", {"m": (99.0, "lower")})])
        report = compare_documents(old, new, max_regress=0.10)
        assert [d.status for d in report.deltas] == ["new"]
        assert report.exit_code == 0

    def test_environment_mismatch_noted(self):
        old, new = self.pair(1.0, 1.0, "lower")
        new["environment"]["numpy"] = "1.26.0"
        report = compare_documents(old, new)
        assert any("numpy" in note for note in report.notes)

    def _wall_pair(self, old_value, new_value):
        old, new = self.pair(old_value, new_value, "lower")
        for doc in (old, new):
            doc["cases"][0]["metrics"]["m"]["deterministic"] = False
        return old, new

    def test_wall_metric_gated_in_same_environment(self):
        report = compare_documents(*self._wall_pair(2.0, 2.5), max_regress=0.10)
        assert [d.status for d in report.deltas] == ["fail"]
        assert report.exit_code == 1

    def test_wall_metric_downgraded_across_environments(self):
        old, new = self._wall_pair(2.0, 2.5)
        new["environment"]["platform"] = "Linux-other-host"
        report = compare_documents(old, new, max_regress=0.10)
        assert [d.status for d in report.deltas] == ["warn"]
        assert report.exit_code == 0
        assert any("timing environments" in note for note in report.notes)

    def test_deterministic_metric_still_fails_across_environments(self):
        old, new = self.pair(2.0, 2.5, "lower")
        new["environment"]["platform"] = "Linux-other-host"
        report = compare_documents(old, new, max_regress=0.10)
        assert [d.status for d in report.deltas] == ["fail"]
        assert report.exit_code == 1

    def test_zero_baseline(self):
        report = compare_documents(*self.pair(0.0, 0.5, "lower"), max_regress=0.10)
        assert [d.status for d in report.deltas] == ["fail"]
        report = compare_documents(*self.pair(0.0, 0.0, "lower"))
        assert [d.status for d in report.deltas] == ["ok"]

    def test_compare_files(self, tmp_path):
        old, new = self.pair(2.0, 4.0, "lower")
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        write_results(old, str(old_path))
        write_results(new, str(new_path))
        report = compare_files(str(old_path), str(new_path), max_regress=0.10)
        assert report.exit_code == 1
        assert "fail" in report.format().lower()

    def test_parse_threshold(self):
        assert parse_threshold("10%") == pytest.approx(0.10)
        assert parse_threshold("0.25") == pytest.approx(0.25)
        assert parse_threshold(" 5% ") == pytest.approx(0.05)
        with pytest.raises(ValueError):
            parse_threshold("fast")
        with pytest.raises(ValueError):
            parse_threshold("-3%")


class TestEnvironmentFingerprint:
    def test_fingerprint_fields(self):
        from repro.bench.env import environment_fingerprint

        fp = environment_fingerprint()
        assert set(fp) >= {"python", "numpy", "platform", "repro", "git"}
        assert json.dumps(fp)  # JSON-serialisable
