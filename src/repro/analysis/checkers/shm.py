"""SHM001 — the shared-memory lifecycle contract (PR 6).

:class:`~repro.parallel.shm.SharedArrayBlock` has a strict ownership
discipline: the *parent* ``create()``\\ s the segment and must ``unlink()``
it exactly once inside a ``finally`` (so crashed runs leak no segments);
*workers* ``attach()`` by name and may only ever ``close()`` their mapping
— a worker unlinking would tear the segment out from under its siblings.

Statically enforced per function:

* a function calling ``SharedArrayBlock.create(...)`` must contain a
  ``try``/``finally`` whose ``finally`` calls ``.unlink()`` — unless the
  created block's ownership provably moves elsewhere, which is what
  ``# shm-ok: <reason>`` documents;
* a function calling ``SharedArrayBlock.attach(...)`` must not call
  ``.unlink()`` at all.
"""
from __future__ import annotations

import ast
from typing import List

from ..astutil import function_defs
from ..registry import Finding, checker
from ..source import SourceFile

__all__ = ["check_shm001"]

BLOCK_CLASS = "SharedArrayBlock"


def _classmethod_call(node: ast.AST, method: str) -> bool:
    """True for ``SharedArrayBlock.<method>(...)`` call expressions."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == BLOCK_CLASS)


def _unlink_calls(region: ast.AST) -> List[ast.Call]:
    return [node for node in ast.walk(region)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "unlink"]


def _has_finally_unlink(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                if _unlink_calls(stmt):
                    return True
    return False


@checker("SHM001", pragma="shm-ok", severity="error", scope="file")
def check_shm001(src: SourceFile) -> List[Finding]:
    """Create/attach/close/unlink discipline for SharedArrayBlock."""
    out: List[Finding] = []
    for func, _cls in function_defs(src.tree):
        creates: List[ast.Call] = []
        attaches: List[ast.Call] = []
        for node in ast.walk(func):
            if _classmethod_call(node, "create"):
                creates.append(node)
            elif _classmethod_call(node, "attach"):
                attaches.append(node)
        if creates and not _has_finally_unlink(func):
            for call in creates:
                out.append(Finding(
                    rule="SHM001", path=src.rel, line=call.lineno,
                    col=call.col_offset, severity="error",
                    message=(f"'{func.name}' calls {BLOCK_CLASS}.create() "
                             "without unlink() in a finally — the creating "
                             "parent must unlink exactly once however the "
                             "run exits; if ownership transfers to the "
                             "caller, document it with '# shm-ok: <reason>'"),
                    snippet=src.snippet(call.lineno)))
        if attaches:
            for call in _unlink_calls(func):
                out.append(Finding(
                    rule="SHM001", path=src.rel, line=call.lineno,
                    col=call.col_offset, severity="error",
                    message=(f"'{func.name}' attaches a {BLOCK_CLASS} but "
                             "calls unlink() — attached (non-owner) "
                             "mappings may only close(); unlinking from a "
                             "worker tears the segment from its siblings"),
                    snippet=src.snippet(call.lineno)))
    return out
