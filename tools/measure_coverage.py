#!/usr/bin/env python
"""Approximate line-coverage measurement without the ``coverage`` package.

Dev utility used to set (and occasionally re-check) the ``--cov-fail-under``
floor of the CI coverage job from environments where ``pytest-cov`` is not
installed. It runs the tier-1 pytest suite under ``sys.settrace``, recording
executed lines of every module below ``src/repro``, and compares them with
the statically *executable* lines (the union of ``co_lines()`` over each
compiled module's code-object tree — the same universe coverage.py uses,
minus its arc analysis, so results track ``pytest --cov`` to within ~1%).

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Prints per-module and total percentages. Expect a runtime ~10× the plain
suite (pure-Python tracing).
"""
from __future__ import annotations

import os
import sys
import threading
from collections import defaultdict

SRC_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src", "repro"))

_executed: dict = defaultdict(set)


def _trace(frame, event, arg):
    if event == "call":
        filename = frame.f_code.co_filename
        if filename.startswith(SRC_ROOT):
            return _line_trace
        return None
    return None


def _line_trace(frame, event, arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _line_trace


def _executable_lines(path: str) -> set:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines: set = set()
    todo = [compile(source, path, "exec")]
    while todo:
        code = todo.pop()
        lines.update(ln for _, _, ln in code.co_lines() if ln is not None)
        todo.extend(c for c in code.co_consts if hasattr(c, "co_lines"))
    return lines


def main(argv) -> int:
    import pytest

    sys.settrace(_trace)
    threading.settrace(_trace)
    try:
        pytest.main(["-q", "-p", "no:cacheprovider", *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_exec = total_hit = 0
    rows = []
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            executable = _executable_lines(path)
            hit = _executed.get(path, set()) & executable
            total_exec += len(executable)
            total_hit += len(hit)
            pct = 100.0 * len(hit) / len(executable) if executable else 100.0
            rows.append((pct, os.path.relpath(path, SRC_ROOT),
                         len(hit), len(executable)))
    rows.sort()
    for pct, rel, hit, executable in rows:
        print(f"{pct:6.1f}%  {hit:5d}/{executable:<5d}  {rel}")
    total_pct = 100.0 * total_hit / max(total_exec, 1)
    print(f"\nTOTAL {total_pct:.2f}%  ({total_hit}/{total_exec} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
