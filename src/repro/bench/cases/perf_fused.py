"""CI smoke case gating the fused per-iteration execution path.

``perf_fused_iteration`` runs the CPU baseline engine on the Chr.1-like
graph twice from identical state — once through the classic per-batch loop
(``fused=False``), once through the fused path (one
``backend.run_iteration`` dispatch per iteration over a pre-drawn uniform
megablock) — and gates two things:

* **wall time** — the fused/unfused time ratio, floored at
  :data:`_RATIO_FLOOR` like ``perf_apply_batch``'s scaling guard: the
  healthy ratio sits well under the floor (the fused path removes the
  per-batch interpreter dispatch that motivated the PR), so benign noise
  never moves the gated value, while a fused path regressing toward parity
  trips it on *every* machine (dimensionless ⇒ no cross-environment
  downgrade in ``bench compare``).
* **dispatch count** — ``backend_calls_per_iteration``, the engine's
  update-dispatch counter divided by the iteration count. The fused
  contract is O(1) dispatches per iteration (here exactly 1.0) versus
  O(n_batches) unfused; this is deterministic and machine-independent, so
  any change that silently re-introduces per-batch dispatch fails the gate
  outright.

The two layouts must agree — byte-identical on the NumPy backend, ≤1e-9
elsewhere — which the case asserts before recording anything.
"""
from __future__ import annotations

import time

import numpy as np

from ...core import CpuBaselineEngine
from ..registry import CaseResult, bench_case
from ..tables import format_table

#: Floor applied to the gated fused/unfused wall-time ratio. Healthy runs
#: sit around 0.5-0.8; the 10% compare threshold then only trips past
#: ~0.94 — i.e. when fusing genuinely stopped paying for itself.
_RATIO_FLOOR = 0.85

#: Repeats per variant; the best (minimum) wall time is recorded. Each run
#: is ~0.2-0.5 s, so min-of-5 suppresses scheduler noise without blowing the
#: smoke budget.
_REPEATS = 5

#: Iterations per measured run: fewer than the stock smoke schedule — the
#: per-iteration dispatch contrast being measured is identical every
#: iteration, so a shorter run is the same signal with tighter repeats.
_ITER_MAX = 4


def _best_run(engine_factory):
    """Best-of-:data:`_REPEATS` wall time (GC paused, like ``_best_ms``)."""
    import gc

    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(_REPEATS):
            engine = engine_factory()
            t0 = time.perf_counter()
            candidate = engine.run()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
            result = candidate
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, result


@bench_case("perf_fused_iteration", source="Sec. V-A (fused iteration)",
            suites=("smoke",))
def run_fused_iteration(ctx) -> CaseResult:
    """Fused iteration path: faster than per-batch, O(1) backend dispatches."""
    graph = ctx.chr1_graph
    params = ctx.smoke_params.with_(iter_max=_ITER_MAX)

    unfused_s, unfused = _best_run(
        lambda: CpuBaselineEngine(graph, params.with_(fused=False)))
    fused_s, fused = _best_run(
        lambda: CpuBaselineEngine(graph, params.with_(fused=True)))

    # The execution strategy must not change the optimisation: byte-identity
    # on the reference backend, the conformance tolerance elsewhere.
    if ctx.backend_name == "numpy":
        assert np.array_equal(fused.layout.coords, unfused.layout.coords)
    else:
        np.testing.assert_allclose(fused.layout.coords, unfused.layout.coords,
                                   atol=1e-9, rtol=0)
    assert fused.total_terms == unfused.total_terms
    assert fused.counters.get("fused_iterations", 0.0) > 0.0

    # Machine-independent dispatch tripwire: the fused contract is one
    # backend dispatch per iteration, the unfused loop one per batch.
    fused_calls = fused.counters["update_dispatches"] / fused.iterations
    unfused_calls = unfused.counters["update_dispatches"] / unfused.iterations
    assert fused_calls == 1.0
    assert unfused_calls > 1.0

    ratio = fused_s / max(unfused_s, 1e-12)
    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("backend_calls_per_iteration", fused_calls, direction="lower")
    out.add("unfused_calls_per_iteration", unfused_calls, direction="info")
    out.add("unfused_run_ms", unfused_s * 1e3, unit="ms", direction="lower",
            deterministic=False)
    out.add("fused_run_ms", fused_s * 1e3, unit="ms", direction="lower",
            deterministic=False)
    out.add("fused_to_unfused_ratio", ratio, unit="x", direction="info",
            deterministic=False)
    out.add("fused_iteration_guard", max(ratio, _RATIO_FLOOR), unit="x",
            direction="lower", deterministic=False)
    out.tables.append(format_table(
        ["Path", "Run wall (ms)", "Dispatches / iteration"],
        [["per-batch loop", f"{unfused_s * 1e3:.1f}", f"{unfused_calls:.0f}"],
         ["fused iteration", f"{fused_s * 1e3:.1f}", f"{fused_calls:.0f}"]],
        title="Smoke: fused vs per-batch iteration (Chr.1-like @0.1)",
    ))
    return out
