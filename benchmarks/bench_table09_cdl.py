"""Table IX — effects of the cache-friendly data layout (CDL).

Measures, on the Chr.1-like graph, the LLC loads/misses and run time of the
CPU baseline with and without CDL, and the DRAM traffic and modelled run time
of the GPU kernel with and without CDL. Paper anchors: 3.2x fewer LLC loads,
3.3x fewer LLC misses, 3.1x CPU speedup; 1.3x less GPU DRAM traffic, 1.4x GPU
speedup.
"""
from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import GpuKernelConfig, OptimizedGpuEngine
from repro.core.layout import NodeDataLayout
from repro.gpusim import RTX_A6000, WorkloadCounters, XEON_6246R, cpu_runtime
from repro.parallel import cpu_cache_profile


@pytest.mark.paper_table("Table IX")
def test_table09_cache_friendly_data_layout(benchmark, chr1_graph, bench_params):
    graph = chr1_graph
    params = bench_params
    total_terms = float(params.iter_max * params.steps_per_iteration(graph.total_steps))

    def measure():
        out = {}
        for label, layout_kind in (("w/o CDL", NodeDataLayout.SOA), ("w/ CDL", NodeDataLayout.AOS)):
            traffic, traced = cpu_cache_profile(graph, params, n_trace_terms=2048,
                                                data_layout=layout_kind)
            scaled = traffic.scaled(total_terms / traced)
            cpu_time = cpu_runtime(XEON_6246R, total_terms, scaled,
                                   WorkloadCounters(), n_threads=32)
            gpu_cfg = GpuKernelConfig(cache_friendly_layout=(layout_kind == NodeDataLayout.AOS),
                                      coalesced_random_states=False, warp_merging=False)
            gpu_prof = OptimizedGpuEngine(graph, params, gpu_cfg).profile(
                device=RTX_A6000, n_sample_terms=1536)
            out[label] = (scaled, cpu_time, gpu_prof)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    without, with_cdl = results["w/o CDL"], results["w/ CDL"]
    rows = [
        ["CPU LLC loads", f"{without[0].llc_loads:.3g}", f"{with_cdl[0].llc_loads:.3g}",
         f"{without[0].llc_loads / with_cdl[0].llc_loads:.2f}x", "3.2x"],
        ["CPU LLC misses", f"{without[0].llc_load_misses:.3g}", f"{with_cdl[0].llc_load_misses:.3g}",
         f"{without[0].llc_load_misses / max(with_cdl[0].llc_load_misses, 1):.2f}x", "3.3x"],
        ["CPU run time (model, s)", f"{without[1].total_s:.3g}", f"{with_cdl[1].total_s:.3g}",
         f"{without[1].total_s / with_cdl[1].total_s:.2f}x", "3.1x"],
        ["GPU DRAM bytes", f"{without[2].traffic.dram_bytes:.3g}", f"{with_cdl[2].traffic.dram_bytes:.3g}",
         f"{without[2].traffic.dram_bytes / with_cdl[2].traffic.dram_bytes:.2f}x", "1.3x"],
        ["GPU run time (model, s)", f"{without[2].runtime_s:.3g}", f"{with_cdl[2].runtime_s:.3g}",
         f"{without[2].runtime_s / with_cdl[2].runtime_s:.2f}x", "1.4x"],
    ]

    # Direction and rough magnitude of every effect.
    assert with_cdl[0].llc_loads < without[0].llc_loads / 1.5
    assert with_cdl[0].llc_load_misses < without[0].llc_load_misses
    assert with_cdl[1].total_s < without[1].total_s
    assert with_cdl[2].traffic.dram_bytes < without[2].traffic.dram_bytes
    assert with_cdl[2].runtime_s < without[2].runtime_s

    print()
    print(format_table(
        ["Metric", "w/o CDL", "w/ CDL", "Improvement", "Paper"],
        rows,
        title="Table IX: effects of the cache-friendly data layout (Chr.1-like)",
    ))
