"""Property-based fused/unfused agreement across random graphs (hypothesis).

The example-based fused tests pin byte-identity on a handful of fixed
graphs; this module drives the same contract over *randomised* small
pangenomes × merge policies × engine shapes: for every drawn configuration
the fused per-iteration path and the classic per-batch loop must produce
layouts within 1e-9 — and byte-identical on the NumPy backend, which is the
stronger form actually asserted (any available non-NumPy backend is held to
the 1e-9 form in ``tests/test_conformance.py``'s fused axis).

``hypothesis`` is an optional dev dependency: when it is not installed the
module skips at collection time, keeping the tier-1 suite runnable from the
runtime-only install.
"""
from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core import (  # noqa: E402
    CpuBaselineEngine,
    LayoutParams,
    SerialReferenceEngine,
)
from repro.synth import PangenomeConfig, simulate_pangenome  # noqa: E402

#: Layout runs are ~10 ms each and every example runs two; keep the example
#: count modest and the deadline off so loaded CI boxes pass.
FUSED_SETTINGS = settings(deadline=None, max_examples=25,
                          suppress_health_check=[HealthCheck.too_slow])

_GRAPH_CACHE: dict = {}


def _graph_for(seed: int, backbone: int, paths: int, bubble_pct: int,
               loop_pct: int):
    key = (seed, backbone, paths, bubble_pct, loop_pct)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = simulate_pangenome(PangenomeConfig(
            n_backbone_nodes=backbone,
            n_paths=paths,
            mean_node_length=4.0,
            bubble_rate=bubble_pct / 100.0,
            deletion_rate=0.02,
            n_structural_variants=1,
            sv_length_nodes=3,
            loop_rate=loop_pct / 100.0,
            seed=seed,
            name=f"fused-prop-{seed}",
        ))
    return _GRAPH_CACHE[key]


@given(
    graph_seed=st.integers(min_value=0, max_value=7),
    backbone=st.integers(min_value=12, max_value=60),
    paths=st.integers(min_value=2, max_value=4),
    bubble_pct=st.integers(min_value=0, max_value=20),
    loop_pct=st.integers(min_value=0, max_value=15),
    merge=st.sampled_from(["hogwild", "accumulate", "last_writer"]),
    engine_seed=st.integers(min_value=0, max_value=2**31 - 1),
    iter_max=st.integers(min_value=1, max_value=4),
    hogwild_round=st.sampled_from([1, 7, 64]),
    cooling_start=st.sampled_from([0.0, 0.5, 1.0]),
)
@FUSED_SETTINGS
def test_fused_equals_unfused_on_random_graphs(graph_seed, backbone, paths,
                                               bubble_pct, loop_pct, merge,
                                               engine_seed, iter_max,
                                               hogwild_round, cooling_start):
    graph = _graph_for(graph_seed, backbone, paths, bubble_pct, loop_pct)
    params = LayoutParams(
        iter_max=iter_max,
        steps_per_step_unit=1.0,
        seed=engine_seed,
        merge_policy=merge,
        cooling_start=cooling_start,
        backend="numpy",
    )
    unfused = CpuBaselineEngine(graph, params.with_(fused=False),
                                hogwild_round=hogwild_round).run()
    fused_engine = CpuBaselineEngine(graph, params.with_(fused=True),
                                     hogwild_round=hogwild_round)
    fused = fused_engine.run()
    assert fused_engine.fused_active()
    assert fused.total_terms == unfused.total_terms
    # ≤1e-9 is the cross-backend contract; NumPy is held to byte-identity.
    np.testing.assert_allclose(fused.layout.coords, unfused.layout.coords,
                               atol=1e-9, rtol=0)
    np.testing.assert_array_equal(fused.layout.coords, unfused.layout.coords)


@given(
    graph_seed=st.integers(min_value=0, max_value=7),
    backbone=st.integers(min_value=12, max_value=60),
    paths=st.integers(min_value=2, max_value=4),
    bubble_pct=st.integers(min_value=0, max_value=20),
    loop_pct=st.integers(min_value=0, max_value=15),
    merge=st.sampled_from(["hogwild", "accumulate", "last_writer"]),
    engine_seed=st.integers(min_value=0, max_value=2**31 - 1),
    iter_max=st.integers(min_value=1, max_value=3),
    # 1 byte forces one-segment chunks (budget < any segment); huge budgets
    # degrade to the unchunked single dispatch; the middle draws arbitrary
    # chunk geometries in between.
    budget=st.one_of(st.just(1), st.just("1GB"),
                     st.integers(min_value=256, max_value=1 << 20)),
)
@FUSED_SETTINGS
def test_memory_budget_never_moves_layout(graph_seed, backbone, paths,
                                          bubble_pct, loop_pct, merge,
                                          engine_seed, iter_max, budget):
    """Chunked ≡ unchunked, bit for bit, for *every* budget (PR 8 tentpole)."""
    graph = _graph_for(graph_seed, backbone, paths, bubble_pct, loop_pct)
    params = LayoutParams(
        iter_max=iter_max,
        steps_per_step_unit=1.0,
        seed=engine_seed,
        merge_policy=merge,
        backend="numpy",
        fused=True,
    )
    unchunked = CpuBaselineEngine(graph, params).run()
    chunked = CpuBaselineEngine(graph,
                                params.with_(memory_budget=budget)).run()
    assert chunked.total_terms == unchunked.total_terms
    np.testing.assert_array_equal(chunked.layout.coords,
                                  unchunked.layout.coords)


@given(
    engine_seed=st.integers(min_value=0, max_value=2**31 - 1),
    workers=st.sampled_from([2, 3]),
    budget=st.sampled_from([1, 4096, "64MB"]),
)
@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
def test_memory_budget_never_moves_worker_sliced_layout(engine_seed, workers,
                                                        budget):
    """Per-worker budget shares keep the deterministic shm schedule intact."""
    from repro.parallel.shm import run_workers_inline

    graph = _graph_for(1, 30, 3, 10, 5)
    params = LayoutParams(iter_max=2, steps_per_step_unit=1.0,
                          seed=engine_seed, backend="numpy", fused=True,
                          workers=workers)
    unchunked = run_workers_inline(graph, params)
    chunked = run_workers_inline(graph, params.with_(memory_budget=budget))
    np.testing.assert_array_equal(chunked.layout.coords,
                                  unchunked.layout.coords)


@given(
    merge=st.sampled_from(["hogwild", "accumulate", "last_writer"]),
    engine_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(deadline=None, max_examples=10)
def test_fused_serial_reference_equals_unfused(merge, engine_seed):
    """Single-term segments (the serial engine's plan) fuse identically too."""
    graph = _graph_for(0, 16, 2, 10, 0)
    params = LayoutParams(iter_max=2, steps_per_step_unit=1.0,
                          seed=engine_seed, merge_policy=merge,
                          backend="numpy")
    unfused = SerialReferenceEngine(graph, params.with_(fused=False)).run()
    fused = SerialReferenceEngine(graph, params.with_(fused=True)).run()
    np.testing.assert_array_equal(fused.layout.coords, unfused.layout.coords)
