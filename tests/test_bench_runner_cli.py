"""Tests for the benchmark runner and the ``repro bench`` CLI."""
from __future__ import annotations

import os

import pytest

from repro.bench.registry import BenchRegistry, CaseResult, bench_case
from repro.bench.runner import SuiteRunError, run_case, run_suite
from repro.bench.schema import load_results, metric_values, validate_results
from repro.cli import main


@pytest.fixture()
def toy_registry():
    registry = BenchRegistry()

    @bench_case("toy_fast", source="Fig. T", suites=("smoke",), registry=registry)
    def toy_fast(ctx):
        """A deterministic toy case."""
        result = CaseResult(graph_properties={"n_nodes": 4.0})
        result.add("modelled_s", 0.25 + ctx.seed_for("toy/const") * 0.0,
                   unit="s(model)", direction="lower")
        result.add("speedup", 4.0, unit="x", direction="higher")
        result.tables.append("toy table")
        return result

    return registry


class TestRunner:
    def test_run_suite_document(self, toy_registry, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        doc = run_suite("smoke", registry=toy_registry, out_path=str(out),
                        echo=lambda *_: None, warmup=1, repeats=3)
        validate_results(doc)
        assert load_results(str(out)) == doc
        case = doc["cases"][0]
        assert case["name"] == "toy_fast"
        assert case["wall_time"]["repeats"] == 3
        assert len(case["wall_time"]["times_s"]) == 3
        assert case["metrics"]["modelled_s"]["direction"] == "lower"
        assert doc["runner"] == {"warmup": 1, "repeats": 3, "backend": "numpy"}

    def test_master_seed_recorded(self, toy_registry):
        doc = run_suite("smoke", registry=toy_registry, master_seed=42,
                        out_path="", echo=lambda *_: None)
        assert doc["master_seed"] == 42

    def test_empty_suite_rejected(self, toy_registry):
        with pytest.raises(SuiteRunError, match="zero cases"):
            run_suite("figures", registry=toy_registry, out_path="",
                      echo=lambda *_: None)

    def test_invalid_runner_args(self, toy_registry):
        with pytest.raises(ValueError):
            run_suite("smoke", registry=toy_registry, repeats=0)

    def test_nondeterministic_case_detected(self):
        registry = BenchRegistry()
        counter = {"n": 0}

        @bench_case("flaky", suites=("smoke",), registry=registry)
        def flaky(ctx):
            counter["n"] += 1
            result = CaseResult()
            result.add("value", counter["n"], direction="lower")
            return result

        with pytest.raises(SuiteRunError, match="nondeterministic"):
            run_suite("smoke", registry=registry, repeats=2, out_path="",
                      echo=lambda *_: None)

    def test_assertion_failure_is_reported(self):
        registry = BenchRegistry()

        @bench_case("broken", suites=("smoke",), registry=registry)
        def broken(ctx):
            assert False, "shape mismatch"

        with pytest.raises(SuiteRunError, match="shape"):
            run_suite("smoke", registry=registry, out_path="", echo=lambda *_: None)

    def test_run_case_prints_tables(self, toy_registry, capsys):
        lines = []
        result = run_case("toy_fast", registry=toy_registry, echo=lines.append)
        assert result.metrics["speedup"].value == 4.0
        assert lines == ["toy table"]


class TestBenchCli:
    def test_run_twice_is_byte_identical_on_metrics(self, tmp_path):
        """Acceptance: two smoke runs on one commit yield identical metrics."""
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["bench", "run", "--suite", "smoke", "--out", str(first)]) == 0
        assert main(["bench", "run", "--suite", "smoke", "--out", str(second)]) == 0
        doc_a, doc_b = load_results(str(first)), load_results(str(second))
        assert metric_values(doc_a) == metric_values(doc_b)
        assert doc_a["suite"] == "smoke"
        assert {c["name"] for c in doc_a["cases"]} >= {
            "smoke_layout_cpu", "smoke_layout_gpu_model", "smoke_ablation",
        }

    def test_compare_cli_pass_and_fail(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["bench", "run", "--suite", "smoke", "--out", str(out)]) == 0
        # Self-comparison passes.
        assert main(["bench", "compare", str(out), str(out)]) == 0
        assert "PASS" in capsys.readouterr().out
        # Inject a >10% regression on a tracked lower-is-better metric.
        doc = load_results(str(out))
        for case in doc["cases"]:
            for metric in case["metrics"].values():
                if metric["direction"] == "lower":
                    metric["value"] *= 2.0
        worse = tmp_path / "worse.json"
        from repro.bench.schema import write_results

        write_results(doc, str(worse))
        assert main(["bench", "compare", str(out), str(worse),
                     "--max-regress", "10%"]) == 1
        assert "FAIL" in capsys.readouterr().out
        # A huge threshold lets the same diff pass.
        assert main(["bench", "compare", str(out), str(worse),
                     "--max-regress", "150%"]) == 0

    def test_compare_cli_bad_threshold(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        main(["bench", "run", "--suite", "smoke", "--out", str(out)])
        assert main(["bench", "compare", str(out), str(out),
                     "--max-regress", "banana"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_cli_missing_file(self, tmp_path, capsys):
        assert main(["bench", "compare", "/nonexistent/a.json",
                     "/nonexistent/b.json"]) == 2

    def test_list_cli(self, capsys):
        assert main(["bench", "list", "--suite", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke_layout_cpu" in out

    def test_legacy_flat_invocation_still_works(self, tmp_path, capsys):
        tsv = tmp_path / "toy.tsv"
        code = main(["--dataset", "HLA-DRB1", "--scale", "0.05",
                     "--iter-max", "2", "--steps-factor", "1.0",
                     "--out-tsv", str(tsv)])
        assert code == 0
        assert tsv.exists()
        assert "layout complete" in capsys.readouterr().out

    def test_layout_subcommand(self, tmp_path, capsys):
        code = main(["layout", "--dataset", "HLA-DRB1", "--scale", "0.05",
                     "--iter-max", "2", "--steps-factor", "1.0"])
        assert code == 0
        assert "layout complete" in capsys.readouterr().out

    @pytest.mark.parametrize("policy", ["hogwild", "accumulate", "last_writer"])
    def test_layout_merge_policy_flag(self, policy, capsys):
        """--merge-policy reaches LayoutParams (first-class since PR 3)."""
        code = main(["layout", "--dataset", "HLA-DRB1", "--scale", "0.05",
                     "--iter-max", "2", "--steps-factor", "1.0",
                     "--merge-policy", policy])
        assert code == 0
        out = capsys.readouterr().out
        assert f"merge={policy}" in out
        assert "layout complete" in out

    def test_layout_merge_policy_changes_result(self, tmp_path):
        """Distinct policies must produce distinct layouts (flag is live)."""
        blobs = {}
        for policy in ("hogwild", "accumulate"):
            out = tmp_path / f"{policy}.lay"
            assert main(["layout", "--dataset", "HLA-DRB1", "--scale", "0.05",
                         "--iter-max", "2", "--steps-factor", "1.0",
                         "--merge-policy", policy,
                         "--out-lay", str(out)]) == 0
            blobs[policy] = out.read_bytes()
        assert blobs["hogwild"] != blobs["accumulate"]

    def test_layout_rejects_unknown_merge_policy(self, capsys):
        with pytest.raises(SystemExit):
            main(["layout", "--dataset", "HLA-DRB1",
                  "--merge-policy", "banana"])

    def test_layout_fused_flags_parse_and_run(self, tmp_path, capsys):
        """--fused / --no-fused reach LayoutParams; layouts stay identical."""
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["--dataset", "HLA-DRB1"]).fused is None
        assert parser.parse_args(["--dataset", "HLA-DRB1",
                                  "--fused"]).fused is True
        assert parser.parse_args(["--dataset", "HLA-DRB1",
                                  "--no-fused"]).fused is False
        blobs = {}
        for flag in ("--fused", "--no-fused"):
            out = tmp_path / f"{flag.strip('-')}.lay"
            assert main(["layout", "--dataset", "HLA-DRB1", "--scale", "0.05",
                         "--iter-max", "2", "--steps-factor", "1.0", flag,
                         "--out-lay", str(out)]) == 0
            blobs[flag] = out.read_bytes()
        # The execution strategy must not move the layout (numpy backend).
        assert blobs["--fused"] == blobs["--no-fused"]

    def test_bench_run_fused_flag_threads_into_context(self, tmp_path):
        """--no-fused is recorded in runner metadata and changes no metrics."""
        out = tmp_path / "unfused.json"
        assert main(["bench", "run", "--suite", "smoke", "--no-fused",
                     "--out", str(out)]) == 0
        doc = load_results(str(out))
        assert doc["runner"]["fused"] is False

    def test_bench_run_profile_writes_per_case_artifacts(self, toy_registry,
                                                         tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        run_suite("smoke", registry=toy_registry, out_path=str(out),
                  echo=lambda *_: None, profile=True)
        from repro.bench.runner import profile_dir_for

        profile_dir = profile_dir_for(str(out))
        artifact = os.path.join(profile_dir, "toy_fast.txt")
        assert os.path.isfile(artifact)
        with open(artifact, encoding="utf-8") as handle:
            text = handle.read()
        assert "cProfile summary: case=toy_fast" in text
        assert "cumulative" in text
        # Memory forensics land in the same artifact as the time ranking.
        assert "peak RSS:" in text
        rss_line = next(line for line in text.splitlines()
                        if line.startswith("peak RSS:"))
        assert int(rss_line.split()[2]) > 0


class TestCommittedBaseline:
    def test_baseline_is_schema_valid_and_current(self):
        """The committed CI baseline stays loadable and matches the registry."""
        import os

        baseline = os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks", "baselines", "BENCH_smoke.json")
        doc = load_results(baseline)
        assert doc["suite"] == "smoke"
        from repro.bench.registry import load_builtin_cases

        registered = {c.name for c in load_builtin_cases().suite("smoke")}
        assert {c["name"] for c in doc["cases"]} == registered
