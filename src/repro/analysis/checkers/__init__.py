"""Built-in contract checkers; importing this package registers them all."""
from . import alloc, determinism, dispatch, memory, obs, robust, shm  # noqa: F401

__all__ = ["alloc", "determinism", "dispatch", "memory", "obs", "robust",
           "shm"]
