"""Deterministic seeded fault injection for the parallel runtime.

The supervised runtime (:mod:`repro.parallel.supervise`) exists to survive
worker death — but worker death in the wild (OOM kills, segfaulting
backends) is neither reproducible nor CI-friendly. This module makes it
both: a :class:`FaultPlan` names exact ``(worker, iteration)`` points at
which a worker injures itself, either chosen explicitly (tests, the
``REPRO_FAULTS`` env knob) or drawn from the run's master seed
(:meth:`FaultPlan.from_seed`, sub-seeded with
``derive_seed(seed, "fault-plan")`` so the chaos schedule is as
reproducible as the layout itself).

Fault kinds
-----------
``crash``
    ``os._exit(13)`` — the process vanishes without unwinding, the closest
    stand-in for an OOM kill. Surfaces as ``WorkerCrash(exitcode=13)``.
``exception``
    Raise :class:`InjectedFault` — an unhandled worker exception, which
    closes the pipe during the ``finally`` unwind and exits nonzero.
    Also surfaces as ``WorkerCrash``.
``stall``
    Sleep for ``arg`` seconds (default: effectively forever) without
    sending the barrier message. Surfaces as ``WorkerStall`` once the
    barrier deadline lapses; the supervisor then reaps the sleeper.
``hang``
    Like ``stall`` but with ``SIGTERM`` ignored first — exercises the
    teardown escalation path (``terminate()`` fails, ``kill()`` must
    follow, ``workers_killed`` increments).

Injection points
----------------
Workers call :meth:`FaultPlan.fire` at two points: once before the
``ready`` handshake with ``iteration=-1`` (a setup-time fault — note a
respawned worker re-fires it, which is exactly how tests drive the
restart-exhaustion → degrade path), and once at the top of every
iteration body. Parents never fire faults; only workers are injured.

The plan reaches workers either as a pickled spawn argument (the
``ShmHogwildEngine(fault_plan=...)`` test hook) or via the
``REPRO_FAULTS`` environment variable (``kind@worker:iteration`` specs,
comma-separated, e.g. ``crash@1:1,stall@0:2``; an optional ``*arg``
suffix sets the kind's argument: ``stall@2:0*30`` sleeps 30 s), which is
how the CI chaos job injects a crash through the real CLI. An explicit
plan wins over the env.
"""
from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..prng.splitmix import derive_seed
from ..prng.xoshiro import Xoshiro256Plus

__all__ = [
    "FAULT_KINDS",
    "FAULTS_ENV",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "resolve_fault_plan",
]

#: Injectable fault kinds, in the order :meth:`FaultPlan.from_seed` indexes.
FAULT_KINDS = ("crash", "exception", "stall", "hang")

#: Environment variable carrying comma-separated fault specs
#: (``kind@worker:iteration`` with optional ``*arg``).
FAULTS_ENV = "REPRO_FAULTS"

#: Exitcode of an injected ``crash`` — distinctive so tests can assert the
#: supervisor reports the true exitcode, not a generic failure.
CRASH_EXITCODE = 13

#: Default stall length: far beyond any barrier deadline, far below forever
#: (the supervisor reaps stalled workers, but a leaked sleeper should still
#: die on its own eventually).
DEFAULT_STALL_S = 3600.0


class InjectedFault(RuntimeError):
    """The unhandled exception raised by an ``exception`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One injury: ``kind`` at (``worker``, ``iteration``).

    ``iteration == -1`` fires during worker setup, before the ready
    handshake. ``arg`` parameterises the kind (stall/hang sleep seconds);
    ``None`` means the kind's default.
    """

    kind: str
    worker: int
    iteration: int
    arg: Optional[float] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")

    def encode(self) -> str:
        """The ``kind@worker:iteration[*arg]`` form ``REPRO_FAULTS`` parses."""
        text = f"{self.kind}@{self.worker}:{self.iteration}"
        if self.arg is not None:
            text += f"*{self.arg:g}"
        return text

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind@worker:iteration[*arg]`` spec."""
        try:
            kind, _, rest = text.strip().partition("@")
            rest, star, arg_text = rest.partition("*")
            worker_text, _, iter_text = rest.partition(":")
            return cls(kind=kind, worker=int(worker_text),
                       iteration=int(iter_text),
                       arg=float(arg_text) if star else None)
        except ValueError as exc:
            raise ValueError(
                f"bad fault spec {text!r}: expected "
                "'kind@worker:iteration' with optional '*arg' "
                f"(e.g. 'crash@1:1' or 'stall@0:2*30'): {exc}") from exc


def _execute(spec: FaultSpec) -> None:
    """Actually injure the calling process per ``spec`` (worker side)."""
    if spec.kind == "crash":
        # _exit, not sys.exit: no unwinding, no finally blocks, no pipe
        # shutdown message — the closest stand-in for an OOM kill.
        os._exit(CRASH_EXITCODE)
    if spec.kind == "exception":
        raise InjectedFault(
            f"injected exception at worker {spec.worker} "
            f"iteration {spec.iteration}")
    if spec.kind == "hang":
        # Shrug off the supervisor's terminate() so only kill() works —
        # this is the teardown-escalation fixture.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    # stall / hang: sleep through the barrier without reporting.
    time.sleep(spec.arg if spec.arg is not None else DEFAULT_STALL_S)


@dataclass(frozen=True)
class FaultPlan:
    """A picklable schedule of :class:`FaultSpec` injuries for one run.

    Crosses the ``spawn`` boundary as a plain dataclass of primitives.
    An empty plan is falsy and free to carry everywhere.
    """

    specs: Tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def fire(self, worker: int, iteration: int) -> None:
        """Injure the calling worker if the plan names this point."""
        for spec in self.specs:
            if spec.worker == worker and spec.iteration == iteration:
                _execute(spec)

    def encode(self) -> str:
        """Comma-joined spec string suitable for ``REPRO_FAULTS``."""
        return ",".join(spec.encode() for spec in self.specs)

    # ------------------------------------------------------- constructors
    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a comma-separated spec list (the ``REPRO_FAULTS`` format)."""
        parts = [p for p in text.split(",") if p.strip()]
        return cls(specs=tuple(FaultSpec.parse(p) for p in parts))

    @classmethod
    def from_env(cls, environ=os.environ) -> Optional["FaultPlan"]:
        """The plan carried by ``REPRO_FAULTS``, or ``None`` if unset."""
        text = environ.get(FAULTS_ENV)
        if not text:
            return None
        return cls.parse(text)

    @classmethod
    def from_seed(cls, seed: int, workers: int, iterations: int,
                  n_faults: int = 1,
                  kinds: Sequence[str] = ("crash", "exception", "stall"),
                  ) -> "FaultPlan":
        """Draw a reproducible chaos schedule from the run's master seed.

        Each fault picks an independent uniformly random
        ``(kind, worker, iteration)`` from a Xoshiro256+ stream sub-seeded
        with ``derive_seed(seed, "fault-plan")`` — decorrelated from every
        stream the layout itself consumes, so injecting faults never
        perturbs *which terms* the surviving workers sample.
        """
        if workers < 1 or iterations < 1:
            raise ValueError("need workers >= 1 and iterations >= 1")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"fault kind must be one of {FAULT_KINDS}, got {kind!r}")
        rng = Xoshiro256Plus(derive_seed(seed, "fault-plan"), n_streams=1)
        specs: List[FaultSpec] = []
        for _ in range(n_faults):
            kind = kinds[int(rng.next_below(len(kinds))[0])]
            worker = int(rng.next_below(workers)[0])
            iteration = int(rng.next_below(iterations)[0])
            specs.append(FaultSpec(kind=kind, worker=worker,
                                   iteration=iteration))
        return cls(specs=tuple(specs))


def resolve_fault_plan(explicit: Optional[FaultPlan] = None,
                       environ=os.environ) -> Optional[FaultPlan]:
    """The fault plan in effect: explicit hook > ``REPRO_FAULTS`` > none."""
    if explicit is not None:
        return explicit
    return FaultPlan.from_env(environ)
