"""Layout file I/O: the ``.lay`` binary format and TSV export.

odgi stores layouts in a small binary file (``odgi layout -o graph.lay``)
holding the X and Y coordinates of every node's two visualisation endpoints;
``odgi draw`` and the quality-evaluation scripts read it back. This module
implements a compatible-in-spirit container so layouts survive round-trips
between the engines, the metrics and the renderer, plus a TSV export mirroring
``odgi layout --tsv`` for inspection in external tools.

Format (little-endian):
    magic ``b"RPLY"`` | uint32 version | uint64 n_nodes |
    float64 X[2·n_nodes] | float64 Y[2·n_nodes]
"""
from __future__ import annotations

import io
import os
import struct
from typing import TextIO, Union

import numpy as np

from ..core.layout import Layout

__all__ = ["write_lay", "read_lay", "write_tsv", "read_tsv", "LayFormatError"]

_MAGIC = b"RPLY"
_VERSION = 1


class LayFormatError(ValueError):
    """Raised when a layout file is malformed."""


def write_lay(layout: Layout, destination: Union[str, os.PathLike, io.BufferedIOBase]) -> None:
    """Write a layout to a ``.lay`` binary file or binary handle."""
    coords = np.asarray(layout.coords, dtype=np.float64)
    n_nodes = coords.shape[0] // 2
    header = _MAGIC + struct.pack("<IQ", _VERSION, n_nodes)
    x = np.ascontiguousarray(coords[:, 0])
    y = np.ascontiguousarray(coords[:, 1])
    payload = header + x.tobytes() + y.tobytes()
    if hasattr(destination, "write"):
        destination.write(payload)  # type: ignore[union-attr]
        return
    with open(destination, "wb") as handle:
        handle.write(payload)


def read_lay(source: Union[str, os.PathLike, io.BufferedIOBase]) -> Layout:
    """Read a layout from a ``.lay`` binary file or binary handle."""
    if hasattr(source, "read"):
        data = source.read()  # type: ignore[union-attr]
    else:
        with open(source, "rb") as handle:
            data = handle.read()
    if len(data) < len(_MAGIC) + 12:
        raise LayFormatError("file too small to be a layout file")
    if data[: len(_MAGIC)] != _MAGIC:
        raise LayFormatError("bad magic; not a repro layout file")
    version, n_nodes = struct.unpack_from("<IQ", data, len(_MAGIC))
    if version != _VERSION:
        raise LayFormatError(f"unsupported layout file version {version}")
    n_points = 2 * n_nodes
    expected = len(_MAGIC) + 12 + 2 * n_points * 8
    if len(data) != expected:
        raise LayFormatError(
            f"layout file size mismatch: expected {expected} bytes, got {len(data)}"
        )
    offset = len(_MAGIC) + 12
    x = np.frombuffer(data, dtype="<f8", count=n_points, offset=offset)
    y = np.frombuffer(data, dtype="<f8", count=n_points, offset=offset + n_points * 8)
    coords = np.stack([x, y], axis=1)
    return Layout(coords.copy())


def write_tsv(layout: Layout, destination: Union[str, os.PathLike, TextIO]) -> None:
    """Write a human-readable TSV (node_id, start_x, start_y, end_x, end_y)."""
    lines = ["#node_id\tstart_x\tstart_y\tend_x\tend_y"]
    coords = layout.coords
    for node in range(layout.n_nodes):
        sx, sy = coords[2 * node]
        ex, ey = coords[2 * node + 1]
        lines.append(f"{node}\t{sx:.6f}\t{sy:.6f}\t{ex:.6f}\t{ey:.6f}")
    text = "\n".join(lines) + "\n"
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write(text)


def read_tsv(source: Union[str, os.PathLike, TextIO]) -> Layout:
    """Read a layout from the TSV form written by :func:`write_tsv`.

    Rows are placed by their ``node_id`` column, so files whose rows were
    reordered (sorted, filtered then re-merged, …) round-trip correctly. The
    ids must form the contiguous range ``0..n_nodes-1`` exactly once each;
    duplicates or gaps raise :class:`LayFormatError`.
    """
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    ids = []
    rows = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 5:
            raise LayFormatError(f"bad TSV row: {line!r}")
        try:
            ids.append(int(parts[0]))
        except ValueError:
            raise LayFormatError(f"bad node_id in TSV row: {line!r}") from None
        try:
            rows.append([float(v) for v in parts[1:]])
        except ValueError:
            raise LayFormatError(f"bad coordinate in TSV row: {line!r}") from None
    if not rows:
        raise LayFormatError("TSV layout contains no rows")
    node_ids = np.asarray(ids, dtype=np.int64)
    n = node_ids.size
    if np.unique(node_ids).size != n:
        raise LayFormatError("TSV layout contains duplicate node ids")
    if node_ids.min() != 0 or node_ids.max() != n - 1:
        raise LayFormatError(
            f"TSV layout node ids must cover 0..{n - 1} contiguously "
            f"(got range {node_ids.min()}..{node_ids.max()})"
        )
    arr = np.asarray(rows, dtype=np.float64)
    coords = np.empty((2 * n, 2), dtype=np.float64)
    coords[2 * node_ids, 0] = arr[:, 0]
    coords[2 * node_ids, 1] = arr[:, 1]
    coords[2 * node_ids + 1, 0] = arr[:, 2]
    coords[2 * node_ids + 1, 1] = arr[:, 3]
    return Layout(coords)
