"""CI smoke case gating the tracer's cost and event contract (PR 9).

``perf_trace_overhead`` runs the CPU baseline engine on the Chr.1-like
graph twice from identical state — once with the default disabled tracer,
once with a live in-memory :class:`~repro.obs.tracer.Tracer` — and gates
the observability layer's two promises:

* **byte-identity** — tracing only ever reads the clock and appends
  events; it must never move a sampled term or a coordinate. Asserted
  exactly on the NumPy backend before anything is recorded.
* **event economics** — engines emit per-iteration *aggregates*
  (:data:`_ENGINE_SPANS`: one ``draw``/``dispatch``/``iteration`` trio per
  iteration), never per-term or per-batch events. The
  ``events_per_iteration`` metric pins that contract at exactly 3.0 —
  deterministic and machine-independent, so any change that silently makes
  event volume scale with batch or chunk count fails the gate on every
  machine. (Backend-dependent spans — the fused host path's
  ``selection``/``merge`` — are excluded from the gated count for exactly
  that reason.)

Wall-time overhead is gated like ``perf_fused_iteration``'s ratio: the
traced/untraced ratio floored at :data:`_RATIO_FLOOR`, so benign noise
around parity never moves the gated value while a tracer that starts
costing real iteration time trips it everywhere (dimensionless ⇒ no
cross-environment downgrade in ``bench compare``).
"""
from __future__ import annotations

import numpy as np

from ...core import CpuBaselineEngine
from ...obs.tracer import Tracer, event_structure
from ..registry import CaseResult, bench_case
from ..tables import format_table
from .perf_fused import _ITER_MAX, _best_run

#: Floor applied to the gated traced/untraced wall-time ratio. The tracer's
#: enabled path costs a handful of clock reads and list appends per
#: iteration — healthy runs sit within noise of 1.0x — so the 10% compare
#: threshold only trips past ~1.38x: tracing grew real per-iteration cost.
_RATIO_FLOOR = 1.25

#: The backend-independent engine span set whose per-iteration volume the
#: ``events_per_iteration`` metric gates (one of each per iteration).
_ENGINE_SPANS = ("draw", "dispatch", "iteration")


@bench_case("perf_trace_overhead", source="repro.obs (run telemetry)",
            suites=("smoke",))
def run_trace_overhead(ctx) -> CaseResult:
    """Tracing must not move a byte, and event volume must stay O(iterations)."""
    graph = ctx.chr1_graph
    params = ctx.smoke_params.with_(iter_max=_ITER_MAX)

    plain_s, plain = _best_run(lambda: CpuBaselineEngine(graph, params))

    tracers = []

    def traced_factory():
        engine = CpuBaselineEngine(graph, params)
        engine.tracer = Tracer(labels={"engine": engine.name})
        tracers.append(engine.tracer)
        return engine

    traced_s, traced = _best_run(traced_factory)

    # Tracing reads clocks and appends events — nothing else. Byte-identity
    # on the reference backend, the conformance tolerance elsewhere.
    if ctx.backend_name == "numpy":
        assert np.array_equal(traced.layout.coords, plain.layout.coords)
    else:
        np.testing.assert_allclose(traced.layout.coords, plain.layout.coords,
                                    atol=1e-9, rtol=0)
    assert traced.total_terms == plain.total_terms

    # Structure determinism: every traced repeat of the same commit + seed
    # emits the identical timestamp-free event stream.
    structures = {tuple(event_structure(t.events)) for t in tracers}
    assert len(structures) == 1, "traced repeats disagreed on event structure"

    events = tracers[-1].events
    engine_events = sum(1 for e in events
                        if e.name in _ENGINE_SPANS and e.iteration >= 0)
    events_per_iteration = engine_events / float(traced.iterations)
    assert events_per_iteration == float(len(_ENGINE_SPANS))

    ratio = traced_s / max(plain_s, 1e-12)
    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("events_per_iteration", events_per_iteration, direction="lower")
    out.add("total_events", float(len(events)), direction="info")
    out.add("untraced_run_ms", plain_s * 1e3, unit="ms", direction="lower",
            deterministic=False)
    out.add("traced_run_ms", traced_s * 1e3, unit="ms", direction="lower",
            deterministic=False)
    out.add("traced_to_untraced_ratio", ratio, unit="x", direction="info",
            deterministic=False)
    out.add("trace_overhead_guard", max(ratio, _RATIO_FLOOR), unit="x",
            direction="lower", deterministic=False)
    out.tables.append(format_table(
        ["Variant", "Run wall (ms)", "Events / iteration"],
        [["tracer off", f"{plain_s * 1e3:.1f}", "0"],
         ["tracer on", f"{traced_s * 1e3:.1f}",
          f"{events_per_iteration:.0f}"]],
        title="Smoke: tracer-on vs tracer-off (Chr.1-like @0.1)",
    ))
    return out
