"""SplitMix64 pseudo-random number generator.

SplitMix64 is the recommended seeder for the Xoshiro family of generators
(Blackman & Vigna, 2021). ``odgi-layout`` seeds one Xoshiro256+ state per
worker thread from a SplitMix64 stream; we reproduce that seeding scheme so
that per-thread (and per-GPU-thread) streams are decorrelated.

All arithmetic is performed on ``uint64`` NumPy arrays with explicit wrapping
semantics, which makes the generator vectorisable across many independent
states — the property the paper's GPU kernel relies on (one PRNG state per
CUDA thread).
"""
from __future__ import annotations

import zlib

import numpy as np

__all__ = ["SplitMix64", "splitmix64_next", "seed_streams", "expand_streams",
           "derive_seed"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SHIFT1 = np.uint64(30)
_SHIFT2 = np.uint64(27)
_SHIFT3 = np.uint64(31)


def splitmix64_next(state: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Advance an array of SplitMix64 states by one step.

    Parameters
    ----------
    state:
        ``uint64`` array of generator states. Modified copies are returned;
        the input is not mutated.

    Returns
    -------
    (new_state, output):
        The advanced states and the corresponding 64-bit outputs.
    """
    state = np.asarray(state, dtype=np.uint64)
    with np.errstate(over="ignore"):
        new_state = state + _GOLDEN
        z = new_state.copy()
        z = (z ^ (z >> _SHIFT1)) * _MIX1
        z = (z ^ (z >> _SHIFT2)) * _MIX2
        z = z ^ (z >> _SHIFT3)
    return new_state, z


class SplitMix64:
    """A vectorised SplitMix64 generator holding ``n`` independent streams."""

    def __init__(self, seed: int | np.ndarray, n: int | None = None):
        if np.isscalar(seed):
            if n is None:
                n = 1
            base = np.uint64(int(seed) & 0xFFFFFFFFFFFFFFFF)
            with np.errstate(over="ignore"):
                offsets = np.arange(n, dtype=np.uint64) * np.uint64(0x632BE59BD9B4E019)
                self.state = base + offsets
        else:
            self.state = np.asarray(seed, dtype=np.uint64).copy()
            if n is not None and n != self.state.size:
                raise ValueError("n does not match the provided state array size")

    @property
    def n_streams(self) -> int:
        """Number of independent streams."""
        return int(self.state.size)

    def next_uint64(self) -> np.ndarray:
        """Return one 64-bit output per stream and advance every stream."""
        self.state, out = splitmix64_next(self.state)
        return out

    def next_double(self) -> np.ndarray:
        """Return one double in [0, 1) per stream."""
        return (self.next_uint64() >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def derive_seed(seed: int, label: str) -> int:
    """Stable 31-bit sub-seed for a string ``label`` under a master ``seed``.

    The label is hashed with CRC-32, XORed into the master seed and mixed
    once through SplitMix64 — the shared derivation scheme of the benchmark
    context (``BenchContext.seed_for``) and the multilevel driver's per-level
    engine seeds, kept in one place so the two subsystems can never drift
    apart on the determinism contract.
    """
    mixed = SplitMix64(seed ^ zlib.crc32(label.encode("utf-8")), 1)
    return int(mixed.next_uint64()[0] & np.uint64(0x7FFFFFFF))


# Replacement for a zero word, which would put xoshiro into its (invalid)
# all-zero orbit.
_ZERO_REMAP = np.uint64(0x2545F4914F6CDD1D)


def expand_streams(sm: SplitMix64, n_streams: int,
                   words_per_stream: int = 4) -> np.ndarray:
    """Draw the next ``n_streams`` state blocks from an ongoing expansion.

    Advances ``sm`` (a single-stream SplitMix64) by
    ``n_streams * words_per_stream`` steps and returns the outputs as a
    ``(n_streams, words_per_stream)`` uint64 array with zero words remapped.
    Because the expansion is one sequential stream, repeated calls against
    the same generator yield exactly the tail slices that one big
    :func:`seed_streams` call over the running total would — prefix
    stability without regenerating the prefix.
    """
    if n_streams <= 0:
        raise ValueError("n_streams must be positive")
    if words_per_stream <= 0:
        raise ValueError("words_per_stream must be positive")
    if sm.n_streams != 1:
        raise ValueError("expand_streams needs a single-stream SplitMix64")
    total = n_streams * words_per_stream
    words = np.empty(total, dtype=np.uint64)
    for i in range(total):
        words[i] = sm.next_uint64()[0]
    words[words == 0] = _ZERO_REMAP
    return words.reshape(n_streams, words_per_stream)


def seed_streams(seed: int, n_streams: int, words_per_stream: int = 4) -> np.ndarray:
    """Produce decorrelated seed material for ``n_streams`` downstream PRNGs.

    Returns a ``(n_streams, words_per_stream)`` uint64 array. This mirrors how
    cuRAND / odgi-layout seed one generator state per thread: a single scalar
    seed is expanded through SplitMix64 so that no two streams share state
    words, and no state word is ever zero (required by xoshiro/xorshift).
    """
    return expand_streams(SplitMix64(seed, 1), n_streams, words_per_stream)
