"""Benchmark-case registry: named cases, suite membership, decorator registration.

Every figure/table reproduction (and every CI smoke workload) is a
:class:`BenchCase`: a named callable that receives a
:class:`~repro.bench.context.BenchContext` and returns a
:class:`CaseResult` carrying the metrics to persist. Cases register
themselves with the module-level :data:`REGISTRY` through the
:func:`bench_case` decorator; the runner and the CLI resolve suites
(``smoke``, ``figures``, ``tables``, ``scale``, ``all``) against that
registry.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Metric",
    "CaseResult",
    "BenchCase",
    "BenchRegistry",
    "BenchError",
    "DuplicateCaseError",
    "UnknownCaseError",
    "UnknownSuiteError",
    "KNOWN_SUITES",
    "REGISTRY",
    "bench_case",
    "load_builtin_cases",
]

#: Suites the CLI accepts. ``all`` is virtual: every registered case.
#: ``scale`` is the memory-ceiling gate: a synthetic million-node graph
#: whose peak-footprint metrics are gated like wall time (see
#: ``bench/cases/scale_chunked.py``).
KNOWN_SUITES = ("smoke", "figures", "tables", "scale", "all")

#: Metric directions understood by the regression gate.
DIRECTIONS = ("lower", "higher", "info")


class BenchError(Exception):
    """Base class for benchmark-subsystem errors."""


class DuplicateCaseError(BenchError):
    """A case name was registered twice."""


class UnknownCaseError(BenchError):
    """A case name was requested that no module registered."""


class UnknownSuiteError(BenchError):
    """A suite name outside :data:`KNOWN_SUITES` was requested."""


@dataclass(frozen=True)
class Metric:
    """One tracked quantity of a benchmark case.

    ``direction`` tells the regression gate how to interpret a change:
    ``lower`` (run time, stress: smaller is better), ``higher`` (speedup,
    correlation: larger is better) or ``info`` (graph sizes, counts: recorded
    for trend inspection but never gated).

    ``deterministic`` marks whether the value is required to be byte-identical
    across runs of the same commit and master seed. Modelled quantities are
    (the default); *measured wall-clock* metrics (the hot-path perf cases) set
    it ``False`` — they are still written to the result file and gated by
    ``repro bench compare``, but the runner's across-repeat identity check and
    the determinism payload exclude them, since a wall time legitimately
    varies between repeats.
    """

    value: float
    unit: str = ""
    direction: str = "info"
    deterministic: bool = True

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(f"metric direction must be one of {DIRECTIONS}, "
                             f"got {self.direction!r}")
        if not isinstance(self.value, (int, float)):
            raise TypeError(f"metric value must be numeric, got {type(self.value).__name__}")


@dataclass
class CaseResult:
    """What a benchmark case hands back to the runner.

    ``metrics`` are the values persisted into ``BENCH_<suite>.json`` and
    diffed by ``repro bench compare``. ``graph_properties`` records the input
    workload (node/edge/step counts) so result files are self-describing.
    ``tables`` holds the human-readable reproduction tables the legacy
    scripts used to print.
    """

    metrics: Dict[str, Metric] = field(default_factory=dict)
    graph_properties: Dict[str, float] = field(default_factory=dict)
    tables: List[str] = field(default_factory=list)

    def add(self, name: str, value: float, unit: str = "",
            direction: str = "info", deterministic: bool = True) -> None:
        """Record one metric (convenience over building ``Metric`` by hand)."""
        if name in self.metrics:
            raise ValueError(f"metric {name!r} recorded twice in one case")
        self.metrics[name] = Metric(float(value), unit=unit, direction=direction,
                                    deterministic=deterministic)


CaseFunc = Callable[["object"], CaseResult]


@dataclass(frozen=True)
class BenchCase:
    """A registered benchmark case."""

    name: str
    func: CaseFunc
    source: str = ""
    suites: Tuple[str, ...] = ()
    summary: str = ""

    def run(self, ctx) -> CaseResult:
        """Execute the case body; shape assertions fire inside."""
        result = self.func(ctx)
        if not isinstance(result, CaseResult):
            raise BenchError(f"case {self.name!r} returned {type(result).__name__}, "
                             "expected CaseResult")
        return result


class BenchRegistry:
    """Mapping of case name -> :class:`BenchCase` with suite resolution."""

    def __init__(self) -> None:
        self._cases: Dict[str, BenchCase] = {}

    def register(self, case: BenchCase) -> BenchCase:
        if case.name in self._cases:
            raise DuplicateCaseError(
                f"benchmark case {case.name!r} is already registered "
                f"(by {self._cases[case.name].func.__module__})"
            )
        for suite in case.suites:
            if suite not in KNOWN_SUITES or suite == "all":
                raise UnknownSuiteError(
                    f"case {case.name!r} declares unknown suite {suite!r}; "
                    f"declarable suites: {[s for s in KNOWN_SUITES if s != 'all']}"
                )
        self._cases[case.name] = case
        return case

    def get(self, name: str) -> BenchCase:
        try:
            return self._cases[name]
        except KeyError:
            raise UnknownCaseError(
                f"no benchmark case named {name!r}; known: {sorted(self._cases)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._cases)

    def cases(self) -> List[BenchCase]:
        return [self._cases[n] for n in self.names()]

    def suite(self, suite_name: str) -> List[BenchCase]:
        """All cases belonging to ``suite_name``, in registration-name order."""
        if suite_name not in KNOWN_SUITES:
            raise UnknownSuiteError(
                f"unknown suite {suite_name!r}; known suites: {list(KNOWN_SUITES)}"
            )
        if suite_name == "all":
            return self.cases()
        return [c for c in self.cases() if suite_name in c.suites]

    def clear(self) -> None:
        """Forget all cases (test isolation helper)."""
        self._cases.clear()

    def __len__(self) -> int:
        return len(self._cases)

    def __contains__(self, name: str) -> bool:
        return name in self._cases


#: Process-global registry the decorator writes into.
REGISTRY = BenchRegistry()


def bench_case(
    name: str,
    source: str = "",
    suites: Union[str, Iterable[str]] = (),
    registry: Optional[BenchRegistry] = None,
) -> Callable[[CaseFunc], CaseFunc]:
    """Decorator registering a case function.

    >>> @bench_case("fig04_cpu_scaling", source="Fig. 4", suites=("figures",))
    ... def run(ctx):
    ...     return CaseResult()
    """
    if isinstance(suites, str):
        suites = (suites,)
    suites = tuple(suites)

    def decorate(func: CaseFunc) -> CaseFunc:
        summary = (func.__doc__ or "").strip().splitlines()
        case = BenchCase(
            name=name,
            func=func,
            source=source,
            suites=suites,
            summary=summary[0] if summary else "",
        )
        (registry if registry is not None else REGISTRY).register(case)
        func.case = case  # type: ignore[attr-defined]
        return func

    return decorate


def load_builtin_cases() -> BenchRegistry:
    """Import the built-in case modules so they register themselves."""
    from . import cases  # noqa: F401  (import side effect registers cases)

    return REGISTRY


def metrics_as_plain(metrics: Mapping[str, Metric]) -> Dict[str, Dict[str, object]]:
    """Serialise a metric mapping into plain JSON-ready dictionaries.

    The ``deterministic`` key is only written when ``False`` so documents from
    older runs (where every metric was implicitly deterministic) stay
    byte-identical.
    """
    out: Dict[str, Dict[str, object]] = {}
    for name, m in sorted(metrics.items()):
        plain: Dict[str, object] = {"value": m.value, "unit": m.unit,
                                    "direction": m.direction}
        if not m.deterministic:
            plain["deterministic"] = False
        out[name] = plain
    return out
