"""CPU baseline: the odgi-layout reference implementation.

``odgi-layout`` runs Alg. 1's inner loop on a pool of CPU threads that update
the layout asynchronously in Hogwild! fashion — no locks, races tolerated
because pangenome graphs are sparse enough that two threads rarely touch the
same node at the same time (paper Sec. III-A).

Two modes are provided:

* :class:`CpuBaselineEngine` — the practical mode. Steps are processed in
  "rounds" of ``simulated_threads × hogwild_round`` terms; every term in a
  round reads the coordinates as of the round start and the writes are
  merged, which is the same staleness window a real Hogwild pool of that
  size exhibits. With ``simulated_threads=1`` and ``hogwild_round=1`` it
  degenerates to the exact serial algorithm. (Real OS-level parallelism is
  the separate ``workers`` knob — :mod:`repro.parallel.shm`.)
* :class:`SerialReferenceEngine` — a deliberately slow, term-at-a-time
  reference used by the test-suite on tiny graphs to validate that the
  batched engines do not change the optimisation semantics.

Both engines keep the stock ``draw_batch``/``on_batch`` hooks, so they are
eligible for the fused per-iteration execution path
(:mod:`repro.core.fused`) whenever the backend advertises it — fused and
unfused runs are byte-identical on the NumPy backend, including the serial
engine's one-term "segments".

The engine also exposes :meth:`CpuBaselineEngine.access_trace`, which
replays a sample of update terms into byte-level memory addresses under
either node-data layout; the cache simulator consumes that trace for the
CPU rows of Tables II and IX.
"""
from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph.lean import LeanGraph
from ..prng.xoshiro import Xoshiro256Plus
from .base import LayoutEngine, LayoutResult, split_into_batches
from .layout import NodeDataLayout, node_record_addresses
from .params import LayoutParams
from .updates import UpdateWorkspace, apply_batch

__all__ = ["CpuBaselineEngine", "SerialReferenceEngine"]


class CpuBaselineEngine(LayoutEngine):
    """Hogwild-style multithreaded CPU baseline (emulated)."""

    name = "cpu-baseline"

    def __init__(
        self,
        graph: LeanGraph,
        params: Optional[LayoutParams] = None,
        hogwild_round: int = 64,
        data_layout: NodeDataLayout = NodeDataLayout.SOA,
    ):
        super().__init__(graph, params)
        if hogwild_round < 1:
            raise ValueError("hogwild_round must be >= 1")
        self.hogwild_round = hogwild_round
        self._data_layout = data_layout

    def data_layout(self) -> NodeDataLayout:
        return self._data_layout

    def make_rng(self) -> Xoshiro256Plus:
        # One Xoshiro256+ stream per emulated (thread, round-slot) pair — each
        # thread of odgi-layout owns its own generator, and giving every slot
        # of the Hogwild round its own decorrelated stream keeps the batched
        # emulation's draws independent without per-step Python overhead.
        streams = min(max(self.params.simulated_threads, 1) * self.hogwild_round,
                      8192)
        return Xoshiro256Plus(self.params.seed, n_streams=streams)

    def batch_plan(self, steps_per_iteration: int) -> List[int]:
        chunk = max(1, self.params.simulated_threads * self.hogwild_round)
        return split_into_batches(steps_per_iteration, chunk)

    # ------------------------------------------------------------- tracing
    def access_trace(
        self,
        n_terms: int = 4096,
        iteration: int = 0,
        seed: Optional[int] = None,
        data_layout: Optional[NodeDataLayout] = None,
    ) -> np.ndarray:
        """Byte-address trace of ``n_terms`` update terms' node-data loads.

        Each term loads both endpoints' records (length, x, y for node i and
        node j); the returned flat int64 array lists the addresses in access
        order. The trace is what the LLC / DRAM models replay to produce the
        CPU cache statistics (Table II) and the CDL ablation (Table IX).
        """
        layout = data_layout if data_layout is not None else self._data_layout
        rng = Xoshiro256Plus(self.params.seed if seed is None else seed, n_streams=64)
        batch = self.sampler.sample(rng, n_terms, iteration)
        addr_i = node_record_addresses(
            batch.node_i, batch.vis_i, layout, self.graph.n_nodes
        )
        addr_j = node_record_addresses(
            batch.node_j, batch.vis_j, layout, self.graph.n_nodes
        )
        # Interleave i/j accesses term by term, preserving temporal order.
        stacked = np.concatenate([addr_i, addr_j], axis=1)  # (n_terms, 6)
        return stacked.reshape(-1)


class SerialReferenceEngine(LayoutEngine):
    """Exact serial Alg. 1: one term sampled, applied, then the next.

    Only suitable for small graphs (used by tests and the Fig. 6 style
    quality studies); complexity is Python-loop bound.
    """

    name = "cpu-serial-reference"

    def __init__(self, graph: LeanGraph, params: Optional[LayoutParams] = None):
        super().__init__(graph, params)

    def make_rng(self) -> Xoshiro256Plus:
        return Xoshiro256Plus(self.params.seed, n_streams=1)

    def batch_plan(self, steps_per_iteration: int) -> List[int]:
        return [1] * steps_per_iteration

    def run_fixed_hop(self, hop: int) -> LayoutResult:
        """Run the degenerate fixed-hop variant (Fig. 6's non-converging layout)."""
        params = self.params
        from .layout import initialize_layout  # local import to avoid cycle noise

        layout = initialize_layout(self.graph, seed=params.seed)
        coords = self.backend.from_host(layout.coords)
        rng = self.make_rng()
        steps = params.steps_per_iteration(self.graph.total_steps)
        workspace = UpdateWorkspace(steps, backend=self.backend)
        total = 0
        for iteration in range(params.iter_max):
            eta = float(self.schedule[iteration])
            batch = self.sampler.sample_fixed_hop(rng, steps, hop)
            apply_batch(coords, batch, eta, merge=self.merge_policy(),
                        workspace=workspace)
            total += len(batch)
        if coords is not layout.coords:  # device backends: download once
            layout.coords[...] = self.backend.to_host(coords)
        return LayoutResult(
            layout=layout,
            params=params,
            engine=f"{self.name}-fixed-hop",
            iterations=params.iter_max,
            total_terms=total,
        )
