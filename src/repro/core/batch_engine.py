"""Batched "PyTorch-style" layout engine (paper Sec. IV).

The paper's first GPU attempt expresses the layout update as mini-batched
tensor operations: gather the coordinates of a batch of node pairs, evaluate
the stress gradient with elementwise tensor kernels, and scatter the updates
back. That design has two structural properties the paper measures:

* every batch costs a fixed number of *kernel launches* (one per tensor op),
  so small batches drown in launch overhead (Table IV) while huge batches
  degrade layout quality through stale updates (Table III);
* the gather/scatter ("index") kernels dominate the per-batch time because
  their memory access pattern is irregular (Fig. 7).

:class:`BatchedLayoutEngine` reproduces both: it runs the numerically
identical batched update with NumPy, counts the tensor-op kernel launches it
would have issued, and attributes modelled time to each op class using a
bytes-moved / effective-bandwidth cost model so the breakdown percentages can
be compared to Fig. 7.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..graph.lean import LeanGraph
from ..prng.xoshiro import Xoshiro256Plus
from .base import LayoutEngine, split_into_batches
from .layout import NodeDataLayout
from .params import LayoutParams
from .selection import StepBatch

__all__ = ["KernelOp", "OpProfile", "BatchedLayoutEngine", "PYTORCH_OP_SEQUENCE"]

#: Tensor-op kernels issued per batch by the PyTorch formulation of the
#: update, with the bytes each moves per batch element and the relative
#: memory-efficiency of its access pattern (1.0 = perfectly streaming,
#: smaller = irregular). The "index" ops are gathers/scatters over the layout
#: array; everything else is a streaming elementwise op over batch-sized
#: temporaries.
PYTORCH_OP_SEQUENCE: List[tuple] = [
    ("index", 4, 64, 0.18),      # gather coords of v_i, v_j (x and y, both nodes)
    ("index", 1, 8, 0.25),       # gather d_ref
    ("sub", 1, 48, 1.0),         # coordinate differences
    ("pow", 2, 32, 1.0),         # squared components / squared error
    ("add", 1, 32, 1.0),         # sum of squares
    ("sqrt", 1, 16, 1.0),        # layout distance
    ("sub", 1, 16, 1.0),         # (mag - d_ref)
    ("div", 1, 16, 1.0),         # normalise by d_ref / magnitude
    ("mul", 3, 48, 1.0),         # learning rate, weight, displacement scaling
    ("where", 2, 32, 1.0),       # μ capping and zero-distance guards
    ("index", 2, 64, 0.18),      # scatter updates back to both endpoints
    ("reduction", 1, 8, 0.8),    # batch loss reduction (monitoring)
]


@dataclass
class KernelOp:
    """Aggregate statistics of one kernel class."""

    launches: int = 0
    bytes_moved: float = 0.0
    modelled_time: float = 0.0


@dataclass
class OpProfile:
    """Kernel-level profile of a batched run (feeds Fig. 7 / Table IV)."""

    ops: Dict[str, KernelOp] = field(default_factory=dict)
    launch_overhead_s: float = 10e-6
    device_bandwidth_gbs: float = 768.0

    def record_batch(self, batch_elements: int) -> None:
        """Account one batch's worth of kernel launches."""
        for name, launches, bytes_per_elem, efficiency in PYTORCH_OP_SEQUENCE:
            op = self.ops.setdefault(name, KernelOp())
            op.launches += launches
            moved = launches * batch_elements * bytes_per_elem
            op.bytes_moved += moved
            effective_bw = self.device_bandwidth_gbs * 1e9 * efficiency
            op.modelled_time += launches * self.launch_overhead_s + moved / effective_bw

    @property
    def total_launches(self) -> int:
        """Total CUDA kernel launches (Table IV row 1)."""
        return sum(op.launches for op in self.ops.values())

    @property
    def total_time(self) -> float:
        """Total modelled GPU time, seconds."""
        return sum(op.modelled_time for op in self.ops.values())

    @property
    def api_overhead_fraction(self) -> float:
        """Fraction of total time spent in launch overhead (Table IV row 2)."""
        total = self.total_time
        if total <= 0:
            return 0.0
        overhead = self.total_launches * self.launch_overhead_s
        return overhead / total

    def time_breakdown(self) -> Dict[str, float]:
        """Fraction of modelled time per kernel class (Fig. 7)."""
        total = self.total_time
        if total <= 0:
            return {name: 0.0 for name in self.ops}
        return {name: op.modelled_time / total for name, op in self.ops.items()}


class BatchedLayoutEngine(LayoutEngine):
    """Mini-batched tensor-style engine with kernel accounting."""

    name = "batched-pytorch-style"

    def __init__(
        self,
        graph: LeanGraph,
        params: Optional[LayoutParams] = None,
        launch_overhead_s: float = 10e-6,
        device_bandwidth_gbs: float = 768.0,
    ):
        super().__init__(graph, params)
        self.op_profile = OpProfile(
            launch_overhead_s=launch_overhead_s,
            device_bandwidth_gbs=device_bandwidth_gbs,
        )

    def data_layout(self) -> NodeDataLayout:
        # The naive tensor formulation keeps ODGI's separate coordinate
        # arrays — exactly the layout the CDL optimisation later replaces.
        return NodeDataLayout.SOA

    def make_rng(self) -> Xoshiro256Plus:
        return Xoshiro256Plus(self.params.seed, n_streams=1024)

    def batch_plan(self, steps_per_iteration: int) -> List[int]:
        return split_into_batches(steps_per_iteration, self.params.batch_size)

    def on_batch(self, batch: StepBatch, iteration: int, batch_index: int) -> StepBatch:
        # Overriding this hook is what forces the unfused per-batch path
        # (LayoutEngine.fused_active): the whole point of this engine is its
        # per-batch kernel-launch accounting, which a fused iteration would
        # never trigger — exactly the Table IV contrast being modelled.
        self.op_profile.record_batch(len(batch))
        self.add_counter("kernel_launches", float(len(PYTORCH_OP_SEQUENCE)))
        return batch

    # ------------------------------------------------------------- analysis
    def kernel_launches_for(self, total_terms: int) -> int:
        """Kernel launches needed to process ``total_terms`` at the current batch size."""
        batch = self.params.batch_size
        n_batches = int(np.ceil(total_terms / batch))
        per_batch = sum(launches for _, launches, _, _ in PYTORCH_OP_SEQUENCE)
        return n_batches * per_batch
