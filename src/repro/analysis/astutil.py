"""Small AST helpers shared by the contract checkers.

Everything here is purely syntactic: the analyzer never imports the code it
inspects, so judgements are made from names, import aliases and structure
alone. That keeps the pass safe to run on any tree (including broken ones —
parse failures surface as findings, not crashes) at the cost of provable
precision; the per-line pragma escape hatch covers what syntax cannot.
"""
from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "dotted_name",
    "import_aliases",
    "qualified_call_name",
    "call_contains_name",
    "function_defs",
    "param_names",
    "loop_bodies",
    "fstring_template",
]


def dotted_name(expr: ast.AST) -> Optional[str]:
    """``'np.random.default_rng'`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map of local name -> dotted origin for every import in ``tree``.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from datetime
    import datetime`` yields ``{"datetime": "datetime.datetime"}``. Relative
    imports keep their leading dots, so they can never collide with the
    absolute stdlib/numpy prefixes the checkers match against.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname:
                    aliases[a.asname] = a.name
                else:
                    # ``import a.b`` binds ``a``.
                    root = a.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{prefix}.{a.name}" if prefix else a.name
    return aliases


def qualified_call_name(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a call's dotted target through the file's import aliases.

    ``np.random.default_rng`` with ``{"np": "numpy"}`` resolves to
    ``"numpy.random.default_rng"``. Unresolvable roots (locals, attributes
    of non-Name values) return the literal dotted text when available, so
    callers can still match bare names like ``derive_seed``.
    """
    dotted = dotted_name(func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    origin = aliases.get(root)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def call_contains_name(call: ast.Call, name: str) -> bool:
    """True when any argument expression of ``call`` calls ``name``.

    The syntactic ``provably seeded`` test: an entropy call whose argument
    derives via ``derive_seed(...)`` (directly or nested) is exempt.
    """
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target is not None and target.split(".")[-1] == name:
                    return True
    return False


def function_defs(tree: ast.AST) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    """Every function definition paired with its enclosing class name."""
    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: List[Tuple[ast.AST, Optional[str]]] = []
            self._class: Optional[str] = None

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            outer, self._class = self._class, node.name
            self.generic_visit(node)
            self._class = outer

        def _visit_func(self, node: ast.AST) -> None:
            self.found.append((node, self._class))
            self.generic_visit(node)

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

    visitor = _Visitor()
    visitor.visit(tree)
    return iter(visitor.found)


def param_names(func: ast.AST) -> List[str]:
    """All parameter names of a function definition."""
    a = func.args
    params = list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
    if a.vararg:
        params.append(a.vararg)
    if a.kwarg:
        params.append(a.kwarg)
    return [p.arg for p in params]


def loop_bodies(region: ast.AST) -> Iterator[ast.AST]:
    """Every statement nested inside a ``for``/``while`` body of ``region``.

    Nested loops are not double-reported: each statement is yielded once,
    from the outermost loop that contains it.
    """
    seen = set()
    for node in ast.walk(region):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for stmt in node.body + node.orelse:
                for sub in ast.walk(stmt):
                    key = id(sub)
                    if key not in seen:
                        seen.add(key)
                        yield sub


def fstring_template(node: ast.JoinedStr) -> str:
    """Collapse an f-string into a template: ``f"lvl{i}"`` -> ``"lvl{}"``.

    Used by the seed-label uniqueness check: two f-string labels with the
    same template alias the same stream family, which is exactly as bad as
    two identical literals.
    """
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            parts.append(str(value.value))
        else:
            parts.append("{}")
    return "".join(parts)
