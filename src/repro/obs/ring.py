"""Per-worker trace ring buffers in shared memory.

The shm engine's workers (PR 6) were observability black boxes: once
spawned, the parent saw only per-iteration ``(terms, collisions)`` tuples.
This module ends that by giving each worker a fixed-size ring buffer *in
the run's existing shared segment* (:class:`~repro.parallel.shm
.SharedArrayBlock`), written lock-free by exactly one producer (the worker)
and decoded by exactly one consumer (the parent, after the workers have
stopped) — no pipes, no pickling, no allocation in the worker's iteration
loop.

Encoding: one event per row of a ``(capacity, RING_FIELDS)`` float64 array
— ``(name_id, t0, dur, iteration, count, seq)`` — plus an int64 control
word holding the monotonically increasing write count. Phase names are
interned through the fixed :data:`PHASE_NAMES` table (floats round-trip
small ints exactly); names outside the table map to ``"other"`` rather
than growing a shared string table. When a ring overflows, the oldest
events are overwritten and the overflow is *counted*, not silently lost:
the parent surfaces the total in the trace file's ``end`` record. Parents
size rings from the iteration/chunk plan (:func:`ring_capacity`), so
overflow only happens if the span taxonomy grows without a capacity bump.
"""
from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .tracer import TraceEvent, Tracer

__all__ = ["RING_FIELDS", "PHASE_NAMES", "ring_capacity", "ring_payload",
           "ring_keys", "TraceRing", "RingTracer"]

#: Columns per encoded event: name_id, t0, dur, iteration, count, seq.
RING_FIELDS = 6

#: Interned span names shared by ring encode (worker) and decode (parent).
#: Append-only: ids are positional, so reordering or removing entries would
#: misdecode rings written by the other side of a version skew.
PHASE_NAMES = ("iteration", "draw", "dispatch", "selection", "merge",
               "schedule", "transfer", "level", "prolong", "other")

_PHASE_ID: Dict[str, int] = {name: i for i, name in enumerate(PHASE_NAMES)}
_OTHER_ID = _PHASE_ID["other"]


def ring_capacity(iter_max: int, n_chunks: int, slack: int = 8) -> int:
    """Capacity covering one worker's full emission for a run.

    Per iteration a worker emits ``selection`` + ``merge`` per chunk (from
    :func:`repro.core.fused.run_iteration_host`) plus the aggregated
    ``draw``/``dispatch``/``iteration`` trio — ``2 * n_chunks + 3`` events.
    ``slack`` absorbs per-run one-offs so a correctly sized ring never
    drops.
    """
    if iter_max < 1 or n_chunks < 1:
        raise ValueError("iter_max and n_chunks must be >= 1")
    return int(iter_max) * (2 * int(n_chunks) + 3) + int(slack)


def ring_keys(worker_id: int) -> Tuple[str, str]:
    """Shared-block array keys for one worker's ring (buffer, control)."""
    return f"trace/{worker_id}/buf", f"trace/{worker_id}/ctl"


def ring_payload(worker_id: int, capacity: int) -> Dict[str, np.ndarray]:
    """Freshly zeroed ring arrays, keyed for the shared block's payload."""
    if capacity < 1:
        raise ValueError("ring capacity must be >= 1")
    buf_key, ctl_key = ring_keys(worker_id)
    return {
        buf_key: np.zeros((int(capacity), RING_FIELDS), dtype=np.float64),
        # ctl[0] = events written (monotonic); ctl[1] reserved.
        ctl_key: np.zeros(2, dtype=np.int64),
    }


class TraceRing:
    """Single-producer/single-consumer event ring over two array views.

    The producer (worker) only calls :meth:`push`; the consumer (parent)
    only calls :meth:`events` *after* the producer has stopped — the shm
    engine's iteration barrier plus worker join gives that for free, so no
    memory-ordering machinery is needed beyond the shared mapping itself.
    """

    def __init__(self, buf: np.ndarray, ctl: np.ndarray):
        if buf.ndim != 2 or buf.shape[1] != RING_FIELDS:
            raise ValueError(f"ring buffer must be (capacity, {RING_FIELDS})")
        self.buf = buf
        self.ctl = ctl
        self.capacity = int(buf.shape[0])

    # ------------------------------------------------------------- producer
    def push(self, name: str, t0: float, dur: float, iteration: int = -1,
             count: int = 1) -> None:
        """Append one event, overwriting the oldest when full."""
        seq = int(self.ctl[0])
        row = self.buf[seq % self.capacity]
        row[0] = _PHASE_ID.get(name, _OTHER_ID)
        row[1] = t0
        row[2] = dur
        row[3] = iteration
        row[4] = count
        row[5] = seq
        self.ctl[0] = seq + 1

    # ------------------------------------------------------------- consumer
    @property
    def written(self) -> int:
        """Total events pushed over the ring's lifetime."""
        return int(self.ctl[0])

    @property
    def dropped(self) -> int:
        """Events overwritten before they could be decoded."""
        return max(0, self.written - self.capacity)

    def events(self, labels: Optional[Mapping[str, str]] = None
               ) -> List[TraceEvent]:
        """Decode surviving events, oldest first (emission order)."""
        written = self.written
        labels = dict(labels or {})
        if written <= self.capacity:
            rows = self.buf[:written]
        else:
            start = written % self.capacity
            rows = np.concatenate([self.buf[start:], self.buf[:start]])
        out: List[TraceEvent] = []
        for row in rows:
            name_id = int(row[0])
            name = (PHASE_NAMES[name_id]
                    if 0 <= name_id < len(PHASE_NAMES) else "other")
            out.append(TraceEvent(name=name, t0=float(row[1]),
                                  dur=float(row[2]), iteration=int(row[3]),
                                  count=int(row[4]), labels=labels))
        return out


class RingTracer(Tracer):
    """Tracer whose emissions land in a :class:`TraceRing`.

    Workers hold one of these; engine code is indifferent to whether it is
    writing to a list or a ring. Labels are *not* encoded per event — the
    parent attaches the worker's label set once at decode time — so
    ``bind`` returns ``self``.
    """

    enabled = True

    def __init__(self, ring: TraceRing):
        super().__init__()
        self.ring = ring

    def emit(self, name: str, t0: float, dur: float, iteration: int = -1,
             count: int = 1) -> None:
        self.ring.push(name, t0, dur, iteration, count)

    def bind(self, **labels) -> Tracer:
        return self
