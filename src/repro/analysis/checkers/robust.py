"""ROBUST001 — the no-unbounded-blocking contract (PR 10).

The parallel runtime's original failure mode was a parent blocked forever
on a pipe to a dead worker: ``Connection.recv()`` has no timeout and
``Process.join()`` defaults to one, so a crashed or wedged worker turned
the whole run into a hang. The supervised runtime
(:mod:`repro.parallel.supervise`) replaces every such wait with a
liveness-checked poll loop; this checker keeps it that way.

Statically enforced in every file under a ``parallel/`` directory:

* ``<obj>.recv()`` with no arguments is banned — barrier waits must route
  through the supervisor's poll-with-deadline seam (whose own ``recv()``
  calls are guarded by a preceding ``poll()`` and documented with
  ``# robust-ok: <reason>``, as is the worker-side loop, where the parent's
  liveness is the supervisor's concern);
* ``<obj>.join()`` with no arguments is banned — process joins must carry
  a timeout so teardown can escalate (``terminate()`` → ``kill()``)
  instead of waiting on a straggler forever. ``str.join`` and
  ``os.path.join`` always take an argument, so only the untimed
  process-join shape is matched.
"""
from __future__ import annotations

import ast
from typing import List

from ..registry import Finding, checker
from ..source import SourceFile

__all__ = ["check_robust001"]


def _in_parallel_dir(src: SourceFile) -> bool:
    return "parallel" in src.parts[:-1]


@checker("ROBUST001", pragma="robust-ok", severity="error", scope="file")
def check_robust001(src: SourceFile) -> List[Finding]:
    """Unbounded blocking waits (bare recv / untimed join) in parallel/."""
    if not _in_parallel_dir(src):
        return []
    out: List[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.args or node.keywords:
            continue
        if node.func.attr == "recv":
            out.append(Finding(
                rule="ROBUST001", path=src.rel, line=node.lineno,
                col=node.col_offset, severity="error",
                message=("bare Connection.recv() in the parallel runtime — "
                         "a dead peer turns this into a hang; route the "
                         "wait through the supervisor's poll-with-deadline "
                         "seam (repro.parallel.supervise) or justify a "
                         "poll-guarded read with '# robust-ok: <reason>'"),
                snippet=src.snippet(node.lineno)))
        elif node.func.attr == "join":
            out.append(Finding(
                rule="ROBUST001", path=src.rel, line=node.lineno,
                col=node.col_offset, severity="error",
                message=("untimed .join() in the parallel runtime — a "
                         "terminate-resistant straggler blocks teardown "
                         "forever; pass a timeout and escalate "
                         "(terminate -> kill) on expiry, or justify with "
                         "'# robust-ok: <reason>'"),
                snippet=src.snippet(node.lineno)))
    return out
