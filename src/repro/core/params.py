"""Layout parameters shared by every PG-SGD engine.

The defaults follow ``odgi-layout`` (and the paper's experimental setup):
30 iterations, ``N_steps = 10 × Σ|p|`` updates per iteration, a Zipf-like
"cooling" node-pair distribution that activates in the second half of the
run, and the Zheng-et-al. exponentially decaying learning-rate schedule.

For the scaled datasets used in this reproduction the per-iteration step
budget is configurable (``steps_per_step_unit``), because the paper's 10×
multiplier targets million-node graphs; the ratios studied in the benchmarks
are insensitive to the multiplier.
"""
from __future__ import annotations

import re
import warnings
from dataclasses import dataclass, fields, replace
from typing import Optional, Union

__all__ = ["LayoutParams", "parse_memory_budget", "replace_params"]

#: Binary size-suffix multipliers accepted by :func:`parse_memory_budget`.
#: ``KB``/``KiB``/``K`` are synonyms (1024 bytes), and so on through ``T``.
_MEMORY_UNITS = {
    "": 1,
    "B": 1,
    "K": 1024, "KB": 1024, "KIB": 1024,
    "M": 1024 ** 2, "MB": 1024 ** 2, "MIB": 1024 ** 2,
    "G": 1024 ** 3, "GB": 1024 ** 3, "GIB": 1024 ** 3,
    "T": 1024 ** 4, "TB": 1024 ** 4, "TIB": 1024 ** 4,
}

_MEMORY_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*$")


def parse_memory_budget(value: Union[int, str, None]) -> Optional[int]:
    """Normalise a memory budget to a positive byte count (or ``None``).

    Accepts ``None`` (no budget), a positive ``int`` byte count, or a
    human-readable string such as ``"64MB"``, ``"512KiB"``, ``"1.5g"`` or
    plain ``"1048576"``. Suffixes are binary — ``K``/``KB``/``KiB`` all
    mean 1024 bytes — because the budget sizes array allocations, not disk.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise ValueError("memory_budget must be None, a byte count or a "
                         "size string such as '64MB'")
    if isinstance(value, int):
        budget = value
    elif isinstance(value, str):
        match = _MEMORY_RE.match(value)
        if match is None:
            raise ValueError(
                f"invalid memory budget {value!r}: expected a byte count "
                "with an optional K/M/G/T suffix, e.g. '64MB'")
        number, unit = match.groups()
        try:
            scale = _MEMORY_UNITS[unit.upper()]
        except KeyError:
            raise ValueError(
                f"invalid memory budget unit {unit!r} in {value!r}: "
                "expected one of B, K[i]B, M[i]B, G[i]B, T[i]B") from None
        budget = int(float(number) * scale)
    else:
        raise ValueError("memory_budget must be None, a byte count or a "
                         "size string such as '64MB'")
    if budget < 1:
        raise ValueError("memory_budget must be a positive number of bytes")
    return budget


@dataclass(frozen=True)
class LayoutParams:
    """Hyper-parameters of the path-guided SGD layout (Alg. 1)."""

    iter_max: int = 30
    """Total number of outer iterations (N_iters in Alg. 1)."""

    steps_per_step_unit: float = 10.0
    """Updates per iteration expressed as a multiple of Σ|p| (paper: 10)."""

    min_term_updates: int = 10
    """Lower bound on updates per iteration for tiny graphs."""

    eps: float = 0.01
    """Learning-rate floor parameter (η_min = eps / w_max)."""

    eta_max: Optional[float] = None
    """Explicit η_max override; default is d_max² (1 / w_min)."""

    cooling_start: float = 0.5
    """Fraction of iterations after which every step uses the cooling branch."""

    zipf_theta: float = 0.99
    """Exponent of the Zipf distribution used for cooling node-pair selection."""

    zipf_space_max: int = 1000
    """Maximum hop distance the Zipf cooling distribution can select."""

    seed: int = 9399
    """PRNG seed (odgi-layout's default seed is 9399 for the path SGD)."""

    simulated_threads: int = 1
    """*Simulated* thread count for the Hogwild CPU-baseline emulation and
    the Fig. 4 scaling *model*. This knob never spawns OS threads or
    processes — it only widens the staleness window the single-process
    engine emulates. Real multi-core execution is :attr:`workers`."""

    workers: int = 1
    """Real OS worker-process count for the process-parallel shared-memory
    engine (:mod:`repro.parallel.shm`). ``1`` (the default) runs the flat
    single-process path; ``N > 1`` puts the coordinate array in
    ``multiprocessing.shared_memory`` and runs ``N`` hogwild workers over
    disjoint slices of each iteration's batch plan."""

    on_worker_failure: str = "fail"
    """Failure policy of the supervised process-parallel runtime
    (:mod:`repro.parallel.supervise`), consulted when a shm worker dies or
    stalls mid-run. ``"fail"`` (the default) raises a typed
    ``ParallelRuntimeError`` promptly — the run never hangs and never
    silently drops a worker's contribution; ``"degrade"`` re-slices the
    dead worker's sub-plan across the survivors and continues (the result
    is flagged ``degraded``); ``"restart"`` respawns the worker with fresh
    decorrelated streams, with capped exponential backoff, degrading only
    after the restart budget is exhausted. Irrelevant when ``workers=1``
    runs flat."""

    batch_size: int = 65536
    """Node-pair batch size for the batched (PyTorch-style) engine."""

    record_history: bool = False
    """Whether engines record per-iteration stress snapshots."""

    merge_policy: str = "hogwild"
    """Write-merge policy for colliding in-batch updates (``hogwild`` /
    ``accumulate`` / ``last_writer``; see :mod:`repro.core.updates`)."""

    backend: Optional[str] = None
    """Execution backend name (see :mod:`repro.backend`). ``None`` resolves
    via the ``REPRO_BACKEND`` environment variable, then ``"numpy"``; the
    name is validated when the engine is constructed, so an unavailable
    backend fails fast with the recorded reason."""

    fused: Optional[bool] = None
    """Fused per-iteration execution path (:mod:`repro.core.fused`): run
    selection + displacement + merge for a whole iteration as one backend
    dispatch instead of one ``sample``/``apply_batch`` round trip per batch.
    ``None`` (auto, the default) fuses whenever the backend advertises a
    fused kernel and the engine uses the stock batch hooks; ``False`` forces
    the per-batch loop. Engines that override ``draw_batch``/``on_batch``
    (the batched PyTorch-style engine's kernel accounting, the GPU engine's
    warp merging) and history-recording runs always take the unfused path so
    their per-batch hooks keep firing. Fused and unfused layouts are
    byte-identical on the NumPy backend."""

    memory_budget: Optional[Union[int, str]] = None
    """Soft ceiling, in bytes, on the fused path's per-iteration transient
    footprint. ``None`` (the default) keeps the historical behaviour: the
    whole iteration's uniform megablock and selection block are materialised
    at once (one backend dispatch per iteration). A budget makes the engine
    split each iteration's batch plan into contiguous segment *chunks* sized
    to fit (:func:`repro.core.fused.chunk_spans`) and dispatch once per
    chunk; chunk boundaries are segment boundaries, so layouts stay
    byte-identical on the NumPy backend for every budget. Accepts an ``int``
    byte count or a size string (``"64MB"``), normalised to bytes by
    :func:`parse_memory_budget` at construction."""

    levels: int = 1
    """Maximum depth of the multilevel coarsening hierarchy
    (:mod:`repro.multilevel`). ``1`` (the default) runs the flat engine
    untouched; ``N > 1`` coarsens up to ``N - 1`` times and optimises coarse
    to fine."""

    coarsen_min_nodes: int = 32
    """Coarsening stops once a hierarchy level has this many nodes or fewer
    (tiny graphs gain nothing from further contraction)."""

    level_iter_split: float = 0.5
    """Fraction of the remaining iteration budget handed to the *coarser*
    part of the hierarchy at each level boundary (strictly between 0 and 1);
    see :func:`repro.multilevel.split_iterations`."""

    trace: Optional[str] = None
    """Path of a JSONL run-trace file (:mod:`repro.obs`). ``None`` (the
    default) disables tracing entirely — engines hold the null tracer and
    the hot path pays one branch per guarded site. A path makes the run
    record phase-attributed spans (schedule/selection/dispatch/merge/
    transfer/...) and write them, schema-versioned, at the end of ``run()``;
    shm workers emit to per-worker shared-memory ring buffers which the
    parent merges into the one file. Tracing never touches coordinates or
    PRNG draw order, so traced layouts are byte-identical to untraced
    ones."""

    def __post_init__(self) -> None:
        if self.iter_max < 1:
            raise ValueError("iter_max must be >= 1")
        if self.steps_per_step_unit <= 0:
            raise ValueError("steps_per_step_unit must be positive")
        if self.min_term_updates < 1:
            raise ValueError("min_term_updates must be >= 1")
        if self.eps <= 0:
            raise ValueError("eps must be positive")
        if not 0.0 <= self.cooling_start <= 1.0:
            raise ValueError("cooling_start must lie in [0, 1]")
        if self.zipf_theta <= 0:
            raise ValueError("zipf_theta must be positive")
        if self.zipf_space_max < 1:
            raise ValueError("zipf_space_max must be >= 1")
        if self.simulated_threads < 1:
            raise ValueError("simulated_threads (n_threads) must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.on_worker_failure not in ("fail", "degrade", "restart"):
            raise ValueError(
                "on_worker_failure must be 'fail', 'degrade' or 'restart'")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.merge_policy not in ("hogwild", "accumulate", "last_writer"):
            raise ValueError(
                "merge_policy must be 'hogwild', 'accumulate' or 'last_writer'")
        if self.backend is not None and (not isinstance(self.backend, str)
                                         or not self.backend):
            raise ValueError("backend must be None or a non-empty backend name")
        if self.fused is not None and not isinstance(self.fused, bool):
            raise ValueError("fused must be None (auto), True or False")
        # Normalise "64MB"-style budgets to a byte count once, here, so every
        # consumer (engine, shm workers, CLI echo) deals in plain ints.
        object.__setattr__(self, "memory_budget",
                           parse_memory_budget(self.memory_budget))
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if self.coarsen_min_nodes < 1:
            raise ValueError("coarsen_min_nodes must be >= 1")
        if not 0.0 < self.level_iter_split < 1.0:
            raise ValueError("level_iter_split must lie strictly between 0 and 1")
        if self.trace is not None and (not isinstance(self.trace, str)
                                       or not self.trace):
            raise ValueError("trace must be None or a non-empty output path")
        # Reject the unsupported combination at construction time, so
        # replace_params-built configs fail here with the same message the
        # late layout_graph() check used to raise.
        if self.workers > 1 and self.levels > 1:
            raise ValueError(
                "workers > 1 and levels > 1 cannot be combined yet; run the "
                "multilevel driver single-process or the shm engine flat")

    def with_(self, **kwargs) -> "LayoutParams":
        """Return a copy with the given fields replaced (unknown names rejected)."""
        return replace_params(self, kwargs)

    def steps_per_iteration(self, total_path_steps: int) -> int:
        """N_steps for a graph with ``total_path_steps`` = Σ|p| (Alg. 1 line 1)."""
        return max(self.min_term_updates, int(self.steps_per_step_unit * total_path_steps))

    def first_cooling_iteration(self) -> int:
        """Iteration index at which the cooling branch becomes unconditional."""
        return int(self.cooling_start * self.iter_max)


# --------------------------------------------------------------------------
# Deprecated ``n_threads`` alias. The old name suggested real OS threads but
# only ever widened the *simulated* hogwild staleness window, so it was
# renamed to ``simulated_threads`` when the real multi-core knob (``workers``)
# landed. The alias is installed post-decoration rather than as a field so
# that ``dataclasses.replace`` (and therefore ``with_``) round-trips without
# re-folding the alias or re-warning on unrelated replacements.

_DEPRECATION_MSG = (
    "LayoutParams.n_threads is deprecated: the knob only drives the "
    "*simulated* hogwild analysis and was renamed to simulated_threads "
    "(real multi-core execution is the separate workers=N knob)"
)

_dataclass_init = LayoutParams.__init__


def _init_with_alias(self, *args, n_threads: Optional[int] = None, **kwargs) -> None:
    if n_threads is not None:
        warnings.warn(_DEPRECATION_MSG, DeprecationWarning, stacklevel=2)
        # The alias wins: dataclasses.replace() re-passes every stored field,
        # so an explicit n_threads must override the copied simulated_threads.
        kwargs["simulated_threads"] = n_threads
    _dataclass_init(self, *args, **kwargs)


_init_with_alias.__wrapped__ = _dataclass_init
LayoutParams.__init__ = _init_with_alias


def _n_threads_read_alias(self) -> int:
    warnings.warn(_DEPRECATION_MSG, DeprecationWarning, stacklevel=2)
    return self.simulated_threads


LayoutParams.n_threads = property(_n_threads_read_alias)

#: Names accepted as per-call overrides by :func:`replace_params` (and thus
#: by ``LayoutParams.with_`` and ``layout_graph(**overrides)``): every init
#: field plus the deprecated ``n_threads`` alias.
PARAM_FIELD_NAMES = tuple(f.name for f in fields(LayoutParams) if f.init)
_OVERRIDE_NAMES = frozenset(PARAM_FIELD_NAMES) | {"n_threads"}


def replace_params(params: LayoutParams, overrides) -> LayoutParams:
    """``dataclasses.replace`` with unknown-name rejection.

    The backing of the one-knob override API (``layout_graph(g, workers=4)``,
    ``params.with_(fused=False)``): overrides are validated against the
    :class:`LayoutParams` field names before replacement, so a typo raises
    ``TypeError`` naming the valid knobs instead of surfacing as an opaque
    dataclass error.
    """
    overrides = dict(overrides)
    if not overrides:
        return params
    unknown = sorted(set(overrides) - _OVERRIDE_NAMES)
    if unknown:
        raise TypeError(
            f"unknown layout parameter(s) {', '.join(map(repr, unknown))}; "
            f"valid names: {', '.join(PARAM_FIELD_NAMES)}")
    if "n_threads" in overrides:
        # Translate the deprecated alias here (one warning, right caller
        # frame) so replace() below deals in real fields only.
        warnings.warn(_DEPRECATION_MSG, DeprecationWarning, stacklevel=3)
        alias = overrides.pop("n_threads")
        if alias is not None:
            overrides["simulated_threads"] = alias
        if not overrides:
            return params
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return replace(params, **overrides)
