"""Pytest shim for the fig18_multilevel_quality benchmark case.

The case body lives in :mod:`repro.bench.cases.perf_multilevel`. Run it
directly with ``python benchmarks/bench_fig18_multilevel_quality.py``,
through ``pytest benchmarks/bench_fig18_multilevel_quality.py``, or as part
of ``repro bench run --suite figures``.
"""
from __future__ import annotations

import pytest

from repro.bench.cases.perf_multilevel import run_fig18_multilevel_quality

_CASE = run_fig18_multilevel_quality.case


@pytest.mark.paper_table(_CASE.source)
def test_fig18_multilevel_quality(bench_ctx):
    result = _CASE.run(bench_ctx)
    for table in result.tables:
        print()
        print(table)


if __name__ == "__main__":
    from repro.bench.runner import run_case

    run_case(_CASE.name)
