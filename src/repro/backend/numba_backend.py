"""Optional Numba backend: JIT-compiled kernels on host arrays.

Coordinate state stays in NumPy (``xp is numpy``), so selection, displacement
arithmetic and the workspace are shared with the reference backend verbatim;
what Numba replaces is compiled code for the two hottest dispatch points:

* the **merge scatter** — the one per-batch stage whose NumPy spelling needs
  two ``bincount`` passes plus fancy-indexed read-modify-write; the fused
  ``@njit`` loops below make a single pass over the batch and a single pass
  over the touched points, mirroring how the paper's CUDA kernel merges
  per-thread displacements without staging arrays (Sec. V-B);
* the **fused iteration** — ``run_iteration`` compiles the *entire* SGD
  iteration (selection, displacement, sequential per-segment merges) into
  one ``@njit`` loop over the pre-drawn uniform megablock: the host-side
  analogue of the paper's one-kernel-launch-per-iteration design (Sec. V-A).
  The kernel mirrors the NumPy selection/update math operation for
  operation (same IEEE double ops, same accumulation order), so it is held
  to the conformance matrix's 1e-9 against the unfused reference.

Importing this module raises :class:`ImportError` when numba is not
installed; the registry treats that (and any JIT failure surfaced by the
registration self-test) as "backend unavailable" and skips it cleanly.
"""
from __future__ import annotations

import numba  # the ImportError from a missing numba is the availability probe
import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["NumbaBackend"]

_MODES = {"accumulate": 0, "hogwild": 1, "last_writer": 2}


@numba.njit(cache=False)
def _merge_kernel(coords, touched, inverse, counts, all_deltas, mode):  # pragma: no cover - numba-compiled
    """Fused compacted-space merge: one pass over terms, one over touched points."""
    m = touched.shape[0]
    if mode == 2:  # last writer: final occurrence per compacted slot wins
        last = np.empty(m, dtype=np.int64)
        for k in range(inverse.shape[0]):
            last[inverse[k]] = k
        for s in range(m):
            p = touched[s]
            coords[p, 0] += all_deltas[last[s], 0]
            coords[p, 1] += all_deltas[last[s], 1]
        return
    acc = np.zeros((m, 2), dtype=np.float64)
    for k in range(inverse.shape[0]):
        s = inverse[k]
        acc[s, 0] += all_deltas[k, 0]
        acc[s, 1] += all_deltas[k, 1]
    if mode == 1:  # hogwild: average colliding displacements per point
        for s in range(m):
            p = touched[s]
            c = counts[s]
            coords[p, 0] += acc[s, 0] / c
            coords[p, 1] += acc[s, 1] / c
    else:  # accumulate: gradient sum
        for s in range(m):
            p = touched[s]
            coords[p, 0] += acc[s, 0]
            coords[p, 1] += acc[s, 1]


@numba.njit(cache=False)
def _fused_iteration_kernel(coords, uniforms, plan, need_calls, n_streams,
                            cum_steps, path_offsets, path_counts,
                            step_nodes, step_positions, zipf_theta,
                            zipf_space_max, always_cooling, eta,
                            mode, min_distance):  # pragma: no cover - numba-compiled
    """One whole SGD iteration as a single compiled loop.

    Per planned segment: select every term from its slice of the pre-drawn
    uniform megablock (path inverse-CDF, cooling branch, uniform/Zipf pair,
    endpoint flips — the NumPy sampler's math op for op), compute the stress
    displacement against the segment-start coordinates, then merge the
    segment's writes over the compacted touched-point space in the same
    k-ascending accumulation order the bincount-based merges use. Segments
    are strictly sequential, so staleness semantics match the unfused loop.

    Returns ``(n_terms, n_point_collisions)``.
    """
    n_seg = plan.shape[0]
    b_max = 0
    for s in range(n_seg):
        if plan[s] > b_max:
            b_max = plan[s]
    # Per-call scratch, sized once to the largest segment (O(batch), never
    # O(graph) — the PR 2 cost discipline).
    pts = np.empty(2 * b_max, np.int64)
    deltas = np.empty((2 * b_max, 2), np.float64)
    inverse = np.empty(2 * b_max, np.int64)
    slot_point = np.empty(2 * b_max, np.int64)
    slot_count = np.empty(2 * b_max, np.int64)
    acc = np.empty((2 * b_max, 2), np.float64)
    last = np.empty(2 * b_max, np.int64)

    total = cum_steps[cum_steps.shape[0] - 1]
    one_minus_theta = 1.0 - zipf_theta
    theta_is_one = abs(one_minus_theta) < 1e-9
    if theta_is_one:
        log_space = np.log(zipf_space_max + 1.0)
        h_max = 0.0
        inv_omt = 0.0
    else:
        log_space = 0.0
        h_max = ((zipf_space_max + 1.0) ** one_minus_theta - 1.0) / one_minus_theta
        inv_omt = 1.0 / one_minus_theta

    n_terms = 0
    n_collisions = 0
    row = 0
    for s in range(n_seg):
        b = plan[s]
        need = need_calls[s]
        for t in range(b):
            call = t // n_streams
            stream = t - call * n_streams
            u0 = uniforms[row + 0 * need + call, stream]
            u1 = uniforms[row + 1 * need + call, stream]
            u2 = uniforms[row + 2 * need + call, stream]
            u3 = uniforms[row + 3 * need + call, stream]
            u4 = uniforms[row + 4 * need + call, stream]
            u5 = uniforms[row + 5 * need + call, stream]
            u6 = uniforms[row + 6 * need + call, stream]
            u7 = uniforms[row + 7 * need + call, stream]
            # Alg. 1 line 5: inverse-CDF path selection over step counts.
            target = np.int64(u0 * total)
            if target > total - 1:
                target = total - 1
            p = np.searchsorted(cum_steps, target, side="right") - 1
            start = path_offsets[p]
            cnt = path_counts[p]
            cooling = always_cooling or (u1 < 0.5)
            li = np.int64(u2 * cnt)
            if li > cnt - 1:
                li = cnt - 1
            if cooling:
                # Truncated-Zipf hop via inverse CDF (zipf_hop_distances).
                uu = u4
                if uu < 0.0:
                    uu = 0.0
                if uu > 1.0 - 1e-12:
                    uu = 1.0 - 1e-12
                if zipf_space_max == 1:
                    hop = np.int64(1)
                elif theta_is_one:
                    hop = np.int64(np.floor(np.exp(uu * log_space)))
                else:
                    h = uu * h_max
                    hop = np.int64(np.floor(
                        (h * one_minus_theta + 1.0) ** inv_omt))
                if hop < 1:
                    hop = np.int64(1)
                if hop > zipf_space_max:
                    hop = zipf_space_max
                hop_cap = cnt - 1
                if hop_cap < 1:
                    hop_cap = np.int64(1)
                if hop > hop_cap:
                    hop = hop_cap
                if u5 < 0.5:
                    lj = li - hop
                else:
                    lj = li + hop
                # Reflect out-of-range hops back into the path, then clamp.
                if lj < 0:
                    lj = li + hop
                if lj >= cnt:
                    lj = li - hop
                hi = cnt - 1
                if hi < 0:
                    hi = np.int64(0)
                if lj < 0:
                    lj = np.int64(0)
                if lj > hi:
                    lj = hi
            else:
                lj = np.int64(u3 * cnt)
                if lj > cnt - 1:
                    lj = cnt - 1
            if lj == li and cnt > 1:
                lj = (li + 1) % cnt
            fi = start + li
            fj = start + lj
            vi = np.int64(1) if u6 < 0.5 else np.int64(0)
            vj = np.int64(1) if u7 < 0.5 else np.int64(0)
            dpos = step_positions[fi] - step_positions[fj]
            if dpos < 0:
                dpos = -dpos
            d_ref = np.float64(dpos)
            pi = 2 * step_nodes[fi] + vi
            pj = 2 * step_nodes[fj] + vj
            # Lines 14-15: μ-capped stress gradient on both endpoints,
            # reading the segment-start coordinates (writes happen below).
            dx = coords[pi, 0] - coords[pj, 0]
            dy = coords[pi, 1] - coords[pj, 1]
            mag = np.sqrt(dx * dx + dy * dy)
            mag_safe = mag if mag > min_distance else min_distance
            if d_ref > 0.0:
                mu = eta / (d_ref * d_ref)
                if mu > 1.0:
                    mu = 1.0
                ds = mu * (mag - d_ref) / 2.0
            else:
                ds = 0.0
            if mag < min_distance:
                ux = 1.0  # coincident points: nudge along x
                uy = 0.0
            else:
                ux = dx / mag_safe
                uy = dy / mag_safe
            ddx = ux * ds
            ddy = uy * ds
            pts[t] = pi
            deltas[t, 0] = -ddx
            deltas[t, 1] = -ddy
            pts[b + t] = pj
            deltas[b + t, 0] = ddx
            deltas[b + t, 1] = ddy
        # Segment merge over the compacted touched-point space. argsort +
        # sorted walk reproduces unique/inverse/counts; the accumulation
        # itself runs in ascending k, the bincount order, so sums are
        # bit-compatible with the reference merge.
        m2 = 2 * b
        order = np.argsort(pts[:m2])
        n_slots = 0
        prev = np.int64(-1)
        for r in range(m2):
            k = order[r]
            v = pts[k]
            if r == 0 or v != prev:
                slot_point[n_slots] = v
                slot_count[n_slots] = 0
                n_slots += 1
                prev = v
            inverse[k] = n_slots - 1
            slot_count[n_slots - 1] += 1
        n_collisions += m2 - n_slots
        if mode == 2:  # last writer: final occurrence per point wins
            for k in range(m2):
                last[inverse[k]] = k
            for sl in range(n_slots):
                kk = last[sl]
                pp = slot_point[sl]
                coords[pp, 0] += deltas[kk, 0]
                coords[pp, 1] += deltas[kk, 1]
        else:
            for sl in range(n_slots):
                acc[sl, 0] = 0.0
                acc[sl, 1] = 0.0
            for k in range(m2):
                sl = inverse[k]
                acc[sl, 0] += deltas[k, 0]
                acc[sl, 1] += deltas[k, 1]
            if mode == 1:  # hogwild: average colliding displacements
                for sl in range(n_slots):
                    pp = slot_point[sl]
                    c = np.float64(slot_count[sl])
                    coords[pp, 0] += acc[sl, 0] / c
                    coords[pp, 1] += acc[sl, 1] / c
            else:  # accumulate: gradient sum
                for sl in range(n_slots):
                    pp = slot_point[sl]
                    coords[pp, 0] += acc[sl, 0]
                    coords[pp, 1] += acc[sl, 1]
        n_terms += b
        row += 8 * need
    return n_terms, n_collisions


class NumbaBackend(NumpyBackend):
    """Host backend with JIT-fused kernels (requires ``numba``).

    Subclasses the reference backend: transfers, compaction and norms are
    *inherited*, not copied, so the two host backends cannot drift apart in
    anything but the compiled kernels replaced below.
    """

    name = "numba"

    def merge_scatter(self, coords, touched, inverse, counts, all_deltas,
                      merge: str) -> None:
        try:
            mode = _MODES[merge]
        except KeyError:  # pragma: no cover - callers validate before dispatch
            raise ValueError(f"unknown merge policy {merge!r}") from None
        _merge_kernel(
            coords,
            np.ascontiguousarray(touched, dtype=np.int64),
            np.ascontiguousarray(inverse, dtype=np.int64),
            np.ascontiguousarray(counts, dtype=np.float64),
            np.ascontiguousarray(all_deltas, dtype=np.float64),
            mode,
        )

    def run_iteration(self, plan, coords, uniforms, eta: float,
                      iteration: int):
        """The whole plan in one ``@njit`` call — selection included.

        This is the host analogue of the paper's one-kernel-per-iteration
        design: a single compiled dispatch consumes the pre-drawn uniform
        megablock and performs selection + displacement + sequential segment
        merges without returning to the interpreter. Under a memory budget
        the engine passes budget-sized chunk plans instead of the whole
        iteration; nothing here changes, because the kernel arguments are
        cached split by dependence — the chunk-shaped pair (this plan's
        segment array and call counts) per plan, the graph-sized contiguous
        copies once per run in the chunk-shared scratch — and the kernel's
        own scratch is sized to the plan's largest segment, not its term
        total.
        """
        # Runtime imports keep the module dependency pointing core -> backend;
        # _MIN_DISTANCE is threaded into the kernel so the coincident-point
        # threshold has a single source of truth with the reference path.
        from ..core.fused import FusedIterationStats
        from ..core.updates import _MIN_DISTANCE

        static = plan.scratch.get("numba/static")
        if static is None:
            arrays = plan.sampler.arrays
            params = plan.params
            static = (
                np.int64(plan.n_streams),
                np.ascontiguousarray(arrays.cum_steps.astype(np.int64)),
                np.ascontiguousarray(arrays.path_offsets.astype(np.int64)),
                np.ascontiguousarray(arrays.path_counts.astype(np.int64)),
                np.ascontiguousarray(arrays.step_nodes.astype(np.int64)),
                np.ascontiguousarray(arrays.step_positions.astype(np.int64)),
                np.float64(params.zipf_theta),
                np.int64(params.zipf_space_max),
            )
            plan.scratch["numba/static"] = static
        args = plan.cache.get("numba/args")
        if args is None:
            args = (
                np.ascontiguousarray(np.asarray(plan.plan, dtype=np.int64)),
                np.ascontiguousarray(plan.need_calls.astype(np.int64)),
            )
            plan.cache["numba/args"] = args
        plan_arr, need_calls = args
        (n_streams, cum_steps, path_offsets, path_counts, step_nodes,
         step_positions, zipf_theta, zipf_space_max) = static
        always = iteration >= plan.params.first_cooling_iteration()
        n_terms, n_collisions = _fused_iteration_kernel(
            coords, uniforms, plan_arr, need_calls, n_streams, cum_steps,
            path_offsets, path_counts, step_nodes, step_positions,
            zipf_theta, zipf_space_max, always, np.float64(eta),
            np.int64(_MODES[plan.merge]), np.float64(_MIN_DISTANCE),
        )
        return FusedIterationStats(n_terms=int(n_terms),
                                   n_point_collisions=int(n_collisions))
