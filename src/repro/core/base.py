"""Shared machinery for the layout engines.

All three engines (CPU baseline, batched "PyTorch-style", optimized GPU
kernel) run the same outer loop: for each iteration take the scheduled
learning rate, draw update terms in batches, and apply them. They differ in
batch granularity, in how randomness is organised (per thread / per warp),
and in which hardware counters they expose. The common loop lives here so
the engines stay focused on what the paper varies.
"""
from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional


from ..backend import ArrayBackend, get_backend
from ..graph.lean import LeanGraph
from ..graph.path_index import PathIndex
from ..memtrack import PeakTracker
from ..obs import clock as obs_clock
from ..obs.metrics import MetricsRegistry, MetricsSnapshot
from ..obs.trace_file import write_trace
from ..obs.tracer import NULL_TRACER, Tracer
from ..prng.xoshiro import Xoshiro256Plus
from .fused import FusedIterationPlan, build_iteration_plans
from .layout import Layout, NodeDataLayout, initialize_layout
from .params import LayoutParams
from .schedule import make_schedule
from .selection import PairSampler, StepBatch
from .updates import UpdateWorkspace, apply_batch, batch_stress

__all__ = ["IterationRecord", "LayoutResult", "LayoutEngine",
           "ProgressCallback", "split_into_batches"]

#: Signature of the live-progress hook (``LayoutEngine.on_progress``,
#: threaded through :func:`repro.core.api.layout_graph`): called after each
#: completed iteration with ``(completed, total, phase_stats)`` where
#: ``completed`` counts from 1 to ``total`` and ``phase_stats`` is a small
#: flat dict (engine, eta, terms, collisions). The CLI renders it as a live
#: line; a job server would stream it — this is the hook ROADMAP open
#: item 1's progress streaming builds on.
ProgressCallback = Callable[[int, int, Dict[str, Any]], None]


def split_into_batches(total: int, chunk: int) -> List[int]:
    """Split ``total`` update terms into ``chunk``-sized batches plus remainder.

    The shared building block of every engine's :meth:`LayoutEngine.batch_plan`:
    ``chunk`` is clamped to ``[1, total]`` and the final batch carries the
    remainder, so the plan always sums to ``total``.
    """
    total = int(total)
    if total <= 0:
        return []
    chunk = max(1, min(int(chunk), total))
    full, rem = divmod(total, chunk)
    plan = [chunk] * full
    if rem:
        plan.append(rem)
    return plan


@dataclass
class IterationRecord:
    """Per-iteration diagnostics recorded when ``params.record_history``."""

    iteration: int
    eta: float
    sampled_stress: float
    n_terms: int
    n_collisions: int


@dataclass
class LayoutResult:
    """Outcome of one layout run."""

    layout: Layout
    params: LayoutParams
    engine: str
    iterations: int
    total_terms: int
    history: List[IterationRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0
    metrics: Optional[MetricsSnapshot] = None
    """Typed metrics snapshot (:mod:`repro.obs.metrics`) behind the flat
    ``counters`` view; ``None`` for results built outside an engine run."""

    def final_stress(self) -> Optional[float]:
        """Last recorded sampled stress (None when history is disabled)."""
        if not self.history:
            return None
        return self.history[-1].sampled_stress

    def summary(self) -> Dict[str, Any]:
        """Stable flat summary of the run — the external reporting contract.

        Bench cases, the CLI, and any future serving layer read *this*
        instead of reaching into engine internals: engine name, a params
        echo, iteration/term totals, wall time, the dispatch counters, and
        the collision statistics the hogwild analysis consumes. Keys only
        ever get added, never renamed.
        """
        return {
            "engine": self.engine,
            "n_points": int(self.layout.coords.shape[0]),
            "iterations": int(self.iterations),
            "total_terms": int(self.total_terms),
            "wall_time_s": float(self.wall_time_s),
            "point_collisions": int(self.counters.get("point_collisions", 0)),
            "collision_fraction": (
                float(self.counters.get("point_collisions", 0))
                / max(int(self.total_terms), 1)
            ),
            "update_dispatches": int(self.counters.get("update_dispatches", 0)),
            "fused_iterations": int(self.counters.get("fused_iterations", 0)),
            "fused_chunks": int(self.counters.get("fused_chunks", 0)),
            "workers": int(self.params.workers),
            # Supervised-runtime health (repro.parallel.supervise): flat
            # engines report the trivially healthy figures — effective
            # workers equal to the configured count, nothing failed.
            "effective_workers": int(
                self.counters.get("effective_workers", self.params.workers)),
            "degraded": bool(self.counters.get("degraded", 0.0)),
            "worker_failures": int(self.counters.get("worker_failures", 0)),
            "worker_restarts": int(self.counters.get("worker_restarts", 0)),
            "workers_killed": int(self.counters.get("workers_killed", 0)),
            # Peak-memory accounting (repro.memtrack): max RSS is sampled on
            # every run; the traced peak only exists when the caller had
            # tracemalloc active around the run (e.g. the scale bench suite).
            "peak_rss_bytes": (
                int(self.counters["peak_rss_bytes"])
                if "peak_rss_bytes" in self.counters else None
            ),
            "traced_peak_bytes": (
                int(self.counters["traced_peak_bytes"])
                if "traced_peak_bytes" in self.counters else None
            ),
            "final_stress": self.final_stress(),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict: :meth:`summary` plus the full params echo and the
        raw counter map (layout coordinates are deliberately excluded)."""
        return {
            **self.summary(),
            "params": asdict(self.params),
            "counters": dict(self.counters),
            "metrics": (self.metrics.to_dicts()
                        if self.metrics is not None else None),
        }


class LayoutEngine:
    """Base class implementing the iteration structure of Alg. 1."""

    name = "base"

    def __init__(self, graph: LeanGraph, params: Optional[LayoutParams] = None):
        self.graph = graph
        self.params = params if params is not None else LayoutParams()
        # Resolved once per engine: params.backend -> REPRO_BACKEND -> numpy.
        # An unavailable backend fails here, before any work is done.
        self.backend: ArrayBackend = get_backend(self.params.backend)
        self.index = PathIndex(graph)
        self.sampler = PairSampler(graph, self.params, self.index,
                                   backend=self.backend)
        self.schedule = make_schedule(graph, self.params)
        # Observability (repro.obs): the typed metrics registry replaces the
        # old flat counter dict (add_counter/max_counter delegate into it);
        # the tracer is live only when the params request a trace file, and
        # callers (multilevel driver, bench cases, tests) may swap in their
        # own bound tracer before run(). on_progress is the live-progress
        # hook — assigned, not constructor-passed, because callables do not
        # belong in the frozen/serialisable LayoutParams.
        self.metrics = MetricsRegistry(labels={"engine": self.name,
                                               "backend": self.backend.name})
        self.tracer: Tracer = (Tracer(labels={"engine": self.name})
                               if self.params.trace else NULL_TRACER)
        self.on_progress: Optional[ProgressCallback] = None

    # ------------------------------------------------------------ interface
    def batch_plan(self, steps_per_iteration: int) -> List[int]:
        """Split one iteration's step budget into engine-specific batch sizes."""
        raise NotImplementedError

    def make_rng(self) -> Xoshiro256Plus:
        """PRNG used to drive the sampler (engines may override stream count)."""
        return Xoshiro256Plus(self.params.seed, n_streams=256)

    def on_batch(self, batch: StepBatch, iteration: int, batch_index: int) -> StepBatch:
        """Hook for engines to transform or account a batch before applying it."""
        return batch

    def draw_batch(
        self, rng: Xoshiro256Plus, batch_size: int, iteration: int, batch_index: int
    ) -> StepBatch:
        """Draw one batch of update terms (engines may override the policy)."""
        return self.sampler.sample(rng, batch_size, iteration)

    def make_workspace(self, plan: List[int]) -> UpdateWorkspace:
        """Per-run scratch buffers sized to the largest batch of ``plan``.

        Engines whose :meth:`on_batch` expands batches beyond the planned
        size (e.g. warp-shuffle data reuse) override this to pre-size the
        buffers; the workspace also grows on demand, so an override is an
        optimisation, not a correctness requirement. The workspace carries
        the engine's backend, which fixes where its buffers are allocated
        and which kernels every ``apply_batch`` of the run dispatches to.
        """
        return UpdateWorkspace(max(plan) if plan else 1, backend=self.backend)

    def fused_active(self) -> bool:
        """Whether this run takes the fused per-iteration execution path.

        ``params.fused`` resolves as: ``False`` — never; ``True``/``None``
        (auto) — fused when every precondition holds:

        * the backend advertises a fused kernel
          (``backend.supports_fused_iteration``);
        * the engine uses the stock batch hooks — any override of
          :meth:`draw_batch` or :meth:`on_batch` (kernel-launch accounting,
          warp merging, data reuse) forces the unfused path, because the
          fused kernel never materialises per-batch hook calls;
        * history recording is off (the per-iteration stress probe samples
          the first *batch*, which only exists unfused).

        An explicit ``fused=True`` that cannot be honoured falls back to the
        unfused path rather than erroring — the fused path is an execution
        strategy, not a semantic switch (layouts agree either way).
        """
        if self.params.fused is False:
            return False
        hooks_are_default = (
            type(self).draw_batch is LayoutEngine.draw_batch
            and type(self).on_batch is LayoutEngine.on_batch
        )
        return (
            hooks_are_default
            and not self.params.record_history
            and getattr(self.backend, "supports_fused_iteration", False)
        )

    # ------------------------------------------------------------------ run
    def run(self, initial: Optional[Layout] = None) -> LayoutResult:
        """Execute the full layout optimisation and return the result."""
        # Wall-clock reads route through the obs.clock seam (OBS001): the
        # trace stays stub-able and the contract linter can prove no raw
        # time.* read feeds layout math.
        t_start = obs_clock.perf_counter()
        tracer = self.tracer
        trace = tracer.enabled
        params = self.params
        layout = (
            initial.copy()
            if initial is not None
            else initialize_layout(self.graph, seed=params.seed, data_layout=self.data_layout())
        )
        # Coordinate state lives in the backend's memory space for the whole
        # run: one upload here, one download at the end (both identities on
        # host backends, where ``coords`` *is* ``layout.coords``).
        t_up = tracer.now() if trace else 0.0
        coords = self.backend.from_host(layout.coords)
        if trace:
            tracer.emit("transfer", t_up, tracer.now() - t_up)
        t_sched = tracer.now() if trace else 0.0
        rng = self.make_rng()
        steps_per_iter = params.steps_per_iteration(self.graph.total_steps)
        # The plan depends only on the per-iteration step budget, so it is
        # computed once; its largest batch sizes the per-run scratch buffers
        # every apply_batch call of the run reuses (no graph-sized scratch
        # and no re-allocation of the staging arrays in the memory-bound hot
        # path, paper Sec. V-B).
        plan = self.batch_plan(steps_per_iter)
        workspace = self.make_workspace(plan)
        # Fused path: the whole iteration — selection, displacement, merge —
        # runs below the backend seam over pre-drawn uniform megablocks
        # (repro.core.fused) instead of a sample/apply_batch round trip per
        # batch. Without a memory budget that is one plan covering the whole
        # batch plan (one dispatch per iteration, PR 5 economics); with
        # params.memory_budget the plan is split into contiguous segment
        # chunks dispatched in order, bounding the per-dispatch transient
        # footprint while staying byte-identical on the NumPy backend.
        fused = bool(plan) and self.fused_active()
        fused_plans: List[FusedIterationPlan] = []
        if fused:
            fused_plans = build_iteration_plans(
                sampler=self.sampler,
                workspace=workspace,
                merge=self.merge_policy(),
                plan=plan,
                n_streams=rng.n_streams,
                memory_budget=params.memory_budget,
                tracer=tracer,
            )
            self.max_counter("fused_chunks", float(len(fused_plans)))
        self.add_counter("fused_iterations",
                         float(params.iter_max if fused else 0))
        if trace:
            tracer.emit("schedule", t_sched, tracer.now() - t_sched)
        # Peak-memory accounting: max RSS always (cheap getrusage read);
        # the tracemalloc delta only when a caller already pays for tracing.
        mem = PeakTracker(trace=None).start()
        history: List[IterationRecord] = []
        total_terms = 0
        for iteration in range(params.iter_max):
            eta = float(self.schedule[iteration])
            n_collisions = 0
            n_terms_iter = 0
            stress_probe = 0.0
            probe_count = 0
            # Per-iteration span aggregates: O(iterations) events regardless
            # of batch/chunk count — "draw" is sampling (uniform megablocks
            # fused, draw_batch/on_batch unfused), "dispatch" is the kernel
            # or apply_batch work. One guarded clock read pair per unit keeps
            # the disabled path at a single bool test.
            t_iter = tracer.now() if trace else 0.0
            draw_s = 0.0
            disp_s = 0.0
            if fused:
                for chunk in fused_plans:
                    # Sequential per-chunk draws consume exactly the stream
                    # state one whole-iteration draw would (the bulk draw is
                    # interchangeable mid-stream), so chunking never moves a
                    # sampled term.
                    c0 = tracer.now() if trace else 0.0
                    block = rng.next_double_block(chunk.calls_per_iteration)  # mem-ok: chunk plans are budget-bounded; the unbudgeted single chunk is the documented opt-in default
                    c1 = tracer.now() if trace else 0.0
                    stats = self.backend.run_iteration(chunk, coords, block,
                                                       eta, iteration)
                    if trace:
                        draw_s += c1 - c0
                        disp_s += tracer.now() - c1
                    n_collisions += stats.n_point_collisions
                    n_terms_iter += stats.n_terms
                self.add_counter("update_dispatches", float(len(fused_plans)))
                n_units = len(fused_plans)
            else:
                for batch_index, batch_size in enumerate(plan):
                    c0 = tracer.now() if trace else 0.0
                    batch = self.draw_batch(rng, batch_size, iteration, batch_index)
                    batch = self.on_batch(batch, iteration, batch_index)
                    c1 = tracer.now() if trace else 0.0
                    stats = apply_batch(coords, batch, eta,
                                        merge=self.merge_policy(),
                                        workspace=workspace)
                    if trace:
                        draw_s += c1 - c0
                        disp_s += tracer.now() - c1
                    n_collisions += stats.n_point_collisions
                    n_terms_iter += stats.n_terms
                    if params.record_history and batch_index == 0:
                        stress_probe += batch_stress(coords, batch,
                                                     backend=self.backend)
                        probe_count += 1
                self.add_counter("update_dispatches", float(len(plan)))
                n_units = len(plan)
            total_terms += n_terms_iter
            self.add_counter("point_collisions", float(n_collisions))
            if trace:
                tracer.emit("draw", t_iter, draw_s, iteration, count=n_units)
                tracer.emit("dispatch", t_iter, disp_s, iteration,
                            count=n_units)
                tracer.emit("iteration", t_iter, tracer.now() - t_iter,
                            iteration)
            if self.on_progress is not None:
                self.on_progress(iteration + 1, params.iter_max, {
                    "engine": self.name,
                    "eta": eta,
                    "terms": n_terms_iter,
                    "collisions": n_collisions,
                })
            if params.record_history:
                history.append(
                    IterationRecord(
                        iteration=iteration,
                        eta=eta,
                        sampled_stress=stress_probe / max(probe_count, 1),
                        n_terms=n_terms_iter,
                        n_collisions=n_collisions,
                    )
                )
        self.backend.synchronize()
        mem.stop()
        for key, value in mem.as_counters().items():
            self.max_counter(key, value)
        t_down = tracer.now() if trace else 0.0
        result_layout = Layout(self.backend.to_host(coords), self.data_layout())
        if trace:
            tracer.emit("transfer", t_down, tracer.now() - t_down)
        if params.trace:
            # Flat single-process run: this engine owns the trace file. The
            # shm/multilevel drivers keep ``trace`` out of their inner
            # engines' params and write one merged file themselves.
            write_trace(params.trace, tracer.events, meta={
                "engine": self.name,
                "backend": self.backend.name,
                "iterations": params.iter_max,
                "workers": params.workers,
            })
        return LayoutResult(
            layout=result_layout,
            params=params,
            engine=self.name,
            iterations=params.iter_max,
            total_terms=total_terms,
            history=history,
            counters=self.metrics.counter_values(),
            wall_time_s=obs_clock.perf_counter() - t_start,
            metrics=self.metrics.snapshot(),
        )

    # -------------------------------------------------------------- helpers
    def merge_policy(self) -> str:
        """Write-merge policy used for colliding in-batch updates."""
        return self.params.merge_policy

    def data_layout(self) -> NodeDataLayout:
        """Memory organisation this engine declares for node data."""
        return NodeDataLayout.SOA

    def add_counter(self, key: str, value: float) -> None:
        """Accumulate a named counter exposed in the result."""
        self.metrics.counter(key).add(float(value))

    def max_counter(self, key: str, value: float) -> None:
        """Record a high-water counter (max semantics, not accumulation).

        Used for quantities where re-running or nesting must not inflate the
        figure — peak memory, chunk counts — in contrast to the event
        counters :meth:`add_counter` accumulates.
        """
        self.metrics.gauge(key).record_max(float(value))

    @property
    def _counters(self) -> Dict[str, float]:
        """Legacy flat counter view over the metrics registry (read-only)."""
        return self.metrics.counter_values()
