"""Benchmark-harness support: table formatting and the end-to-end performance model."""
from .tables import (
    format_table,
    format_markdown_table,
    format_hms,
    format_sci,
    geometric_mean,
)
from .perfmodel import (
    GraphPerformanceReport,
    evaluate_graph_performance,
    ablation_ladder,
)

__all__ = [
    "format_table",
    "format_markdown_table",
    "format_hms",
    "format_sci",
    "geometric_mean",
    "GraphPerformanceReport",
    "evaluate_graph_performance",
    "ablation_ladder",
]
