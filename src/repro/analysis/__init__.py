"""AST-based contract linter for the repo's determinism/perf invariants.

The codebase runs on a stack of invariants that used to live only in
ROADMAP prose and after-the-fact tests; this package enforces them
statically, in the diff itself:

========  ==========  ====================================================
rule      pragma      invariant
========  ==========  ====================================================
DET001    det-ok      every entropy source derives from the master seed
                      via ``derive_seed``; no wall-clock reads feeding
                      hot-path computation
DET002    det-ok      ``derive_seed`` labels are unique codebase-wide
                      (duplicates alias PRNG streams)
ALLOC001  alloc-ok    hot-loop bodies stay allocation-free (PR 2)
XP001     xp-ok       xp/backend-parameterised functions dispatch array
                      math through the backend, never raw ``np.`` (PR 3)
SHM001    shm-ok      ``SharedArrayBlock`` create/attach/close/unlink
                      ownership discipline (PR 6)
MEM001    mem-ok      per-iteration transient footprint stays bounded by
                      ``memory_budget``, never scaling with iteration
                      size (PR 8)
OBS001    obs-ok      hot-path clock reads route through the
                      ``repro.obs.clock`` seam, never raw ``time.*``
                      (PR 9)
PRAGMA001 —           every pragma carries a mandatory reason
========  ==========  ====================================================

Run it as ``repro analyze [paths] [--strict] [--format text|json]``; CI
gates ``repro analyze src --strict``. New invariants land with a checker:
register one via the :func:`checker` decorator (the same registry pattern
as :mod:`repro.bench`).
"""
from .baseline import DEFAULT_BASELINE_PATH, Baseline, BaselineEntry
from .engine import AnalysisReport, run_analysis
from .pragmas import Pragma, scan_pragmas
from .registry import (REGISTRY, AnalysisError, Checker, CheckerRegistry,
                       Finding, checker, load_builtin_checkers)
from .source import SourceFile, collect_python_files, load_source_file

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Checker",
    "CheckerRegistry",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "Pragma",
    "REGISTRY",
    "SourceFile",
    "checker",
    "collect_python_files",
    "load_builtin_checkers",
    "load_source_file",
    "run_analysis",
    "scan_pragmas",
]
