"""Structural validation of variation graphs and lean graphs.

Layout quality depends on the structural sanity of the input graph: paths
must reference existing nodes, step positions must be consistent with node
lengths, and for a pangenome the graph should be connected along each path.
These checks are cheap relative to layout and catch generator / parser bugs
early; the CLI runs them before launching a layout unless asked not to.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

import numpy as np

from .lean import LeanGraph
from .variation_graph import VariationGraph

__all__ = ["ValidationReport", "validate_graph", "validate_lean"]


@dataclass
class ValidationReport:
    """Outcome of a validation pass: errors are fatal, warnings are not."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` summarising all errors, if any."""
        if self.errors:
            raise ValueError("graph validation failed:\n  " + "\n  ".join(self.errors))


def validate_lean(graph: LeanGraph) -> ValidationReport:
    """Validate a lean graph's internal consistency."""
    report = ValidationReport()
    if graph.n_nodes == 0:
        report.errors.append("graph has no nodes")
        return report
    if np.any(graph.node_lengths < 0):
        report.errors.append("negative node length")
    if graph.n_paths == 0:
        report.warnings.append("graph has no paths; layout is undefined without paths")
    # Step positions must equal the running sum of node lengths along the path.
    for p in range(graph.n_paths):
        sl = graph.path_steps(p)
        nodes = graph.step_nodes[sl]
        if nodes.size == 0:
            report.warnings.append(f"path {graph.path_names[p]!r} is empty")
            continue
        lengths = graph.node_lengths[nodes]
        expected = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        if not np.array_equal(expected, graph.step_positions[sl]):
            report.errors.append(
                f"path {graph.path_names[p]!r}: step positions inconsistent with node lengths"
            )
        if graph.step_positions[sl][0] != 0:
            report.errors.append(f"path {graph.path_names[p]!r}: first step position is not 0")
    # Orphan nodes are legal but worth flagging: they get no layout forces.
    visited = np.zeros(graph.n_nodes, dtype=bool)
    if graph.total_steps:
        visited[np.unique(graph.step_nodes)] = True
    orphans = int((~visited).sum())
    if orphans:
        report.warnings.append(f"{orphans} node(s) are not visited by any path")
    if len(set(graph.path_names)) != len(graph.path_names):
        report.errors.append("duplicate path names")
    return report


def validate_graph(graph: Union[VariationGraph, LeanGraph]) -> ValidationReport:
    """Validate either representation (full graphs get extra edge checks)."""
    if isinstance(graph, LeanGraph):
        return validate_lean(graph)
    report = ValidationReport()
    if graph.node_count == 0:
        report.errors.append("graph has no nodes")
        return report
    # Edges referencing missing nodes cannot be constructed through the API,
    # but path-adjacent node pairs lacking an edge indicate a malformed GFA.
    missing_edges = 0
    for path in graph.paths():
        steps = path.steps
        for a, b in zip(steps[:-1], steps[1:]):
            if not (
                graph.has_edge(a.node_id, b.node_id, a.is_reverse, b.is_reverse)
                or graph.has_edge(b.node_id, a.node_id, not b.is_reverse, not a.is_reverse)
            ):
                missing_edges += 1
    if missing_edges:
        report.warnings.append(
            f"{missing_edges} path adjacencies have no corresponding edge record"
        )
    lean = LeanGraph.from_variation_graph(graph)
    sub = validate_lean(lean)
    report.errors.extend(sub.errors)
    report.warnings.extend(sub.warnings)
    return report
