"""Per-line suppression pragmas with mandatory reasons.

A pragma is a trailing (or immediately preceding, standalone) comment of the
form ``# <token>: <reason>`` — e.g. ``# det-ok: wall-clock timing is
reported, never fed back into the layout``. The reason is *mandatory*: a
bare ``# det-ok`` (or an empty reason) suppresses nothing and is itself
reported as a ``PRAGMA001`` error, so every grandfathered site documents
why it is exempt. Tokens are declared by the checkers
(:attr:`~repro.analysis.registry.Checker.pragma`); unknown comment text is
simply not a pragma.
"""
from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List

__all__ = ["Pragma", "scan_pragmas"]


@dataclass(frozen=True)
class Pragma:
    """One suppression pragma found in a source file."""

    token: str
    reason: str
    line: int
    standalone: bool  # whole line is the comment -> applies to the next line

    @property
    def valid(self) -> bool:
        """Pragmas only suppress when they carry a nonempty reason."""
        return bool(self.reason)

    def lines_covered(self) -> List[int]:
        """Source lines this pragma suppresses findings on."""
        if self.standalone:
            return [self.line, self.line + 1]
        return [self.line]


def _pragma_pattern(tokens: Iterable[str]) -> re.Pattern:
    alternatives = "|".join(re.escape(t) for t in sorted(tokens, key=len,
                                                         reverse=True))
    return re.compile(rf"#\s*({alternatives})\b\s*(?::\s*(.*?))?\s*$")


def scan_pragmas(lines: List[str], tokens: Iterable[str]) -> Dict[int, List[Pragma]]:
    """All pragmas in ``lines`` (1-indexed), keyed by the line they appear on.

    Only recognises the supplied ``tokens``; everything else in comments is
    ignored. A line holding nothing but the comment is *standalone* and also
    covers the following line, so long statements can carry their pragma on
    the line above.
    """
    tokens = list(tokens)
    if not tokens:
        return {}
    pattern = _pragma_pattern(tokens)
    found: Dict[int, List[Pragma]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = pattern.search(text)
        if match is None:
            continue
        stripped = text.strip()
        pragma = Pragma(
            token=match.group(1),
            reason=(match.group(2) or "").strip(),
            line=lineno,
            standalone=stripped.startswith("#"),
        )
        found.setdefault(lineno, []).append(pragma)
    return found
