"""Table III — batch-size sweep of the PyTorch-style implementation.

Sweeps the batched engine's batch size on the MHC-like graph, measuring
(1) the modelled GPU run time / speedup over the modelled 32-thread CPU
baseline and (2) the layout quality band derived from sampled path stress
relative to the CPU baseline layout. The paper's shape: run time falls as the
batch grows, speedup saturates around 1M, and very large batches degrade
quality from Good to Satisfying/Poor.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.bench import format_table
from repro.core import BatchedLayoutEngine, CpuBaselineEngine, LayoutParams
from repro.core.layout import Layout
from repro.gpusim import RTX_A6000, WorkloadCounters, gpu_runtime, cpu_runtime
from repro.metrics import classify_quality, sampled_path_stress
from repro.parallel import cpu_cache_profile

# Batch sizes scaled down with the dataset (paper: 10K .. 100M on 2.3e5 nodes).
BATCH_SIZES = [64, 512, 4096, 32768]


@pytest.mark.paper_table("Table III")
def test_table03_pytorch_batch_sweep(benchmark, mhc_graph, quality_bench_params):
    graph = mhc_graph
    params = quality_bench_params
    rng = np.random.default_rng(1)
    scrambled = Layout(rng.uniform(0, 1000.0, size=(2 * graph.n_nodes, 2)))

    # Reference: CPU baseline layout quality and modelled run time.
    cpu_result = CpuBaselineEngine(graph, params).run(initial=scrambled)
    cpu_sps = sampled_path_stress(cpu_result.layout, graph, samples_per_step=25, seed=0)
    traffic, traced = cpu_cache_profile(graph, params, n_trace_terms=1024)
    total_terms = float(params.iter_max * params.steps_per_iteration(graph.total_steps))
    cpu_time = cpu_runtime(
        __import__("repro.gpusim", fromlist=["XEON_6246R"]).XEON_6246R,
        total_terms, traffic.scaled(total_terms / traced), WorkloadCounters(), n_threads=32,
    )

    def sweep():
        out = {}
        for batch_size in BATCH_SIZES:
            engine = BatchedLayoutEngine(graph, params.with_(batch_size=batch_size))
            result = engine.run(initial=scrambled)
            sps = sampled_path_stress(result.layout, graph, samples_per_step=25, seed=0)
            modelled = gpu_runtime(
                RTX_A6000,
                n_terms=total_terms,
                traffic=traffic.scaled(total_terms / traced),
                kernel_launches=engine.kernel_launches_for(int(total_terms)),
                sectors_per_request=24.0,
            )
            out[batch_size] = (modelled.total_s, sps, engine.op_profile.total_launches)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    times = []
    for batch_size, (gpu_s, sps, launches) in results.items():
        quality = classify_quality(sps.value, max(cpu_sps.value, 1e-9))
        speedup = cpu_time.total_s / gpu_s
        times.append(gpu_s)
        rows.append([batch_size, f"{gpu_s:.3g}", f"{speedup:.1f}x",
                     f"{sps.value:.3g}", quality.value, launches])
    # Run time decreases (then flattens) as the batch size grows, because the
    # kernel-launch overhead amortises — the Table III / Table IV shape.
    assert times[0] > times[-1]
    assert times[1] >= times[2] * 0.9
    # Small/medium batches preserve quality relative to the CPU layout.
    small_quality = classify_quality(results[BATCH_SIZES[0]][1].value, max(cpu_sps.value, 1e-9))
    assert small_quality.value in ("Good", "Satisfying")
    # Larger batches never improve quality below the small-batch stress.
    assert results[BATCH_SIZES[-1]][1].value >= results[BATCH_SIZES[0]][1].value * 0.5

    print()
    print(format_table(
        ["Batch size", "Modelled GPU s", "Speedup vs CPU", "Sampled stress", "Quality", "Kernel launches"],
        rows,
        title=f"Table III: batch-size sweep on MHC-like graph (CPU stress {cpu_sps.value:.3g}, "
              f"modelled CPU {cpu_time.total_s:.3g}s)",
    ))
