"""Property-based tests (hypothesis) for the worker decomposition.

The multi-worker runs here go through ``run_workers_inline`` — the
deterministic in-process serialisation of the hogwild race — so the
properties quantify the *decomposition* (plan slicing, jumped streams,
per-worker fused plans) without inheriting OS scheduler noise.
"""
from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CpuBaselineEngine, LayoutParams
from repro.core.fused import slice_plan
from repro.graph import LeanGraph
from repro.metrics import sampled_path_stress
from repro.parallel.shm import run_workers_inline, worker_stream_states
from repro.prng import Xoshiro256Plus

settings.register_profile(
    "repro-shm", deadline=None, max_examples=15,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro-shm")


@st.composite
def batch_plans(draw):
    """Realistic plans: uniform chunks plus an optional remainder."""
    chunk = draw(st.integers(min_value=1, max_value=256))
    full = draw(st.integers(min_value=1, max_value=40))
    rem = draw(st.integers(min_value=0, max_value=chunk - 1))
    return [chunk] * full + ([rem] if rem else [])


@st.composite
def layout_graphs(draw):
    """Random small lean graphs with enough steps to drive a layout."""
    n_nodes = draw(st.integers(min_value=4, max_value=30))
    lengths = draw(st.lists(st.integers(min_value=1, max_value=20),
                            min_size=n_nodes, max_size=n_nodes))
    n_paths = draw(st.integers(min_value=1, max_value=4))
    paths = []
    for _ in range(n_paths):
        length = draw(st.integers(min_value=3, max_value=25))
        path = draw(st.lists(st.integers(min_value=0, max_value=n_nodes - 1),
                             min_size=length, max_size=length))
        paths.append(path)
    return LeanGraph.from_paths(lengths, paths)


class TestSlicePlanProperties:
    @given(batch_plans(), st.integers(min_value=1, max_value=12))
    def test_partition_exact(self, plan, workers):
        parts = slice_plan(plan, workers)
        assert sum(parts, []) == plan          # contiguous, order-preserving
        assert len(parts) == min(workers, len(plan))
        assert all(parts)                      # every worker gets work

    @given(batch_plans(), st.integers(min_value=1, max_value=12))
    def test_no_part_exceeds_fair_share_by_one_segment(self, plan, workers):
        parts = slice_plan(plan, workers)
        fair = sum(plan) / len(parts)
        assert max(sum(p) for p in parts) <= fair + max(plan)


class TestWorkerStreamProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=6))
    def test_streams_unique_and_worker0_invariant(self, seed, n_streams,
                                                  workers):
        base = Xoshiro256Plus(seed, n_streams=n_streams)
        states = worker_stream_states(
            Xoshiro256Plus(seed, n_streams=n_streams), workers, seed)
        assert len(states) == workers
        np.testing.assert_array_equal(states[0], base.state)
        stacked = np.vstack(states)
        assert len({tuple(r) for r in stacked.tolist()}) == stacked.shape[0]


class TestWorkerLayoutQuality:
    @given(layout_graphs(), st.integers(min_value=2, max_value=4))
    def test_n_worker_layout_within_tolerance_of_serial(self, graph, workers):
        params = LayoutParams(iter_max=5, steps_per_step_unit=1.5, seed=42)
        serial = CpuBaselineEngine(graph, params).run()
        parallel = run_workers_inline(graph, params.with_(workers=workers))
        assert parallel.total_terms == serial.total_terms
        assert np.all(np.isfinite(parallel.layout.coords))
        s_serial = sampled_path_stress(serial.layout, graph,
                                       samples_per_step=8, seed=1).value
        s_parallel = sampled_path_stress(parallel.layout, graph,
                                         samples_per_step=8, seed=1).value
        # Hogwild decomposition may not land on the identical layout, but it
        # must stay in the same quality regime as the serial optimisation
        # (paper Sec. III-A); the band is generous because tiny random
        # graphs are noisy at this iteration budget.
        assert s_parallel <= 5.0 * s_serial + 0.05
