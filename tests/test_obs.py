"""Tests for the run-telemetry layer (``repro.obs``, PR 9).

Covers the clock seam, the tracer/span primitives, the typed metrics
registry, the versioned JSONL trace file (round-trip + rejection paths),
the cross-worker merge ordering contract, the shared-memory ring buffers,
and the end-to-end integration: engines emit structurally deterministic
traces without moving a byte of the layout, ``layout_graph(trace=...)``
writes schema-valid files for flat / shm / multilevel runs, and the
``on_progress`` callback streams global iteration counts.
"""
from __future__ import annotations

import itertools
import json

import numpy as np
import pytest

from repro.core import CpuBaselineEngine, LayoutParams, layout_graph, make_engine
from repro.multilevel.driver import MultilevelDriver
from repro.obs import clock
from repro.obs.metrics import MetricsError, MetricsRegistry
from repro.obs.ring import (PHASE_NAMES, RING_FIELDS, RingTracer, TraceRing,
                            ring_capacity, ring_payload)
from repro.obs.summarize import render_compare, render_summary
from repro.obs.trace_file import (TRACE_SCHEMA_MAJOR, TRACE_SCHEMA_VERSION,
                                  TraceSchemaError, merge_events,
                                  parse_schema_version, read_trace,
                                  write_trace)
from repro.obs.tracer import NULL_TRACER, TraceEvent, Tracer, event_structure


def _ramp():
    """Deterministic clock stub: 0.0, 1.0, 2.0, ... per read."""
    counter = itertools.count()
    return lambda: float(next(counter))


class TestClockSeam:
    def test_live_reads_are_monotonic_floats(self):
        a, b = clock.perf_counter(), clock.perf_counter()
        assert isinstance(a, float) and b >= a
        assert clock.monotonic() >= 0.0

    def test_stub_clock_swaps_both_reads_and_restores(self):
        with clock.stub_clock(_ramp()):
            assert clock.perf_counter() == 0.0
            assert clock.monotonic() == 1.0
            assert clock.perf_counter() == 2.0
        # Restored: live reads are again real (large, strictly positive).
        assert clock.perf_counter() > 2.0

    def test_stub_clock_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with clock.stub_clock(lambda: 0.0):
                raise RuntimeError("boom")
        assert clock.perf_counter() > 0.0


class TestTracer:
    def test_emit_records_labelled_events(self):
        tracer = Tracer(labels={"engine": "t"})
        tracer.emit("draw", 1.0, 0.5, iteration=3, count=7)
        (event,) = tracer.events
        assert (event.name, event.t0, event.dur) == ("draw", 1.0, 0.5)
        assert (event.iteration, event.count) == (3, 7)
        assert event.labels == {"engine": "t"}

    def test_span_measures_through_the_clock_seam(self):
        tracer = Tracer()
        with clock.stub_clock(_ramp()):
            with tracer.span("schedule", count=2):
                pass
        (event,) = tracer.events
        assert event.name == "schedule"
        assert (event.t0, event.dur) == (0.0, 1.0)

    def test_bind_shares_the_event_list_and_merges_labels(self):
        root = Tracer(labels={"engine": "multi"})
        view = root.bind(level="2")
        view.emit("level", 0.0, 1.0)
        root.emit("prolong", 1.0, 0.5)
        assert [e.name for e in root.events] == ["level", "prolong"]
        assert root.events[0].labels == {"engine": "multi", "level": "2"}
        assert root.events[1].labels == {"engine": "multi"}

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.bind(worker="0") is NULL_TRACER
        with NULL_TRACER.span("iteration"):
            pass
        NULL_TRACER.emit("draw", 0.0, 0.0)
        assert NULL_TRACER.events == []

    def test_event_structure_is_timestamp_free(self):
        a = Tracer(labels={"w": "0"})
        b = Tracer(labels={"w": "0"})
        a.emit("draw", 10.0, 1.0, iteration=0, count=4)
        b.emit("draw", 99.0, 7.0, iteration=0, count=4)
        assert event_structure(a.events) == event_structure(b.events)
        b.emit("merge", 100.0, 0.1, iteration=0)
        assert event_structure(a.events) != event_structure(b.events)


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("terms").add(3.0)
        reg.counter("terms").add(2.0)
        assert reg.value("terms") == 5.0
        with pytest.raises(MetricsError):
            reg.counter("terms").add(-1.0)

    def test_gauge_record_max_is_high_water(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("peak")
        gauge.record_max(10.0)
        gauge.record_max(4.0)
        assert reg.value("peak") == 10.0
        gauge.set(1.0)
        assert reg.value("peak") == 1.0

    def test_timer_accumulates_with_count(self):
        reg = MetricsRegistry()
        reg.timer("merge_s").observe(0.25)
        reg.timer("merge_s").observe(0.75)
        snap = reg.snapshot()
        (entry,) = snap.entries
        assert (entry.kind, entry.value, entry.count) == ("timer", 1.0, 2)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError, match="already registered"):
            reg.gauge("x")

    def test_counter_values_elides_base_labels_renders_extras(self):
        reg = MetricsRegistry(labels={"engine": "shm", "backend": "numpy"})
        reg.counter("update_dispatches").add(4.0)
        reg.counter("worker_terms", worker="0").add(10.0)
        reg.counter("worker_terms", worker="1").add(12.0)
        assert reg.counter_values() == {
            "update_dispatches": 4.0,
            "worker_terms{worker=0}": 10.0,
            "worker_terms{worker=1}": 12.0,
        }

    def test_snapshot_value_requires_full_label_match(self):
        reg = MetricsRegistry(labels={"engine": "cpu"})
        reg.gauge("depth").set(3.0)
        snap = reg.snapshot()
        assert snap.value("depth", engine="cpu") == 3.0
        with pytest.raises(KeyError):
            snap.value("depth")


class TestTraceFile:
    def _events(self, n=3):
        return [TraceEvent(name="iteration", t0=float(i), dur=0.5,
                           iteration=i, count=1, labels={"engine": "t"})
                for i in range(n)]

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_trace(path, self._events(), meta={"engine": "t", "iterations": 3},
                    dropped=2)
        doc = read_trace(path)
        assert doc.schema_version == TRACE_SCHEMA_VERSION
        assert doc.meta == {"engine": "t", "iterations": 3}
        assert doc.dropped == 2
        assert event_structure(doc.events) == event_structure(self._events())
        assert [e.t0 for e in doc.events] == [0.0, 1.0, 2.0]

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_trace(str(path), self._events())
        assert not path.with_suffix(".jsonl.tmp").exists()

    def test_unknown_major_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        header = {"record": "header",
                  "schema_version": f"{TRACE_SCHEMA_MAJOR + 1}.0", "meta": {}}
        path.write_text(json.dumps(header) + "\n"
                        + json.dumps({"record": "end", "events": 0,
                                      "dropped": 0}) + "\n")
        with pytest.raises(TraceSchemaError, match="major"):
            read_trace(str(path))

    def test_same_major_future_minor_accepted_unknown_kinds_skipped(
            self, tmp_path):
        path = tmp_path / "minor.jsonl"
        lines = [
            {"record": "header",
             "schema_version": f"{TRACE_SCHEMA_MAJOR}.9", "meta": {}},
            {"record": "annotation", "text": "added by a later minor"},
            {"record": "event", "name": "draw", "t0": 0.0, "dur": 1.0},
            {"record": "end", "events": 1, "dropped": 0},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        doc = read_trace(str(path))
        assert doc.schema_version == f"{TRACE_SCHEMA_MAJOR}.9"
        assert [e.name for e in doc.events] == ["draw"]

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "trunc.jsonl")
        write_trace(path, self._events())
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])  # drop the end record
        with pytest.raises(TraceSchemaError, match="truncated"):
            read_trace(path)

    def test_end_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "short.jsonl"
        lines = [
            {"record": "header", "schema_version": TRACE_SCHEMA_VERSION,
             "meta": {}},
            {"record": "event", "name": "draw", "t0": 0.0, "dur": 1.0},
            {"record": "end", "events": 5, "dropped": 0},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        with pytest.raises(TraceSchemaError, match="declares 5"):
            read_trace(str(path))

    def test_malformed_inputs_rejected(self, tmp_path):
        cases = {
            "empty.jsonl": "",
            "notjson.jsonl": "not json\n",
            "noheader.jsonl": json.dumps({"record": "end", "events": 0}) + "\n",
            "badversion.jsonl": json.dumps(
                {"record": "header", "schema_version": "one.zero"}) + "\n",
        }
        for name, text in cases.items():
            path = tmp_path / name
            path.write_text(text)
            with pytest.raises(TraceSchemaError):
                read_trace(str(path))

    def test_parse_schema_version(self):
        assert parse_schema_version("1.0") == (1, 0)
        assert parse_schema_version("12.34") == (12, 34)
        for bad in (None, 1.0, "1", "1.0.0", "a.b", "-1.0"):
            with pytest.raises(TraceSchemaError):
                parse_schema_version(bad)


class TestMergeEvents:
    def test_merge_orders_by_start_time(self):
        parent = [TraceEvent("schedule", 0.0, 1.0),
                  TraceEvent("iteration", 4.0, 2.0)]
        worker = [TraceEvent("draw", 1.0, 0.5), TraceEvent("dispatch", 2.0, 0.5)]
        merged = merge_events([parent, worker])
        assert [e.name for e in merged] == ["schedule", "draw", "dispatch",
                                            "iteration"]

    def test_merge_preserves_per_stream_order(self):
        streams = [
            [TraceEvent("draw", float(i), 0.1, iteration=i) for i in range(4)],
            [TraceEvent("merge", float(i) + 0.5, 0.1, iteration=i)
             for i in range(4)],
        ]
        merged = merge_events(streams)
        for name in ("draw", "merge"):
            iters = [e.iteration for e in merged if e.name == name]
            assert iters == sorted(iters)

    def test_equal_t0_interleaves_stably_by_stream_index(self):
        a = [TraceEvent("draw", 1.0, 0.1, labels={"worker": "0"})]
        b = [TraceEvent("draw", 1.0, 0.1, labels={"worker": "1"})]
        merged_ab = merge_events([a, b])
        assert [e.labels["worker"] for e in merged_ab] == ["0", "1"]
        merged_ba = merge_events([b, a])
        assert [e.labels["worker"] for e in merged_ba] == ["1", "0"]


class TestTraceRing:
    def test_push_then_decode_round_trips(self):
        payload = ring_payload(0, capacity=8)
        buf, ctl = payload["trace/0/buf"], payload["trace/0/ctl"]
        assert buf.shape == (8, RING_FIELDS)
        ring = TraceRing(buf, ctl)
        ring.push("draw", 1.0, 0.25, iteration=2, count=5)
        ring.push("merge", 2.0, 0.5, iteration=2, count=3)
        assert ring.written == 2 and ring.dropped == 0
        events = ring.events(labels={"worker": "0"})
        assert [(e.name, e.t0, e.dur, e.iteration, e.count) for e in events] \
            == [("draw", 1.0, 0.25, 2, 5), ("merge", 2.0, 0.5, 2, 3)]
        assert all(e.labels == {"worker": "0"} for e in events)

    def test_overflow_overwrites_oldest_and_counts(self):
        payload = ring_payload(1, capacity=4)
        ring = TraceRing(payload["trace/1/buf"], payload["trace/1/ctl"])
        for i in range(6):
            ring.push("iteration", float(i), 0.1, iteration=i)
        assert ring.written == 6 and ring.dropped == 2
        # Survivors are the newest four, decoded oldest-first.
        assert [e.iteration for e in ring.events()] == [2, 3, 4, 5]

    def test_unknown_phase_interns_as_other(self):
        payload = ring_payload(0, capacity=2)
        ring = TraceRing(payload["trace/0/buf"], payload["trace/0/ctl"])
        ring.push("brand-new-phase", 0.0, 0.1)
        assert ring.events()[0].name == "other"

    def test_ring_capacity_covers_full_emission(self):
        # 2 chunks: selection+merge per chunk + draw/dispatch/iteration trio.
        capacity = ring_capacity(iter_max=10, n_chunks=2)
        assert capacity == 10 * (2 * 2 + 3) + 8
        with pytest.raises(ValueError):
            ring_capacity(0, 1)

    def test_ring_tracer_emits_into_the_ring_and_bind_is_identity(self):
        payload = ring_payload(0, capacity=4)
        ring = TraceRing(payload["trace/0/buf"], payload["trace/0/ctl"])
        tracer = RingTracer(ring)
        assert tracer.enabled and tracer.bind(worker="3") is tracer
        tracer.emit("dispatch", 1.0, 0.5, iteration=0, count=2)
        assert ring.events()[0].name == "dispatch"

    def test_phase_names_table_is_append_only_prefix(self):
        # Ids are positional; the engine span taxonomy must keep its slots.
        assert PHASE_NAMES[:5] == ("iteration", "draw", "dispatch",
                                   "selection", "merge")
        assert PHASE_NAMES[-1] == "other"


class TestEngineTracing:
    def test_traced_run_is_byte_identical_to_untraced(self, small_synthetic,
                                                      fast_params):
        plain = CpuBaselineEngine(small_synthetic, fast_params).run()
        traced_engine = CpuBaselineEngine(small_synthetic, fast_params)
        traced_engine.tracer = Tracer(labels={"engine": traced_engine.name})
        traced = traced_engine.run()
        assert np.array_equal(plain.layout.coords, traced.layout.coords)
        assert plain.total_terms == traced.total_terms

    def test_engine_emits_one_phase_trio_per_iteration(self, small_synthetic,
                                                       fast_params):
        engine = CpuBaselineEngine(small_synthetic, fast_params)
        engine.tracer = Tracer(labels={"engine": engine.name})
        result = engine.run()
        events = engine.tracer.events
        for name in ("draw", "dispatch", "iteration"):
            per_iter = [e for e in events
                        if e.name == name and e.iteration >= 0]
            assert len(per_iter) == result.iterations
        assert [e.name for e in events if e.iteration < 0].count("transfer") == 2
        assert sum(1 for e in events if e.name == "schedule") == 1

    def test_trace_structure_is_deterministic_across_runs(self, small_synthetic,
                                                          fast_params):
        structures = []
        for _ in range(2):
            engine = CpuBaselineEngine(small_synthetic, fast_params)
            engine.tracer = Tracer()
            engine.run()
            structures.append(tuple(event_structure(engine.tracer.events)))
        assert structures[0] == structures[1]

    def test_stubbed_clock_gives_fully_deterministic_traces(self,
                                                            small_synthetic,
                                                            fast_params):
        """With the clock stubbed, even timestamps are byte-stable."""
        def traced_run():
            engine = CpuBaselineEngine(small_synthetic, fast_params)
            engine.tracer = Tracer()
            with clock.stub_clock(_ramp()):
                engine.run()
            return [(e.name, e.t0, e.dur, e.iteration, e.count)
                    for e in engine.tracer.events]

        assert traced_run() == traced_run()

    def test_result_metrics_snapshot_matches_counters(self, small_synthetic,
                                                      fast_params):
        engine = CpuBaselineEngine(small_synthetic, fast_params)
        result = engine.run()
        assert result.metrics is not None
        assert result.metrics.value(
            "update_dispatches", engine=engine.name,
            backend=engine.backend.name) \
            == result.counters["update_dispatches"]
        rows = result.to_dict()["metrics"]
        assert any(row["name"] == "update_dispatches" for row in rows)


class TestLayoutTraceFiles:
    def test_layout_graph_writes_schema_valid_trace(self, small_synthetic,
                                                    fast_params, tmp_path):
        path = str(tmp_path / "flat.jsonl")
        result = layout_graph(small_synthetic, params=fast_params, trace=path)
        doc = read_trace(path)
        assert doc.meta["engine"] == "cpu-baseline"
        assert doc.meta["iterations"] == result.iterations
        assert doc.dropped == 0
        # Single-stream files keep emission order; enclosing spans land
        # *after* their children (their t0 is earlier), so only per-name
        # start times are monotonic — file order is not a t0 sort.
        for name in ("draw", "dispatch", "iteration"):
            t0s = [e.t0 for e in doc.events if e.name == name]
            assert t0s == sorted(t0s)
        assert {e.name for e in doc.events} >= {"schedule", "draw", "dispatch",
                                                "iteration", "transfer"}

    def test_untraced_run_matches_traced_run(self, small_synthetic,
                                             fast_params, tmp_path):
        plain = layout_graph(small_synthetic, params=fast_params)
        traced = layout_graph(small_synthetic, params=fast_params,
                              trace=str(tmp_path / "t.jsonl"))
        assert np.array_equal(plain.layout.coords, traced.layout.coords)

    def test_shm_run_merges_per_worker_ring_traces(self, medium_synthetic,
                                                   fast_params, tmp_path):
        path = str(tmp_path / "shm.jsonl")
        result = layout_graph(medium_synthetic, params=fast_params,
                              workers=2, trace=path)
        doc = read_trace(path)
        assert doc.meta["workers"] == 2
        workers = {e.labels.get("worker") for e in doc.events
                   if "worker" in e.labels}
        assert workers == {"0", "1"}
        t0s = [e.t0 for e in doc.events]
        assert t0s == sorted(t0s)
        for worker in ("0", "1"):
            iters = [e for e in doc.events
                     if e.labels.get("worker") == worker
                     and e.name == "iteration"]
            assert len(iters) == result.iterations
        assert doc.dropped == 0

    def test_multilevel_trace_has_level_and_prolong_spans(self,
                                                          small_synthetic,
                                                          fast_params,
                                                          tmp_path):
        path = str(tmp_path / "multi.jsonl")
        driver = MultilevelDriver(small_synthetic,
                                  fast_params.with_(levels=3, trace=path))
        driver.run()
        doc = read_trace(path)
        depth = driver.hierarchy.depth
        assert len([e for e in doc.events if e.name == "level"]) == depth
        assert len([e for e in doc.events if e.name == "prolong"]) == depth - 1
        levels = {e.labels.get("level") for e in doc.events
                  if "level" in e.labels}
        assert levels == {str(k) for k in range(depth)}

    def test_multilevel_depth_one_delegates_trace_to_flat_engine(
            self, small_synthetic, fast_params, tmp_path):
        path = str(tmp_path / "depth1.jsonl")
        driver = MultilevelDriver(small_synthetic,
                                  fast_params.with_(levels=1, trace=path))
        driver.run()
        doc = read_trace(path)
        assert doc.meta["engine"] == "cpu-baseline"


class TestProgressCallbacks:
    def test_flat_engine_streams_one_call_per_iteration(self, small_synthetic,
                                                        fast_params):
        calls = []
        layout_graph(small_synthetic, params=fast_params,
                     on_progress=lambda c, t, s: calls.append((c, t, s)))
        assert [c for c, _, _ in calls] \
            == list(range(1, fast_params.iter_max + 1))
        assert all(t == fast_params.iter_max for _, t, _ in calls)
        assert calls[0][2]["engine"] == "cpu-baseline"
        assert all("eta" in s and "terms" in s for _, _, s in calls)

    def test_make_engine_threads_the_callback(self, small_synthetic,
                                              fast_params):
        calls = []
        engine = make_engine(small_synthetic, "cpu", fast_params,
                             on_progress=lambda *a: calls.append(a))
        engine.run()
        assert len(calls) == fast_params.iter_max

    def test_shm_run_reports_workers(self, medium_synthetic, fast_params):
        calls = []
        layout_graph(medium_synthetic, params=fast_params, workers=2,
                     on_progress=lambda c, t, s: calls.append((c, t, s)))
        assert [c for c, _, _ in calls] \
            == list(range(1, fast_params.iter_max + 1))
        assert all(s["workers"] == 2 for _, _, s in calls)

    def test_multilevel_offsets_to_global_counts(self, small_synthetic,
                                                 fast_params):
        calls = []
        driver = MultilevelDriver(small_synthetic,
                                  fast_params.with_(levels=3))
        driver.on_progress = lambda c, t, s: calls.append((c, t, s))
        driver.run()
        grand_total = sum(driver.level_iterations())
        assert [c for c, _, _ in calls] == list(range(1, grand_total + 1))
        assert all(t == grand_total for _, t, _ in calls)
        assert {s["level"] for _, _, s in calls} \
            == set(range(driver.hierarchy.depth))


class TestTraceCli:
    def _write(self, tmp_path, name, small_synthetic, fast_params):
        path = str(tmp_path / name)
        layout_graph(small_synthetic, params=fast_params, trace=path)
        return path

    def test_summarize_renders_phase_table(self, small_synthetic, fast_params,
                                           tmp_path, capsys):
        from repro.cli import trace_main

        path = self._write(tmp_path, "a.jsonl", small_synthetic, fast_params)
        assert trace_main(["summarize", path]) == 0
        out = capsys.readouterr().out
        assert f"schema {TRACE_SCHEMA_VERSION}" in out
        for phase in ("draw", "dispatch", "iteration", "schedule"):
            assert phase in out

    def test_compare_renders_ratios(self, small_synthetic, fast_params,
                                    tmp_path, capsys):
        from repro.cli import trace_main

        old = self._write(tmp_path, "old.jsonl", small_synthetic, fast_params)
        new = self._write(tmp_path, "new.jsonl", small_synthetic, fast_params)
        assert trace_main(["compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "trace compare:" in out and "ratio" in out

    def test_schema_error_exits_two(self, tmp_path, capsys):
        from repro.cli import trace_main

        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps(
            {"record": "header", "schema_version": "99.0", "meta": {}}) + "\n")
        assert trace_main(["summarize", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path):
        from repro.cli import trace_main

        assert trace_main(["summarize", str(tmp_path / "absent.jsonl")]) == 2

    def test_layout_cli_writes_and_announces_trace(self, tmp_path, capsys):
        from pathlib import Path

        from repro.cli import main

        gfa = Path(__file__).parent / "data" / "golden" / "tiny.gfa"
        trace = tmp_path / "cli.jsonl"
        lay = tmp_path / "cli.lay"
        assert main(["layout", "--gfa", str(gfa),
                     "--iter-max", "3", "--steps-factor", "1.0",
                     "--trace", str(trace), "--progress",
                     "--out-lay", str(lay)]) == 0
        captured = capsys.readouterr()
        assert f"wrote run trace to {trace}" in captured.out
        assert "iteration 3/3" in captured.err
        assert read_trace(str(trace)).events

    def test_summaries_render_worker_lists(self, medium_synthetic,
                                           fast_params, tmp_path):
        path = str(tmp_path / "w.jsonl")
        layout_graph(medium_synthetic, params=fast_params, workers=2,
                     trace=path)
        doc = read_trace(path)
        text = render_summary(doc, source=path)
        assert "workers: 0, 1" in text
        assert "dropped" not in text  # zero drops stay silent
        assert "ratio" in render_compare(doc, doc)
