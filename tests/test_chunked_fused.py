"""Chunked fused path (PR 8): budget parsing, chunk planning, byte-identity.

The tentpole contract under test: ``LayoutParams(memory_budget=...)`` splits
each fused iteration into budget-sized segment chunks dispatched in order,
and — because chunk boundaries are segment boundaries and the bulk PRNG draw
is interchangeable mid-stream — a budgeted run is *byte-identical* to an
unbudgeted one on the NumPy backend, for every budget. Alongside: the
``parse_memory_budget`` grammar, the params-level ``workers × levels``
validation, the chunk-shared scratch (cached state must total one chunk, not
the iteration), ``budget_share`` for the process-parallel engine, the peak
accounting layer (``repro.memtrack`` + ``LayoutResult.summary``), and the
CLI ``--memory-budget`` flag end to end.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend
from repro.core import CpuBaselineEngine, LayoutParams, SerialReferenceEngine
from repro.core.fused import (
    FUSED_BYTES_PER_TERM,
    SAMPLE_VECTORS,
    build_iteration_plans,
    chunk_spans,
)
from repro.core.params import parse_memory_budget
from repro.memtrack import PeakTracker, max_rss_bytes
from repro.parallel.shm import budget_share, run_workers_inline
from repro.synth import PangenomeConfig, simulate_pangenome


@pytest.fixture(scope="module")
def small_graph():
    return simulate_pangenome(PangenomeConfig(
        n_backbone_nodes=50,
        n_paths=3,
        mean_node_length=5.0,
        bubble_rate=0.1,
        deletion_rate=0.02,
        n_structural_variants=1,
        sv_length_nodes=4,
        loop_rate=0.05,
        seed=11,
        name="chunked-fused",
    ))


def _params(**overrides) -> LayoutParams:
    base = dict(iter_max=3, steps_per_step_unit=1.0, seed=23, backend="numpy")
    base.update(overrides)
    return LayoutParams(**base)


# --------------------------------------------------------------------------
# parse_memory_budget
# --------------------------------------------------------------------------
class TestParseMemoryBudget:
    def test_none_passthrough(self):
        assert parse_memory_budget(None) is None

    def test_plain_int(self):
        assert parse_memory_budget(4096) == 4096

    @pytest.mark.parametrize("text,expected", [
        ("512", 512),
        ("512B", 512),
        ("1K", 1024),
        ("1KB", 1024),
        ("1KiB", 1024),
        ("64MB", 64 * 1024**2),
        ("64mb", 64 * 1024**2),
        ("2G", 2 * 1024**3),
        ("1T", 1024**4),
        (" 8 MB ", 8 * 1024**2),
        ("1.5KB", 1536),
    ])
    def test_unit_grammar(self, text, expected):
        assert parse_memory_budget(text) == expected

    @pytest.mark.parametrize("bad", ["", "MB", "64XB", "-1", "1..5K", "64 M B"])
    def test_malformed_strings_raise(self, bad):
        with pytest.raises(ValueError):
            parse_memory_budget(bad)

    @pytest.mark.parametrize("bad", [0, -5, "0", "0.4"])
    def test_sub_byte_budgets_raise(self, bad):
        with pytest.raises(ValueError):
            parse_memory_budget(bad)

    def test_bool_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            parse_memory_budget(True)

    def test_params_normalise_budget_string(self):
        params = _params(memory_budget="2MB")
        assert params.memory_budget == 2 * 1024**2

    def test_params_reject_bad_budget(self):
        with pytest.raises(ValueError):
            _params(memory_budget="lots")


# --------------------------------------------------------------------------
# params-level validation (satellite: workers × levels)
# --------------------------------------------------------------------------
class TestWorkersLevelsValidation:
    def test_combination_rejected_in_params(self):
        with pytest.raises(ValueError, match="workers > 1 and levels > 1"):
            _params(workers=2, levels=2)

    def test_each_knob_alone_is_fine(self):
        assert _params(workers=2).workers == 2
        assert _params(levels=2).levels == 2


# --------------------------------------------------------------------------
# chunk_spans
# --------------------------------------------------------------------------
class TestChunkSpans:
    def test_empty_plan(self):
        assert chunk_spans([], memory_budget=100) == []

    def test_no_budget_single_span(self):
        assert chunk_spans([5, 5, 5]) == [(0, 3)]

    def test_bad_budget_raises(self):
        with pytest.raises(ValueError):
            chunk_spans([4], memory_budget=0)
        with pytest.raises(ValueError):
            chunk_spans([4], memory_budget=100, bytes_per_term=0)

    def test_spans_cover_plan_contiguously(self):
        plan = [7, 7, 7, 7, 3]
        spans = chunk_spans(plan, memory_budget=14 * FUSED_BYTES_PER_TERM)
        assert spans[0][0] == 0
        assert spans[-1][1] == len(plan)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start

    def test_greedy_packing_respects_target(self):
        plan = [4, 4, 4, 4]
        spans = chunk_spans(plan, memory_budget=8 * FUSED_BYTES_PER_TERM)
        assert spans == [(0, 2), (2, 4)]

    def test_budget_below_one_segment_degrades_to_one_per_chunk(self):
        plan = [10, 10, 10]
        spans = chunk_spans(plan, memory_budget=1)
        assert spans == [(0, 1), (1, 2), (2, 3)]

    def test_budget_covering_everything_single_span(self):
        plan = [4, 4, 4]
        spans = chunk_spans(plan, memory_budget=12 * FUSED_BYTES_PER_TERM)
        assert spans == [(0, 3)]


# --------------------------------------------------------------------------
# build_iteration_plans: chunk plans + shared scratch
# --------------------------------------------------------------------------
class TestBuildIterationPlans:
    def _plans(self, graph, budget):
        engine = CpuBaselineEngine(graph, _params(memory_budget=budget))
        plan = engine.batch_plan(
            engine.params.steps_per_iteration(graph.total_steps))
        rng = engine.make_rng()
        workspace = engine.make_workspace(plan)
        return plan, build_iteration_plans(
            sampler=engine.sampler, workspace=workspace,
            merge=engine.merge_policy(), plan=plan, n_streams=rng.n_streams,
            memory_budget=engine.params.memory_budget)

    def test_unbudgeted_is_single_whole_plan(self, small_graph):
        plan, chunks = self._plans(small_graph, None)
        assert len(chunks) == 1
        assert chunks[0].plan == plan

    def test_chunks_concatenate_to_plan(self, small_graph):
        plan, chunks = self._plans(small_graph, 1)
        assert len(chunks) == len(plan)
        flattened = [b for c in chunks for b in c.plan]
        assert flattened == plan

    def test_chunks_share_scratch_but_own_caches(self, small_graph):
        _, chunks = self._plans(small_graph, 1)
        assert len(chunks) > 1
        scratches = {id(c.scratch) for c in chunks}
        caches = {id(c.cache) for c in chunks}
        assert len(scratches) == 1  # chunk-invariant state lives once per run
        assert len(caches) == len(chunks)  # chunk-shaped state stays private
        workspaces = {id(c.workspace) for c in chunks}
        assert len(workspaces) == 1

    def test_draws_scratch_totals_one_chunk_not_iteration(self, small_graph):
        """The hoisted draws buffer must not re-materialise the iteration."""
        from repro.core.fused import run_iteration_host

        engine = CpuBaselineEngine(small_graph,
                                   _params(memory_budget="2KB"))
        plan = engine.batch_plan(
            engine.params.steps_per_iteration(small_graph.total_steps))
        rng = engine.make_rng()
        chunks = build_iteration_plans(
            sampler=engine.sampler, workspace=engine.make_workspace(plan),
            merge=engine.merge_policy(), plan=plan, n_streams=rng.n_streams,
            memory_budget=engine.params.memory_budget)
        assert len(chunks) > 1
        backend = get_backend("numpy")
        coords = np.zeros((small_graph.n_nodes * 2, 2), dtype=np.float64)
        for chunk in chunks:
            block = rng.next_double_block(chunk.calls_per_iteration)
            run_iteration_host(backend, chunk, coords, block, 0.05, 0)
        scratch = chunks[0].scratch
        widest = max(sum(c.plan) for c in chunks)
        assert scratch["draws/host"].shape == (SAMPLE_VECTORS, widest)
        # No chunk hoarded a private copy of the draws block.
        assert all("draws/host" not in c.cache for c in chunks)


# --------------------------------------------------------------------------
# byte-identity: budgeted == unbudgeted, every budget (example-based)
# --------------------------------------------------------------------------
class TestBudgetByteIdentity:
    @pytest.mark.parametrize("budget", [1, "1KB", "100KB", "64MB"])
    def test_cpu_engine_budget_never_moves_layout(self, small_graph, budget):
        params = _params(fused=True)
        reference = CpuBaselineEngine(small_graph, params).run()
        budgeted = CpuBaselineEngine(
            small_graph, params.with_(memory_budget=budget)).run()
        assert budgeted.total_terms == reference.total_terms
        np.testing.assert_array_equal(budgeted.layout.coords,
                                      reference.layout.coords)

    def test_serial_engine_one_term_segments_chunk_identically(self, small_graph):
        params = _params(iter_max=2, fused=True)
        reference = SerialReferenceEngine(small_graph, params).run()
        budgeted = SerialReferenceEngine(
            small_graph, params.with_(memory_budget=1)).run()
        np.testing.assert_array_equal(budgeted.layout.coords,
                                      reference.layout.coords)

    def test_unbudgeted_keeps_one_dispatch_per_iteration(self, small_graph):
        result = CpuBaselineEngine(small_graph, _params(fused=True)).run()
        assert result.counters["fused_chunks"] == 1.0
        assert (result.counters["update_dispatches"]
                == float(result.iterations))

    def test_budgeted_dispatches_once_per_chunk(self, small_graph):
        result = CpuBaselineEngine(
            small_graph, _params(fused=True, memory_budget=1)).run()
        chunks = result.counters["fused_chunks"]
        assert chunks > 1.0
        assert (result.counters["update_dispatches"]
                == chunks * result.iterations)


# --------------------------------------------------------------------------
# worker decomposition: budget_share + inline engine
# --------------------------------------------------------------------------
class TestWorkerBudget:
    def test_budget_share_none_passthrough(self):
        assert budget_share(None, 4) is None

    def test_budget_share_splits_evenly_with_floor(self):
        assert budget_share(100, 4) == 25
        assert budget_share(3, 4) == 1  # floors at one byte, never zero

    def test_budget_share_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            budget_share(100, 0)

    def test_inline_workers_budget_never_moves_layout(self, small_graph):
        params = _params(workers=2, fused=True)
        reference = run_workers_inline(small_graph, params)
        budgeted = run_workers_inline(
            small_graph, params.with_(memory_budget="4KB"))
        np.testing.assert_array_equal(budgeted.layout.coords,
                                      reference.layout.coords)

    def test_inline_workers_budget_raises_chunk_count(self, small_graph):
        params = _params(workers=2, fused=True)
        reference = run_workers_inline(small_graph, params)
        budgeted = run_workers_inline(
            small_graph, params.with_(memory_budget=1))
        assert (budgeted.counters["fused_chunks"]
                > reference.counters["fused_chunks"])


# --------------------------------------------------------------------------
# peak accounting: memtrack + counters + summary
# --------------------------------------------------------------------------
class TestPeakAccounting:
    def test_max_rss_is_positive_on_posix(self):
        rss = max_rss_bytes()
        if rss is not None:
            assert rss > 1024**2  # a Python process is bigger than a MiB

    def test_tracker_without_tracing_reports_rss_only(self):
        tracker = PeakTracker(trace=None).start()
        tracker.stop()
        assert tracker.traced_peak_bytes is None
        if tracker.rss_peak_bytes is not None:
            assert tracker.rss_peak_bytes > 0

    def test_tracker_traces_when_asked(self):
        with PeakTracker(trace=True) as tracker:
            buf = np.ones(200_000, dtype=np.float64)
            del buf
        assert tracker.traced_peak_bytes is not None
        assert tracker.traced_peak_bytes >= 200_000 * 8

    def test_engine_records_traced_peak_under_external_tracing(self, small_graph):
        with PeakTracker(trace=True):
            result = CpuBaselineEngine(
                small_graph, _params(memory_budget="1KB")).run()
        assert result.counters.get("traced_peak_bytes", 0) > 0
        summary = result.summary()
        assert summary["traced_peak_bytes"] == int(
            result.counters["traced_peak_bytes"])
        assert summary["fused_chunks"] > 1

    def test_engine_without_tracing_omits_traced_counter(self, small_graph):
        result = CpuBaselineEngine(small_graph, _params()).run()
        assert "traced_peak_bytes" not in result.counters
        assert result.summary()["traced_peak_bytes"] is None

    def test_max_counter_keeps_high_water(self, small_graph):
        engine = CpuBaselineEngine(small_graph, _params())
        engine.max_counter("hw", 5.0)
        engine.max_counter("hw", 3.0)
        engine.max_counter("hw", 9.0)
        assert engine._counters["hw"] == 9.0


# --------------------------------------------------------------------------
# CLI: --memory-budget end to end (the acceptance criterion)
# --------------------------------------------------------------------------
class TestCliMemoryBudget:
    def test_layout_budget_byte_identical_lay_files(self, tmp_path):
        from repro.cli import main

        blobs = {}
        for name, extra in (("none", []),
                            ("64mb", ["--memory-budget", "64MB"]),
                            ("100kb", ["--memory-budget", "100KB"])):
            out = tmp_path / f"{name}.lay"
            assert main(["layout", "--dataset", "HLA-DRB1", "--scale", "0.05",
                         "--iter-max", "2", "--steps-factor", "1.0",
                         *extra, "--out-lay", str(out)]) == 0
            blobs[name] = out.read_bytes()
        assert blobs["none"] == blobs["64mb"] == blobs["100kb"]

    def test_layout_rejects_malformed_budget(self):
        from repro.cli import main

        with pytest.raises(ValueError, match="invalid memory budget"):
            main(["layout", "--dataset", "HLA-DRB1", "--scale", "0.05",
                  "--iter-max", "1", "--memory-budget", "banana"])
