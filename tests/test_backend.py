"""Backend registry and NumPy-backend kernel tests.

The registry contract: name resolution (explicit → ``REPRO_BACKEND`` →
numpy), lazy instantiation with a registration self-test, recorded failure
reasons, and clean unavailability for backends whose toolchain is missing.
The kernel contract: the NumPy backend's operations are exactly the
historical hot-path call sequences (checked against hand-computed results
and against ``apply_batch`` round-trips).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    backend_failures,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import _FACTORIES, _FAILURES, _INSTANCES
from repro.core import (
    CpuBaselineEngine,
    LayoutParams,
    PairSampler,
    UpdateWorkspace,
    apply_batch,
    compact_points,
    initialize_layout,
)
from repro.prng import Xoshiro256Plus


@pytest.fixture()
def scratch_registry():
    """Snapshot/restore the registry so tests can register throwaway backends."""
    snapshots = [(_FACTORIES, dict(_FACTORIES)), (_INSTANCES, dict(_INSTANCES)),
                 (_FAILURES, dict(_FAILURES))]
    yield
    for live, saved in snapshots:
        live.clear()
        live.update(saved)


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name(None) == "numpy"
        assert get_backend().name == "numpy"

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cupy")
        assert resolve_backend_name("numpy") == "numpy"
        assert get_backend("numpy").name == "numpy"

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend().name == "numpy"

    def test_empty_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert resolve_backend_name(None) == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendUnavailable, match="unknown backend"):
            get_backend("no-such-backend")

    def test_engine_resolves_params_backend(self, small_synthetic, fast_params):
        engine = CpuBaselineEngine(small_synthetic,
                                   fast_params.with_(backend="numpy"))
        assert engine.backend.name == "numpy"
        assert engine.sampler.backend is engine.backend

    def test_engine_rejects_unavailable_backend(self, small_synthetic, fast_params):
        with pytest.raises(BackendUnavailable):
            CpuBaselineEngine(small_synthetic,
                              fast_params.with_(backend="no-such-backend"))

    def test_params_validate_backend_type(self):
        with pytest.raises(ValueError):
            LayoutParams(backend="")
        with pytest.raises(ValueError):
            LayoutParams(merge_policy="bogus")


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert backend_names()[0] == "numpy"

    def test_optional_backends_registered(self):
        # numba/cupy are always *registered*; availability depends on the
        # environment, and unavailability must come with a recorded reason.
        names = backend_names()
        assert "numba" in names and "cupy" in names
        failures = backend_failures()
        for name in ("numba", "cupy"):
            if name not in available_backends():
                assert name in failures and failures[name]

    def test_get_backend_caches_instance(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_register_rejects_duplicates(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)
        register_backend("numpy", NumpyBackend, replace=True)  # explicit wins
        assert get_backend("numpy").name == "numpy"

    def test_self_test_failure_marks_unavailable(self, scratch_registry):
        class BrokenBackend(NumpyBackend):
            name = "broken"

            def merge_scatter(self, coords, touched, inverse, counts,
                              all_deltas, merge):
                coords[touched] += 1.0  # wrong on purpose

        register_backend("broken", BrokenBackend)
        with pytest.raises(BackendUnavailable, match="broken"):
            get_backend("broken")
        # The failure is recorded and re-raised cheaply on later calls.
        assert "broken" in backend_failures()
        with pytest.raises(BackendUnavailable):
            get_backend("broken")
        assert "broken" not in available_backends()

    def test_factory_import_error_is_clean(self, scratch_registry):
        def factory():
            raise ImportError("no such toolchain")

        register_backend("ghost", factory)
        with pytest.raises(BackendUnavailable, match="no such toolchain"):
            get_backend("ghost")

    def test_custom_backend_passes_self_test(self, scratch_registry):
        class Renamed(NumpyBackend):
            name = "renamed"

        register_backend("renamed", Renamed)
        assert get_backend("renamed").name == "renamed"
        assert "renamed" in available_backends()


class TestNumpyBackendKernels:
    def test_compact_points_matches_module_function(self):
        be = get_backend("numpy")
        points = np.array([9, 2, 9, 9, 0, 2])
        for got, viaMod in zip(be.compact_points(points), compact_points(points)):
            np.testing.assert_array_equal(got, viaMod)

    def test_transfers_are_identities(self):
        be = get_backend("numpy")
        a = np.arange(6.0).reshape(3, 2)
        assert be.from_host(a) is a
        assert be.to_host(a) is a
        assert be.asarray(a) is a

    def test_rowwise_sqnorm_with_and_without_out(self):
        be = get_backend("numpy")
        a = np.random.default_rng(5).normal(size=(17, 2))
        expect = np.einsum("ij,ij->i", a, a)
        np.testing.assert_array_equal(be.rowwise_sqnorm(a), expect)
        out = np.empty(17)
        assert be.rowwise_sqnorm(a, out=out) is out
        np.testing.assert_array_equal(out, expect)

    def test_generic_base_matches_numpy_overrides(self):
        """The generic ArrayBackend bodies (used by namespace-swapping
        backends) agree with the tuned NumPy overrides on every kernel."""

        class GenericNumpy(ArrayBackend):
            name = "generic-numpy"
            xp = np

        generic, tuned = GenericNumpy(), get_backend("numpy")
        generic.self_test()  # the registration gate itself
        rng = np.random.default_rng(77)
        points = rng.integers(0, 12, size=40)
        deltas = rng.normal(size=(40, 2))
        for merge in ("hogwild", "accumulate", "last_writer"):
            touched, inverse, counts = tuned.compact_points(points)
            a = rng.normal(size=(12, 2))
            b = a.copy()
            tuned.merge_scatter(a, touched, inverse, counts, deltas, merge)
            generic.merge_scatter(b, touched, inverse, counts, deltas, merge)
            np.testing.assert_allclose(a, b, atol=1e-12, rtol=0)


class TestWorkspaceBackend:
    def test_workspace_default_backend(self):
        ws = UpdateWorkspace(8)
        assert ws.backend.name == "numpy"

    def test_workspace_keeps_backend_across_growth(self):
        be = get_backend("numpy")
        ws = UpdateWorkspace(4, backend=be)
        ws.ensure(64)
        assert ws.backend is be
        assert ws.point_i.size == 64

    def test_apply_batch_backend_mismatch_rejected(self, small_synthetic):
        class Other(NumpyBackend):
            name = "other"

        sampler = PairSampler(small_synthetic, LayoutParams())
        batch = sampler.sample(Xoshiro256Plus(3, n_streams=16), 8, iteration=0)
        coords = initialize_layout(small_synthetic, seed=1).coords
        ws = UpdateWorkspace(8, backend=get_backend("numpy"))
        with pytest.raises(ValueError, match="backend mismatch"):
            apply_batch(coords, batch, 0.5, workspace=ws, backend=Other())

    def test_apply_batch_explicit_backend_matches_default(self, small_synthetic):
        sampler = PairSampler(small_synthetic, LayoutParams())
        batch = sampler.sample(Xoshiro256Plus(3, n_streams=64), 128, iteration=0)
        a = initialize_layout(small_synthetic, seed=1).coords
        b = a.copy()
        apply_batch(a, batch, 0.5)
        apply_batch(b, batch, 0.5, backend=get_backend("numpy"))
        np.testing.assert_array_equal(a, b)
