"""Command-line interface: ``repro``.

Subcommands:

* ``repro layout`` — read a GFA (or generate a named synthetic dataset), run
  the chosen engine, write the layout and optionally an SVG rendering, and
  report the sampled path stress. Mirrors the shape of ``odgi layout``; the
  ``--gpu`` flag selects the optimized kernel, matching the paper's statement
  that GPU acceleration is enabled in the ODGI pipeline by simply adding
  ``--gpu``.
* ``repro bench`` — benchmark orchestration: ``run`` executes a registered
  suite (``smoke``/``figures``/``tables``/``all``) and writes a versioned
  ``BENCH_<suite>.json``; ``compare`` diffs two result files and exits
  nonzero on regressions beyond a threshold; ``list`` shows registered cases.
* ``repro analyze`` — the AST-based contract linter (:mod:`repro.analysis`):
  checks the determinism (DET001/DET002), zero-alloc (ALLOC001),
  memory-ceiling (MEM001), backend-dispatch (XP001), shm-lifecycle
  (SHM001), clock-seam (OBS001) and no-unbounded-blocking (ROBUST001)
  invariants over the given paths and exits nonzero on violations
  (``--strict`` also fails on warnings and stale baseline entries — the
  CI configuration).
* ``repro trace`` — run-telemetry tooling over the JSONL traces that
  ``repro layout --trace out.jsonl`` (or ``LayoutParams(trace=...)``)
  records: ``summarize`` prints the per-phase time breakdown of one trace,
  ``compare`` diffs two traces phase by phase.

For backward compatibility, invoking the CLI with the historical flat
``repro-layout`` flags (no subcommand) still works: ``repro --gfa in.gfa``
is rewritten to ``repro layout --gfa in.gfa``.
"""
from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .backend import backend_names
from .core import GpuKernelConfig, layout_graph
from .graph import LeanGraph, parse_gfa, validate_lean
from .io import write_lay, write_tsv
from .metrics import sampled_path_stress
from .render import save_svg
from .synth import REPRESENTATIVE_SPECS, load_dataset

__all__ = ["main", "build_parser", "build_bench_parser", "build_analyze_parser",
           "build_trace_parser", "bench_main", "layout_main", "analyze_main",
           "trace_main"]


class _DeprecatedThreadsAction(argparse.Action):
    """``--threads`` alias: warns, then stores into ``simulated_threads``.

    The old flag name suggested real OS threads but only ever widened the
    emulated hogwild staleness window; it maps onto ``--simulated-threads``
    (real multi-core execution is ``--workers``).
    """

    def __call__(self, parser, namespace, values, option_string=None):
        print("[warn] --threads is deprecated: it only drives the *simulated* "
              "hogwild emulation; use --simulated-threads (real multi-core "
              "execution is --workers)", file=sys.stderr)
        setattr(namespace, self.dest, values)


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``layout`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-layout",
        description="Path-guided SGD pangenome graph layout (SC'24 reproduction)",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--gfa", help="input GFA v1 file")
    source.add_argument(
        "--dataset",
        choices=sorted(REPRESENTATIVE_SPECS),
        help="generate a named synthetic dataset instead of reading a GFA",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale factor for synthetic datasets (default 1.0)")
    parser.add_argument("--gpu", action="store_true",
                        help="use the optimized GPU kernel engine")
    parser.add_argument("--engine", default=None,
                        choices=["cpu", "serial", "batch", "gpu", "gpu-base",
                                 "shm"],
                        help="explicit engine selection (overrides --gpu)")
    parser.add_argument("--iter-max", type=int, default=30, help="SGD iterations")
    parser.add_argument("--steps-factor", type=float, default=10.0,
                        help="updates per iteration as a multiple of total path steps")
    parser.add_argument("--seed", type=int, default=9399, help="PRNG seed")
    parser.add_argument("--levels", type=int, default=1,
                        help="multilevel hierarchy depth: 1 runs the flat "
                             "engine (default); N>1 coarsens path-identical "
                             "chains up to N-1 times and optimises coarse to "
                             "fine (repro.multilevel V-cycle)")
    parser.add_argument("--level-split", type=float, default=0.5,
                        help="fraction of the remaining iteration budget "
                             "given to the coarser levels at each boundary "
                             "(default 0.5; only used with --levels > 1)")
    parser.add_argument("--merge-policy", default="hogwild",
                        choices=["hogwild", "accumulate", "last_writer"],
                        help="write-merge policy for colliding in-batch "
                             "updates (default: hogwild)")
    parser.add_argument("--backend", default=None, choices=list(backend_names()),
                        help="array backend for the update hot path (default: "
                             "$REPRO_BACKEND or numpy; unavailable backends "
                             "fail fast with the recorded reason)")
    parser.add_argument("--fused", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="fused per-iteration execution path: run each "
                             "SGD iteration as one backend dispatch instead "
                             "of one sampler/update round trip per batch "
                             "(default: auto — on when the backend "
                             "advertises a fused kernel; --no-fused forces "
                             "the per-batch loop; layouts are byte-identical "
                             "either way on the numpy backend)")
    parser.add_argument("--simulated-threads", dest="simulated_threads",
                        type=int, default=1,
                        help="emulated Hogwild thread count for the CPU "
                             "engine's staleness window (no OS threads are "
                             "spawned; see --workers for real parallelism)")
    parser.add_argument("--threads", dest="simulated_threads", type=int,
                        action=_DeprecatedThreadsAction,
                        help="deprecated alias for --simulated-threads")
    parser.add_argument("--workers", type=int, default=1,
                        help="real OS worker processes for the "
                             "process-parallel shared-memory hogwild engine "
                             "(N>1 routes the run through repro.parallel.shm; "
                             "cpu engine only)")
    parser.add_argument("--on-worker-failure", dest="on_worker_failure",
                        default="fail", choices=["fail", "degrade", "restart"],
                        help="policy when a shm worker process dies or "
                             "stalls mid-run: fail raises a typed error "
                             "promptly (default), degrade re-slices the dead "
                             "worker's share across the survivors and "
                             "finishes with fewer workers, restart respawns "
                             "the worker with fresh streams before degrading "
                             "(only meaningful with --workers > 1)")
    parser.add_argument("--memory-budget", dest="memory_budget", default=None,
                        help="ceiling on the fused path's per-iteration "
                             "transient footprint, as bytes or a size string "
                             "('64MB'): the iteration's batch plan is split "
                             "into budget-sized segment chunks dispatched in "
                             "order; layouts are byte-identical to the "
                             "unbudgeted run on the numpy backend (workers "
                             "split the budget evenly; default: no budget, "
                             "one dispatch per iteration)")
    parser.add_argument("--trace", default=None, metavar="OUT.JSONL",
                        help="record the run's span trace (schema-versioned "
                             "JSONL; one merged, ordered file even for "
                             "--workers > 1 and --levels > 1 runs — inspect "
                             "it with 'repro trace summarize')")
    parser.add_argument("--progress", action="store_true",
                        help="render live per-iteration progress on stderr "
                             "(the on_progress callback API, drawn as an "
                             "updating one-line status)")
    parser.add_argument("--out-lay", help="write the layout to a .lay binary file")
    parser.add_argument("--out-tsv", help="write the layout to a TSV file")
    parser.add_argument("--out-svg", help="render the layout to an SVG file")
    parser.add_argument("--stress", action="store_true",
                        help="report the sampled path stress of the result")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip structural validation of the input graph")
    return parser


def _progress_line(completed: int, total: int, stats) -> None:
    """Render one live-progress update (the ``--progress`` callback).

    Draws a carriage-return-refreshed status line on stderr — stdout stays
    reserved for the machine-readable summary output.
    """
    pct = 100.0 * completed / max(total, 1)
    extra = ""
    if "level" in stats:
        extra += f" level={stats['level']}"
    if "workers" in stats:
        extra += f" workers={stats['workers']}"
    sys.stderr.write(
        f"\r[{pct:5.1f}%] iteration {completed}/{total} "
        f"eta={stats.get('eta', 0.0):.3g} terms={stats.get('terms', 0)}"
        f"{extra}  ")
    sys.stderr.flush()


def layout_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro layout`` entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.gfa:
        graph = LeanGraph.from_variation_graph(parse_gfa(args.gfa))
        source_name = args.gfa
    else:
        graph = load_dataset(args.dataset, scale=args.scale)
        source_name = f"{args.dataset} (scale={args.scale})"

    if not args.no_validate:
        report = validate_lean(graph)
        for warning in report.warnings:
            print(f"[warn] {warning}", file=sys.stderr)
        report.raise_if_invalid()

    engine = args.engine or ("gpu" if args.gpu else "cpu")
    from .backend import resolve_backend_name

    multilevel_note = f", levels={args.levels}" if args.levels > 1 else ""
    workers_note = f", workers={args.workers}" if args.workers > 1 else ""
    print(f"laying out {source_name}: {graph.n_nodes} nodes, {graph.n_paths} paths, "
          f"{graph.total_steps} steps, engine={engine}, "
          f"backend={resolve_backend_name(args.backend)}"
          f"{multilevel_note}{workers_note}, merge={args.merge_policy}")
    # One run path for CLI, quickstart and examples: layout_graph with
    # per-call param overrides (unknown names raise before any work starts).
    result = layout_graph(
        graph,
        engine=engine,
        gpu_config=GpuKernelConfig() if engine == "gpu" else None,
        on_progress=_progress_line if args.progress else None,
        iter_max=args.iter_max,
        steps_per_step_unit=args.steps_factor,
        seed=args.seed,
        simulated_threads=args.simulated_threads,
        workers=args.workers,
        on_worker_failure=args.on_worker_failure,
        backend=args.backend,
        merge_policy=args.merge_policy,
        fused=args.fused,
        memory_budget=args.memory_budget,
        levels=args.levels,
        level_iter_split=args.level_split,
        trace=args.trace,
    )
    if args.progress:
        print(file=sys.stderr)  # finish the live line before the summary
    if args.trace:
        print(f"wrote run trace to {args.trace}")
    summary = result.summary()
    print(f"layout complete in {summary['wall_time_s']:.2f}s "
          f"({summary['total_terms']} update terms, "
          f"{summary['update_dispatches']} dispatches, "
          f"collision fraction {summary['collision_fraction']:.3f})")
    if summary["degraded"] or summary["worker_failures"]:
        # Surface supervised-runtime health whenever anything went wrong —
        # CI's chaos job greps this line to validate graceful degradation.
        print(f"run degraded: effective_workers="
              f"{summary['effective_workers']}/{summary['workers']} after "
              f"{summary['worker_failures']} worker failure(s), "
              f"{summary['worker_restarts']} restart(s)")

    if args.out_lay:
        write_lay(result.layout, args.out_lay)
        print(f"wrote layout to {args.out_lay}")
    if args.out_tsv:
        write_tsv(result.layout, args.out_tsv)
        print(f"wrote TSV to {args.out_tsv}")
    if args.out_svg:
        save_svg(result.layout, args.out_svg, graph=graph)
        print(f"wrote SVG to {args.out_svg}")
    if args.stress:
        sps = sampled_path_stress(result.layout, graph, samples_per_step=25, seed=args.seed)
        print(f"sampled path stress: {sps.value:.4f} "
              f"(95% CI [{sps.ci_low:.4f}, {sps.ci_high:.4f}], n={sps.n_samples})")
    return 0


def build_bench_parser() -> argparse.ArgumentParser:
    """Construct the ``repro bench`` argument parser."""
    from .bench.context import DEFAULT_MASTER_SEED
    from .bench.registry import KNOWN_SUITES

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark orchestration and perf-regression gate",
    )
    sub = parser.add_subparsers(dest="bench_command", required=True)

    run_p = sub.add_parser("run", help="run a benchmark suite and write BENCH_<suite>.json")
    run_p.add_argument("--suite", default="smoke", choices=list(KNOWN_SUITES),
                       help="suite to run (default: smoke)")
    run_p.add_argument("--seed", type=int, default=DEFAULT_MASTER_SEED,
                       help="master seed threaded through every case "
                            f"(default: {DEFAULT_MASTER_SEED})")
    run_p.add_argument("--warmup", type=int, default=0,
                       help="unmeasured runs per case before timing (default: 0)")
    run_p.add_argument("--repeats", type=int, default=1,
                       help="measured runs per case; >=2 also verifies metric "
                            "determinism (default: 1)")
    run_p.add_argument("--backend", default=None, choices=list(backend_names()),
                       help="array backend threaded through every case's layout "
                            "params (default: $REPRO_BACKEND or numpy)")
    run_p.add_argument("--fused", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="fused per-iteration execution path, threaded "
                            "through every case's layout params (default: "
                            "auto; --no-fused forces the per-batch loop)")
    run_p.add_argument("--out", default=None,
                       help="output path (default: BENCH_<suite>.json in the CWD)")
    run_p.add_argument("--tables", action="store_true",
                       help="print each case's human-readable reproduction tables")
    run_p.add_argument("--profile", action="store_true",
                       help="additionally run each case once under cProfile "
                            "and write a per-case summary artifact next to "
                            "the result file (dispatch-regression forensics)")

    cmp_p = sub.add_parser("compare",
                           help="diff two result files; exit 1 on regression")
    cmp_p.add_argument("old", help="baseline BENCH_*.json")
    cmp_p.add_argument("new", help="candidate BENCH_*.json")
    cmp_p.add_argument("--max-regress", default="10%",
                       help="allowed worsening per tracked metric, e.g. '10%%' "
                            "or '0.1' (default: 10%%)")
    cmp_p.add_argument("--allow-missing", action="store_true",
                       help="do not fail when a tracked case/metric disappears")
    cmp_p.add_argument("--quiet", action="store_true",
                       help="only print regressions and the verdict line")

    list_p = sub.add_parser("list", help="list registered cases and their suites")
    list_p.add_argument("--suite", default="all", choices=list(KNOWN_SUITES),
                        help="restrict the listing to one suite")
    return parser


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro bench`` entry point; returns the process exit code."""
    from .backend import BackendUnavailable
    from .bench.compare import compare_files, parse_threshold
    from .bench.registry import BenchError, load_builtin_cases
    from .bench.runner import SuiteRunError, run_suite
    from .bench.schema import SchemaError
    from .bench.tables import format_table

    args = build_bench_parser().parse_args(argv)
    try:
        if args.bench_command == "run":
            run_suite(
                args.suite,
                master_seed=args.seed,
                warmup=args.warmup,
                repeats=args.repeats,
                out_path=args.out,
                show_tables=args.tables,
                backend=args.backend,
                fused=args.fused,
                profile=args.profile,
            )
            return 0
        if args.bench_command == "compare":
            report = compare_files(
                args.old, args.new,
                max_regress=parse_threshold(args.max_regress),
                allow_missing=args.allow_missing,
            )
            print(report.format(include_ok=not args.quiet))
            return report.exit_code
        if args.bench_command == "list":
            registry = load_builtin_cases()
            rows = [[c.name, c.source, ",".join(sorted(c.suites)), c.summary]
                    for c in registry.suite(args.suite)]
            print(format_table(["case", "source", "suites", "summary"], rows,
                               title=f"Registered benchmark cases ({args.suite})"))
            return 0
    except BrokenPipeError:
        return 0
    except (BenchError, SuiteRunError, SchemaError, BackendUnavailable,
            ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


def build_analyze_parser() -> argparse.ArgumentParser:
    """Construct the ``repro analyze`` argument parser."""
    from .analysis import DEFAULT_BASELINE_PATH

    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="AST-based contract linter: determinism (DET001/DET002), "
                    "zero-alloc hot loops (ALLOC001), bounded iteration "
                    "memory (MEM001), backend dispatch (XP001), shm "
                    "lifecycle (SHM001), the obs clock seam (OBS001) and "
                    "no unbounded blocking waits in the parallel runtime "
                    "(ROBUST001)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on warnings and on stale baseline "
                             "entries (the CI configuration)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--baseline", default=None,
                        help="suppression baseline JSON for grandfathered "
                             f"sites (default: {DEFAULT_BASELINE_PATH} when "
                             "it exists; pass an explicit path otherwise)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline, report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the baseline "
                             "path (grandfathering them) instead of failing")
    return parser


def analyze_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro analyze`` entry point; returns the process exit code."""
    import os

    from .analysis import (DEFAULT_BASELINE_PATH, AnalysisError, Baseline,
                           run_analysis)

    args = build_analyze_parser().parse_args(argv)
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and os.path.exists(DEFAULT_BASELINE_PATH):
        baseline_path = DEFAULT_BASELINE_PATH
    try:
        if args.write_baseline:
            target = baseline_path or DEFAULT_BASELINE_PATH
            report = run_analysis(args.paths)
            Baseline.from_findings(report.findings).save(target)
            print(f"wrote {len(report.findings)} finding(s) as "
                  f"{target} baseline entries")
            return 0
        baseline = None
        if baseline_path is not None and not args.no_baseline:
            baseline = Baseline.load(baseline_path)
        report = run_analysis(args.paths, baseline=baseline)
        if args.format == "json":
            print(report.format_json())
        else:
            print(report.format_text(strict=args.strict))
        return report.exit_code(strict=args.strict)
    except BrokenPipeError:
        return 0
    except (AnalysisError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def build_trace_parser() -> argparse.ArgumentParser:
    """Construct the ``repro trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Inspect JSONL run traces recorded by "
                    "'repro layout --trace' / LayoutParams(trace=...)",
    )
    sub = parser.add_subparsers(dest="trace_command", required=True)

    sum_p = sub.add_parser("summarize",
                           help="per-phase time breakdown of one trace")
    sum_p.add_argument("trace", help="trace JSONL file")

    cmp_p = sub.add_parser("compare",
                           help="phase-by-phase diff of two traces")
    cmp_p.add_argument("old", help="baseline trace JSONL file")
    cmp_p.add_argument("new", help="candidate trace JSONL file")
    return parser


def trace_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro trace`` entry point; returns the process exit code."""
    from .obs.summarize import render_compare, render_summary
    from .obs.trace_file import TraceSchemaError, read_trace

    args = build_trace_parser().parse_args(argv)
    try:
        if args.trace_command == "summarize":
            print(render_summary(read_trace(args.trace), source=args.trace))
            return 0
        if args.trace_command == "compare":
            print(render_compare(read_trace(args.old), read_trace(args.new)))
            return 0
    except BrokenPipeError:
        return 0
    except (TraceSchemaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


#: Subcommands of the top-level ``repro`` program.
_COMMANDS = ("layout", "bench", "analyze", "trace")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Top-level CLI dispatch; returns the process exit code.

    ``repro layout ...`` and ``repro bench ...`` dispatch to the subcommands;
    any other leading argument falls back to the historical flat
    ``repro-layout`` interface for backward compatibility.
    """
    args: List[str] = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "bench":
        return bench_main(args[1:])
    if args and args[0] == "analyze":
        return analyze_main(args[1:])
    if args and args[0] == "trace":
        return trace_main(args[1:])
    if args and args[0] == "layout":
        return layout_main(args[1:])
    if args and args[0] in ("-h", "--help") and argv is None:
        print(__doc__)
        return 0
    return layout_main(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
