"""XP001 — the backend-dispatch contract (PR 3).

The host/device seam: code that has been handed an execution backend (an
``xp`` array namespace or an :class:`~repro.backend.ArrayBackend`) must do
its array math *through* it. A module-level ``np.`` call inside such a
function silently pins the operation to host NumPy — correct on the numpy
backend, a device-residency break (implicit transfer or outright
``TypeError``) on cupy, which is exactly the regression class the
conformance matrix only catches a PR later.

Flagged: ``np.<fn>(...)`` / ``numpy.<fn>(...)`` calls inside any function
with a parameter named ``xp`` or ``backend``. Not flagged: attribute
*references* (``dtype=np.float64`` — dtypes are namespace-neutral), the
introspection allowlist below, and ``np.random.*`` (DET001's
jurisdiction). Host-side work that is genuinely meant to stay on the host
carries ``# xp-ok: <reason>``.
"""
from __future__ import annotations

import ast
from typing import List

from ..astutil import dotted_name, function_defs, param_names, qualified_call_name
from ..registry import Finding, checker
from ..source import SourceFile

__all__ = ["check_xp001"]

#: Parameter names that put a function under the dispatch contract.
DISPATCH_PARAMS = {"xp", "backend"}

#: ``np.<attr>`` call families that are namespace-neutral introspection or
#: configuration, never array math on potentially-device data.
ALLOWED_NP_ATTRS = {
    "dtype", "finfo", "iinfo", "result_type", "promote_types", "can_cast",
    "errstate", "seterr", "geterr", "isscalar", "ndim", "shape",
    "broadcast_shapes", "get_printoptions", "set_printoptions", "testing",
}


@checker("XP001", pragma="xp-ok", severity="error", scope="file")
def check_xp001(src: SourceFile) -> List[Finding]:
    """Module-level NumPy calls inside xp/backend-parameterised functions."""
    out: List[Finding] = []
    seen = set()
    for func, _cls in function_defs(src.tree):
        if not DISPATCH_PARAMS & set(param_names(func)):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            qual = qualified_call_name(node.func, src.aliases)
            if qual is None or not qual.startswith("numpy."):
                continue
            attr_path = qual[len("numpy."):]
            family = attr_path.split(".")[0]
            if family in ALLOWED_NP_ATTRS or family == "random":
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            shown = dotted_name(node.func) or qual
            out.append(Finding(
                rule="XP001", path=src.rel, line=node.lineno,
                col=node.col_offset, severity="error",
                message=(f"module-level NumPy call '{shown}()' inside the "
                         f"xp/backend-parameterised function "
                         f"'{func.name}' — dispatch through the backend "
                         "namespace (xp.*/backend kernel) so device "
                         "backends stay resident, or justify host-side "
                         "work with '# xp-ok: <reason>'"),
                snippet=src.snippet(node.lineno)))
    return out
