"""Construction of variation graphs from genome sequences and variants.

The HPRC graphs evaluated in the paper are produced by the PGGB pipeline
(alignment + seqwish + smoothxg). Reproducing that pipeline is out of scope,
but the layout algorithm only cares about the *structure* it produces: a
mostly-linear backbone of shared nodes with bubbles (SNVs, indels), larger
structural-variant detours, and occasional loops. This module builds exactly
those structures deterministically from explicit variant descriptions — it is
the construction layer beneath :mod:`repro.synth`, and is also handy for
writing small, exact test graphs (e.g. the Fig. 1 example).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .variation_graph import VariationGraph

__all__ = [
    "Variant",
    "snv",
    "insertion",
    "deletion",
    "GraphBuilder",
    "build_from_variants",
    "figure1_example",
]


@dataclass(frozen=True)
class Variant:
    """A variant relative to the backbone genome.

    Attributes
    ----------
    kind:
        ``"snv"``, ``"ins"`` or ``"del"``.
    position:
        0-based nucleotide offset on the backbone where the variant applies.
    alt:
        Alternate sequence (SNV replacement base or inserted sequence).
    length:
        Deleted length for ``"del"`` variants.
    carriers:
        Indices of the genomes (paths) that carry the alternate allele.
    """

    kind: str
    position: int
    alt: str = ""
    length: int = 0
    carriers: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("snv", "ins", "del"):
            raise ValueError(f"unknown variant kind {self.kind!r}")
        if self.position < 0:
            raise ValueError("variant position must be non-negative")
        if self.kind == "snv" and len(self.alt) != 1:
            raise ValueError("SNV requires a single alternate base")
        if self.kind == "ins" and not self.alt:
            raise ValueError("insertion requires a non-empty alternate sequence")
        if self.kind == "del" and self.length <= 0:
            raise ValueError("deletion requires a positive length")


def snv(position: int, alt: str, carriers: Sequence[int]) -> Variant:
    """Convenience constructor for a single-nucleotide variant."""
    return Variant("snv", position, alt=alt, carriers=tuple(carriers))


def insertion(position: int, alt: str, carriers: Sequence[int]) -> Variant:
    """Convenience constructor for an insertion."""
    return Variant("ins", position, alt=alt, carriers=tuple(carriers))


def deletion(position: int, length: int, carriers: Sequence[int]) -> Variant:
    """Convenience constructor for a deletion."""
    return Variant("del", position, length=length, carriers=tuple(carriers))


class GraphBuilder:
    """Incremental builder producing a :class:`VariationGraph`."""

    def __init__(self) -> None:
        self.graph = VariationGraph()
        self._next_id = 0

    def new_node(self, sequence: str) -> int:
        """Create a node with the next free id and return the id."""
        node_id = self._next_id
        self._next_id += 1
        self.graph.add_node(node_id, sequence)
        return node_id

    def chain(self, node_ids: Sequence[int]) -> None:
        """Add edges connecting consecutive nodes of a walk."""
        for a, b in zip(node_ids[:-1], node_ids[1:]):
            self.graph.add_edge(a, b)

    def add_genome(self, name: str, node_ids: Sequence[int]) -> None:
        """Register a path and ensure its adjacencies exist as edges."""
        self.chain(node_ids)
        self.graph.add_path(name, [(nid, False) for nid in node_ids])


def build_from_variants(
    reference: str,
    variants: Sequence[Variant],
    n_genomes: int,
    genome_names: Optional[Sequence[str]] = None,
    segment_length: int = 32,
) -> VariationGraph:
    """Build a variation graph from a reference sequence and variant list.

    The reference is cut at every variant breakpoint (and additionally into
    chunks of at most ``segment_length`` to mimic seqwish node granularity).
    Every genome path walks the backbone, diverting through alternate nodes
    at the variants it carries.
    """
    if n_genomes < 1:
        raise ValueError("need at least one genome")
    if genome_names is None:
        genome_names = [f"genome{i}" for i in range(n_genomes)]
    if len(genome_names) != n_genomes:
        raise ValueError("genome_names must have n_genomes entries")
    ref_len = len(reference)
    for v in variants:
        end = v.position + (v.length if v.kind == "del" else (1 if v.kind == "snv" else 0))
        if end > ref_len:
            raise ValueError(f"variant at {v.position} extends past the reference end")

    # Breakpoints: variant boundaries plus regular chunk boundaries.
    cuts = {0, ref_len}
    for v in variants:
        cuts.add(v.position)
        if v.kind == "snv":
            cuts.add(v.position + 1)
        elif v.kind == "del":
            cuts.add(v.position + v.length)
        else:
            cuts.add(v.position)
    pos = 0
    while pos < ref_len:
        cuts.add(pos)
        pos += max(1, segment_length)
    boundaries = sorted(cuts)

    builder = GraphBuilder()
    # Backbone segments between consecutive boundaries.
    segment_ids: List[int] = []
    segment_spans: List[Tuple[int, int]] = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        if stop > start:
            segment_ids.append(builder.new_node(reference[start:stop]))
            segment_spans.append((start, stop))

    span_starting_at: Dict[int, int] = {span[0]: idx for idx, span in enumerate(segment_spans)}

    # Alternate-allele nodes.
    alt_nodes: Dict[int, int] = {}
    for v_idx, v in enumerate(variants):
        if v.kind in ("snv", "ins"):
            alt_nodes[v_idx] = builder.new_node(v.alt)

    # Build each genome's walk.
    for g in range(n_genomes):
        walk: List[int] = []
        seg_idx = 0
        while seg_idx < len(segment_spans):
            start, stop = segment_spans[seg_idx]
            consumed = False
            for v_idx, v in enumerate(variants):
                if g not in v.carriers:
                    continue
                if v.kind == "snv" and v.position == start and stop == start + 1:
                    walk.append(alt_nodes[v_idx])
                    consumed = True
                    break
                if v.kind == "del" and v.position == start:
                    # Skip backbone segments covering [position, position+length).
                    skip_until = v.position + v.length
                    while seg_idx < len(segment_spans) and segment_spans[seg_idx][1] <= skip_until:
                        seg_idx += 1
                    consumed = True
                    seg_idx -= 1  # compensate the outer increment
                    break
            if not consumed:
                walk.append(segment_ids[seg_idx])
            # Insertions apply after the segment that ends at their position.
            for v_idx, v in enumerate(variants):
                if v.kind == "ins" and g in v.carriers and v.position == segment_spans[seg_idx][1]:
                    walk.append(alt_nodes[v_idx])
            seg_idx += 1
        # Leading insertion at position 0.
        for v_idx, v in enumerate(variants):
            if v.kind == "ins" and g in v.carriers and v.position == 0:
                walk.insert(0, alt_nodes[v_idx])
        builder.add_genome(genome_names[g], walk)
    return builder.graph


def figure1_example() -> VariationGraph:
    """The small variation graph of the paper's Fig. 1.

    Three genomes over eight nodes: an insertion (``T``), an SNV (``C``/``G``)
    and a deletion, matching the walks listed in the figure.
    """
    builder = GraphBuilder()
    v0 = builder.new_node("AA")     # shared prefix
    v1 = builder.new_node("T")      # insertion carried by path2
    v2 = builder.new_node("GC")     # shared
    v3 = builder.new_node("C")      # SNV allele (path2)
    v4 = builder.new_node("G")      # SNV allele (path0, path1)
    v5 = builder.new_node("CA")     # shared
    v6 = builder.new_node("AA")     # deleted in path1
    v7 = builder.new_node("C")      # shared suffix
    builder.add_genome("path0", [v0, v2, v4, v5, v6, v7])
    builder.add_genome("path1", [v0, v2, v4, v5, v7])
    builder.add_genome("path2", [v0, v1, v2, v3, v5, v6, v7])
    return builder.graph
