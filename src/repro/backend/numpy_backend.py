"""The always-available NumPy reference backend.

This backend *is* the historical implementation: every override below issues
the exact NumPy call sequence the pre-backend hot path used, so layouts on
the default backend are byte-identical to the seed implementation and the
committed smoke baseline does not move. Other backends are validated against
this one (registry self-test + ``tests/test_conformance.py``).

The fused iteration path (``run_iteration``, inherited from the generic
base) is held to the same bar: it re-expresses the historical per-batch
call sequence segment by segment — one vectorised selection pass (every
selection op is elementwise, so per-term values cannot change) followed by
the ordinary per-segment displacement/merge kernels — making fused layouts
byte-identical to unfused ones on this backend. The same argument covers
the chunked fused path (``LayoutParams.memory_budget``): chunk boundaries
are segment boundaries and the bulk PRNG draw is interchangeable
mid-stream, so budgeted layouts are byte-identical to unbudgeted ones here
for every budget — the anchor the chunk-boundary property tests pin.
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Host-resident reference backend over plain NumPy."""

    name = "numpy"
    xp = np

    # Transfers are identities: coordinate state already lives on the host,
    # and returning the input array keeps in-place updates visible.
    def from_host(self, a: np.ndarray) -> np.ndarray:
        return a

    def to_host(self, a: np.ndarray) -> np.ndarray:
        return a

    def compact_points(self, points) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        # One sort-based pass; identical to the historical compact_points.
        points = np.asarray(points)
        unique_points, inverse = np.unique(points, return_inverse=True)
        counts = np.bincount(inverse, minlength=unique_points.size)
        return unique_points, inverse, counts

    def rowwise_sqnorm(self, a, out=None) -> np.ndarray:
        # einsum with ``out=`` is both the fastest NumPy spelling and the
        # historical one; the generic ``(a*a).sum(axis=1)`` is numerically
        # identical (two-term sums) but allocates a temporary.
        return np.einsum("ij,ij->i", a, a, out=out)

    def merge_scatter(self, coords, touched, inverse, counts, all_deltas,
                      merge: str) -> None:
        if merge == "accumulate":
            coords[touched, 0] += np.bincount(inverse, weights=all_deltas[:, 0])
            coords[touched, 1] += np.bincount(inverse, weights=all_deltas[:, 1])
        elif merge == "hogwild":
            coords[touched, 0] += np.bincount(inverse, weights=all_deltas[:, 0]) / counts
            coords[touched, 1] += np.bincount(inverse, weights=all_deltas[:, 1]) / counts
        elif merge == "last_writer":
            last = np.empty(touched.size, dtype=np.int64)
            last[inverse] = np.arange(all_deltas.shape[0])
            coords[touched] += all_deltas[last]
        else:  # pragma: no cover - callers validate before dispatch
            raise ValueError(f"unknown merge policy {merge!r}")
