"""The analysis engine: walk files, run checkers, apply pragmas + baseline.

One :func:`run_analysis` call produces an :class:`AnalysisReport`:

1. every ``.py`` file under the requested paths is parsed once
   (:mod:`repro.analysis.source`);
2. each registered file-scope checker runs over each file, project-scope
   checkers run once over the whole set;
3. per-line pragmas with valid (nonempty) reasons suppress matching
   findings; pragmas *without* a reason suppress nothing and are reported
   as ``PRAGMA001`` errors — the reason is the documentation;
4. the suppression baseline (grandfathered sites) removes known findings
   and reports entries that no longer match as stale.

Exit semantics (mirrored by ``repro analyze``): ``error`` findings always
fail; ``warning`` findings and stale baseline entries fail only under
``--strict`` — which is how CI runs it.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .baseline import Baseline, BaselineEntry
from .pragmas import Pragma, scan_pragmas
from .registry import REGISTRY, CheckerRegistry, Finding, load_builtin_checkers
from .source import SourceFile, collect_python_files, load_source_file

__all__ = ["AnalysisReport", "run_analysis", "REPORT_VERSION"]

REPORT_VERSION = 1


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed_by_pragma: int = 0
    suppressed_by_baseline: int = 0
    stale_baseline_entries: List[BaselineEntry] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: List[str] = field(default_factory=list)
    baseline_path: str = ""

    # ------------------------------------------------------------- verdicts
    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0}
        for f in self.findings:
            out[f.severity] = out.get(f.severity, 0) + 1
        return out

    def exit_code(self, strict: bool = False) -> int:
        counts = self.counts()
        if counts.get("error", 0):
            return 1
        if strict and (counts.get("warning", 0) or self.stale_baseline_entries):
            return 1
        return 0

    # ------------------------------------------------------------ rendering
    def format_text(self, strict: bool = False) -> str:
        lines = []
        for f in self.findings:
            lines.append(f"{f.location()}: {f.rule} {f.severity}: {f.message}")
            if f.snippet:
                lines.append(f"    {f.snippet}")
        for entry in self.stale_baseline_entries:
            lines.append(
                f"{entry.path}: stale baseline entry for {entry.rule} "
                f"({entry.snippet!r} matches nothing — prune it from "
                f"{self.baseline_path or 'the baseline'})")
        counts = self.counts()
        verdict = "FAIL" if self.exit_code(strict) else "OK"
        lines.append(
            f"{verdict}: {len(self.findings)} finding(s) "
            f"({counts.get('error', 0)} error, {counts.get('warning', 0)} warning) "
            f"in {self.files_analyzed} file(s); "
            f"{self.suppressed_by_pragma} suppressed by pragma, "
            f"{self.suppressed_by_baseline} by baseline"
            + (f", {len(self.stale_baseline_entries)} stale baseline entrie(s)"
               if self.stale_baseline_entries else ""))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "files_analyzed": self.files_analyzed,
            "rules": list(self.rules_run),
            "counts": self.counts(),
            "suppressed": {
                "pragma": self.suppressed_by_pragma,
                "baseline": self.suppressed_by_baseline,
            },
            "stale_baseline_entries": [e.to_dict()
                                       for e in self.stale_baseline_entries],
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def _pragma_findings(src: SourceFile,
                     pragmas: Dict[int, List[Pragma]]) -> List[Finding]:
    """PRAGMA001: a recognised pragma token without the mandatory reason."""
    out = []
    for line_pragmas in pragmas.values():
        for pragma in line_pragmas:
            if not pragma.valid:
                out.append(Finding(
                    rule="PRAGMA001",
                    path=src.rel,
                    line=pragma.line,
                    col=0,
                    severity="error",
                    message=(f"pragma '{pragma.token}' requires a reason: "
                             f"write '# {pragma.token}: <why this site is "
                             "exempt>' — reasonless suppressions are not "
                             "honoured"),
                    snippet=src.snippet(pragma.line),
                ))
    return out


def _apply_pragmas(findings: List[Finding], registry: CheckerRegistry,
                   pragmas_by_file: Dict[str, Dict[int, List[Pragma]]]
                   ) -> tuple:
    """Drop findings whose line (or the standalone comment directly above)
    carries that rule's pragma token with a valid reason."""
    covered: Dict[str, Dict[int, set]] = {}
    for rel, pragmas in pragmas_by_file.items():
        per_line: Dict[int, set] = {}
        for line_pragmas in pragmas.values():
            for pragma in line_pragmas:
                if pragma.valid:
                    for line in pragma.lines_covered():
                        per_line.setdefault(line, set()).add(pragma.token)
        covered[rel] = per_line
    kept: List[Finding] = []
    suppressed = 0
    for f in findings:
        token = registry.pragma_for(f.rule)
        if token and token in covered.get(f.path, {}).get(f.line, set()):
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


def run_analysis(
    paths: List[str],
    baseline: Optional[Baseline] = None,
    registry: Optional[CheckerRegistry] = None,
) -> AnalysisReport:
    """Analyse ``paths`` (files or directories) and return the report.

    ``registry`` defaults to the global registry with the built-in checkers
    loaded; tests pass their own to pin the rule set.
    """
    if registry is None:
        registry = load_builtin_checkers()
    elif registry is REGISTRY:
        load_builtin_checkers()

    files = [load_source_file(p) for p in collect_python_files(paths)]
    tokens = registry.pragma_tokens()

    findings: List[Finding] = []
    pragmas_by_file: Dict[str, Dict[int, List[Pragma]]] = {}
    parsed: List[SourceFile] = []
    for src in files:
        if src.tree is None:
            findings.append(Finding(
                rule="PARSE001", path=src.rel, line=1, col=0, severity="error",
                message=f"file does not parse: {src.parse_error}"))
            continue
        parsed.append(src)
        pragmas = scan_pragmas(src.lines, tokens)
        pragmas_by_file[src.rel] = pragmas
        findings.extend(_pragma_findings(src, pragmas))
        for chk in registry.checkers():
            if chk.scope == "file":
                findings.extend(chk.func(src))
    for chk in registry.checkers():
        if chk.scope == "project":
            findings.extend(chk.func(parsed))

    findings, n_pragma = _apply_pragmas(findings, registry, pragmas_by_file)

    suppressed_by_baseline = 0
    stale: List[BaselineEntry] = []
    if baseline is not None:
        findings, suppressed, stale = baseline.apply(findings)
        suppressed_by_baseline = len(suppressed)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return AnalysisReport(
        findings=findings,
        suppressed_by_pragma=n_pragma,
        suppressed_by_baseline=suppressed_by_baseline,
        stale_baseline_entries=stale,
        files_analyzed=len(files),
        rules_run=registry.rules(),
        baseline_path=baseline.path if baseline is not None else "",
    )
