"""Peak-memory accounting for layout runs and benchmarks.

The chunked fused path (PR 8) turns memory into a gated quantity like wall
time: a run's peak transient footprint must stay bounded by
``LayoutParams.memory_budget`` instead of scaling with terms-per-iteration.
This module is the measurement side of that contract, combining two
complementary probes:

* **traced peak** (``tracemalloc``) — machine-portable. NumPy routes array
  buffer allocation through ``PyTraceMalloc_Track``, so the traced peak
  captures the fused path's transient megablocks exactly, independent of
  allocator reuse, OS page accounting, or whatever else the process mapped
  before the run. Tracing costs real overhead, so layout engines only
  *read* it when a caller (the ``scale`` bench suite, a test) already
  switched tracing on — timing runs stay untraced.
* **max RSS** (``resource.getrusage``) — the OS's resident high-water mark.
  Free to read but monotonic per process and POSIX-only, so it is reported
  as supporting evidence, never gated across machines.

Kept dependency-free and importable from :mod:`repro.core` without cycles.
"""
from __future__ import annotations

import sys
import tracemalloc
from typing import Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None

__all__ = ["PeakTracker", "max_rss_bytes"]

# Linux reports ru_maxrss in kilobytes, macOS in bytes (getrusage(2)).
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


def max_rss_bytes() -> Optional[int]:
    """Process resident-set high-water mark in bytes (None off-POSIX)."""
    if resource is None:  # pragma: no cover - exercised on non-POSIX only
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * _RU_MAXRSS_UNIT


class PeakTracker:
    """Measure the peak memory of a code region.

    Usage::

        with PeakTracker(trace=True) as mem:
            result = engine.run()
        mem.traced_peak_bytes   # allocation high-water delta over the region
        mem.rss_peak_bytes      # process max RSS at region exit (monotonic)

    ``trace`` controls the ``tracemalloc`` probe: ``True`` starts tracing
    for the region (and stops it again if this tracker started it),
    ``False`` never traces, and ``None`` — the engine default — piggybacks
    on tracing only if a caller already enabled it, so plain runs pay no
    tracing overhead. The traced figure is a *delta*: the peak is reset at
    region entry, so pre-existing allocations (the graph, the coordinate
    arrays) do not drown out the region's own transients. Trackers nest:
    an inner region's reset only narrows what an outer tracker attributes
    to the span before its own exit, and the outer baseline is unaffected.
    """

    def __init__(self, trace: Optional[bool] = None):
        self.trace = trace
        self.traced_peak_bytes: Optional[int] = None
        self.rss_peak_bytes: Optional[int] = None
        self._tracing = False
        self._started_tracing = False
        self._baseline = 0

    def start(self) -> "PeakTracker":
        self._tracing = (tracemalloc.is_tracing() if self.trace is None
                         else bool(self.trace))
        if self._tracing:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracing = True
            tracemalloc.reset_peak()
            self._baseline = tracemalloc.get_traced_memory()[0]
        return self

    def stop(self) -> "PeakTracker":
        if self._tracing and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.traced_peak_bytes = max(0, peak - self._baseline)
            if self._started_tracing:
                tracemalloc.stop()
        self._tracing = False
        self.rss_peak_bytes = max_rss_bytes()
        return self

    def as_counters(self) -> dict:
        """Measured peaks as high-water counter entries (absent probes
        omitted), in the key vocabulary ``LayoutResult.summary()`` pins."""
        out = {}
        if self.rss_peak_bytes is not None:
            out["peak_rss_bytes"] = float(self.rss_peak_bytes)
        if self.traced_peak_bytes is not None:
            out["traced_peak_bytes"] = float(self.traced_peak_bytes)
        return out

    def __enter__(self) -> "PeakTracker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
