"""Table I — properties of the representative pangenomes.

Prints nucleotides / nodes / edges / paths for the HLA-DRB1-, MHC- and
Chr.1-like synthetic graphs next to the paper's full-scale values, and
benchmarks the statistics computation itself.
"""
from __future__ import annotations

import pytest

from repro.bench import format_sci, format_table
from repro.graph import compute_stats
from repro.synth import REPRESENTATIVE_SPECS


@pytest.mark.paper_table("Table I")
def test_table01_graph_properties(benchmark, representative_graphs):
    rows = []

    def compute_all():
        return {name: compute_stats(g, name) for name, g in representative_graphs.items()}

    stats = benchmark(compute_all)

    for name, st in stats.items():
        paper = REPRESENTATIVE_SPECS[name].paper
        rows.append([
            name,
            format_sci(st.n_nucleotides), format_sci(paper.n_nucleotides),
            format_sci(st.n_nodes), format_sci(paper.n_nodes),
            format_sci(st.n_edges), format_sci(paper.n_edges),
            st.n_paths, int(paper.n_paths),
            round(st.avg_degree, 2),
        ])
        # The representative graphs must keep the paper's size ordering and
        # sparsity even at reduced scale.
        assert st.avg_degree < 4.0
        assert st.density < 0.05
    assert stats["HLA-DRB1"].n_nucleotides < stats["MHC"].n_nucleotides < stats["Chr.1"].n_nucleotides
    assert stats["HLA-DRB1"].n_nodes < stats["Chr.1"].n_nodes

    print()
    print(format_table(
        ["Pangenome", "#Nuc", "#Nuc(paper)", "#Nodes", "#Nodes(paper)",
         "#Edges", "#Edges(paper)", "#Paths", "#Paths(paper)", "deg"],
        rows,
        title="Table I: properties of representative pangenomes (scaled reproduction vs paper)",
    ))
