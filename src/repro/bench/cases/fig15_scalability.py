"""Fig. 15 — scalability of CPU and GPU run time with total path length.

The paper shows both the CPU baseline and the GPU implementation scaling
linearly with total path length (the number of updates is proportional to
Σ|p|). This case evaluates the performance model across the chromosome suite
and fits the run-time-vs-path-length relationship.
"""
from __future__ import annotations

import numpy as np

from ..perfmodel import evaluate_graph_performance
from ..registry import CaseResult, bench_case
from ..tables import format_table


@bench_case("fig15_scalability", source="Fig. 15", suites=("figures",))
def run(ctx) -> CaseResult:
    """CPU and GPU run times scale linearly with total path length."""
    params = ctx.bench_params
    points = []
    for name, graph in ctx.chromosome_graphs.items():
        report = evaluate_graph_performance(graph, name, params,
                                            n_trace_terms=384, cpu_threads=32,
                                            seed=ctx.seed_for("fig15/profile"))
        points.append((name, graph.total_steps, report.cpu.total_s,
                       report.gpu["A6000"].total_s))
    points.sort(key=lambda p: p[1])

    lengths = np.array([p[1] for p in points], dtype=float)
    cpu_times = np.array([p[2] for p in points])
    gpu_times = np.array([p[3] for p in points])

    # Linear-fit quality (R^2) for run time vs total path length.
    def r_squared(x, y):
        coeffs = np.polyfit(x, y, 1)
        pred = np.polyval(coeffs, x)
        ss_res = np.sum((y - pred) ** 2)
        ss_tot = np.sum((y - y.mean()) ** 2)
        return 1 - ss_res / ss_tot, coeffs

    cpu_r2, cpu_fit = r_squared(lengths, cpu_times)
    gpu_r2, gpu_fit = r_squared(lengths, gpu_times)

    rows = [[name, steps, f"{cpu_s:.3g}", f"{gpu_s:.3g}"]
            for name, steps, cpu_s, gpu_s in points[:: max(1, len(points) // 12)]]
    rows.append(["R^2 of linear fit", "-", f"{cpu_r2:.3f}", f"{gpu_r2:.3f}"])

    # Fig. 15: both implementations scale linearly in total path length.
    assert cpu_r2 > 0.85
    assert gpu_r2 > 0.85
    assert cpu_fit[0] > 0 and gpu_fit[0] > 0
    # And the CPU is uniformly slower than the GPU.
    assert np.all(cpu_times > gpu_times)

    out = CaseResult()
    out.add("cpu_fit_r2", float(cpu_r2), direction="higher")
    out.add("gpu_fit_r2", float(gpu_r2), direction="higher")
    out.add("cpu_total_s", float(cpu_times.sum()), unit="s(model)", direction="lower")
    out.add("gpu_total_s", float(gpu_times.sum()), unit="s(model)", direction="lower")
    out.tables.append(format_table(
        ["Pangenome", "Total path steps", "CPU time (s)", "A6000 time (s)"],
        rows,
        title="Fig. 15: run time vs total path length (linear scaling)",
    ))
    return out
