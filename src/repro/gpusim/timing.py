"""Analytical run-time model for CPU and GPU execution of the layout workload.

No GPU (and only one CPU core) is available in this environment, so absolute
run times cannot be measured. Instead, the run time of a layout on a given
:class:`~repro.gpusim.device.DeviceSpec` is *modelled* from first principles:

* the workload issues ``N_terms`` update terms (Alg. 1: ``iter_max × 10 ×
  Σ|p|``), each needing a handful of irregular memory accesses and a few tens
  of FLOPs;
* a latency-bound model for CPUs — each hardware thread walks a chain of
  dependent random accesses whose average latency follows from the measured
  LLC miss rate;
* a throughput-bound (roofline) model for GPUs — enough warps are in flight
  to hide latency, so time is the max of the DRAM-traffic time, the L2 time
  and the compute time, plus kernel-launch overhead;
* an efficiency factor derived from the measured counters (sectors/request,
  active threads/warp) so the three kernel optimisations change the modelled
  time the way they change the paper's measured time.

The model is calibrated once (constants below) against the paper's Table VII
geometric means; per-chromosome numbers then follow from each graph's own
counters. EXPERIMENTS.md records modelled-vs-paper values for every row.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .device import DeviceSpec
from .profiler import MemoryTrafficProfile, WorkloadCounters

__all__ = ["TimingBreakdown", "cpu_runtime", "gpu_runtime", "hogwild_thread_scaling"]

# Calibration constants (dimensionless). See DESIGN.md §4: ratios, not
# absolute times, are the reproduction target.
_CPU_DISPATCH_OVERHEAD_CYCLES = 30.0     # per term: loop, PRNG, bookkeeping
_CPU_DRAM_LATENCY_NS = 90.0
_CPU_LLC_LATENCY_NS = 20.0
_CPU_MLP = 2.1                            # memory-level parallelism per thread
_GPU_LAUNCH_SYNC_FACTOR = 1.05            # inter-iteration sync slack
_GPU_IRREGULARITY_PENALTY = 1.35          # uncoalesced access slowdown floor


@dataclass
class TimingBreakdown:
    """Modelled run time and its components (seconds)."""

    total_s: float
    memory_s: float
    compute_s: float
    overhead_s: float
    device: str
    detail: Dict[str, float]

    def speedup_over(self, other: "TimingBreakdown") -> float:
        """Speedup of this device relative to ``other`` (other/self)."""
        if self.total_s <= 0:
            return float("inf")
        return other.total_s / self.total_s


def cpu_runtime(
    device: DeviceSpec,
    n_terms: float,
    traffic: MemoryTrafficProfile,
    counters: Optional[WorkloadCounters] = None,
    n_threads: Optional[int] = None,
) -> TimingBreakdown:
    """Latency-bound CPU model (odgi-layout style Hogwild threads)."""
    counters = counters or WorkloadCounters()
    threads = n_threads if n_threads is not None else device.n_sms
    threads = max(1, min(threads, device.n_sms))
    miss_rate = traffic.llc_miss_rate
    # Average latency of one irregular load seen by a thread.
    avg_latency_ns = miss_rate * _CPU_DRAM_LATENCY_NS + (1 - miss_rate) * _CPU_LLC_LATENCY_NS
    # Long-latency loads per term: prefer the measured LLC-load count (which
    # reflects the node-data layout — the cache-friendly layout issues fewer
    # loads per term); fall back to the static workload counters otherwise.
    if traffic.llc_loads > 0 and n_terms > 0:
        loads_per_term = traffic.llc_loads / n_terms + counters.rng_loads_per_term * 0.25
    else:
        loads_per_term = counters.node_loads_per_term + counters.rng_loads_per_term * 0.25
    mem_ns_per_term = loads_per_term * avg_latency_ns / _CPU_MLP
    compute_ns_per_term = (
        counters.flops_per_term / device.flops_per_cycle_per_sm + _CPU_DISPATCH_OVERHEAD_CYCLES
    ) / device.clock_ghz
    per_term_ns = mem_ns_per_term + compute_ns_per_term
    # Threads work independently; DRAM bandwidth caps aggregate throughput.
    parallel_ns = per_term_ns * n_terms / threads
    dram_ns = (n_terms * counters.bytes_per_term * 1.2) / (device.dram_bandwidth_gbs) \
        if device.dram_bandwidth_gbs > 0 else 0.0
    memory_s = max(mem_ns_per_term * n_terms / threads, dram_ns) * 1e-9
    compute_s = compute_ns_per_term * n_terms / threads * 1e-9
    total_s = max(parallel_ns * 1e-9, memory_s)
    return TimingBreakdown(
        total_s=total_s,
        memory_s=memory_s,
        compute_s=compute_s,
        overhead_s=0.0,
        device=device.name,
        detail={
            "threads": float(threads),
            "avg_latency_ns": avg_latency_ns,
            "per_term_ns": per_term_ns,
            "llc_miss_rate": miss_rate,
        },
    )


def gpu_runtime(
    device: DeviceSpec,
    n_terms: float,
    traffic: MemoryTrafficProfile,
    counters: Optional[WorkloadCounters] = None,
    kernel_launches: int = 31,
    sectors_per_request: Optional[float] = None,
    avg_active_threads: float = 32.0,
    warp_size: int = 32,
    launch_overhead_scale: float = 1.0,
) -> TimingBreakdown:
    """Throughput-bound GPU model with coalescing/divergence efficiency factors.

    ``launch_overhead_scale`` scales the fixed per-launch cost; profiles built
    on scaled-down datasets pass the dataset's scale factor here so that fixed
    costs shrink with the problem, preserving the full-scale time ratios (the
    same convention as the scaled cache capacities — see DESIGN.md §4).
    """
    counters = counters or WorkloadCounters()
    spr = sectors_per_request if sectors_per_request is not None else traffic.sectors_per_request
    if spr <= 0:
        spr = 4.0  # fully coalesced float32 accesses
    # Coalescing efficiency: 4 sectors/request is ideal for 4-byte accesses.
    coalescing_penalty = max(1.0, spr / 4.0) ** 0.5
    divergence_penalty = warp_size / max(min(avg_active_threads, warp_size), 1.0)

    dram_time = traffic.dram_bytes / (device.dram_bandwidth_gbs * 1e9)
    l2_time = traffic.l2_bytes / (device.l2_bandwidth_gbs * 1e9)
    flops = n_terms * counters.flops_per_term * divergence_penalty
    compute_time = flops / (device.peak_gflops * 1e9)
    # Divergence also throttles the memory pipeline: masked-off lanes issue no
    # loads, so fewer requests are in flight to hide latency. The square-root
    # form keeps the effect milder on the (bandwidth-bound) memory time than
    # on the compute time, matching the ~1.1x run-time gain the paper measures
    # for warp merging on a memory-bound kernel (Table XI).
    memory_s = (
        max(dram_time, l2_time)
        * _GPU_IRREGULARITY_PENALTY
        * coalescing_penalty
        * divergence_penalty ** 0.5
    )
    overhead_s = kernel_launches * device.kernel_launch_overhead_us * 1e-6 * launch_overhead_scale
    total_s = (max(memory_s, compute_time) + overhead_s) * _GPU_LAUNCH_SYNC_FACTOR
    return TimingBreakdown(
        total_s=total_s,
        memory_s=memory_s,
        compute_s=compute_time,
        overhead_s=overhead_s,
        device=device.name,
        detail={
            "sectors_per_request": spr,
            "coalescing_penalty": coalescing_penalty,
            "divergence_penalty": divergence_penalty,
            "kernel_launches": float(kernel_launches),
            "dram_time_s": dram_time,
            "l2_time_s": l2_time,
        },
    )


def hogwild_thread_scaling(
    base: TimingBreakdown,
    thread_counts: np.ndarray,
    reference_threads: int,
    memory_saturation_threads: float = 64.0,
) -> Dict[int, float]:
    """Run times at different thread counts from one reference measurement.

    Models the near-linear scaling of Fig. 4 with a mild saturation term
    (shared DRAM bandwidth): ``T(t) = T(ref) · ref_eff / eff(t)`` with
    ``eff(t) = t / (1 + t / saturation)``.
    """
    def eff(t: float) -> float:
        return t / (1.0 + t / memory_saturation_threads)

    ref_eff = eff(reference_threads)
    out: Dict[int, float] = {}
    for t in np.asarray(thread_counts, dtype=np.int64).tolist():
        if t < 1:
            raise ValueError("thread counts must be >= 1")
        out[int(t)] = base.total_s * ref_eff / eff(float(t))
    return out
