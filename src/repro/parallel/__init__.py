"""Parallel-execution substrate: Hogwild collision analysis and thread-scaling models."""
from .hogwild import CollisionReport, expected_collision_probability, measure_collisions
from .scaling import (
    ThreadScalingResult,
    cpu_thread_scaling,
    chunk_schedule,
    cpu_cache_profile,
)

__all__ = [
    "CollisionReport",
    "expected_collision_probability",
    "measure_collisions",
    "ThreadScalingResult",
    "cpu_thread_scaling",
    "chunk_schedule",
    "cpu_cache_profile",
]
