"""Backend registry: named factories, lazy instantiation, self-test gating.

The registry is the single place the rest of the codebase asks for an
execution backend:

* :func:`get_backend` resolves a name (explicit argument →
  ``REPRO_BACKEND`` environment variable → ``"numpy"``) to a cached
  :class:`~repro.backend.base.ArrayBackend` instance. The first request for
  a backend runs its factory *and its self-test*; a backend whose toolchain
  is missing or broken raises :class:`BackendUnavailable` with the recorded
  reason — every time, cheaply, without re-probing the import.
* :func:`register_backend` adds a factory. Optional backends register a
  factory whose import failures surface at instantiation time, so merely
  importing :mod:`repro.backend` never imports numba or cupy.
* :func:`available_backends` probes every registered factory and returns the
  names that instantiate and pass their self-test — what the conformance
  suite parametrises over (unavailable ones become pytest skips, not
  failures).

Registering a new backend (the contract any future backend PR follows)::

    from repro.backend import ArrayBackend, register_backend

    class MyBackend(ArrayBackend):
        name = "mine"
        xp = my_array_namespace

    register_backend("mine", MyBackend)

The self-test (``ArrayBackend.self_test``) runs automatically at first use;
the cross-engine conformance suite (``tests/test_conformance.py``) picks the
new name up from the registry with no test changes.
"""
from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from .base import ArrayBackend

__all__ = [
    "BackendUnavailable",
    "register_backend",
    "get_backend",
    "backend_names",
    "available_backends",
    "backend_failures",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
]

#: Name resolved when neither the caller nor the environment picks one.
DEFAULT_BACKEND = "numpy"

#: Environment variable consulted when no explicit backend name is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendUnavailable(RuntimeError):
    """The requested backend is unknown, missing its toolchain, or failed
    its registration self-test. The message carries the recorded reason."""


_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
_FAILURES: Dict[str, str] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend],
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name`` (instantiated lazily, self-tested).

    ``replace=True`` overwrites an existing registration and drops any cached
    instance or failure record — used by tests and by callers shipping a
    tuned variant of a stock backend.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    if name in _FACTORIES and not replace:
        raise ValueError(f"backend {name!r} is already registered "
                         "(pass replace=True to override)")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    _FAILURES.pop(name, None)


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Apply the resolution order: explicit name → environment → default."""
    if name:
        return name
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Resolve and return a ready (instantiated, self-tested) backend.

    Raises
    ------
    BackendUnavailable
        If the resolved name is not registered, or its factory/self-test
        failed (the original failure reason is preserved across calls).
    """
    resolved = resolve_backend_name(name)
    instance = _INSTANCES.get(resolved)
    if instance is not None:
        return instance
    if resolved in _FAILURES:
        raise BackendUnavailable(
            f"backend {resolved!r} is unavailable: {_FAILURES[resolved]}")
    factory = _FACTORIES.get(resolved)
    if factory is None:
        raise BackendUnavailable(
            f"unknown backend {resolved!r}; registered: {', '.join(backend_names())}")
    try:
        instance = factory()
        instance.self_test()
    except Exception as exc:  # record once; later calls fail fast
        _FAILURES[resolved] = f"{type(exc).__name__}: {exc}"
        raise BackendUnavailable(
            f"backend {resolved!r} is unavailable: {_FAILURES[resolved]}") from exc
    _INSTANCES[resolved] = instance
    return instance


def backend_names() -> Tuple[str, ...]:
    """Names of all registered backends (available or not), numpy first."""
    names = sorted(_FACTORIES, key=lambda n: (n != DEFAULT_BACKEND, n))
    return tuple(names)


def available_backends() -> List[str]:
    """Registered backends that instantiate and pass their self-test."""
    out = []
    for name in backend_names():
        try:
            get_backend(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return out


def backend_failures() -> Dict[str, str]:
    """Probe every registered backend; map unavailable names to reasons."""
    for name in backend_names():
        try:
            get_backend(name)
        except BackendUnavailable:
            pass
    return dict(_FAILURES)
