"""Fig. 4 — thread scaling of the odgi-layout CPU baseline.

Models the 1→32 thread run times of the three representative graphs from the
measured cache profile of the actual workload (see DESIGN.md: only one
physical core is available, so the scaling curve comes from the calibrated
latency/bandwidth model) and benchmarks the counter-collection pass.
"""
from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.parallel import cpu_thread_scaling

THREADS = [1, 2, 4, 8, 16, 32]


@pytest.mark.paper_table("Fig. 4")
def test_fig04_cpu_thread_scaling(benchmark, representative_graphs, bench_params):
    def profile_all():
        return {
            name: cpu_thread_scaling(graph, name, bench_params,
                                     thread_counts=THREADS, n_trace_terms=1024)
            for name, graph in representative_graphs.items()
        }

    results = benchmark.pedantic(profile_all, rounds=3, iterations=1)

    rows = []
    for name, res in results.items():
        speedups = res.speedup()
        rows.append([name] + [f"{res.times_s[t]:.3g}s" for t in THREADS]
                    + [f"{speedups[32]:.1f}x"])
        # Fig. 4: near-linear scaling with threads on every graph.
        assert speedups[2] > 1.6
        assert speedups[8] > 5.0
        assert speedups[32] > 12.0
        # Larger graphs take longer at every thread count.
    assert results["Chr.1"].times_s[32] > results["HLA-DRB1"].times_s[32]

    print()
    print(format_table(
        ["Pangenome"] + [f"{t} thr" for t in THREADS] + ["speedup@32"],
        rows,
        title="Fig. 4: modelled odgi-layout run time vs thread count",
    ))
