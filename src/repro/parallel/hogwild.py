"""Hogwild! asynchronous-update emulation and collision analysis.

odgi-layout parallelises Alg. 1's inner loop across CPU threads with no
synchronisation (Recht et al.'s Hogwild! scheme). The paper's justification
(Sec. III-A) is statistical: pangenome graphs are so sparse that the
probability of two concurrent updates touching the same node is negligible,
so the racy updates almost never interfere.

This module quantifies that argument for any graph: given a concurrency
level, it estimates (analytically) and measures (empirically, over sampled
batches) the probability that two in-flight updates collide on a
visualisation point. The batched engines use the same collision counters to
explain why very large batches (Table III) start degrading quality.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backend import ArrayBackend, get_backend
from ..core.params import LayoutParams
from ..core.selection import PairSampler
from ..core.updates import compact_points
from ..graph.lean import LeanGraph
from ..prng.xoshiro import Xoshiro256Plus

__all__ = ["CollisionReport", "expected_collision_probability", "measure_collisions"]


@dataclass(frozen=True)
class CollisionReport:
    """Collision statistics for a given concurrency level."""

    concurrency: int
    n_batches: int
    mean_colliding_fraction: float
    max_colliding_fraction: float
    expected_fraction: float


def expected_collision_probability(n_nodes: int, concurrency: int) -> float:
    """Analytic probability that a term's endpoints collide with another term.

    With ``c`` concurrent terms, each touching 2 of ``2·N`` visualisation
    points chosen approximately uniformly, the chance that a given term
    shares a point with at least one other term is
    ``1 − (1 − 2/(2N))^(2(c−1)) ≈ 1 − exp(−2(c−1)/N)``.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if concurrency == 1:
        return 0.0
    return float(1.0 - np.exp(-2.0 * (concurrency - 1) / n_nodes))


def measure_collisions(
    graph: LeanGraph,
    concurrency: int,
    n_batches: int = 16,
    params: Optional[LayoutParams] = None,
    seed: int = 0,
    backend: Optional[ArrayBackend] = None,
) -> CollisionReport:
    """Empirically measure endpoint collisions among ``concurrency`` in-flight terms."""
    params = params or LayoutParams()
    be = backend if backend is not None else get_backend(params.backend)
    sampler = PairSampler(graph, params, backend=be)
    rng = Xoshiro256Plus(seed, n_streams=min(concurrency, 1024))
    fractions = []
    for b in range(n_batches):
        batch = sampler.sample(rng, concurrency, iteration=0)
        points = np.concatenate([  # xp-ok: batch index arrays are host-resident by the sampler contract
            2 * batch.node_i + batch.vis_i,
            2 * batch.node_j + batch.vis_j,
        ])
        # Same touched-point compaction the update hot path uses.
        _, _, counts = compact_points(points, backend=be)
        counts = be.to_host(counts)
        colliding_points = counts[counts > 1].sum()
        fractions.append(colliding_points / points.size)
    fractions_arr = np.asarray(fractions)  # xp-ok: reduces a Python list of host floats
    return CollisionReport(
        concurrency=concurrency,
        n_batches=n_batches,
        mean_colliding_fraction=float(fractions_arr.mean()),
        max_colliding_fraction=float(fractions_arr.max()),
        expected_fraction=expected_collision_probability(graph.n_nodes, concurrency),
    )
