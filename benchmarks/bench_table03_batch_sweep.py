"""Pytest shim for the table03_batch_sweep benchmark case.

The case body lives in :mod:`repro.bench.cases.table03_batch_sweep`. Run it directly
with ``python benchmarks/bench_table03_batch_sweep.py``, through ``pytest
benchmarks/bench_table03_batch_sweep.py``, or as part of ``repro bench run``.
"""
from __future__ import annotations

import pytest

from repro.bench.cases.table03_batch_sweep import run as case_run

_CASE = case_run.case


@pytest.mark.paper_table(_CASE.source)
def test_table03_batch_sweep(bench_ctx):
    result = _CASE.run(bench_ctx)
    for table in result.tables:
        print()
        print(table)


if __name__ == "__main__":
    from repro.bench.runner import run_case

    run_case(_CASE.name)
