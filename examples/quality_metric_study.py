#!/usr/bin/env python3
"""Layout-quality metric study: path stress, sampling, and the role of randomness.

Reproduces the paper's Sec. VI analyses on an MHC-like graph:

1. sampled path stress vs exact path stress on layouts of varying quality
   (the Fig. 12 / Fig. 13 story), including the 95% confidence interval of
   every sampled estimate,
2. the Fig. 6 experiment — forcing all node pairs to a fixed hop distance
   removes the randomness the algorithm relies on and prevents convergence,
3. a CPU-vs-GPU rendering comparison (Fig. 14 style) via the raster
   similarity of the two engines' layouts, with SVG output for both.

Run with:  python examples/quality_metric_study.py
Outputs land in ``examples/output/``.
"""
from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.bench import format_table
from repro.core import (
    CpuBaselineEngine,
    LayoutParams,
    OptimizedGpuEngine,
    SerialReferenceEngine,
    initialize_layout,
)
from repro.core.layout import Layout
from repro.metrics import correlation_study, path_stress, sampled_path_stress
from repro.render import layout_similarity, save_svg
from repro.synth import mhc_like

OUTPUT = Path(__file__).parent / "output"


def metric_comparison(graph) -> None:
    rng = np.random.default_rng(0)
    layouts = {
        "random": Layout(rng.uniform(0, 500.0, size=(2 * graph.n_nodes, 2))),
        "initial (path-guided)": initialize_layout(graph, seed=1),
        "optimised": CpuBaselineEngine(
            graph, LayoutParams(iter_max=15, steps_per_step_unit=3.0, seed=2)
        ).run().layout,
    }
    rows = []
    pairs = []
    for label, layout in layouts.items():
        t0 = time.perf_counter()
        exact = path_stress(layout, graph, max_pairs=5_000_000)
        exact_t = time.perf_counter() - t0
        t1 = time.perf_counter()
        sampled = sampled_path_stress(layout, graph, samples_per_step=50, seed=0)
        sampled_t = time.perf_counter() - t1
        pairs.append((exact, sampled.value))
        rows.append([label, f"{exact:.4g}", f"{exact_t:.2f}s", f"{sampled.value:.4g}",
                     f"[{sampled.ci_low:.3g}, {sampled.ci_high:.3g}]", f"{sampled_t:.3f}s"])
    print(format_table(
        ["Layout", "Path stress", "RT", "Sampled", "95% CI", "Sampled RT"],
        rows,
        title="Exact vs sampled path stress (Table V / Fig. 12 style)",
    ))
    print(f"correlation(exact, sampled) over these layouts: {correlation_study(pairs):.3f} "
          "(paper Fig. 13: 0.995)\n")


def randomness_matters(graph) -> None:
    params = LayoutParams(iter_max=8, steps_per_step_unit=1.0, seed=3)
    random_pairs = CpuBaselineEngine(graph, params.with_(iter_max=15,
                                                         steps_per_step_unit=3.0)).run()
    fixed_hop = SerialReferenceEngine(graph, params).run_fixed_hop(hop=10)
    s_random = sampled_path_stress(random_pairs.layout, graph, samples_per_step=20, seed=0)
    s_fixed = sampled_path_stress(fixed_hop.layout, graph, samples_per_step=20, seed=0)
    print("Fig. 6 experiment — randomness is essential to convergence:")
    print(f"  random node-pair selection : sampled path stress {s_random.value:.4g}")
    print(f"  fixed 10-hop selection     : sampled path stress {s_fixed.value:.4g}")
    print(f"  degradation factor         : {s_fixed.value / max(s_random.value, 1e-12):.1f}x\n")


def cpu_vs_gpu_rendering(graph) -> None:
    OUTPUT.mkdir(exist_ok=True)
    params = LayoutParams(iter_max=15, steps_per_step_unit=3.0, seed=4)
    cpu = CpuBaselineEngine(graph, params).run()
    gpu = OptimizedGpuEngine(graph, params).run()
    similarity = layout_similarity(cpu.layout, gpu.layout)
    save_svg(cpu.layout, OUTPUT / "mhc_cpu_layout.svg", graph=graph)
    save_svg(gpu.layout, OUTPUT / "mhc_gpu_layout.svg", graph=graph)
    print("Fig. 14 style comparison — CPU vs GPU layouts of the same graph:")
    print(f"  raster similarity: {similarity:.3f} (1.0 = identical occupancy)")
    print(f"  wrote {OUTPUT / 'mhc_cpu_layout.svg'} and {OUTPUT / 'mhc_gpu_layout.svg'}")


def main() -> None:
    graph = mhc_like(scale=0.06)
    print(f"MHC-like graph: {graph.n_nodes} nodes, {graph.n_paths} paths, "
          f"{graph.total_steps} path steps\n")
    metric_comparison(graph)
    randomness_matters(graph)
    cpu_vs_gpu_rendering(graph)


if __name__ == "__main__":
    main()
