"""Optimized GPU-kernel engine (paper Sec. V) with its three optimisations.

The engine organises every batch of update terms as *warps* of 32 "threads"
(batch entries), exactly as the paper's single CUDA kernel per iteration
does, and exposes toggles for the paper's optimisations:

* **Cache-friendly data layout (CDL)** — node records are declared AoS
  instead of ODGI's SoA. Arithmetic is unchanged; the byte addresses of node
  accesses change, which is what the cache simulator measures (Table IX).
* **Coalesced random states (CRS)** — the per-thread XORWOW state is stored
  SoA so a warp's accesses to one state field are contiguous (Table X).
* **Warp merging (WM)** — one control thread per warp draws the cooling
  branch decision and shares it with its 31 siblings, removing warp
  divergence (Table XI). This changes *which* node pairs are sampled (the
  decision is per warp, not per thread), matching the paper's argument that
  the overall branch mix is preserved across many warps.
* **Warp-shuffle data reuse (DRF / SRF)** — Sec. VII-D's case study: each
  selected node is reused ``DRF`` times to form extra pairs within the warp
  (data comes from other lanes' registers), while the step count per
  iteration shrinks by ``SRF``. Reuse trades randomness (and thus layout
  quality) for speed (Fig. 17).

Numerically the engine runs the same vectorised update as every other
engine; :meth:`OptimizedGpuEngine.profile` generates address traces and
branch masks from a sample of real batches and pushes them through
:mod:`repro.gpusim` to produce the counters and modelled run times the
paper's evaluation reports.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..graph.lean import LeanGraph
from ..prng.xorshift import state_addresses, AOS, SOA
from ..prng.xoshiro import Xoshiro256Plus
from ..gpusim.cache import CacheConfig, CacheHierarchy
from ..gpusim.coalescing import analyze_warp_requests
from ..gpusim.device import DeviceSpec, RTX_A6000
from ..gpusim.profiler import MemoryTrafficProfile, WorkloadCounters
from ..gpusim.timing import TimingBreakdown, gpu_runtime
from ..gpusim.warp import WarpExecutionStats, simulate_warp_execution
from .base import LayoutEngine, split_into_batches
from .layout import NodeDataLayout, node_record_addresses
from .params import LayoutParams
from .selection import StepBatch
from .updates import UpdateWorkspace

__all__ = ["GpuKernelConfig", "GpuProfile", "OptimizedGpuEngine"]


@dataclass(frozen=True)
class GpuKernelConfig:
    """Optimisation toggles of the GPU kernel."""

    cache_friendly_layout: bool = True
    coalesced_random_states: bool = True
    warp_merging: bool = True
    data_reuse_factor: int = 1
    step_reduction_factor: float = 1.0
    warp_size: int = 32
    concurrent_threads: int = 4096
    """Terms processed per simulated kernel wave (controls update staleness)."""

    def __post_init__(self) -> None:
        if self.data_reuse_factor < 1:
            raise ValueError("data_reuse_factor must be >= 1")
        if self.step_reduction_factor < 1.0:
            raise ValueError("step_reduction_factor must be >= 1")
        if self.warp_size < 1:
            raise ValueError("warp_size must be >= 1")
        if self.concurrent_threads < self.warp_size:
            raise ValueError("concurrent_threads must be at least one warp")

    @staticmethod
    def baseline() -> "GpuKernelConfig":
        """The base CUDA kernel: no optimisations enabled."""
        return GpuKernelConfig(
            cache_friendly_layout=False,
            coalesced_random_states=False,
            warp_merging=False,
        )

    def label(self) -> str:
        """Short human-readable description of the enabled optimisations."""
        parts = []
        parts.append("CDL" if self.cache_friendly_layout else "soa")
        parts.append("CRS" if self.coalesced_random_states else "aos-rng")
        parts.append("WM" if self.warp_merging else "diverge")
        if self.data_reuse_factor > 1 or self.step_reduction_factor > 1:
            parts.append(f"reuse({self.data_reuse_factor},{self.step_reduction_factor})")
        return "+".join(parts)


@dataclass
class GpuProfile:
    """Counters and modelled run time of one kernel configuration."""

    config: GpuKernelConfig
    device: DeviceSpec
    n_terms_total: float
    traffic: MemoryTrafficProfile
    node_sectors_per_request: float
    rng_sectors_per_request: float
    warp_stats: WarpExecutionStats
    kernel_launches: int
    timing: TimingBreakdown
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def runtime_s(self) -> float:
        """Modelled run time in seconds."""
        return self.timing.total_s


class OptimizedGpuEngine(LayoutEngine):
    """Warp-structured layout engine with the paper's GPU optimisations."""

    name = "gpu-optimized"

    def __init__(
        self,
        graph: LeanGraph,
        params: Optional[LayoutParams] = None,
        config: Optional[GpuKernelConfig] = None,
    ):
        super().__init__(graph, params)
        self.config = config if config is not None else GpuKernelConfig()
        self._warp_cooling_fraction_sum = 0.0
        self._warp_cooling_batches = 0

    # ----------------------------------------------------------- engine API
    def data_layout(self) -> NodeDataLayout:
        return (
            NodeDataLayout.AOS
            if self.config.cache_friendly_layout
            else NodeDataLayout.SOA
        )

    def make_rng(self) -> Xoshiro256Plus:
        return Xoshiro256Plus(self.params.seed, n_streams=self.config.concurrent_threads)

    def batch_plan(self, steps_per_iteration: int) -> List[int]:
        effective = max(1, int(steps_per_iteration / self.config.step_reduction_factor))
        # Each wave covers `concurrent_threads` base terms; data reuse adds
        # DRF-1 shuffled terms per base term inside on_batch, so the plan
        # counts base terms only. The wave is additionally capped relative to
        # the graph size: the paper's quality argument (Sec. III-A, VI) relies
        # on in-flight updates being sparse over the node set, so running a
        # chromosome-sized wave against a gene-sized graph would break the
        # Hogwild assumption rather than model the hardware.
        warp = self.config.warp_size
        graph_cap = max(warp, (self.graph.n_nodes // 4 // warp) * warp)
        wave = min(self.config.concurrent_threads, graph_cap)
        return split_into_batches(effective, wave)

    def make_workspace(self, plan: List[int]) -> UpdateWorkspace:
        # Warp-shuffle data reuse expands every planned batch DRF-fold in
        # on_batch, so the scratch buffers are pre-sized to the expanded
        # batches instead of growing on the first wave.
        base = max(plan) if plan else 1
        return UpdateWorkspace(base * self.config.data_reuse_factor,
                               backend=self.backend)

    def draw_batch(
        self, rng: Xoshiro256Plus, batch_size: int, iteration: int, batch_index: int
    ) -> StepBatch:
        # Overriding draw_batch/on_batch forces the unfused per-batch path
        # (LayoutEngine.fused_active): warp merging and data reuse make
        # per-warp draws between batches, and the gpusim profiling replays
        # those per-batch decisions — a fused iteration would skip both.
        warp = self.config.warp_size
        cooling_mask = None
        path_override = None
        if self.config.warp_merging or self.config.data_reuse_factor > 1:
            # Control-thread decision per warp, broadcast to the whole warp.
            # The sampler's bulk draw consumes the PRNG streams in the same
            # order the historical concatenate-until-full loop did.
            n_warps = int(np.ceil(batch_size / warp))
            warp_draws = self.sampler._uniforms(rng, n_warps, 1)[0]
            always = iteration >= self.params.first_cooling_iteration()
            warp_cooling = np.full(n_warps, always, dtype=bool) | (warp_draws < 0.5)
            cooling_mask = np.repeat(warp_cooling, warp)[:batch_size]
            self._warp_cooling_fraction_sum += float(warp_cooling.mean())
            self._warp_cooling_batches += 1
        if self.config.data_reuse_factor > 1:
            # Path-coherent warps: every lane of a warp samples from the same
            # path so warp-shuffled pairs stay on one path.
            n_warps = int(np.ceil(batch_size / warp))
            path_draw = self.sampler._uniforms(rng, n_warps, 1)[0]
            warp_paths = self.index.sample_paths(path_draw)
            path_override = np.repeat(warp_paths, warp)[:batch_size]
        return self.sampler.sample(
            rng,
            batch_size,
            iteration,
            cooling_mask=cooling_mask,
            path_override=path_override,
        )

    def on_batch(self, batch: StepBatch, iteration: int, batch_index: int) -> StepBatch:
        drf = self.config.data_reuse_factor
        if drf <= 1:
            return batch
        return self._apply_warp_shuffle_reuse(batch, drf)

    def _apply_warp_shuffle_reuse(self, batch: StepBatch, drf: int) -> StepBatch:
        """Create ``drf - 1`` extra terms per base term via intra-warp shuffles.

        The extra terms pair lane ``l``'s node_i with lane ``(l + shift) %
        warp``'s node_j — reusing data already resident in the warp's
        registers, so no additional memory traffic, but with correlated
        (less random) pair selection.
        """
        warp = self.config.warp_size
        n = len(batch)
        parts = [batch]
        pos = self.graph.step_positions
        for r in range(1, drf):
            shift = r  # deterministic lane shift per reuse round
            lane = np.arange(n)
            warp_id = lane // warp
            lane_in_warp = lane % warp
            partner = warp_id * warp + (lane_in_warp + shift) % warp
            partner = np.minimum(partner, n - 1)
            # Only valid when both lanes are on the same path.
            same_path = batch.path == batch.path[partner]
            flat_j = np.where(same_path, batch.flat_j[partner], batch.flat_j)
            node_j = self.graph.step_nodes[flat_j]
            d_ref = np.abs(pos[batch.flat_i] - pos[flat_j]).astype(np.float64)
            parts.append(
                StepBatch(
                    path=batch.path,
                    flat_i=batch.flat_i,
                    flat_j=flat_j,
                    node_i=batch.node_i,
                    node_j=node_j,
                    vis_i=batch.vis_i,
                    vis_j=batch.vis_j[partner],
                    d_ref=d_ref,
                    in_cooling=batch.in_cooling,
                )
            )
        return StepBatch(
            path=np.concatenate([p.path for p in parts]),
            flat_i=np.concatenate([p.flat_i for p in parts]),
            flat_j=np.concatenate([p.flat_j for p in parts]),
            node_i=np.concatenate([p.node_i for p in parts]),
            node_j=np.concatenate([p.node_j for p in parts]),
            vis_i=np.concatenate([p.vis_i for p in parts]),
            vis_j=np.concatenate([p.vis_j for p in parts]),
            d_ref=np.concatenate([p.d_ref for p in parts]),
            in_cooling=np.concatenate([p.in_cooling for p in parts]),
        )

    # -------------------------------------------------------------- profiling
    def kernel_launches(self) -> int:
        """One kernel per iteration plus one initialisation kernel (Sec. V-A)."""
        return self.params.iter_max + 1

    def total_terms(self) -> float:
        """Total update terms of a full run under this configuration."""
        per_iter = self.params.steps_per_iteration(self.graph.total_steps)
        effective = per_iter / self.config.step_reduction_factor
        return self.params.iter_max * effective * self.config.data_reuse_factor

    def profile(
        self,
        device: DeviceSpec = RTX_A6000,
        n_sample_terms: int = 4096,
        iteration: int = 0,
        seed: Optional[int] = None,
    ) -> GpuProfile:
        """Measure counters on a sample of real batches and model the run time."""
        cfg = self.config
        warp = cfg.warp_size
        n_sample_terms = max(warp, (n_sample_terms // warp) * warp)
        rng = Xoshiro256Plus(self.params.seed if seed is None else seed,
                             n_streams=min(cfg.concurrent_threads, n_sample_terms))
        batch = self.draw_batch(rng, n_sample_terms, iteration, 0)

        # --- node-data accesses through the L1/L2 hierarchy ----------------
        layout_kind = self.data_layout()
        addr_i = node_record_addresses(batch.node_i, batch.vis_i, layout_kind, self.graph.n_nodes)
        addr_j = node_record_addresses(batch.node_j, batch.vis_j, layout_kind, self.graph.n_nodes)
        node_addresses = np.concatenate([addr_i, addr_j], axis=1).reshape(-1)

        # Warp-level coalescing of the node loads: per warp, per field.
        warp_requests = []
        n_warps = n_sample_terms // warp
        for w in range(n_warps):
            rows = slice(w * warp, (w + 1) * warp)
            for col in range(3):
                warp_requests.append(addr_i[rows, col])
                warp_requests.append(addr_j[rows, col])
        node_coalescing = analyze_warp_requests(
            warp_requests, access_bytes=8, sector_bytes=device.sector_bytes
        )

        # --- RNG-state accesses --------------------------------------------
        rng_layout = SOA if cfg.coalesced_random_states else AOS
        rng_requests = []
        rng_addresses = []
        fields_touched = 6
        for w in range(n_warps):
            base = (w % 64) * 6 * 4 * warp  # states of resident warps share the cache
            for f in range(fields_touched):
                addrs = state_addresses(warp, f, layout=rng_layout, base_address=base)
                rng_requests.append(addrs)
                rng_addresses.append(addrs)
        rng_coalescing = analyze_warp_requests(
            rng_requests, access_bytes=4, sector_bytes=device.sector_bytes
        )
        rng_address_trace = np.concatenate(rng_addresses) if rng_addresses else np.empty(0, dtype=np.int64)
        # Keep RNG state in a distinct address region from node data.
        rng_address_trace = rng_address_trace + (1 << 40)

        # --- cache hierarchy replay -----------------------------------------
        # Cache capacities are scaled by the dataset's scale factor so the
        # working-set to cache ratio matches a full-scale chromosome run (see
        # DESIGN.md §4 and gpusim.device.scaled_cache_bytes). The trace models
        # one SM's slice of the work, so per-SM shares are used.
        from ..gpusim.device import scaled_cache_bytes

        # GPU caches fill from DRAM at sector (32 B) granularity, not the full
        # 128 B line, so the hierarchy is modelled with sector-sized lines;
        # request-level (intra-warp) inefficiency is captured separately by
        # the sectors-per-request coalescing penalty.
        l1_bytes = scaled_cache_bytes(device.l1_kb_per_sm * 1024, self.graph.n_nodes,
                                      device.sector_bytes, 4, min_lines=16)
        l1 = CacheConfig("L1", l1_bytes, line_bytes=device.sector_bytes, associativity=4)
        l2_full_share = max(int(device.l2_mb * 1024 * 1024 / device.n_sms), 64 * 1024)
        l2_bytes = scaled_cache_bytes(l2_full_share, self.graph.n_nodes,
                                      device.sector_bytes, 16, min_lines=64)
        l2 = CacheConfig("L2", l2_bytes, line_bytes=device.sector_bytes, associativity=16)
        hierarchy = CacheHierarchy([l1, l2])
        interleaved = np.empty(node_addresses.size + rng_address_trace.size, dtype=np.int64)
        # Interleave node and RNG accesses the way the kernel issues them.
        n_node, n_rng = node_addresses.size, rng_address_trace.size
        interleaved[:n_node] = node_addresses
        interleaved[n_node:] = rng_address_trace
        hierarchy.access_trace(interleaved)
        traffic_sample = MemoryTrafficProfile.from_hierarchy(
            hierarchy, sectors_per_request=node_coalescing.sectors_per_request
        )
        # L1 request-level bytes follow from coalescing (sector fills).
        traffic_sample.l1_bytes = float(
            node_coalescing.bytes_transferred + rng_coalescing.bytes_transferred
        )

        # --- warp divergence --------------------------------------------------
        warp_stats = simulate_warp_execution(
            batch.in_cooling[:n_sample_terms],
            warp_size=warp,
            warp_merging=False,  # the decisions already reflect WM if enabled
        )

        # --- scale to the full run and model the run time --------------------
        # Memory traffic is proportional to the number of *base* (memory-
        # incurring) terms: warp-shuffle data reuse creates its extra DRF-1
        # terms from data already resident in registers, so those terms add
        # compute but no memory traffic (Sec. VII-D).
        n_total = self.total_terms()
        n_memory_terms = n_total / max(self.config.data_reuse_factor, 1)
        scale = n_memory_terms / float(len(batch))
        traffic = traffic_sample.scaled(scale)
        counters = WorkloadCounters()
        combined_spr = (
            node_coalescing.sectors_per_request * 0.6
            + rng_coalescing.sectors_per_request * 0.4
        )
        # Fixed per-launch costs shrink with the dataset scale factor, like the
        # cache capacities, so that full-scale time ratios are preserved.
        from ..gpusim.device import PAPER_REFERENCE_NODE_COUNT

        overhead_scale = min(1.0, self.graph.n_nodes / PAPER_REFERENCE_NODE_COUNT)
        timing = gpu_runtime(
            device,
            n_terms=n_total,
            traffic=traffic,
            counters=counters,
            kernel_launches=self.kernel_launches(),
            sectors_per_request=combined_spr,
            avg_active_threads=warp_stats.avg_active_threads,
            warp_size=warp,
            launch_overhead_scale=overhead_scale,
        )
        return GpuProfile(
            config=cfg,
            device=device,
            n_terms_total=n_total,
            traffic=traffic,
            node_sectors_per_request=node_coalescing.sectors_per_request,
            rng_sectors_per_request=rng_coalescing.sectors_per_request,
            warp_stats=warp_stats,
            kernel_launches=self.kernel_launches(),
            timing=timing,
            detail={
                "sample_terms": float(len(batch)),
                "scale_factor": scale,
                "combined_sectors_per_request": combined_spr,
                "warp_cooling_fraction": (
                    self._warp_cooling_fraction_sum / self._warp_cooling_batches
                    if self._warp_cooling_batches
                    else 0.0
                ),
            },
        )
