"""Tests for path stress, sampled path stress and quality classification."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import initialize_layout, layout_graph
from repro.core.layout import Layout
from repro.graph import LeanGraph
from repro.metrics import (
    QualityBand,
    classify_quality,
    correlation_study,
    count_path_pairs,
    pair_stress_terms,
    path_stress,
    sampled_path_stress,
    stress_ratio,
)


def _perfect_linear_layout(graph: LeanGraph) -> Layout:
    """A layout where every node sits exactly at its first path position.

    For a single-path graph this makes every layout distance equal to the
    reference distance, so the path stress is exactly zero.
    """
    coords = np.zeros((2 * graph.n_nodes, 2))
    sl = graph.path_steps(0)
    for flat in range(sl.start, sl.stop):
        node = graph.step_nodes[flat]
        pos = graph.step_positions[flat]
        coords[2 * node] = (pos, 0.0)
        coords[2 * node + 1] = (pos, 0.0)
    return Layout(coords)


@pytest.fixture(scope="module")
def line_graph():
    """Single path over 20 unit-length nodes."""
    return LeanGraph.from_paths([1] * 20, [list(range(20))])


class TestPathStress:
    def test_zero_for_perfect_layout(self, line_graph):
        layout = _perfect_linear_layout(line_graph)
        assert path_stress(layout, line_graph) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_random_layout(self, line_graph, rng):
        layout = Layout(rng.uniform(0, 100, size=(40, 2)))
        assert path_stress(layout, line_graph) > 0.1

    def test_count_path_pairs(self, line_graph, fig1_lean):
        assert count_path_pairs(line_graph) == 20 * 19 // 2
        assert count_path_pairs(fig1_lean) == 15 + 10 + 21

    def test_scaling_layout_increases_stress(self, line_graph):
        perfect = _perfect_linear_layout(line_graph)
        stretched = Layout(perfect.coords * 3.0)
        assert path_stress(stretched, line_graph) > path_stress(perfect, line_graph)

    def test_max_pairs_guard(self, medium_synthetic):
        layout = initialize_layout(medium_synthetic)
        with pytest.raises(ValueError):
            path_stress(layout, medium_synthetic, max_pairs=10)

    def test_block_size_invariance(self, fig1_lean):
        layout = initialize_layout(fig1_lean, seed=5)
        a = path_stress(layout, fig1_lean, block_size=7)
        b = path_stress(layout, fig1_lean, block_size=100000)
        assert a == pytest.approx(b, rel=1e-12)

    def test_pair_stress_terms_zero_dref(self, fig1_lean):
        layout = initialize_layout(fig1_lean, seed=1)
        # Same step twice -> d_ref == 0 -> contributes 0.
        terms = pair_stress_terms(layout, fig1_lean, np.array([0]), np.array([0]))
        assert terms[0] == 0.0

    def test_empty_path_graph(self):
        g = LeanGraph.from_paths([1, 1], [[0]])
        layout = initialize_layout(g)
        assert path_stress(layout, g) == 0.0


class TestSampledPathStress:
    def test_close_to_exact(self, small_synthetic):
        layout = initialize_layout(small_synthetic, seed=3)
        exact = path_stress(layout, small_synthetic)
        sampled = sampled_path_stress(layout, small_synthetic, samples_per_step=60, seed=1)
        assert sampled.value == pytest.approx(exact, rel=0.35)

    def test_confidence_interval_contains_value(self, small_synthetic):
        layout = initialize_layout(small_synthetic, seed=3)
        s = sampled_path_stress(layout, small_synthetic, samples_per_step=30)
        assert s.ci_low <= s.value <= s.ci_high
        assert s.n_samples > 0
        assert s.ci_width >= 0

    def test_more_samples_tighter_ci(self, small_synthetic):
        layout = initialize_layout(small_synthetic, seed=3)
        few = sampled_path_stress(layout, small_synthetic, samples_per_step=5, seed=0)
        many = sampled_path_stress(layout, small_synthetic, samples_per_step=80, seed=0)
        assert many.ci_width < few.ci_width

    def test_seed_consistency(self, small_synthetic):
        layout = initialize_layout(small_synthetic, seed=3)
        a = sampled_path_stress(layout, small_synthetic, samples_per_step=20, seed=4)
        b = sampled_path_stress(layout, small_synthetic, samples_per_step=20, seed=4)
        assert a.value == b.value
        # Different sampling seeds stay statistically consistent (paper checks
        # sampled path stress is stable across seeds); the initial-layout
        # stress distribution is heavy-tailed, so only same-order agreement is
        # demanded at this sample size.
        c = sampled_path_stress(layout, small_synthetic, samples_per_step=80, seed=5)
        d = sampled_path_stress(layout, small_synthetic, samples_per_step=80, seed=6)
        assert 0.2 < c.value / d.value < 5.0

    def test_max_total_samples_cap(self, medium_synthetic):
        layout = initialize_layout(medium_synthetic, seed=1)
        s = sampled_path_stress(layout, medium_synthetic, samples_per_step=100,
                                max_total_samples=5000)
        assert s.n_samples <= 5500

    def test_zero_when_no_pairs(self):
        g = LeanGraph.from_paths([1, 1], [[0]])
        layout = initialize_layout(g)
        s = sampled_path_stress(layout, g)
        assert s.value == 0.0 and s.n_samples == 0

    def test_invalid_samples_per_step(self, small_synthetic):
        layout = initialize_layout(small_synthetic)
        with pytest.raises(ValueError):
            sampled_path_stress(layout, small_synthetic, samples_per_step=0)

    def test_ratio(self, small_synthetic):
        layout = initialize_layout(small_synthetic, seed=3)
        a = sampled_path_stress(layout, small_synthetic, samples_per_step=20, seed=0)
        assert stress_ratio(a, a) == pytest.approx(1.0)

    def test_better_layout_has_lower_stress(self, small_synthetic, quality_params):
        scrambled = Layout(np.random.default_rng(0).uniform(0, 500,
                                                            (2 * small_synthetic.n_nodes, 2)))
        optimised = layout_graph(small_synthetic, engine="cpu", params=quality_params)
        s_bad = sampled_path_stress(scrambled, small_synthetic, samples_per_step=15).value
        s_good = sampled_path_stress(optimised.layout, small_synthetic, samples_per_step=15).value
        assert s_good < s_bad / 10


class TestCorrelation:
    def test_exact_vs_sampled_correlation(self):
        # Small layouts of widely varying quality, as in Fig. 13.
        from repro.synth import small_graph_collection

        graphs = small_graph_collection(n_graphs=8, seed=3)
        pairs = []
        rng = np.random.default_rng(0)
        for i, g in enumerate(graphs):
            if i % 2 == 0:
                layout = initialize_layout(g, seed=i)
            else:
                layout = Layout(rng.uniform(0, 200, (2 * g.n_nodes, 2)))
            exact = path_stress(layout, g, max_pairs=2_000_000)
            sampled = sampled_path_stress(layout, g, samples_per_step=40, seed=i).value
            pairs.append((exact, sampled))
        corr = correlation_study(pairs)
        assert corr > 0.95  # paper reports 0.995

    def test_correlation_validation(self):
        with pytest.raises(ValueError):
            correlation_study([(1.0, 1.0)])
        with pytest.raises(ValueError):
            correlation_study([(1.0, 2.0), (1.0, 3.0)])


class TestQualityBands:
    def test_bands(self):
        assert classify_quality(1.0, 1.0) == QualityBand.GOOD
        assert classify_quality(1.9, 1.0) == QualityBand.GOOD
        assert classify_quality(5.0, 1.0) == QualityBand.SATISFYING
        assert classify_quality(20.0, 1.0) == QualityBand.POOR

    def test_zero_reference(self):
        assert classify_quality(0.0, 0.0) == QualityBand.GOOD
        assert classify_quality(0.5, 0.0) == QualityBand.POOR

    def test_invalid(self):
        with pytest.raises(ValueError):
            classify_quality(-1.0, 1.0)
        with pytest.raises(ValueError):
            classify_quality(1.0, 1.0, good_threshold=5, satisfying_threshold=2)
