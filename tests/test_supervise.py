"""Chaos suite for the supervised parallel runtime (PR 10).

Every test injures *real* worker processes at seeded ``(worker, iteration)``
points via :mod:`repro.parallel.faults` and asserts the supervisor resolves
the failure per policy — promptly (a hard SIGALRM deadline wraps every
test: the one behaviour this suite exists to kill is the hang), with the
documented counters, and without leaking a single shared-memory segment.
"""
from __future__ import annotations

import multiprocessing as mp
import os
import signal
from collections import deque

import numpy as np
import pytest

from repro.core import CpuBaselineEngine, layout_graph
from repro.parallel.faults import (
    CRASH_EXITCODE,
    FaultPlan,
    FaultSpec,
    resolve_fault_plan,
)
from repro.parallel.shm import ShmHogwildEngine, recovery_stream_states, \
    worker_stream_states
from repro.parallel.supervise import (
    BarrierTimeout,
    ParallelRuntimeError,
    WorkerCrash,
    WorkerStall,
    WorkerSupervisor,
)
from repro.prng.splitmix import derive_seed, seed_streams
from repro.prng.xoshiro import Xoshiro256Plus

#: Outer bound on any single chaos test. Generous relative to the engine
#: timeouts below; its only job is to turn "the runtime hung" into a crisp
#: TimeoutError instead of a stuck CI job.
HARD_DEADLINE_S = 120

START_METHODS = [m for m in ("fork", "spawn")
                 if m in mp.get_all_start_methods()]


@pytest.fixture(autouse=True)
def hard_deadline():
    """Fail loudly if a chaos path hangs instead of resolving."""

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"chaos test exceeded the {HARD_DEADLINE_S}s hard deadline — "
            "the supervised runtime hung")

    old = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(HARD_DEADLINE_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


def _segments() -> set:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {name for name in os.listdir("/dev/shm")
            if name.startswith(("psm_", "wnsm_"))}


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every chaos run must unlink its segment, however it exits."""
    before = _segments()
    yield
    assert _segments() - before == set()


def _engine(graph, params, **kwargs):
    kwargs.setdefault("restart_backoff", 0.01)
    return ShmHogwildEngine(graph, params, **kwargs)


def _chaos_params(fast_params, policy, workers=3, iter_max=4):
    return fast_params.with_(backend="numpy", workers=workers,
                             iter_max=iter_max, on_worker_failure=policy)


class TestFailPolicy:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_crash_raises_typed_error_promptly(self, small_synthetic,
                                               fast_params, start_method):
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "fail"),
                         fault_plan=FaultPlan.of(FaultSpec("crash", 1, 1)),
                         start_method=start_method)
        with pytest.raises(WorkerCrash) as exc_info:
            engine.run()
        assert exc_info.value.worker_id == 1
        assert exc_info.value.exitcode == CRASH_EXITCODE
        # The raised run still reports what the supervisor saw.
        counters = engine.metrics.counter_values()
        assert counters["worker_failures"] == 1.0
        assert counters["effective_workers"] == 2.0

    def test_exception_fault_surfaces_as_crash(self, small_synthetic,
                                               fast_params):
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "fail"),
                         fault_plan=FaultPlan.of(
                             FaultSpec("exception", 0, 0)))
        with pytest.raises(WorkerCrash) as exc_info:
            engine.run()
        assert exc_info.value.worker_id == 0
        assert exc_info.value.exitcode not in (0, None)

    def test_stall_raises_within_deadline(self, small_synthetic, fast_params):
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "fail", workers=2),
                         fault_plan=FaultPlan.of(FaultSpec("stall", 1, 1)),
                         barrier_timeout=1.0)
        with pytest.raises(WorkerStall) as exc_info:
            engine.run()
        assert exc_info.value.worker_id == 1

    def test_setup_stall_raises_barrier_timeout(self, small_synthetic,
                                                fast_params):
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "fail", workers=2),
                         fault_plan=FaultPlan.of(FaultSpec("stall", 0, -1)),
                         ready_timeout=1.0)
        with pytest.raises(BarrierTimeout):
            engine.run()

    def test_terminate_resistant_worker_is_killed(self, small_synthetic,
                                                  fast_params):
        # The hang fault ignores SIGTERM, so reaping must escalate to
        # kill() — the teardown-escalation satellite, counted.
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "fail", workers=2),
                         fault_plan=FaultPlan.of(FaultSpec("hang", 0, 1)),
                         barrier_timeout=1.0, join_timeout=0.5)
        with pytest.raises(WorkerStall):
            engine.run()
        assert engine.metrics.counter_values()["workers_killed"] >= 1.0


class TestDegradePolicy:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_crash_degrades_onto_survivors(self, small_synthetic,
                                           fast_params, start_method):
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "degrade"),
                         fault_plan=FaultPlan.of(FaultSpec("crash", 1, 1)),
                         start_method=start_method)
        result = engine.run()
        summary = result.summary()
        assert summary["effective_workers"] == 2
        assert summary["degraded"] is True
        assert summary["worker_failures"] == 1
        assert summary["worker_restarts"] == 0
        assert np.isfinite(result.layout.coords).all()

    def test_stalled_worker_is_reaped_then_degraded(self, small_synthetic,
                                                    fast_params):
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "degrade"),
                         fault_plan=FaultPlan.of(FaultSpec("stall", 2, 1)),
                         barrier_timeout=1.0)
        result = engine.run()
        summary = result.summary()
        assert summary["effective_workers"] == 2
        assert summary["degraded"] is True

    def test_two_crashes_leave_one_survivor(self, small_synthetic,
                                            fast_params):
        plan = FaultPlan.of(FaultSpec("crash", 0, 1), FaultSpec("crash", 2, 2))
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "degrade"),
                         fault_plan=plan)
        result = engine.run()
        summary = result.summary()
        assert summary["effective_workers"] == 1
        assert summary["worker_failures"] == 2
        assert np.isfinite(result.layout.coords).all()

    def test_all_workers_dead_still_raises(self, small_synthetic,
                                           fast_params):
        # Degradation needs a survivor; total loss must raise, not hang
        # and not return a half-finished layout as success.
        plan = FaultPlan.of(FaultSpec("crash", 0, 1), FaultSpec("crash", 1, 1))
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "degrade", workers=2),
                         fault_plan=plan)
        with pytest.raises(ParallelRuntimeError):
            engine.run()

    def test_degraded_run_total_terms_reasonable(self, small_synthetic,
                                                 fast_params):
        # The dead worker's share is lost for its failure iteration only;
        # every other (iteration, slice) cell is covered.
        params = _chaos_params(fast_params, "degrade")
        healthy = _engine(small_synthetic, params).run()
        degraded = _engine(small_synthetic, params,
                           fault_plan=FaultPlan.of(
                               FaultSpec("crash", 1, 1))).run()
        assert degraded.total_terms > healthy.total_terms // 2
        assert degraded.total_terms < healthy.total_terms


class TestRestartPolicy:
    def test_crash_respawns_and_completes(self, small_synthetic, fast_params):
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "restart"),
                         fault_plan=FaultPlan.of(FaultSpec("crash", 1, 1)))
        result = engine.run()
        summary = result.summary()
        assert summary["worker_restarts"] >= 1
        assert summary["effective_workers"] == 3
        assert summary["degraded"] is False
        assert np.isfinite(result.layout.coords).all()

    def test_setup_fault_exhausts_restarts_then_degrades(self,
                                                         small_synthetic,
                                                         fast_params):
        # A fault at iteration -1 re-fires in every respawned incarnation,
        # so the restart budget drains and the slot degrades.
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "restart"),
                         fault_plan=FaultPlan.of(FaultSpec("crash", 1, -1)),
                         max_restarts=2)
        result = engine.run()
        summary = result.summary()
        assert summary["worker_restarts"] == 2
        assert summary["degraded"] is True
        assert summary["effective_workers"] == 2


class _FakeProc:
    """Process stand-in: scriptable liveness and exitcode, no OS process."""

    def __init__(self):
        self.alive = True
        self.exitcode = None

    def is_alive(self):
        return self.alive

    def join(self, timeout=None):
        pass

    def terminate(self):
        self.alive = False
        self.exitcode = -signal.SIGTERM

    def kill(self):
        self.alive = False
        self.exitcode = -signal.SIGKILL


class _FakeConn:
    """Scripted parent-side pipe: ``recv`` pops the inbox, ``extend``
    auto-acks (the worker loop's behaviour), ``broken`` scripts a dead
    peer's ``BrokenPipeError`` on send."""

    def __init__(self, inbox=()):
        self.inbox = deque(inbox)
        self.sent = []
        self.broken = False
        self.closed = False

    def send(self, msg):
        if self.broken:
            raise BrokenPipeError("scripted broken pipe")
        self.sent.append(msg)
        if msg[0] == "extend":
            self.inbox.append(("extended", 0, max(1, len(msg[1]))))

    def poll(self, timeout=None):
        return bool(self.inbox)

    def recv(self):
        if not self.inbox:
            raise EOFError
        return self.inbox.popleft()

    def close(self):
        self.closed = True


class TestMidIterationFailures:
    """Failures discovered during the ``iter`` broadcast (send_iter).

    Every survivor has already received its iteration message at that
    point and will deliver a 2-tuple result next, so recovery must wait
    for collect() to drain those results — these tests script exactly the
    pipe states the review of the original implementation flagged: eager
    recovery misread a survivor's in-flight result as a broken extend ack
    (degrade cascaded to total loss), and an eager respawn missed the
    current iteration's message (collect stalled on it for the full
    barrier deadline).
    """

    def _supervisor(self, policy, n_workers=3, **kwargs):
        procs, conns = [], []

        def spawn(worker_id, plan, state):
            proc, conn = _FakeProc(), _FakeConn([("ready", worker_id, 1)])
            procs.append(proc)
            conns.append(conn)
            return proc, conn

        kwargs.setdefault("barrier_timeout", 2.0)
        sup = WorkerSupervisor(
            spawn, policy=policy,
            fresh_states=lambda kind, n: [np.ones((1, 4), np.uint64)] * n,
            sleep=lambda s: None, **kwargs)
        sup.start([[4, 3]] * n_workers, [np.ones((1, 4), np.uint64)] * n_workers)
        assert sup.await_ready() == n_workers
        return sup, procs, conns

    @staticmethod
    def _kill_worker(procs, conns, w):
        procs[w].alive = False
        procs[w].exitcode = CRASH_EXITCODE
        conns[w].broken = True

    def test_send_failure_defers_recovery_past_in_flight_results(self):
        # Degrade policy: worker 1's pipe breaks during the broadcast while
        # workers 0 and 2 already hold their iteration results. Recovery
        # must not run until those results are collected — eagerly it would
        # read a result as the extend ack and reap both healthy survivors.
        sup, procs, conns = self._supervisor("degrade")
        self._kill_worker(procs, conns, 1)
        conns[0].inbox.append((10, 0))
        conns[2].inbox.append((12, 0))
        sup.send_iter(0, 0.5)
        assert sup.live_count() == 2
        assert all(msg[0] != "extend"
                   for conn in conns for msg in conn.sent)
        results = sup.collect(0)
        assert sorted(results) == [(0, (10, 0)), (2, (12, 0))]
        assert sup.degraded
        assert sup.live_count() == 2
        assert sup.worker_failures == 1
        # Both survivors adopted a slice of the dead worker's plan.
        for w in (0, 2):
            assert ("iter", 0, 0.5) in conns[w].sent
            assert any(msg[0] == "extend" for msg in conns[w].sent)
            assert len(sup.handles[w].plans) == 2

    def test_send_failure_restart_rejoins_at_next_iteration(self):
        # Restart policy: the respawn must happen at the iteration barrier
        # (after collect), and the fresh worker idles until the *next*
        # send_iter — a mid-iteration respawn would never receive the
        # current iter message and collect would stall on it.
        sup, procs, conns = self._supervisor("restart")
        self._kill_worker(procs, conns, 1)
        conns[0].inbox.append((10, 0))
        conns[2].inbox.append((12, 0))
        sup.send_iter(0, 0.5)
        assert len(conns) == 3  # no respawn while the iteration is in flight
        results = sup.collect(0)
        assert sorted(results) == [(0, (10, 0)), (2, (12, 0))]
        assert sup.worker_restarts == 1
        assert sup.live_count() == 3
        assert not sup.degraded
        assert len(conns) == 4
        # The respawn saw only the ready handshake, no stale iter message...
        assert conns[3].sent == []
        # ...and participates normally from the next iteration on.
        sup.send_iter(1, 0.4)
        assert conns[3].sent == [("iter", 1, 0.4)]
        for conn in conns[0], conns[2], conns[3]:
            conn.inbox.append((7, 0))
        assert len(sup.collect(1)) == 3


class TestSupervisedIdentity:
    def test_workers1_byte_identical_to_flat(self, small_synthetic,
                                             fast_params):
        # The byte-identity contract must survive the supervised path:
        # worker 0 still runs the flat engine's streams over the full plan.
        params = fast_params.with_(backend="numpy")
        flat = CpuBaselineEngine(small_synthetic, params).run()
        supervised = _engine(small_synthetic, params.with_(workers=1)).run()
        np.testing.assert_array_equal(flat.layout.coords,
                                      supervised.layout.coords)
        summary = supervised.summary()
        assert summary["effective_workers"] == 1
        assert summary["worker_failures"] == 0
        assert summary["degraded"] is False

    def test_healthy_run_reports_clean_counters(self, small_synthetic,
                                                fast_params):
        result = _engine(small_synthetic,
                         _chaos_params(fast_params, "fail")).run()
        summary = result.summary()
        assert summary["effective_workers"] == 3
        assert summary["worker_failures"] == 0
        assert summary["worker_restarts"] == 0
        assert summary["workers_killed"] == 0
        assert summary["degraded"] is False


class TestFaultPlan:
    def test_parse_encode_roundtrip(self):
        plan = FaultPlan.parse("crash@1:1,stall@0:2*30")
        assert plan.specs == (FaultSpec("crash", 1, 1),
                              FaultSpec("stall", 0, 2, arg=30.0))
        assert FaultPlan.parse(plan.encode()) == plan

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("meteor@0:0")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash@x:0")
        with pytest.raises(ValueError):
            FaultSpec("nonsense", 0, 0)

    def test_env_resolution_and_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert resolve_fault_plan(None) is None
        monkeypatch.setenv("REPRO_FAULTS", "crash@1:0")
        assert resolve_fault_plan(None) == FaultPlan.of(
            FaultSpec("crash", 1, 0))
        explicit = FaultPlan.of(FaultSpec("stall", 0, 2))
        assert resolve_fault_plan(explicit) is explicit

    def test_from_seed_is_deterministic_and_in_range(self):
        a = FaultPlan.from_seed(77, workers=3, iterations=5, n_faults=4)
        b = FaultPlan.from_seed(77, workers=3, iterations=5, n_faults=4)
        assert a == b
        assert a != FaultPlan.from_seed(78, workers=3, iterations=5,
                                        n_faults=4)
        for spec in a.specs:
            assert 0 <= spec.worker < 3
            assert 0 <= spec.iteration < 5

    def test_seeded_plan_drives_recovery(self, small_synthetic, fast_params):
        # The acceptance-criteria shape: a FaultPlan derived from the
        # master seed kills a worker mid-run and degrade absorbs it.
        plan = FaultPlan.from_seed(fast_params.seed, workers=3, iterations=4,
                                   n_faults=1, kinds=("crash",))
        engine = _engine(small_synthetic,
                         _chaos_params(fast_params, "degrade"),
                         fault_plan=plan)
        summary = engine.run().summary()
        assert summary["effective_workers"] == 2
        assert summary["degraded"] is True


class TestRecoveryStreams:
    def test_states_distinct_across_calls_and_kinds(self):
        fresh = recovery_stream_states(seed=123, n_streams=4)
        blocks = (fresh("respawn", 1) + fresh("respawn", 2)
                  + fresh("degrade", 2))
        seen = set()
        for state in blocks:
            assert state.shape == (4, 4)
            key = state.tobytes()
            assert key not in seen
            seen.add(key)

    def test_incremental_states_match_grown_expansion(self):
        # The persistent-generator implementation must emit exactly the
        # tail slices one big seed_streams expansion would — the
        # prefix-stability contract, now without O(total^2) regeneration.
        n_streams = 3
        fresh = recovery_stream_states(seed=99, n_streams=n_streams)
        issued = fresh("respawn", 2) + fresh("respawn", 1)
        grown = seed_streams(derive_seed(99, "shm-respawn"),
                             3 * n_streams, Xoshiro256Plus.STATE_WORDS)
        np.testing.assert_array_equal(np.concatenate(issued, axis=0), grown)

    def test_disjoint_from_worker_streams(self):
        base = Xoshiro256Plus(123, 4)
        cohort = worker_stream_states(base, 3, seed=123)
        fresh = recovery_stream_states(seed=123, n_streams=4)
        recovery = fresh("respawn", 2) + fresh("degrade", 2)
        cohort_rows = {row.tobytes() for state in cohort for row in state}
        for state in recovery:
            for row in state:
                assert row.tobytes() not in cohort_rows


class TestSupervisorValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_worker_failure"):
            WorkerSupervisor(lambda *a: None, policy="retry")

    def test_recovery_policies_need_fresh_states(self):
        with pytest.raises(ValueError, match="fresh_states"):
            WorkerSupervisor(lambda *a: None, policy="degrade")

    def test_params_validate_policy(self, fast_params):
        with pytest.raises(ValueError, match="on_worker_failure"):
            fast_params.with_(on_worker_failure="explode")


class TestRunApi:
    def test_layout_graph_routes_policy(self, small_synthetic, fast_params,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@1:1")
        result = layout_graph(small_synthetic, params=fast_params,
                              workers=3, iter_max=4, backend="numpy",
                              on_worker_failure="degrade")
        summary = result.summary()
        assert summary["effective_workers"] == 2
        assert summary["degraded"] is True

    def test_flat_engine_summary_reports_healthy_defaults(self,
                                                          small_synthetic,
                                                          fast_params):
        result = CpuBaselineEngine(small_synthetic, fast_params).run()
        summary = result.summary()
        assert summary["effective_workers"] == summary["workers"]
        assert summary["degraded"] is False
        assert summary["worker_failures"] == 0
        assert summary["workers_killed"] == 0
