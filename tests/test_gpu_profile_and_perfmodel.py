"""Tests for GPU kernel profiling, the ablation effects and the performance model.

These are the reproduction-critical assertions: each of the paper's three
optimisations must move its counter in the right direction, and the modelled
end-to-end speedups must land in the paper's reported ranges.
"""
from __future__ import annotations

import pytest

from repro.bench import ablation_ladder, evaluate_graph_performance, geometric_mean
from repro.core import GpuKernelConfig, LayoutParams, OptimizedGpuEngine
from repro.gpusim import A100, RTX_A6000
from repro.parallel import cpu_cache_profile


@pytest.fixture(scope="module")
def profile_graph(medium_synthetic):
    return medium_synthetic


@pytest.fixture(scope="module")
def profile_params():
    return LayoutParams(iter_max=10, steps_per_step_unit=4.0, seed=3)


def _profile(graph, params, config, n_terms=1024):
    engine = OptimizedGpuEngine(graph, params, config)
    return engine.profile(device=RTX_A6000, n_sample_terms=n_terms, seed=11)


class TestOptimisationCounters:
    def test_crs_reduces_rng_sectors_per_request(self, profile_graph, profile_params):
        base = _profile(profile_graph, profile_params, GpuKernelConfig.baseline())
        crs = _profile(profile_graph, profile_params,
                       GpuKernelConfig(cache_friendly_layout=False,
                                       coalesced_random_states=True, warp_merging=False))
        # Table X: 26.8 -> 9.9 sectors per request; here AoS=?, SoA should be
        # the ideal 4 sectors for 32 threads x 4 bytes.
        assert crs.rng_sectors_per_request < base.rng_sectors_per_request / 2
        assert crs.rng_sectors_per_request == pytest.approx(4.0, abs=0.5)
        assert base.rng_sectors_per_request > 20.0

    def test_cdl_reduces_dram_traffic(self, profile_graph, profile_params):
        base = _profile(profile_graph, profile_params, GpuKernelConfig.baseline())
        cdl = _profile(profile_graph, profile_params,
                       GpuKernelConfig(cache_friendly_layout=True,
                                       coalesced_random_states=False, warp_merging=False))
        # Table IX: CDL reduces DRAM access (1.3x on GPU) and LLC misses.
        assert cdl.traffic.dram_bytes < base.traffic.dram_bytes
        assert cdl.traffic.llc_load_misses <= base.traffic.llc_load_misses

    def test_wm_increases_active_threads(self, profile_graph, profile_params):
        base = _profile(profile_graph, profile_params, GpuKernelConfig.baseline())
        wm = _profile(profile_graph, profile_params,
                      GpuKernelConfig(cache_friendly_layout=False,
                                      coalesced_random_states=False, warp_merging=True))
        # Table XI: 20.5 -> 27.9 average active threads, fewer instructions.
        assert wm.warp_stats.avg_active_threads > base.warp_stats.avg_active_threads
        assert wm.warp_stats.executed_instructions < base.warp_stats.executed_instructions
        assert base.warp_stats.avg_active_threads < 30.0
        assert wm.warp_stats.avg_active_threads > 31.0

    def test_each_optimisation_speeds_up_the_model(self, profile_graph, profile_params):
        base = _profile(profile_graph, profile_params, GpuKernelConfig.baseline())
        for cfg in (
            GpuKernelConfig(cache_friendly_layout=True, coalesced_random_states=False,
                            warp_merging=False),
            GpuKernelConfig(cache_friendly_layout=False, coalesced_random_states=True,
                            warp_merging=False),
            GpuKernelConfig(cache_friendly_layout=False, coalesced_random_states=False,
                            warp_merging=True),
        ):
            opt = _profile(profile_graph, profile_params, cfg)
            assert opt.runtime_s < base.runtime_s, cfg.label()

    def test_full_optimised_is_fastest(self, profile_graph, profile_params):
        base = _profile(profile_graph, profile_params, GpuKernelConfig.baseline())
        full = _profile(profile_graph, profile_params, GpuKernelConfig())
        assert full.runtime_s < base.runtime_s
        # Fig. 16: the optimisation ladder substantially reduces the kernel's
        # memory time (the component the three optimisations target; at this
        # reduced scale the fixed launch overhead dilutes the total ratio).
        assert base.timing.memory_s / full.timing.memory_s > 1.2

    def test_data_reuse_profile_speedup(self, profile_graph, profile_params):
        full = _profile(profile_graph, profile_params, GpuKernelConfig())
        reuse = _profile(profile_graph, profile_params,
                         GpuKernelConfig(data_reuse_factor=4, step_reduction_factor=2.0))
        # Sec. VII-D: data reuse trades randomness for additional speedup.
        assert reuse.runtime_s < full.runtime_s

    def test_kernel_launches_in_profile(self, profile_graph, profile_params):
        prof = _profile(profile_graph, profile_params, GpuKernelConfig())
        assert prof.kernel_launches == profile_params.iter_max + 1


class TestCpuProfile:
    def test_llc_miss_rate_high_for_random_access(self, profile_graph, profile_params):
        traffic, _ = cpu_cache_profile(profile_graph, profile_params, n_trace_terms=2048)
        # Table II: LLC-load miss rates of 75-90% — the working set of a
        # pangenome graph far exceeds the LLC under random access. At this
        # scaled-down size the rate is lower but must still be substantial.
        assert traffic.llc_miss_rate > 0.3
        assert traffic.llc_loads > 0

    def test_cdl_reduces_cpu_llc_misses(self, profile_graph, profile_params):
        from repro.core.layout import NodeDataLayout

        results = {}
        for kind in (NodeDataLayout.SOA, NodeDataLayout.AOS):
            traffic, _ = cpu_cache_profile(profile_graph, profile_params,
                                           n_trace_terms=2048, seed=5, data_layout=kind)
            results[kind] = traffic.llc_load_misses
        # Table IX: CDL cuts LLC loads/misses by ~3x on the CPU (one packed
        # record instead of three scattered arrays). Require a clear win.
        assert results[NodeDataLayout.AOS] < results[NodeDataLayout.SOA] * 0.7


class TestPerformanceModel:
    def test_speedups_in_paper_range(self, profile_graph, profile_params):
        report = evaluate_graph_performance(
            profile_graph, "medium", profile_params, n_trace_terms=1024
        )
        a6000 = report.speedup("A6000")
        a100 = report.speedup("A100")
        # Table VII: A6000 speedups 20-37x (geomean 27.7), A100 geomean 57.3x
        # (per-chromosome 10-92x). Require the reproduction to land in a
        # generous envelope around those bands and preserve the ordering.
        assert 5.0 < a6000 < 120.0
        assert a100 > a6000 * 0.8
        assert report.cpu.total_s > report.gpu["A6000"].total_s

    def test_report_row_fields(self, profile_graph, profile_params):
        report = evaluate_graph_performance(profile_graph, "g", profile_params,
                                            n_trace_terms=512)
        row = report.as_row()
        assert {"graph", "cpu_s", "A6000_s", "A100_s", "A6000_speedup"} <= set(row)

    def test_ablation_ladder_ordering(self, profile_graph, profile_params):
        ladder = ablation_ladder(profile_graph, profile_params, n_trace_terms=1024)
        # Fig. 16 orderings: CPU+CDL faster than CPU baseline; every GPU stage
        # is faster than the CPU baseline; each added optimisation helps.
        assert ladder["cpu+cdl"] < ladder["cpu-baseline"]
        assert ladder["gpu-base"] < ladder["cpu-baseline"]
        assert ladder["gpu+cdl"] < ladder["gpu-base"]
        assert ladder["gpu+cdl+crs"] < ladder["gpu+cdl"]
        assert ladder["gpu+cdl+crs+wm"] < ladder["gpu+cdl+crs"]

    def test_geometric_mean_helper(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])
