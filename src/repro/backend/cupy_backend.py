"""Optional CuPy backend: coordinate state and merges on a CUDA device.

``xp`` is the ``cupy`` namespace, so the workspace buffers, the gathered
coordinates and the merge staging arrays live in device memory; the generic
:class:`~repro.backend.base.ArrayBackend` arithmetic runs as CUDA kernels.
Selection stays on the host (``host_xp`` is NumPy — the multi-stream PRNGs
produce host arrays), and each batch's index/delta inputs are uploaded by the
``asarray`` calls inside ``compute_displacements``; ``to_host`` downloads the
final coordinates once per run.

Deviations from the generic base:

* ``last_writer`` cannot use boolean/fancy scatter-assignment — CuPy leaves
  the surviving value undefined under duplicate indices — so the "last
  occurrence wins" rule is recovered with ``cupyx.scatter_max`` over the
  occurrence indices, which is deterministic.
* ``synchronize`` blocks on the current stream so wall-clock timings (the
  perf smoke cases) measure completed work, not launch overhead.
* The fused iteration path runs with **device-resident selection**
  (``fused_device_selection``): the selection arrays are uploaded once per
  run, each iteration uploads its uniform megablock in one transfer, and
  selection + displacement + merge all execute in the ``cupy`` namespace —
  no per-batch host→device round trip, which is the transfer pattern the
  unfused loop pays through ``asarray`` in every ``apply_batch``. Selected
  indices are exact integer arithmetic; the Zipf inverse-CDF uses device
  ``pow``/``exp``, so cross-checks against the host reference are held to
  the conformance matrix's 1e-9, not bit-identity. Note the caveat: a
  device-libm ulp landing on the other side of a ``floor`` boundary would
  flip a *selected pair* (a discrete change, not a rounding one), so the
  fused conformance axis must be run on real CUDA hardware before trusting
  device selection on a new driver/toolkit — ``--no-fused`` (or host
  selection via ``fused_device_selection = False``) is the fallback if it
  ever trips.
* ``LayoutParams.memory_budget`` bounds *device* transients the same way it
  bounds host ones: the engine dispatches budget-sized chunk plans, each
  chunk's megablock upload and device selection block are sized to the
  chunk (the draws buffer is cached under ``draws/cupy`` in the scratch all
  chunk plans share, and the device selection arrays are uploaded once per
  run, not per chunk), so VRAM peak no longer scales with terms/iteration.

Importing this module raises :class:`ImportError` when cupy is missing, and
the registration self-test exercises a real device allocation — a machine
with cupy installed but no usable GPU is reported unavailable instead of
failing mid-run.
"""
from __future__ import annotations

import cupy  # the ImportError from a missing cupy is the availability probe
import cupyx
import numpy as np

from .base import ArrayBackend

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):
    """Device-resident backend over CuPy (requires a CUDA device)."""

    name = "cupy"
    xp = cupy
    host_xp = np
    # One megablock upload per iteration + device-side selection instead of
    # per-batch uploads (see repro.core.fused.run_iteration_host).
    fused_device_selection = True

    def __init__(self) -> None:  # pragma: no cover - requires CUDA hardware
        if cupy.cuda.runtime.getDeviceCount() < 1:
            raise RuntimeError("cupy is importable but no CUDA device is visible")

    def from_host(self, a: np.ndarray):  # pragma: no cover - requires CUDA hardware
        return cupy.asarray(a)

    def to_host(self, a) -> np.ndarray:  # pragma: no cover - requires CUDA hardware
        return cupy.asnumpy(a)

    def synchronize(self) -> None:  # pragma: no cover - requires CUDA hardware
        cupy.cuda.get_current_stream().synchronize()

    def merge_scatter(self, coords, touched, inverse, counts, all_deltas,
                      merge: str) -> None:  # pragma: no cover - requires CUDA hardware
        if merge == "last_writer":
            m = int(touched.size)
            last = cupy.full(m, -1, dtype=cupy.int64)
            cupyx.scatter_max(last, inverse, cupy.arange(inverse.shape[0],
                                                         dtype=cupy.int64))
            coords[touched] += all_deltas[last]
            return
        super().merge_scatter(coords, touched, inverse, counts, all_deltas, merge)
