"""OBS001 — the observability clock-seam contract.

PR 9 gave the repo exactly one sanctioned monotonic-clock seam:
:mod:`repro.obs.clock`. Every hot-path timing read routes through it, which
is what lets tests stub the clock (structure-determinism assertions), the
tracer attribute spans consistently, and the determinism story stay
auditable — a raw ``time.perf_counter()`` in ``core/`` is a read the stub
can't see and the tracer can't own.

**OBS001** flags direct wall-clock reads (the :data:`~repro.analysis
.checkers.determinism.WALLCLOCK_EXACT` family) inside the hot-path
directories. Unlike the pre-PR 9 world — where such sites carried
``# det-ok`` pragmas declaring themselves reporting-only — the sanctioned
fix is now mechanical: call ``repro.obs.clock.perf_counter()`` /
``monotonic()`` instead (alias-resolution in :mod:`repro.analysis.astutil`
means ``from ..obs import clock as obs_clock`` call sites never match the
raw ``time.*`` names). ``# obs-ok: <reason>`` remains for the genuinely
exceptional site. Complementary to DET001's wall-clock arm: DET001 polices
*why* a clock is read (never feeding layout math), OBS001 polices *how*
(through the seam).
"""
from __future__ import annotations

import ast
from typing import List

from ..astutil import dotted_name, qualified_call_name
from ..registry import Finding, checker
from ..source import SourceFile
from .determinism import WALLCLOCK_EXACT

__all__ = ["check_obs001"]


@checker("OBS001", pragma="obs-ok", severity="error", scope="file")
def check_obs001(src: SourceFile) -> List[Finding]:
    """Hot-path clock reads bypassing the ``repro.obs.clock`` seam."""
    if not src.in_hot_path_dir():
        return []
    out: List[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = qualified_call_name(node.func, src.aliases)
        if qual is None or qual not in WALLCLOCK_EXACT:
            continue
        shown = dotted_name(node.func) or qual
        out.append(Finding(
            rule="OBS001", path=src.rel, line=node.lineno,
            col=node.col_offset, severity="error",
            message=(f"raw clock read '{shown}()' in a hot-path module — "
                     "route timing through the repro.obs.clock seam "
                     "(obs_clock.perf_counter()/monotonic()) so traces stay "
                     "stub-able and phase attribution stays consistent; a "
                     "genuinely exceptional site needs '# obs-ok: <reason>'"),
            snippet=src.snippet(node.lineno)))
    return out
