#!/usr/bin/env python3
"""Quickstart: lay out a small pangenome graph and inspect its quality.

Builds the paper's Fig. 1 toy variation graph plus an HLA-DRB1-like synthetic
gene graph, runs the optimized GPU-kernel engine and the CPU baseline, compares
their sampled path stress, and writes SVG renderings and a ``.lay`` layout file.

Run with:  python examples/quickstart.py
Outputs land in ``examples/output/``.
"""
from __future__ import annotations

from pathlib import Path

from repro.core import layout_graph
from repro.graph import LeanGraph, figure1_example, gfa_to_text
from repro.io import write_lay
from repro.metrics import sampled_path_stress
from repro.render import save_svg
from repro.synth import hla_drb1_like

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)

    # ---- The paper's Fig. 1 toy graph --------------------------------------
    toy = figure1_example()
    print("Fig. 1 toy graph as GFA:")
    print(gfa_to_text(toy))
    toy_lean = LeanGraph.from_variation_graph(toy)
    toy_result = layout_graph(toy_lean, engine="serial",
                              iter_max=10, steps_per_step_unit=5.0)
    save_svg(toy_result.layout, OUTPUT / "fig1_toy.svg", graph=toy_lean)
    print(f"wrote {OUTPUT / 'fig1_toy.svg'}")

    # ---- HLA-DRB1-like gene graph -------------------------------------------
    graph = hla_drb1_like(scale=0.25)
    print(f"\nHLA-DRB1-like graph: {graph.n_nodes} nodes, {graph.n_paths} paths, "
          f"{graph.total_steps} path steps")
    overrides = dict(iter_max=15, steps_per_step_unit=3.0, seed=9399)

    cpu = layout_graph(graph, engine="cpu", **overrides)
    gpu = layout_graph(graph, engine="gpu", **overrides)
    print(f"CPU run: {cpu.summary()['wall_time_s']:.2f}s, "
          f"{cpu.summary()['update_dispatches']:.0f} dispatches")

    cpu_sps = sampled_path_stress(cpu.layout, graph, samples_per_step=30, seed=0)
    gpu_sps = sampled_path_stress(gpu.layout, graph, samples_per_step=30, seed=0)
    print(f"CPU baseline sampled path stress: {cpu_sps.value:.4f} "
          f"(95% CI [{cpu_sps.ci_low:.4f}, {cpu_sps.ci_high:.4f}])")
    print(f"GPU engine   sampled path stress: {gpu_sps.value:.4f} "
          f"(95% CI [{gpu_sps.ci_low:.4f}, {gpu_sps.ci_high:.4f}])")
    print(f"SPS ratio (GPU/CPU): {gpu_sps.value / max(cpu_sps.value, 1e-12):.2f} "
          "(paper Table VIII: close to 1)")

    save_svg(gpu.layout, OUTPUT / "hla_gpu_layout.svg", graph=graph)
    write_lay(gpu.layout, OUTPUT / "hla_gpu_layout.lay")
    print(f"wrote {OUTPUT / 'hla_gpu_layout.svg'} and {OUTPUT / 'hla_gpu_layout.lay'}")

    # ---- Process-parallel hogwild over shared memory ------------------------
    par = layout_graph(graph, workers=2, **overrides)
    summary = par.summary()
    print(f"\nshm engine ({summary['workers']:.0f} workers): "
          f"{summary['wall_time_s']:.2f}s, "
          f"collision fraction {summary['collision_fraction']:.4f}")


if __name__ == "__main__":
    main()
