"""Fig. 4 — thread scaling of the odgi-layout CPU baseline.

Models the 1→32 thread run times of the three representative graphs from the
measured cache profile of the actual workload (see DESIGN.md: only one
physical core is available, so the scaling curve comes from the calibrated
latency/bandwidth model).
"""
from __future__ import annotations

from ...parallel import cpu_thread_scaling
from ..registry import CaseResult, bench_case
from ..tables import format_table

THREADS = [1, 2, 4, 8, 16, 32]


@bench_case("fig04_cpu_scaling", source="Fig. 4", suites=("figures",))
def run(ctx) -> CaseResult:
    """Near-linear CPU thread scaling on every representative graph."""
    params = ctx.bench_params
    results = {
        name: cpu_thread_scaling(graph, name, params,
                                 thread_counts=THREADS, n_trace_terms=1024)
        for name, graph in ctx.representative_graphs.items()
    }

    out = CaseResult()
    rows = []
    for name, res in results.items():
        speedups = res.speedup()
        rows.append([name] + [f"{res.times_s[t]:.3g}s" for t in THREADS]
                    + [f"{speedups[32]:.1f}x"])
        # Fig. 4: near-linear scaling with threads on every graph.
        assert speedups[2] > 1.6
        assert speedups[8] > 5.0
        assert speedups[32] > 12.0
        out.add(f"{name}_time_1thr_s", res.times_s[1], unit="s(model)", direction="lower")
        out.add(f"{name}_time_32thr_s", res.times_s[32], unit="s(model)", direction="lower")
        out.add(f"{name}_speedup_32thr", speedups[32], unit="x", direction="higher")
    # Larger graphs take longer at every thread count.
    assert results["Chr.1"].times_s[32] > results["HLA-DRB1"].times_s[32]

    out.graph_properties = ctx.graph_properties(ctx.chr1_graph)
    out.tables.append(format_table(
        ["Pangenome"] + [f"{t} thr" for t in THREADS] + ["speedup@32"],
        rows,
        title="Fig. 4: modelled odgi-layout run time vs thread count",
    ))
    return out
