"""Tests for the PRNG substrate (SplitMix64, Xoshiro256+, XORWOW)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.prng import (
    AOS,
    SOA,
    SplitMix64,
    Xoshiro256Plus,
    XorwowState,
    rotl64,
    seed_streams,
    splitmix64_next,
    state_addresses,
)
from repro.prng.xoshiro import reference_scalar_next


class TestSplitMix64:
    def test_known_first_output(self):
        # Reference value for seed 0 from the SplitMix64 reference code.
        sm = SplitMix64(0, 1)
        assert int(sm.next_uint64()[0]) == 0xE220A8397B1DCDAF

    def test_streams_are_distinct(self):
        sm = SplitMix64(42, 8)
        out = sm.next_uint64()
        assert len(np.unique(out)) == 8

    def test_next_double_in_unit_interval(self):
        sm = SplitMix64(7, 100)
        for _ in range(10):
            d = sm.next_double()
            assert np.all(d >= 0.0) and np.all(d < 1.0)

    def test_state_array_constructor_rejects_mismatched_n(self):
        with pytest.raises(ValueError):
            SplitMix64(np.arange(4, dtype=np.uint64), n=8)

    def test_splitmix64_next_does_not_mutate_input(self):
        state = np.array([5], dtype=np.uint64)
        before = state.copy()
        splitmix64_next(state)
        assert np.array_equal(state, before)


class TestSeedStreams:
    def test_shape_and_no_zero_words(self):
        words = seed_streams(0, 16, 4)
        assert words.shape == (16, 4)
        assert not np.any(words == 0)

    def test_deterministic(self):
        assert np.array_equal(seed_streams(9, 4), seed_streams(9, 4))

    def test_different_seeds_differ(self):
        assert not np.array_equal(seed_streams(1, 4), seed_streams(2, 4))

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_nonpositive_stream_count(self, bad):
        with pytest.raises(ValueError):
            seed_streams(0, bad)


class TestRotl:
    def test_rotl_matches_python(self):
        x = np.array([0x0123456789ABCDEF], dtype=np.uint64)
        k = 13
        expected = ((0x0123456789ABCDEF << k) | (0x0123456789ABCDEF >> (64 - k))) & (2**64 - 1)
        assert int(rotl64(x, k)[0]) == expected

    def test_rotl_zero_is_identity(self):
        x = np.array([12345], dtype=np.uint64)
        assert int(rotl64(x, 0)[0]) == 12345

    def test_rotl_64_is_identity(self):
        x = np.array([987654321], dtype=np.uint64)
        assert int(rotl64(x, 64)[0]) == 987654321


class TestXoshiro256Plus:
    def test_vectorised_matches_scalar_reference(self):
        gen = Xoshiro256Plus(3, n_streams=5)
        states_before = gen.state.copy()
        outputs = gen.next_uint64()
        for s in range(5):
            new_state, out = reference_scalar_next(states_before[s])
            assert int(outputs[s]) == out
            assert np.array_equal(gen.state[s], new_state)

    def test_streams_decorrelated(self):
        gen = Xoshiro256Plus(0, n_streams=64)
        draws = np.stack([gen.next_double() for _ in range(50)])
        # Correlation between adjacent streams should be small.
        corr = np.corrcoef(draws[:, 0], draws[:, 1])[0, 1]
        assert abs(corr) < 0.5

    def test_next_double_bounds(self):
        gen = Xoshiro256Plus(11, n_streams=128)
        for _ in range(20):
            d = gen.next_double()
            assert np.all((d >= 0.0) & (d < 1.0))

    def test_next_below_respects_bound(self):
        gen = Xoshiro256Plus(5, n_streams=256)
        vals = gen.next_below(17)
        assert np.all((vals >= 0) & (vals < 17))

    def test_next_below_rejects_zero_bound(self):
        gen = Xoshiro256Plus(5, n_streams=4)
        with pytest.raises(ValueError):
            gen.next_below(0)

    def test_next_double_block_matches_repeated_calls(self):
        # The bulk fill is byte-identical to stacking next_double() outputs
        # and leaves the state exactly n_calls steps ahead — the fused
        # megabatch draw and the per-call draw are interchangeable.
        for n_streams in (1, 3, 64):
            bulk = Xoshiro256Plus(99, n_streams=n_streams)
            loop = Xoshiro256Plus(99, n_streams=n_streams)
            block = bulk.next_double_block(23)
            assert block.shape == (23, n_streams)
            expected = np.vstack([loop.next_double() for _ in range(23)])
            np.testing.assert_array_equal(block, expected)
            np.testing.assert_array_equal(bulk.state, loop.state)

    def test_next_double_block_resumes_mid_stream(self):
        bulk = Xoshiro256Plus(5, n_streams=8)
        loop = Xoshiro256Plus(5, n_streams=8)
        bulk.next_double_block(3)
        for _ in range(3):
            loop.next_double()
        np.testing.assert_array_equal(bulk.next_double(), loop.next_double())

    def test_next_double_block_edge_sizes(self):
        rng = Xoshiro256Plus(1, n_streams=4)
        before = rng.state.copy()
        assert rng.next_double_block(0).shape == (0, 4)
        np.testing.assert_array_equal(rng.state, before)
        with pytest.raises(ValueError):
            rng.next_double_block(-1)

    def test_copy_is_independent(self):
        gen = Xoshiro256Plus(2, n_streams=3)
        clone = gen.copy()
        a = gen.next_uint64()
        b = clone.next_uint64()
        assert np.array_equal(a, b)
        gen.next_uint64()
        assert not np.array_equal(gen.state, clone.state)

    def test_rejects_all_zero_state(self):
        with pytest.raises(ValueError):
            Xoshiro256Plus(np.zeros((1, 4), dtype=np.uint64))

    def test_jump_streams_extends(self):
        gen = Xoshiro256Plus(0, n_streams=2)
        bigger = gen.jump_streams(3)
        assert bigger.n_streams == 5

    def test_deterministic_given_seed(self):
        a = Xoshiro256Plus(99, n_streams=8)
        b = Xoshiro256Plus(99, n_streams=8)
        assert np.array_equal(a.next_uint64(), b.next_uint64())

    def test_coin_flip_balanced(self):
        gen = Xoshiro256Plus(1, n_streams=2048)
        flips = gen.next_bool()
        frac = flips.mean()
        assert 0.4 < frac < 0.6


class TestXorwow:
    def test_layouts_produce_identical_outputs(self):
        aos = XorwowState(seed=4, n_streams=64, layout=AOS)
        soa = XorwowState(seed=4, n_streams=64, layout=SOA)
        for _ in range(5):
            assert np.array_equal(aos.next_uint32(), soa.next_uint32())

    def test_next_float_bounds(self):
        gen = XorwowState(seed=1, n_streams=32)
        f = gen.next_float()
        assert np.all((f >= 0.0) & (f < 1.0))

    def test_next_below(self):
        gen = XorwowState(seed=1, n_streams=128)
        v = gen.next_below(10)
        assert np.all((v >= 0) & (v < 10))

    def test_as_layout_round_trip(self):
        gen = XorwowState(seed=3, n_streams=16, layout=AOS)
        converted = gen.as_layout(SOA)
        assert converted.layout == SOA
        assert np.array_equal(gen.next_uint32(), converted.next_uint32())

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            XorwowState(seed=0, n_streams=2, layout="bogus")

    def test_state_bytes(self):
        gen = XorwowState(seed=0, n_streams=100)
        assert gen.state_bytes == 100 * 6 * 4

    def test_output_not_constant(self):
        gen = XorwowState(seed=0, n_streams=4)
        outs = [gen.next_uint32() for _ in range(4)]
        assert len({int(o[0]) for o in outs}) > 1


class TestStateAddresses:
    def test_aos_addresses_are_strided(self):
        addrs = state_addresses(32, field=1, layout=AOS)
        assert np.all(np.diff(addrs) == 24)

    def test_soa_addresses_are_contiguous(self):
        addrs = state_addresses(32, field=1, layout=SOA)
        assert np.all(np.diff(addrs) == 4)

    def test_soa_fewer_sectors_than_aos(self):
        from repro.gpusim import sectors_for_request

        aos = sectors_for_request(state_addresses(32, 0, AOS), access_bytes=4)
        soa = sectors_for_request(state_addresses(32, 0, SOA), access_bytes=4)
        assert soa < aos
        assert soa == 4  # 32 threads x 4 bytes / 32-byte sectors

    def test_field_out_of_range(self):
        with pytest.raises(ValueError):
            state_addresses(32, field=6)

    def test_invalid_layout(self):
        with pytest.raises(ValueError):
            state_addresses(32, field=0, layout="xxx")
