"""Warp-execution model: divergence and the warp-merging optimisation.

Lines 7–11 of Alg. 1 branch between the cooling (Zipf-distance) and
non-cooling (uniform) node-pair selection. On a GPU, the 32 threads of a warp
execute in lock-step; when they disagree on the branch, both sides execute
serially with part of the warp masked off. The paper measures this as the
average number of active threads per warp (20.5 without the fix) and the
total executed instructions, and removes the divergence by *warp merging*:
one control thread per warp makes the branch decision for all 32 threads
(Table XI, Fig. 11).

This module computes those counters from the per-thread branch decisions the
layout engines actually made, for both policies.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WarpExecutionStats", "simulate_warp_execution", "merge_branch_decisions"]

# Instruction-cost weights of the two branch bodies, relative to the shared
# (non-branching) part of one update step. The cooling branch runs the Zipf
# sampling (more instructions) than the uniform branch; the shared part
# (coordinate load, gradient, store) dominates.
_SHARED_INSTRUCTIONS = 48
_COOLING_INSTRUCTIONS = 26
_UNIFORM_INSTRUCTIONS = 14


@dataclass(frozen=True)
class WarpExecutionStats:
    """Execution counters over a set of warp-steps."""

    n_warp_steps: int
    executed_instructions: int
    issued_thread_instructions: int
    active_thread_instructions: int

    @property
    def avg_active_threads(self) -> float:
        """Average active threads per warp per executed instruction."""
        if self.executed_instructions == 0:
            return 0.0
        return self.active_thread_instructions / self.executed_instructions

    @property
    def divergence_overhead(self) -> float:
        """Ratio of issued to useful thread-instructions (1.0 = no divergence)."""
        if self.active_thread_instructions == 0:
            return 0.0
        return self.issued_thread_instructions / self.active_thread_instructions


def merge_branch_decisions(cooling: np.ndarray, warp_size: int = 32) -> np.ndarray:
    """Apply warp merging: every thread adopts its warp's control-thread decision.

    The control thread is lane 0 of each warp (the paper stores the decision
    in shared memory for the rest of the warp to read). Trailing partial
    warps use their own lane 0.
    """
    cooling = np.asarray(cooling, dtype=bool)
    merged = cooling.copy()
    n = cooling.size
    for start in range(0, n, warp_size):
        merged[start:start + warp_size] = cooling[start]
    return merged


def simulate_warp_execution(
    cooling: np.ndarray,
    warp_size: int = 32,
    warp_merging: bool = False,
) -> WarpExecutionStats:
    """Compute execution counters for a sequence of per-thread branch decisions.

    ``cooling`` is the flat per-thread boolean branch outcome, laid out so
    consecutive ``warp_size`` entries form one warp (how the GPU engine packs
    its batches). With ``warp_merging`` the decisions are first merged via
    :func:`merge_branch_decisions`.
    """
    cooling = np.asarray(cooling, dtype=bool)
    if cooling.ndim != 1:
        raise ValueError("cooling must be a flat per-thread array")
    if warp_size < 1:
        raise ValueError("warp_size must be >= 1")
    if warp_merging:
        cooling = merge_branch_decisions(cooling, warp_size)

    n = cooling.size
    n_warps = int(np.ceil(n / warp_size))
    executed = 0
    issued = 0
    active = 0
    for w in range(n_warps):
        lane_mask = cooling[w * warp_size:(w + 1) * warp_size]
        lanes = lane_mask.size
        n_cooling = int(lane_mask.sum())
        n_uniform = lanes - n_cooling
        # Shared portion: all lanes active.
        executed += _SHARED_INSTRUCTIONS
        issued += _SHARED_INSTRUCTIONS * lanes
        active += _SHARED_INSTRUCTIONS * lanes
        # Cooling side: executed whenever any lane takes it; all lanes issued,
        # only the cooling lanes do useful work.
        if n_cooling:
            executed += _COOLING_INSTRUCTIONS
            issued += _COOLING_INSTRUCTIONS * lanes
            active += _COOLING_INSTRUCTIONS * n_cooling
        if n_uniform:
            executed += _UNIFORM_INSTRUCTIONS
            issued += _UNIFORM_INSTRUCTIONS * lanes
            active += _UNIFORM_INSTRUCTIONS * n_uniform
    return WarpExecutionStats(
        n_warp_steps=n_warps,
        executed_instructions=executed,
        issued_thread_instructions=issued,
        active_thread_instructions=active,
    )
