"""Table X — effects of coalesced random states (CRS).

Measures the sectors-per-request of the per-thread XORWOW state accesses and
the modelled cache/DRAM traffic of the GPU kernel with the AoS (cuRAND
default) versus SoA (coalesced) state layout. Paper anchors: 26.8 → 9.9 L1
sectors per request, 1.8x less L1 traffic, 1.3x less DRAM traffic, 1.2x
speedup.
"""
from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import GpuKernelConfig, OptimizedGpuEngine
from repro.gpusim import RTX_A6000


@pytest.mark.paper_table("Table X")
def test_table10_coalesced_random_states(benchmark, chr1_graph, bench_params):
    graph = chr1_graph
    params = bench_params

    def measure():
        out = {}
        for label, crs in (("w/o CRS", False), ("w/ CRS", True)):
            cfg = GpuKernelConfig(cache_friendly_layout=False,
                                  coalesced_random_states=crs, warp_merging=False)
            out[label] = OptimizedGpuEngine(graph, params, cfg).profile(
                device=RTX_A6000, n_sample_terms=1536)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    without, with_crs = results["w/o CRS"], results["w/ CRS"]

    rows = [
        ["RNG sectors / request", f"{without.rng_sectors_per_request:.1f}",
         f"{with_crs.rng_sectors_per_request:.1f}",
         f"{without.rng_sectors_per_request / with_crs.rng_sectors_per_request:.2f}x", "2.7x"],
        ["L1 traffic (bytes)", f"{without.traffic.l1_bytes:.3g}", f"{with_crs.traffic.l1_bytes:.3g}",
         f"{without.traffic.l1_bytes / with_crs.traffic.l1_bytes:.2f}x", "1.8x"],
        ["L2 traffic (bytes)", f"{without.traffic.l2_bytes:.3g}", f"{with_crs.traffic.l2_bytes:.3g}",
         f"{without.traffic.l2_bytes / max(with_crs.traffic.l2_bytes, 1):.2f}x", "1.7x"],
        ["DRAM traffic (bytes)", f"{without.traffic.dram_bytes:.3g}", f"{with_crs.traffic.dram_bytes:.3g}",
         f"{without.traffic.dram_bytes / max(with_crs.traffic.dram_bytes, 1):.2f}x", "1.3x"],
        ["GPU run time (model, s)", f"{without.runtime_s:.3g}", f"{with_crs.runtime_s:.3g}",
         f"{without.runtime_s / with_crs.runtime_s:.2f}x", "1.2x"],
    ]

    # Paper-shape assertions: the AoS state layout is badly uncoalesced (tens
    # of sectors per warp request); SoA reaches the 4-sector ideal.
    assert without.rng_sectors_per_request > 20.0
    assert with_crs.rng_sectors_per_request < 6.0
    assert with_crs.traffic.l1_bytes < without.traffic.l1_bytes
    assert with_crs.traffic.dram_bytes <= without.traffic.dram_bytes * 1.05
    assert with_crs.runtime_s < without.runtime_s

    print()
    print(format_table(
        ["Metric", "w/o CRS", "w/ CRS", "Improvement", "Paper"],
        rows,
        title="Table X: effects of coalesced random states (Chr.1-like)",
    ))
