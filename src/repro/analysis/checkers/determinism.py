"""DET001/DET002 — the seeded-randomness contract.

Every stochastic choice in this codebase must derive from the master seed
(``params.seed`` / the bench master seed) via
:func:`repro.prng.splitmix.derive_seed` with a stable label — that is what
makes two runs of the same commit byte-identical, what the smoke
baseline's ``--repeats 2`` determinism check enforces at runtime, and what
this pass enforces in the diff itself.

* **DET001** bans ambient entropy sources (``np.random.*``, the stdlib
  ``random`` module, ``os.urandom``, ``secrets``, ``uuid1/uuid4``,
  ``datetime.now``) everywhere under analysis, and wall-clock reads
  (``time.perf_counter`` & friends) inside the hot-path directories
  (``core/``, ``backend/``, ``multilevel/``, ``parallel/``, ``prng/``),
  where a timestamp feeding any computation would break reproducibility.
  A call whose argument derives via ``derive_seed(...)`` is provably
  seeded and exempt; everything else needs ``# det-ok: <reason>``.
* **DET002** requires every ``derive_seed(seed, "<label>")`` string
  literal (and every f-string *template*) to be unique codebase-wide:
  duplicate labels alias PRNG stream families, the silent failure mode of
  label-derived seeding.
"""
from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from ..astutil import (call_contains_name, dotted_name, fstring_template,
                       qualified_call_name)
from ..registry import Finding, checker
from ..source import SourceFile

__all__ = ["check_det001", "check_det002"]

#: Entropy call targets banned in every analysed file (prefix match on the
#: resolved qualified name).
ENTROPY_PREFIXES = (
    "numpy.random.",
    "random.",
    "secrets.",
)

#: Entropy call targets banned in every analysed file (exact match).
ENTROPY_EXACT = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Wall-clock reads banned inside the hot-path directories only — the bench
#: subsystem times things for a living, but a clock read in ``core/`` &co.
#: is either dead code or a determinism leak unless justified.
WALLCLOCK_EXACT = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}


def _entropy_kind(qual: str) -> str:
    if qual in ENTROPY_EXACT or any(qual.startswith(p) for p in ENTROPY_PREFIXES):
        return "entropy"
    if qual in WALLCLOCK_EXACT:
        return "wallclock"
    return ""


@checker("DET001", pragma="det-ok", severity="error", scope="file")
def check_det001(src: SourceFile) -> List[Finding]:
    """Ambient entropy / wall-clock calls outside the master-seed contract."""
    out: List[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = qualified_call_name(node.func, src.aliases)
        if qual is None:
            continue
        kind = _entropy_kind(qual)
        if kind == "entropy":
            if call_contains_name(node, "derive_seed"):
                continue  # provably derived from the master seed
            shown = dotted_name(node.func) or qual
            out.append(Finding(
                rule="DET001", path=src.rel, line=node.lineno,
                col=node.col_offset, severity="error",
                message=(f"entropy source '{shown}()' — every draw must "
                         "derive from the master seed via derive_seed(seed, "
                         "label); seed the call from derive_seed(...) or "
                         "justify it with '# det-ok: <reason>'"),
                snippet=src.snippet(node.lineno)))
        elif kind == "wallclock" and src.in_hot_path_dir():
            shown = dotted_name(node.func) or qual
            out.append(Finding(
                rule="DET001", path=src.rel, line=node.lineno,
                col=node.col_offset, severity="error",
                message=(f"wall-clock read '{shown}()' in a hot-path module "
                         "— timestamps must never feed layout computation; "
                         "reporting-only timing needs '# det-ok: <reason>'"),
                snippet=src.snippet(node.lineno)))
    return out


def _seed_labels(src: SourceFile) -> List[Tuple[str, str, int, int]]:
    """(label, kind, line, col) for every literal/f-string derive_seed label."""
    out = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        target = dotted_name(node.func)
        if target is None or target.split(".")[-1] != "derive_seed":
            continue
        if len(node.args) < 2:
            continue
        label_arg = node.args[1]
        if isinstance(label_arg, ast.Constant) and isinstance(label_arg.value, str):
            out.append((label_arg.value, "literal", node.lineno,
                        node.col_offset))
        elif isinstance(label_arg, ast.JoinedStr):
            out.append((fstring_template(label_arg), "f-string template",
                        node.lineno, node.col_offset))
        # Runtime-variable labels cannot be judged statically; the runner's
        # --repeats determinism check remains the backstop for those.
    return out


@checker("DET002", pragma="det-ok", severity="error", scope="project")
def check_det002(sources: List[SourceFile]) -> List[Finding]:
    """Duplicate derive_seed labels — aliased PRNG stream families."""
    sites: Dict[str, List[Tuple[SourceFile, str, int, int]]] = {}
    for src in sources:
        for label, kind, line, col in _seed_labels(src):
            sites.setdefault(label, []).append((src, kind, line, col))
    out: List[Finding] = []
    for label, where in sorted(sites.items()):
        if len(where) < 2:
            continue
        first = where[0]
        first_loc = f"{first[0].rel}:{first[2]}"
        for src, kind, line, col in where[1:]:
            out.append(Finding(
                rule="DET002", path=src.rel, line=line, col=col,
                severity="error",
                message=(f"derive_seed {kind} label {label!r} duplicates "
                         f"{first_loc} — duplicate labels alias PRNG "
                         "streams; every seed-derivation site needs a "
                         "unique label"),
                snippet=src.snippet(line)))
    return out
