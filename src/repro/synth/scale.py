"""Million-node synthetic workload for the memory-ceiling ``scale`` suite.

The chunked fused path (PR 8) exists for graphs whose *per-iteration*
transient footprint — the uniform megablock plus the selection/merge
staging arrays, ~:data:`~repro.core.fused.FUSED_BYTES_PER_TERM` bytes per
update term — dwarfs any reasonable budget. The paper's large inputs
(chr1-scale HPRC pangenomes) have that shape, but simulating them through
:func:`~repro.synth.simulator.simulate_pangenome` walks Python loops per
node and would take minutes at 10⁶ nodes. This module instead builds the
:class:`~repro.graph.lean.LeanGraph` arrays *directly* and fully
vectorised: a backbone-ramp path model (each path sweeps the node id
range with bounded local jitter, like haplotypes traversing a linear
pangenome backbone) that costs a handful of NumPy passes over the step
arrays regardless of scale.

The generated graph is a benchmark *input*, identified by its explicit
seed like the calibrated :mod:`~repro.synth.datasets` specs — callers pass
the seed, nothing here reads ambient entropy.
"""
from __future__ import annotations

import numpy as np

from ..graph.lean import LeanGraph

__all__ = ["scale_graph", "SCALE_GRAPH_SEED"]

#: Dataset-identity seed of the default ``scale`` suite graph. Fixed like
#: the DatasetSpec seeds: the graph is an input of the committed baseline,
#: not a place where measurement randomness belongs.
SCALE_GRAPH_SEED = 412978


def scale_graph(
    n_nodes: int = 1_000_000,
    total_steps: int = 10_000_000,
    n_paths: int = 20,
    max_node_length: int = 16,
    jitter: int = 32,
    reverse_fraction: float = 0.05,
    seed: int = SCALE_GRAPH_SEED,
) -> LeanGraph:
    """Build a backbone-ramp pangenome-like graph of arbitrary size.

    Each of the ``n_paths`` paths visits ``total_steps // n_paths`` steps
    (the remainder spread over the first paths): a linear ramp across the
    whole node id range plus uniform integer jitter of ``±jitter``,
    clipped into range. Every node is therefore visited by every path in
    roughly the same neighbourhood — the locality structure path-guided
    SGD exploits — while the jitter keeps step sequences distinct between
    paths. ``reverse_fraction`` of steps are reverse-oriented.

    Construction is O(total_steps) vectorised NumPy; 10⁶ nodes / 10⁷
    steps builds in about a second.
    """
    if n_nodes < 1 or total_steps < 1 or n_paths < 1:
        raise ValueError("n_nodes, total_steps and n_paths must be >= 1")
    if n_paths > total_steps:
        raise ValueError("n_paths cannot exceed total_steps")
    rng = np.random.default_rng(seed)  # det-ok: seeded by the caller's explicit seed argument
    node_lengths = rng.integers(1, max_node_length + 1, size=n_nodes,
                                dtype=np.int64)

    base, rem = divmod(total_steps, n_paths)
    counts = np.full(n_paths, base, dtype=np.int64)
    counts[:rem] += 1
    path_offsets = np.concatenate(([0], np.cumsum(counts)))

    step_nodes = np.empty(total_steps, dtype=np.int64)
    step_positions = np.empty(total_steps, dtype=np.int64)
    for p in range(n_paths):
        lo, hi = int(path_offsets[p]), int(path_offsets[p + 1])
        count = hi - lo
        ramp = np.linspace(0.0, float(n_nodes - 1), num=count)
        noise = rng.integers(-jitter, jitter + 1, size=count)
        nodes = np.clip(np.rint(ramp).astype(np.int64) + noise, 0, n_nodes - 1)
        step_nodes[lo:hi] = nodes
        # Exclusive prefix sum of the visited node lengths = nucleotide
        # offset of each step within its path.
        lengths = node_lengths[nodes]
        positions = np.cumsum(lengths)
        positions -= lengths
        step_positions[lo:hi] = positions

    step_reverse = rng.random(total_steps) < float(reverse_fraction)
    return LeanGraph(
        node_lengths=node_lengths,
        path_offsets=path_offsets,
        step_nodes=step_nodes,
        step_reverse=step_reverse,
        step_positions=step_positions,
        path_names=[f"scale_path{p}" for p in range(n_paths)],
    )
