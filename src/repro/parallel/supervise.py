"""Supervised parallel runtime: liveness-checked barriers, failure policies.

The process-parallel engine (:mod:`repro.parallel.shm`) synchronises its
workers at two barriers — the post-spawn ``ready`` handshake and the
per-iteration result collection. Before this module existed both barriers
were a bare ``Connection.recv()``: a worker that died (OOM kill, a
segfaulting backend, an exception after ``ready``) left the parent blocked
forever, with no exitcode inspection and no recovery path. The supervisor
replaces every blocking wait with a *liveness-checked* wait and turns
worker death into a typed, policy-driven event.

Failure taxonomy
----------------
All supervision failures derive from :class:`ParallelRuntimeError`:

:class:`WorkerCrash`
    The worker *process* died — discovered either by exitcode inspection
    during a wait or by a broken pipe on send. Carries the worker id and
    the OS exitcode (negative = killed by that signal number).
:class:`WorkerStall`
    The worker process is alive but failed to deliver its iteration-barrier
    message within ``barrier_timeout`` seconds. Stalled workers are
    forcibly reaped before any recovery (they still hold a mapping of the
    shared coordinate buffer).
:class:`BarrierTimeout`
    The worker process is alive but never completed the ``ready``
    handshake within ``ready_timeout`` seconds — setup (attach, plan
    build) wedged rather than the iteration loop.

Liveness-checked waits
----------------------
:meth:`WorkerSupervisor._wait` polls the worker's pipe in short ticks
(:data:`POLL_TICK`) against a monotonic deadline; every tick doubles as a
heartbeat — ``Process.is_alive()`` plus exitcode inspection — so a crash
is detected within one tick even when the deadline is generous. Deadlines
only bound *stalls*: a healthy slow iteration never trips anything, and a
dead worker never costs more than one tick.

Failure policies (``LayoutParams.on_worker_failure``)
-----------------------------------------------------
``fail``
    Raise the typed error promptly. The run never hangs and never
    silently produces a layout missing a worker's contribution.
``degrade``
    Re-slice the dead worker's remaining sub-plan across the survivors
    (:func:`repro.core.fused.slice_plan` — the same machinery that built
    the original decomposition) and continue with fewer processes. The
    result is flagged ``degraded`` and ``effective_workers`` reflects the
    survivor count. The failed iteration's contribution from the dead
    worker is lost; coverage is restored from the next iteration on.
``restart``
    Respawn the worker over the same shared segment with *fresh* jumped
    PRNG streams (``derive_seed(seed, "shm-respawn")`` — reusing the dead
    worker's streams could replay draws its crashed half-iteration already
    consumed), waiting ``backoff_base * 2^k`` (capped) between attempts.
    After ``max_restarts`` failed respawns the worker degrades as above.

Recovery always runs at an iteration barrier: a failure discovered during
the ``iter`` broadcast is deferred until that iteration's results are
collected (the survivors' pipes carry in-flight results that recovery
must not interleave with), and a worker respawned at the barrier idles
until the next ``iter`` message. The failed iteration's contribution from
the dead worker is lost under both recovery policies.

Determinism caveats: multi-worker layouts were never byte-reproducible
(the store race), and recovery adds to that — degraded/restarted runs draw
the recovered plan's terms from recovery streams, not the dead worker's.
What *is* deterministic: which terms each surviving decomposition samples
given the same seed and the same failure point, which is what the seeded
fault-injection harness (:mod:`repro.parallel.faults`) exploits in tests.

The ROBUST001 contract (enforced by ``repro analyze``): code under
``parallel/`` may not call a bare ``Connection.recv()`` or an untimed
``Process.join()`` — every barrier wait routes through this module, whose
own internal reads are poll-guarded and pragma-documented.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import clock as obs_clock
from ..obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "ParallelRuntimeError",
    "WorkerCrash",
    "WorkerStall",
    "BarrierTimeout",
    "WorkerHandle",
    "WorkerSupervisor",
    "POLL_TICK",
    "DEFAULT_READY_TIMEOUT",
    "DEFAULT_BARRIER_TIMEOUT",
    "DEFAULT_JOIN_TIMEOUT",
]

#: Seconds per liveness tick: the pipe is polled and the worker's process
#: state inspected at this cadence, so a crash is detected within one tick
#: regardless of how generous the enclosing deadline is.
POLL_TICK = 0.05

#: Default deadline for the post-spawn ``ready`` handshake (covers
#: interpreter start under ``spawn`` plus plan construction).
DEFAULT_READY_TIMEOUT = 120.0

#: Default deadline for one iteration barrier. Deliberately generous —
#: it only bounds *stalls*; crashes are caught within one poll tick.
DEFAULT_BARRIER_TIMEOUT = 900.0

#: Default graceful-join deadline at shutdown, after which teardown
#: escalates terminate() -> kill().
DEFAULT_JOIN_TIMEOUT = 5.0


class ParallelRuntimeError(RuntimeError):
    """Base class for supervised parallel-runtime failures."""

    def __init__(self, message: str, worker_id: Optional[int] = None,
                 exitcode: Optional[int] = None):
        super().__init__(message)
        self.worker_id = worker_id
        self.exitcode = exitcode


class WorkerCrash(ParallelRuntimeError):
    """A worker process died (nonzero exit, signal, or broken pipe)."""


class WorkerStall(ParallelRuntimeError):
    """A live worker missed the iteration-barrier deadline."""


class BarrierTimeout(ParallelRuntimeError):
    """A live worker never completed the ready handshake in time."""


@dataclass
class WorkerHandle:
    """Supervisor-side state for one worker slot.

    ``worker_id`` is the stable slot index (rings, labels and respawns all
    key on it); ``proc``/``conn`` are replaced on respawn. ``plans`` is
    every sub-plan the slot is responsible for — its original slice plus
    any slices adopted from degraded siblings — which is what gets
    redistributed if this worker dies in turn.
    """

    worker_id: int
    proc: Any
    conn: Any
    plans: List[List[int]]
    chunks: int = 0
    restarts: int = 0
    dead: bool = False
    failure: Optional[ParallelRuntimeError] = field(default=None, repr=False)

    def flat_plan(self) -> List[int]:
        """Every batch segment this slot currently owns, in plan order."""
        return [seg for plan in self.plans for seg in plan]


#: Engine-supplied callback spawning one worker process:
#: ``spawn(worker_id, sub_plan, stream_state) -> (process, parent_conn)``.
SpawnFn = Callable[[int, List[int], np.ndarray], Tuple[Any, Any]]

#: Engine-supplied callback minting fresh decorrelated PRNG stream states
#: for recovery: ``fresh_states(kind, n) -> [state, ...]`` with ``kind``
#: one of ``"respawn"`` / ``"degrade"``. Every call must return states
#: disjoint from all previously issued ones.
FreshStatesFn = Callable[[str, int], List[np.ndarray]]

#: Worker-failure policies accepted by the supervisor (and by
#: ``LayoutParams.on_worker_failure``).
FAILURE_POLICIES = ("fail", "degrade", "restart")


class WorkerSupervisor:
    """Owns the worker processes of one shm run: spawn, barriers, teardown.

    The engine drives it through five calls — :meth:`start`,
    :meth:`await_ready`, :meth:`send_iter`, :meth:`collect`,
    :meth:`shutdown` — and never touches a pipe or a process directly.
    Failures discovered at any barrier are resolved according to
    ``policy`` before the call returns; counters
    (:attr:`worker_failures`, :attr:`worker_restarts`,
    :attr:`workers_killed`, :attr:`degraded`) accumulate for the engine's
    result summary.

    ``sleep`` is injectable so tests exercise the restart backoff without
    real delays.
    """

    def __init__(self, spawn: SpawnFn, policy: str = "fail", *,
                 fresh_states: Optional[FreshStatesFn] = None,
                 ready_timeout: float = DEFAULT_READY_TIMEOUT,
                 barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
                 join_timeout: float = DEFAULT_JOIN_TIMEOUT,
                 max_restarts: int = 2,
                 backoff_base: float = 0.1,
                 backoff_cap: float = 2.0,
                 tracer: Tracer = NULL_TRACER,
                 sleep: Callable[[float], None] = time.sleep):
        if policy not in FAILURE_POLICIES:
            raise ValueError(
                f"on_worker_failure must be one of {FAILURE_POLICIES}, "
                f"got {policy!r}")
        if policy != "fail" and fresh_states is None:
            raise ValueError(
                f"policy {policy!r} needs a fresh_states callback to mint "
                "recovery PRNG streams")
        self.spawn = spawn
        self.policy = policy
        self.fresh_states = fresh_states
        self.ready_timeout = float(ready_timeout)
        self.barrier_timeout = float(barrier_timeout)
        self.join_timeout = float(join_timeout)
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.tracer = tracer
        self._sleep = sleep
        self.handles: List[WorkerHandle] = []
        #: Failures discovered while an iteration is in flight (broken pipe
        #: during the ``iter`` broadcast). Recovery over the survivors'
        #: pipes must wait until their iteration results are drained, so
        #: these handles are resolved at the end of the next collect().
        self._pending_recovery: List[WorkerHandle] = []
        self.worker_failures = 0
        self.worker_restarts = 0
        self.workers_killed = 0
        self.degraded = False
        self._shut_down = False

    # ------------------------------------------------------------ queries
    def live(self) -> List[WorkerHandle]:
        """Handles still participating in barriers."""
        return [h for h in self.handles if not h.dead]

    def live_count(self) -> int:
        return len(self.live())

    def total_chunks(self) -> int:
        """Fused chunk dispatches per iteration across live workers."""
        return sum(h.chunks for h in self.live())

    # ------------------------------------------------------------- spawn
    def start(self, sub_plans: Sequence[List[int]],
              states: Sequence[np.ndarray]) -> None:
        """Spawn one worker per sub-plan (no waiting — see await_ready)."""
        for w, (sub_plan, state) in enumerate(zip(sub_plans, states)):
            proc, conn = self.spawn(w, list(sub_plan), state)
            self.handles.append(
                WorkerHandle(worker_id=w, proc=proc, conn=conn,
                             plans=[list(sub_plan)]))

    # ----------------------------------------------------- liveness waits
    def _wait(self, handle: WorkerHandle, timeout: float, phase: str):
        """One liveness-checked message wait; raises the typed failure.

        Polls in :data:`POLL_TICK` slices against a monotonic deadline;
        every slice inspects the process (the heartbeat), so worker death
        surfaces as :class:`WorkerCrash` within one tick while the
        deadline itself only bounds stalls.
        """
        deadline = obs_clock.monotonic() + timeout
        while True:
            remaining = deadline - obs_clock.monotonic()
            if remaining <= 0.0:
                exc_type = (BarrierTimeout if phase == "ready"
                            else WorkerStall)
                raise exc_type(
                    f"worker {handle.worker_id} sent nothing for "
                    f"{timeout:.1f}s at the {phase} barrier and is still "
                    "alive (stall); it will be reaped",
                    worker_id=handle.worker_id)
            try:
                if handle.conn.poll(min(POLL_TICK, remaining)):
                    # robust-ok: poll() above guarantees this recv never blocks; this loop IS the supervisor seam
                    return handle.conn.recv()
            except (EOFError, OSError):
                raise self._crash(handle, phase) from None
            if not handle.proc.is_alive():
                # Drain a final message that raced the exit (a worker may
                # deliver its result and die before the next barrier).
                try:
                    if handle.conn.poll(0):
                        # robust-ok: poll() above guarantees this recv never blocks (post-mortem drain)
                        return handle.conn.recv()
                except (EOFError, OSError):
                    pass
                raise self._crash(handle, phase)

    def _crash(self, handle: WorkerHandle, phase: str) -> WorkerCrash:
        handle.proc.join(timeout=self.join_timeout)
        exitcode = handle.proc.exitcode
        return WorkerCrash(
            f"worker {handle.worker_id} died at the {phase} barrier "
            f"(exitcode {exitcode})",
            worker_id=handle.worker_id, exitcode=exitcode)

    # ----------------------------------------------------------- barriers
    def _expect_ready(self, handle: WorkerHandle) -> None:
        msg = self._wait(handle, self.ready_timeout, "ready")
        if not (isinstance(msg, tuple) and len(msg) == 3
                and msg[0] == "ready"):
            raise ParallelRuntimeError(
                f"worker {handle.worker_id} broke the ready protocol: "
                f"expected ('ready', id, chunks), got {msg!r}",
                worker_id=handle.worker_id)
        handle.chunks = int(msg[2])

    def await_ready(self) -> int:
        """Complete the ready handshake for every worker; apply policy.

        Returns the total fused-chunk count across live workers.
        """
        failed: List[WorkerHandle] = []
        for handle in list(self.handles):
            try:
                self._expect_ready(handle)
            except ParallelRuntimeError as exc:
                self._note_failure(handle, exc)
                failed.append(handle)
        self._recover(failed, iteration=-1)
        return self.total_chunks()

    def send_iter(self, iteration: int, eta: float) -> None:
        """Broadcast one iteration message; broken pipes become failures.

        A failure detected here is *deferred*: every survivor has already
        received its ``iter`` message and will deliver a result next, so
        recovering now would interleave the ``extend`` exchange (or a
        respawn's missing ``iter``) with in-flight results — degrade would
        misread a survivor's result as a broken ack and cascade. The dead
        handle is reaped immediately but its plan is recovered at the end
        of this iteration's collect(), once the survivors' pipes are quiet.
        """
        failed: List[WorkerHandle] = []
        for handle in self.live():
            try:
                handle.conn.send(("iter", iteration, eta))
            except (BrokenPipeError, OSError):
                exc = self._crash(handle, f"send(iter {iteration})")
                self._note_failure(handle, exc)
                failed.append(handle)
        self._pending_recovery.extend(failed)

    def collect(self, iteration: int) -> List[Tuple[int, Tuple]]:
        """Gather one iteration's results from every live worker.

        Returns ``[(worker_id, result), ...]`` for the workers that
        delivered; failures — both those stashed by send_iter and those
        discovered mid-barrier here — are recovered *after* the surviving
        results are in (recovery talks over the same pipes, so it must not
        interleave with in-flight result messages; a worker respawned here
        idles until the next send_iter rather than blocking a barrier).
        """
        results: List[Tuple[int, Tuple]] = []
        failed: List[WorkerHandle] = list(self._pending_recovery)
        self._pending_recovery = []
        for handle in self.live():
            try:
                results.append(
                    (handle.worker_id,
                     self._wait(handle, self.barrier_timeout,
                                f"iteration {iteration}")))
            except ParallelRuntimeError as exc:
                self._note_failure(handle, exc)
                failed.append(handle)
        self._recover(failed, iteration)
        return results

    # ----------------------------------------------------------- recovery
    def _note_failure(self, handle: WorkerHandle, exc: ParallelRuntimeError
                      ) -> None:
        """Mark a worker dead and reap its process (stalls still run!)."""
        handle.dead = True
        handle.failure = exc
        self.worker_failures += 1
        # A stalled worker still holds a mapping of the shared coordinate
        # buffer and may still be scattering into it — force it out before
        # any recovery re-covers its plan.
        self._reap(handle)
        try:
            handle.conn.close()
        except OSError:
            pass
        if self.policy == "fail":
            raise exc

    def _reap(self, handle: WorkerHandle) -> None:
        """Terminate, then kill: no worker outlives its failure handling."""
        proc = handle.proc
        if not proc.is_alive():
            proc.join(timeout=self.join_timeout)
            return
        proc.terminate()
        proc.join(timeout=self.join_timeout)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=self.join_timeout)
            self.workers_killed += 1

    def _recover(self, failed: List[WorkerHandle], iteration: int) -> None:
        """Resolve a barrier's failures per policy (restart, then degrade)."""
        if not failed:
            return
        trace = self.tracer.enabled
        t0 = self.tracer.now() if trace else 0.0
        for handle in failed:
            restarted = False
            if self.policy == "restart":
                restarted = self._try_restart(handle)
            if not restarted:
                self._degrade(handle)
        if self.live_count() == 0:
            raise ParallelRuntimeError(
                "all workers failed; nothing left to degrade onto "
                f"(last failure: {failed[-1].failure})",
                worker_id=failed[-1].worker_id,
                exitcode=failed[-1].failure.exitcode
                if failed[-1].failure else None)
        if trace:
            self.tracer.emit("recovery", t0, self.tracer.now() - t0,
                             iteration, count=len(failed))

    def _try_restart(self, handle: WorkerHandle) -> bool:
        """Respawn a dead worker's slot; True once it is ready again.

        Fresh jumped streams per attempt (never the dead worker's — its
        crashed half-iteration already consumed an unknowable prefix of
        them), capped exponential backoff between attempts, and a fall
        back to degradation after ``max_restarts`` failures.
        """
        plan = handle.flat_plan()
        while handle.restarts < self.max_restarts:
            self._sleep(min(self.backoff_base * (2 ** handle.restarts),
                            self.backoff_cap))
            handle.restarts += 1
            self.worker_restarts += 1
            (state,) = self.fresh_states("respawn", 1)
            proc, conn = self.spawn(handle.worker_id, plan, state)
            handle.proc, handle.conn = proc, conn
            try:
                self._expect_ready(handle)
            except ParallelRuntimeError as exc:
                handle.failure = exc
                self.worker_failures += 1
                self._reap(handle)
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            handle.dead = False
            handle.plans = [plan]
            return True
        return False

    def _degrade(self, handle: WorkerHandle) -> None:
        """Re-slice a dead worker's plan across the survivors."""
        from ..core.fused import slice_plan

        self.degraded = True
        survivors = self.live()
        plan = handle.flat_plan()
        handle.plans = []
        handle.chunks = 0
        if not survivors or not plan:
            return
        extras = slice_plan(plan, len(survivors))
        states = self.fresh_states("degrade", len(extras))
        still_failed: List[WorkerHandle] = []
        for survivor, extra, state in zip(survivors, extras, states):
            try:
                survivor.conn.send(("extend", extra, state))
                ack = self._wait(survivor, self.ready_timeout, "ready")
            except ParallelRuntimeError as exc:
                self._note_failure(survivor, exc)
                still_failed.append(survivor)
                continue
            if not (isinstance(ack, tuple) and len(ack) == 3
                    and ack[0] == "extended"):
                exc = ParallelRuntimeError(
                    f"worker {survivor.worker_id} broke the extend "
                    f"protocol: expected ('extended', id, chunks), "
                    f"got {ack!r}", worker_id=survivor.worker_id)
                self._note_failure(survivor, exc)
                still_failed.append(survivor)
                continue
            survivor.plans.append(list(extra))
            survivor.chunks += int(ack[2])
        # A survivor that died while adopting work cascades: its plan
        # (original + adopted) re-slices across whoever is left.
        for casualty in still_failed:
            self._degrade(casualty)

    # ----------------------------------------------------------- teardown
    def shutdown(self) -> None:
        """Stop workers and escalate on stragglers; idempotent.

        Live workers get a graceful ``stop`` plus a ``join_timeout`` join;
        whoever survives that is ``terminate()``d and re-joined, and
        whoever survives *that* is ``kill()``ed and joined again, counted
        in :attr:`workers_killed` — a terminate-resistant worker must
        never outlive the run.
        """
        if self._shut_down:
            return
        self._shut_down = True
        for handle in self.live():
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self.live():
            handle.proc.join(timeout=self.join_timeout)
        for handle in self.handles:
            proc = handle.proc
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.join_timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self.join_timeout)
                self.workers_killed += 1
            try:
                handle.conn.close()
            except OSError:
                pass
