#!/usr/bin/env python3
"""Chromosome-scale speedup survey (Table VII / Fig. 15 style).

Generates a scaled 24-chromosome pangenome suite, models the run time of the
32-thread CPU baseline, the RTX A6000 and the A100 for every chromosome from
the real workload's memory-access counters, and prints a Table-VII-style
summary with geometric-mean speedups and the run-time vs path-length scaling.

Run with:  python examples/chromosome_speedup_survey.py [--scale 0.5]
"""
from __future__ import annotations

import argparse

import numpy as np

from repro.bench import evaluate_graph_performance, format_hms, format_table, geometric_mean
from repro.core import LayoutParams
from repro.synth import CHROMOSOME_PAPER_RUNTIMES, chromosome_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor (default 0.5 of the quick suite)")
    parser.add_argument("--trace-terms", type=int, default=768,
                        help="update terms traced per graph for the counter collection")
    args = parser.parse_args()

    suite = chromosome_suite(scale=args.scale, quick=True)
    params = LayoutParams(iter_max=30, steps_per_step_unit=10.0, seed=9399)

    rows = []
    a6000, a100 = [], []
    lengths, cpu_times = [], []
    for name, graph in suite.items():
        report = evaluate_graph_performance(graph, name, params,
                                            n_trace_terms=args.trace_terms)
        s6000 = report.speedup("A6000")
        s100 = report.speedup("A100")
        a6000.append(s6000)
        a100.append(s100)
        lengths.append(graph.total_steps)
        cpu_times.append(report.cpu.total_s)
        paper = CHROMOSOME_PAPER_RUNTIMES[name]
        rows.append([
            name, graph.n_nodes, graph.total_steps,
            format_hms(report.cpu.total_s),
            f"{s6000:.1f}x", f"{paper['cpu'] / paper['a6000']:.1f}x",
            f"{s100:.1f}x", f"{paper['cpu'] / paper['a100']:.1f}x",
        ])

    rows.append(["GeoMean", "-", "-", "-", f"{geometric_mean(a6000):.1f}x", "27.7x",
                 f"{geometric_mean(a100):.1f}x", "57.3x"])
    print(format_table(
        ["Chromosome", "#Nodes", "#Steps", "CPU (model)", "A6000", "A6000(paper)",
         "A100", "A100(paper)"],
        rows,
        title="Modelled run time and speedup across the scaled 24-chromosome suite",
    ))

    # Fig. 15: linear scaling of run time with total path length.
    coeffs = np.polyfit(lengths, cpu_times, 1)
    pred = np.polyval(coeffs, lengths)
    ss_res = np.sum((np.array(cpu_times) - pred) ** 2)
    ss_tot = np.sum((np.array(cpu_times) - np.mean(cpu_times)) ** 2)
    print(f"\nCPU run time vs total path length: slope {coeffs[0]:.3g} s/step, "
          f"R^2 = {1 - ss_res / ss_tot:.3f} (paper Fig. 15: linear)")


if __name__ == "__main__":
    main()
