"""GPU execution-model simulator (hardware stand-in).

Models the aspects of GPU (and CPU) execution the paper's optimisations
target: memory-request coalescing at sector granularity, set-associative
caches, warp divergence, kernel-launch overhead, and an analytical timing
model per device. The layout engines generate real address traces and branch
decisions; this package turns them into the counters and run-time estimates
reported in the paper's Tables II, VII and IX–XI and Figs. 5 and 16.
"""
from .device import (
    DeviceSpec,
    RTX_A6000,
    A100,
    XEON_6246R,
    DEVICES,
    PAPER_REFERENCE_NODE_COUNT,
    scaled_cache_bytes,
)
from .coalescing import CoalescingReport, sectors_for_request, analyze_warp_requests
from .cache import CacheConfig, CacheStats, CacheSimulator, CacheHierarchy
from .warp import WarpExecutionStats, simulate_warp_execution, merge_branch_decisions
from .profiler import (
    MemoryTrafficProfile,
    TopDownProfile,
    WorkloadCounters,
    memory_bound_analysis,
)
from .timing import TimingBreakdown, cpu_runtime, gpu_runtime, hogwild_thread_scaling

__all__ = [
    "DeviceSpec",
    "RTX_A6000",
    "A100",
    "XEON_6246R",
    "DEVICES",
    "PAPER_REFERENCE_NODE_COUNT",
    "scaled_cache_bytes",
    "CoalescingReport",
    "sectors_for_request",
    "analyze_warp_requests",
    "CacheConfig",
    "CacheStats",
    "CacheSimulator",
    "CacheHierarchy",
    "WarpExecutionStats",
    "simulate_warp_execution",
    "merge_branch_decisions",
    "MemoryTrafficProfile",
    "TopDownProfile",
    "WorkloadCounters",
    "memory_bound_analysis",
    "TimingBreakdown",
    "cpu_runtime",
    "gpu_runtime",
    "hogwild_thread_scaling",
]
