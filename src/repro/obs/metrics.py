"""Typed metrics registry: counters, gauges and timers with labels.

Before PR 9 every engine grew ad-hoc ``Dict[str, float]`` counters with
implicit per-key semantics (``add_counter`` accumulated, ``max_counter``
took high-water maxima, and nothing recorded which was which). This module
makes the model explicit:

* :class:`Counter` — monotonic accumulation (``update_dispatches``,
  ``point_collisions``, ``fused_iterations``).
* :class:`Gauge` — last-set or high-water values (``peak_rss_bytes``,
  ``fused_chunks``).
* :class:`Timer` — accumulated seconds plus an observation count
  (phase timings outside the tracer's span stream).

Metrics are identified by ``(name, labels)``: a registry carries base
labels (``engine``/``backend``), call sites add theirs
(``level``/``worker``), and one *name* keeps one metric kind across all
label sets — mixing kinds under a name raises, which is the typo guard the
flat dicts never had.

Backward compatibility: :meth:`MetricsRegistry.counter_values` renders the
registry back into the historical flat dict (base labels elided, extra
labels as ``name{k=v}``), which is what keeps ``LayoutResult.counters``
and every existing ``summary()`` key byte-for-byte stable.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["MetricsError", "Counter", "Gauge", "Timer", "MetricEntry",
           "MetricsSnapshot", "MetricsRegistry"]

LabelItems = Tuple[Tuple[str, str], ...]


class MetricsError(ValueError):
    """Metric misuse: one name bound to two different metric kinds."""


class Counter:
    """Monotonically accumulating value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise MetricsError("counters only accumulate non-negative values"
                               " (use a gauge for signed quantities)")
        self.value += value


class Gauge:
    """Point-in-time value with ``set`` / high-water ``record_max``."""

    kind = "gauge"
    __slots__ = ("value", "_is_set")

    def __init__(self) -> None:
        self.value = 0.0
        self._is_set = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self._is_set = True

    def record_max(self, value: float) -> None:
        value = float(value)
        self.value = value if not self._is_set else max(self.value, value)
        self._is_set = True


class Timer:
    """Accumulated duration (seconds) plus observation count."""

    kind = "timer"
    __slots__ = ("total_s", "count")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.total_s += float(seconds)
        self.count += 1

    @property
    def value(self) -> float:
        return self.total_s


@dataclass(frozen=True)
class MetricEntry:
    """One immutable snapshot row: name, kind, labels, value(, count)."""

    name: str
    kind: str
    labels: LabelItems
    value: float
    count: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "kind": self.kind,
                               "labels": dict(self.labels),
                               "value": self.value}
        if self.count is not None:
            out["count"] = self.count
        return out


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen, queryable view of a registry at one instant."""

    entries: Tuple[MetricEntry, ...] = ()

    def value(self, name: str, **labels) -> float:
        """Value of the metric matching ``name`` and the *full* label set."""
        wanted = _label_items(labels)
        for entry in self.entries:
            if entry.name == name and entry.labels == wanted:
                return entry.value
        raise KeyError(f"no metric {name!r} with labels {dict(wanted)}")

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-ready rows (used by ``LayoutResult.to_dict``)."""
        return [entry.to_dict() for entry in self.entries]


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create store for typed, labelled metrics.

    Insertion-ordered: snapshots and flat views list metrics in first-touch
    order, which keeps rendered output stable across runs of the same code
    path (a determinism property the trace-structure tests lean on).
    """

    def __init__(self, labels: Optional[Mapping[str, object]] = None):
        self.labels: Dict[str, str] = {str(k): str(v)
                                       for k, v in (labels or {}).items()}
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------- families
    def _get(self, name: str, factory, labels: Mapping[str, object]):
        if not name:
            raise MetricsError("metric name must be non-empty")
        kind = factory.kind
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise MetricsError(
                f"metric {name!r} already registered as a {known}, "
                f"requested as a {kind}")
        full = dict(self.labels)
        full.update({str(k): str(v) for k, v in labels.items()})
        key = (name, _label_items(full))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
            self._kinds[name] = kind
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, Gauge, labels)

    def timer(self, name: str, **labels) -> Timer:
        return self._get(name, Timer, labels)

    # --------------------------------------------------------------- views
    def value(self, name: str, **labels) -> float:
        """Current value of an existing metric (KeyError when absent)."""
        full = dict(self.labels)
        full.update({str(k): str(v) for k, v in labels.items()})
        key = (name, _label_items(full))
        metric = self._metrics.get(key)
        if metric is None:
            raise KeyError(f"no metric {name!r} with labels {full}")
        return float(metric.value)

    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of every metric (attached to ``LayoutResult``)."""
        entries = []
        for (name, labels), metric in self._metrics.items():
            entries.append(MetricEntry(
                name=name, kind=metric.kind, labels=labels,
                value=float(metric.value),
                count=(metric.count if isinstance(metric, Timer) else None)))
        return MetricsSnapshot(entries=tuple(entries))

    def counter_values(self) -> Dict[str, float]:
        """The historical flat counter dict, derived from the registry.

        Base labels (present on every metric of this registry) are elided;
        extra labels render as ``name{k=v,...}`` so per-worker/per-level
        metrics coexist with the label-free keys the ``summary()`` contract
        pins (``update_dispatches``, ``peak_rss_bytes``, ...).
        """
        base = _label_items(self.labels)
        out: Dict[str, float] = {}
        for (name, labels), metric in self._metrics.items():
            extra = tuple(item for item in labels if item not in base)
            if extra:
                rendered = ",".join(f"{k}={v}" for k, v in extra)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            out[key] = float(metric.value)
        return out
