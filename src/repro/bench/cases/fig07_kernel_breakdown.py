"""Fig. 7 — kernel-time breakdown of the PyTorch-style implementation.

The paper's Nsight profiling shows the irregular gather/scatter ("index")
kernels consuming the largest share (~34–36%) of GPU time at every batch
size. This case runs the batched engine at three batch sizes and records the
modelled per-op time shares.
"""
from __future__ import annotations

import math

from ...core import BatchedLayoutEngine
from ..registry import CaseResult, bench_case
from ..tables import format_table

PAPER_INDEX_SHARE = {"small": 0.345, "medium": 0.360, "large": 0.340}
BATCH_SIZES = {"small": 256, "medium": 2048, "large": 16384}


@bench_case("fig07_kernel_breakdown", source="Fig. 7", suites=("figures",))
def run(ctx) -> CaseResult:
    """Gather/scatter kernels dominate the batched engine at every batch size."""
    params = ctx.bench_params
    breakdowns = {}
    for label, batch_size in BATCH_SIZES.items():
        engine = BatchedLayoutEngine(ctx.mhc_graph, params.with_(batch_size=batch_size))
        engine.run()
        breakdowns[label] = engine.op_profile.time_breakdown()

    out = CaseResult(graph_properties=ctx.graph_properties(ctx.mhc_graph))
    ops = sorted({op for b in breakdowns.values() for op in b})
    rows = []
    for label, breakdown in breakdowns.items():
        rows.append([label, BATCH_SIZES[label]]
                    + [f"{breakdown.get(op, 0.0):.1%}" for op in ops])
        # The index (gather/scatter) kernels dominate at every batch size.
        assert breakdown["index"] == max(breakdown.values())
        assert breakdown["index"] > 0.25
        assert math.isclose(sum(breakdown.values()), 1.0, rel_tol=1e-6)
        out.add(f"{label}_index_share", breakdown["index"], unit="frac", direction="info")

    out.tables.append(format_table(
        ["Batch", "Size"] + ops,
        rows,
        title="Fig. 7: kernel time breakdown of the PyTorch-style engine "
              f"(paper: index ≈ {PAPER_INDEX_SHARE['medium']:.0%})",
    ))
    return out
