"""Path-guided SGD pangenome graph layout — the paper's core contribution.

Exposes the layout parameters and schedule, the three engines (CPU baseline,
batched PyTorch-style, optimized GPU kernel), the layout state with its
SoA/AoS memory organisations, and the high-level :func:`layout_graph` API.
"""
from .params import LayoutParams
from .schedule import make_schedule, distance_bounds
from .layout import Layout, NodeDataLayout, initialize_layout, node_record_addresses
from .selection import PairSampler, SelectionArrays, StepBatch, zipf_hop_distances
from .updates import (
    UpdateStats,
    UpdateWorkspace,
    apply_batch,
    batch_stress,
    compact_points,
    compute_displacements,
    merge_batch,
)
from .fused import (
    FusedIterationPlan,
    FusedIterationStats,
    run_iteration_host,
    uniform_call_plan,
)
from .base import IterationRecord, LayoutEngine, LayoutResult, split_into_batches
from .cpu_baseline import CpuBaselineEngine, SerialReferenceEngine
from .batch_engine import BatchedLayoutEngine, OpProfile, KernelOp, PYTORCH_OP_SEQUENCE
from .gpu_kernel import GpuKernelConfig, GpuProfile, OptimizedGpuEngine
from .api import ENGINES, layout_graph, make_engine

__all__ = [
    "LayoutParams",
    "make_schedule",
    "distance_bounds",
    "Layout",
    "NodeDataLayout",
    "initialize_layout",
    "node_record_addresses",
    "PairSampler",
    "SelectionArrays",
    "StepBatch",
    "zipf_hop_distances",
    "UpdateStats",
    "UpdateWorkspace",
    "apply_batch",
    "batch_stress",
    "compact_points",
    "compute_displacements",
    "merge_batch",
    "FusedIterationPlan",
    "FusedIterationStats",
    "run_iteration_host",
    "uniform_call_plan",
    "IterationRecord",
    "LayoutEngine",
    "LayoutResult",
    "split_into_batches",
    "CpuBaselineEngine",
    "SerialReferenceEngine",
    "BatchedLayoutEngine",
    "OpProfile",
    "KernelOp",
    "PYTORCH_OP_SEQUENCE",
    "GpuKernelConfig",
    "GpuProfile",
    "OptimizedGpuEngine",
    "ENGINES",
    "layout_graph",
    "make_engine",
]
