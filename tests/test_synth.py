"""Tests for the synthetic pangenome simulator and named datasets."""
from __future__ import annotations

import numpy as np
import pytest

from repro.graph import compute_stats, validate_lean
from repro.synth import (
    CHROMOSOME_PAPER_RUNTIMES,
    PangenomeConfig,
    REPRESENTATIVE_SPECS,
    chr1_like,
    chromosome_suite,
    hla_drb1_like,
    load_dataset,
    mhc_like,
    simulate_pangenome,
    simulate_sequence,
    small_graph_collection,
)


class TestSimulator:
    def test_determinism(self):
        cfg = PangenomeConfig(n_backbone_nodes=200, n_paths=5, seed=3)
        a = simulate_pangenome(cfg)
        b = simulate_pangenome(cfg)
        assert np.array_equal(a.step_nodes, b.step_nodes)
        assert np.array_equal(a.node_lengths, b.node_lengths)

    def test_different_seeds_differ(self):
        a = simulate_pangenome(PangenomeConfig(n_backbone_nodes=200, n_paths=5, seed=1))
        b = simulate_pangenome(PangenomeConfig(n_backbone_nodes=200, n_paths=5, seed=2))
        assert not np.array_equal(a.step_nodes, b.step_nodes)

    def test_output_is_valid(self, small_synthetic):
        assert validate_lean(small_synthetic).ok

    def test_path_count(self, small_synthetic):
        assert small_synthetic.n_paths == 8

    def test_node_count_exceeds_backbone(self, small_synthetic):
        # Bubbles and SVs add nodes beyond the backbone.
        assert small_synthetic.n_nodes > 300

    def test_mean_node_length_close_to_config(self):
        cfg = PangenomeConfig(n_backbone_nodes=2000, n_paths=4, mean_node_length=20.0,
                              bubble_rate=0.0, deletion_rate=0.0,
                              n_structural_variants=0, seed=5)
        g = simulate_pangenome(cfg)
        assert 14.0 < g.node_lengths.mean() < 26.0

    def test_degree_and_density_ranges(self, medium_synthetic):
        st = compute_stats(medium_synthetic)
        assert 1.0 < st.avg_degree < 3.0        # paper reports ~1.4
        assert st.density < 1e-2                 # sparse

    def test_loops_create_repeated_nodes(self):
        cfg = PangenomeConfig(n_backbone_nodes=400, n_paths=6, loop_rate=1.0,
                              loop_span_nodes=15, path_dropout=0.0, seed=9)
        g = simulate_pangenome(cfg)
        repeated = False
        for p in range(g.n_paths):
            nodes = g.step_nodes[g.path_steps(p)]
            if np.unique(nodes).size < nodes.size:
                repeated = True
                break
        assert repeated

    def test_structural_variant_carriers_longer(self):
        cfg = PangenomeConfig(n_backbone_nodes=500, n_paths=8, n_structural_variants=1,
                              sv_length_nodes=60, sv_carrier_fraction=0.25,
                              bubble_rate=0.0, deletion_rate=0.0, path_dropout=0.0,
                              loop_rate=0.0, seed=11)
        g = simulate_pangenome(cfg)
        counts = g.path_step_counts
        assert counts.max() - counts.min() >= 60

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PangenomeConfig(n_backbone_nodes=1).validate()
        with pytest.raises(ValueError):
            PangenomeConfig(bubble_rate=0.7, deletion_rate=0.5).validate()
        with pytest.raises(ValueError):
            PangenomeConfig(path_dropout=0.6).validate()
        with pytest.raises(ValueError):
            PangenomeConfig(mean_node_length=0).validate()

    def test_simulate_sequence(self, rng):
        seq = simulate_sequence(rng, 50)
        assert len(seq) == 50
        assert set(seq) <= set("ACGT")
        assert simulate_sequence(rng, 0) == ""


class TestDatasets:
    def test_representative_specs_present(self):
        assert set(REPRESENTATIVE_SPECS) == {"HLA-DRB1", "MHC", "Chr.1"}

    def test_hla_scaled(self):
        g = hla_drb1_like(scale=0.05)
        assert g.n_nodes > 100
        assert g.n_paths >= 2

    def test_mhc_and_chr1_scaled(self):
        m = mhc_like(scale=0.02)
        c = chr1_like(scale=0.02)
        assert c.total_steps > 0 and m.total_steps > 0
        # Chr.1-like has more nucleotides per node than HLA-like.
        assert c.node_lengths.mean() > hla_drb1_like(scale=0.05).node_lengths.mean()

    def test_load_dataset_unknown(self):
        with pytest.raises(KeyError):
            load_dataset("Chr.99")

    def test_load_dataset_seed_override(self):
        a = load_dataset("HLA-DRB1", scale=0.05, seed=1)
        b = load_dataset("HLA-DRB1", scale=0.05, seed=2)
        assert not np.array_equal(a.step_nodes, b.step_nodes)

    def test_chromosome_suite_quick(self):
        suite = chromosome_suite(scale=1.0, quick=True)
        assert len(suite) == 24
        assert set(suite) == set(CHROMOSOME_PAPER_RUNTIMES)
        sizes = {name: g.total_steps for name, g in suite.items()}
        # Chr.Y is among the very smallest and Chr.1 the largest, as in the paper.
        assert sizes["Chr.Y"] <= sorted(sizes.values())[2]
        assert sizes["Chr.1"] == max(sizes.values())
        assert sizes["Chr.1"] > sizes["Chr.Y"] * 5

    def test_paper_runtimes_table_complete(self):
        assert len(CHROMOSOME_PAPER_RUNTIMES) == 24
        for row in CHROMOSOME_PAPER_RUNTIMES.values():
            assert set(row) == {"cpu", "a6000", "a100"}
            assert row["cpu"] > 0

    def test_small_graph_collection(self):
        graphs = small_graph_collection(n_graphs=5, seed=2)
        assert len(graphs) == 5
        assert all(validate_lean(g).ok for g in graphs)
        with pytest.raises(ValueError):
            small_graph_collection(n_graphs=1)
