"""Vectorised Xoshiro256+ pseudo-random number generator.

``odgi-layout`` (the paper's CPU baseline) uses Xoshiro256+ (Blackman & Vigna,
2021), a linear-feedback-shift-register generator chosen for its very low
computational cost — a property the paper identifies as contributing to the
memory-bound nature of the layout workload (Sec. III-B): generating a random
number is far cheaper than the memory traffic it triggers.

This module implements Xoshiro256+ over an arbitrary number of parallel
streams (one per simulated CPU thread or GPU thread), with outputs identical
to the reference C implementation for any given state.
"""
from __future__ import annotations

import numpy as np

from .splitmix import seed_streams

__all__ = ["Xoshiro256Plus", "rotl64"]

_U64 = np.uint64


def rotl64(x: np.ndarray, k: int) -> np.ndarray:
    """Rotate ``uint64`` values left by ``k`` bits (vectorised)."""
    k = int(k) % 64
    if k == 0:
        return np.asarray(x, dtype=np.uint64).copy()
    x = np.asarray(x, dtype=np.uint64)
    return (x << _U64(k)) | (x >> _U64(64 - k))


class Xoshiro256Plus:
    """Xoshiro256+ with ``n`` independent streams.

    Parameters
    ----------
    seed:
        Scalar seed expanded with SplitMix64, or a ``(n, 4)`` uint64 state
        array to resume from.
    n_streams:
        Number of independent streams when ``seed`` is scalar.

    Notes
    -----
    The state is stored as a ``(n, 4)`` array, i.e. an array-of-structs layout
    equivalent to one generator object per thread. The SoA/AoS distinction
    that matters for the paper's *coalesced random states* optimisation is
    modelled at the memory-layout level in :mod:`repro.prng.xorshift` and
    :mod:`repro.gpusim`; this class is the functional reference generator.
    """

    STATE_WORDS = 4

    def __init__(self, seed: int | np.ndarray = 0, n_streams: int = 1):
        if np.isscalar(seed):
            self.state = seed_streams(int(seed), n_streams, self.STATE_WORDS)
        else:
            arr = np.asarray(seed, dtype=np.uint64)
            if arr.ndim != 2 or arr.shape[1] != self.STATE_WORDS:
                raise ValueError("state array must have shape (n, 4)")
            if np.any(np.all(arr == 0, axis=1)):
                raise ValueError("xoshiro256+ state must not be all zero")
            self.state = arr.copy()

    @property
    def n_streams(self) -> int:
        """Number of independent streams."""
        return int(self.state.shape[0])

    def copy(self) -> "Xoshiro256Plus":
        """Return an independent copy (same state, separate evolution)."""
        return Xoshiro256Plus(self.state)

    def next_uint64(self) -> np.ndarray:
        """Advance every stream one step and return the 64-bit outputs."""
        s = self.state
        with np.errstate(over="ignore"):
            result = s[:, 0] + s[:, 3]
            t = s[:, 1] << _U64(17)
            s[:, 2] ^= s[:, 0]
            s[:, 3] ^= s[:, 1]
            s[:, 1] ^= s[:, 2]
            s[:, 0] ^= s[:, 3]
            s[:, 2] ^= t
            s[:, 3] = rotl64(s[:, 3], 45)
        return result

    def next_double(self) -> np.ndarray:
        """One double in [0, 1) per stream (53-bit mantissa, like the C code)."""
        return (self.next_uint64() >> _U64(11)).astype(np.float64) * (2.0 ** -53)

    def next_double_block(self, n_calls: int) -> np.ndarray:
        """``n_calls`` consecutive :meth:`next_double` outputs as one block.

        Returns a ``(n_calls, n_streams)`` float64 array whose row ``c`` is
        byte-identical to the ``c``-th :meth:`next_double` call, and advances
        every stream exactly ``n_calls`` times — the bulk draw and the
        call-at-a-time draw are interchangeable mid-stream. The state
        transition is inherently sequential (no jump-ahead), so a Python loop
        over calls remains, but it is a single tight loop over in-place
        ``uint64`` ops with the overflow errstate entered once per block
        instead of once per call — this is the megabatch fill of the fused
        iteration path and the backing store of the sampler's bulk uniforms.
        """
        n_calls = int(n_calls)
        if n_calls < 0:
            raise ValueError("n_calls must be >= 0")
        out = np.empty((n_calls, self.n_streams), dtype=np.float64)
        if n_calls == 0:
            return out
        # Work on contiguous per-word columns with two preallocated uint64
        # temporaries and ``out=`` ufunc calls throughout: the loop body
        # allocates nothing and never touches strided views, which is what
        # makes the bulk fill markedly cheaper than repeated next_double()
        # while computing the identical word sequence.
        s = self.state
        s0 = np.ascontiguousarray(s[:, 0])
        s1 = np.ascontiguousarray(s[:, 1])
        s2 = np.ascontiguousarray(s[:, 2])
        s3 = np.ascontiguousarray(s[:, 3])
        t = np.empty_like(s0)
        r = np.empty_like(s0)
        k11, k17, k45, k19 = _U64(11), _U64(17), _U64(45), _U64(19)
        with np.errstate(over="ignore"):
            for c in range(n_calls):
                np.add(s0, s3, out=r)
                np.right_shift(r, k11, out=r)
                np.copyto(out[c], r)  # uint64 -> float64, same as astype
                np.left_shift(s1, k17, out=t)
                np.bitwise_xor(s2, s0, out=s2)
                np.bitwise_xor(s3, s1, out=s3)
                np.bitwise_xor(s1, s2, out=s1)
                np.bitwise_xor(s0, s3, out=s0)
                np.bitwise_xor(s2, t, out=s2)
                # rotl64(s3, 45) inlined: << 45 | >> (64 - 45).
                np.left_shift(s3, k45, out=r)
                np.right_shift(s3, k19, out=s3)
                np.bitwise_or(r, s3, out=s3)
        s[:, 0] = s0
        s[:, 1] = s1
        s[:, 2] = s2
        s[:, 3] = s3
        out *= 2.0 ** -53
        return out

    def next_bool(self) -> np.ndarray:
        """One boolean coin flip per stream (top bit of the output)."""
        return (self.next_uint64() >> _U64(63)).astype(bool)

    def next_below(self, bound: int | np.ndarray) -> np.ndarray:
        """One integer in [0, bound) per stream.

        Uses the multiply-shift reduction (Lemire) which is what fast layout
        codes use in practice; bias is negligible for the bounds involved
        (graph/path sizes far below 2^32).
        """
        bound_arr = np.asarray(bound, dtype=np.uint64)
        if np.any(bound_arr == 0):
            raise ValueError("bound must be positive")
        x = self.next_uint64() >> _U64(32)
        with np.errstate(over="ignore"):
            return ((x * bound_arr) >> _U64(32)).astype(np.int64)

    def jump_streams(self, n_extra: int, seed: int = 1) -> "Xoshiro256Plus":
        """Return a generator with ``n_extra`` additional decorrelated streams."""
        extra = seed_streams(seed, n_extra, self.STATE_WORDS)
        return Xoshiro256Plus(np.vstack([self.state, extra]))


def reference_scalar_next(state: np.ndarray) -> tuple[np.ndarray, int]:
    """Scalar reference step used by the test-suite to cross-check vectorisation.

    Takes a length-4 uint64 state, returns (new_state, output).
    """
    s = np.asarray(state, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        result = int(s[0] + s[3])
        t = np.uint64(int(s[1]) << 17 & 0xFFFFFFFFFFFFFFFF)
        s[2] ^= s[0]
        s[3] ^= s[1]
        s[1] ^= s[2]
        s[0] ^= s[3]
        s[2] ^= t
        s[3] = rotl64(s[3:4], 45)[0]
    return s, result & 0xFFFFFFFFFFFFFFFF
