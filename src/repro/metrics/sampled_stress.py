"""Sampled path stress: the scalable layout-quality metric (paper Sec. VI-B).

Full path stress is quadratic in path length; the sampled variant estimates
it by drawing ``n = samples_per_step × |p|`` random same-path step pairs per
path (the paper uses 100 samples per step) and averaging their stress terms.
Because the estimate is a sample mean, the central limit theorem gives a 95%
confidence interval ``μ ± 1.96 σ / √n`` that the paper reports alongside
every value (Table VIII).

This module also provides the GPU/CPU comparison helper (the SPS ratio of
Table VIII) and the correlation study against exact path stress (Fig. 13).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.layout import Layout
from ..graph.lean import LeanGraph
from .stress import pair_stress_terms

__all__ = ["SampledStress", "sampled_path_stress", "sample_step_pairs",
           "tail_pair_stress", "stress_ratio", "correlation_study"]


@dataclass(frozen=True)
class SampledStress:
    """Result of a sampled-path-stress evaluation."""

    value: float
    ci_low: float
    ci_high: float
    n_samples: int
    std: float

    @property
    def ci_width(self) -> float:
        """Width of the 95% confidence interval."""
        return self.ci_high - self.ci_low

    def as_tuple(self) -> tuple:
        """(value, ci_low, ci_high) convenience tuple."""
        return (self.value, self.ci_low, self.ci_high)


def sampled_path_stress(
    layout: Layout,
    graph: LeanGraph,
    samples_per_step: int = 100,
    seed: int = 0,
    max_total_samples: int = 5_000_000,
) -> SampledStress:
    """Estimate path stress by random same-path pair sampling.

    Every path contributes ``samples_per_step × |p|`` pairs (so each step is
    expected to be sampled ``samples_per_step`` times within its path, as in
    the paper), capped globally at ``max_total_samples`` with proportional
    thinning for extremely large graphs.
    """
    if samples_per_step < 1:
        raise ValueError("samples_per_step must be >= 1")
    rng = np.random.default_rng(seed)  # det-ok: seeded by the caller's explicit seed argument
    counts = graph.path_step_counts
    eligible = counts >= 2
    if not np.any(eligible):
        return SampledStress(0.0, 0.0, 0.0, 0, 0.0)
    per_path = counts * samples_per_step
    per_path = np.where(eligible, per_path, 0)
    total_requested = int(per_path.sum())
    if total_requested > max_total_samples:
        scale = max_total_samples / total_requested
        per_path = np.maximum((per_path * scale).astype(np.int64), np.where(eligible, 1, 0))
    all_terms = []
    offsets = graph.path_offsets
    for p in range(graph.n_paths):
        n_samples = int(per_path[p])
        if n_samples == 0:
            continue
        start, stop = int(offsets[p]), int(offsets[p + 1])
        count = stop - start
        local_i = rng.integers(0, count, size=n_samples)
        local_j = rng.integers(0, count, size=n_samples)
        # Re-draw coincident picks once; residual equal pairs contribute 0.
        same = local_i == local_j
        if np.any(same):
            local_j[same] = rng.integers(0, count, size=int(same.sum()))
        terms = pair_stress_terms(layout, graph, start + local_i, start + local_j)
        all_terms.append(terms)
    terms = np.concatenate(all_terms)
    n = terms.size
    mu = float(terms.mean())
    sigma = float(terms.std(ddof=1)) if n > 1 else 0.0
    half = 1.96 * sigma / np.sqrt(n) if n > 0 else 0.0
    return SampledStress(mu, mu - half, mu + half, n, sigma)


def sample_step_pairs(
    graph: LeanGraph,
    samples_per_step: int = 10,
    seed: int = 0,
) -> tuple:
    """Draw a fixed same-path step-pair sample ``(flat_i, flat_j)``.

    The sample is a pure function of ``(graph, samples_per_step, seed)``, so
    two layouts evaluated on it see *identical* pairs — a paired design that
    removes pair-selection variance from layout comparisons (used by
    :func:`tail_pair_stress` and the multilevel benchmark gate). Pairs with
    coincident steps are dropped rather than re-drawn.
    """
    if samples_per_step < 1:
        raise ValueError("samples_per_step must be >= 1")
    rng = np.random.default_rng(seed)  # det-ok: seeded by the caller's explicit seed argument
    offsets = graph.path_offsets
    flat_i = []
    flat_j = []
    for p in range(graph.n_paths):
        start, stop = int(offsets[p]), int(offsets[p + 1])
        count = stop - start
        if count < 2:
            continue
        n_samples = count * samples_per_step
        local_i = rng.integers(0, count, size=n_samples)
        local_j = rng.integers(0, count, size=n_samples)
        keep = local_i != local_j
        flat_i.append(start + local_i[keep])
        flat_j.append(start + local_j[keep])
    if not flat_i:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    return (np.concatenate(flat_i), np.concatenate(flat_j))


def tail_pair_stress(
    layout: Layout,
    graph: LeanGraph,
    quantile: float = 0.99,
    samples_per_step: int = 10,
    seed: int = 0,
) -> float:
    """Upper-``quantile`` pair stress over a fixed master-seeded pair sample.

    The *mean* sampled path stress has an extremely heavy tail (one badly
    placed short-range pair can dominate half a million samples), which makes
    it a noisy comparison statistic; the upper quantile measures how tangled
    the worst pairs are — exactly the global structure the multilevel V-cycle
    untangles — while staying stable across sampling seeds. Evaluating two
    layouts with the same ``(samples_per_step, seed)`` compares them on
    identical pairs.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must lie strictly between 0 and 1")
    flat_i, flat_j = sample_step_pairs(graph, samples_per_step, seed)
    if flat_i.size == 0:
        return 0.0
    terms = pair_stress_terms(layout, graph, flat_i, flat_j)
    return float(np.quantile(terms, quantile))


def stress_ratio(
    candidate: SampledStress, reference: SampledStress, floor: float = 1e-12
) -> float:
    """SPS ratio = candidate / reference (Table VIII's GPU/CPU column)."""
    return candidate.value / max(reference.value, floor)


def correlation_study(
    pairs: list,
) -> float:
    """Pearson correlation between exact and sampled stress values (Fig. 13).

    ``pairs`` is a list of ``(path_stress_value, sampled_stress_value)``
    tuples collected over many layouts; the paper reports r = 0.995.
    """
    arr = np.asarray(pairs, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] < 2:
        raise ValueError("need at least two (exact, sampled) pairs")
    x, y = arr[:, 0], arr[:, 1]
    if np.allclose(x.std(), 0) or np.allclose(y.std(), 0):
        raise ValueError("degenerate inputs: zero variance")
    return float(np.corrcoef(x, y)[0, 1])
