"""Pluggable array backends for the layout hot path.

``repro.backend`` decouples the numerical kernels (:mod:`repro.core.updates`,
:mod:`repro.core.selection`, the three engines) from NumPy: every hot-path
operation goes through an :class:`ArrayBackend`, and the registry maps names
to ready backends — ``numpy`` always; ``numba`` (JIT-fused merge kernels)
and ``cupy`` (device-resident coordinates) when their toolchains are present
and their registration self-test passes. Select one via
``LayoutParams(backend=...)``, the ``--backend`` CLI flag, or the
``REPRO_BACKEND`` environment variable.

See :mod:`repro.backend.registry` for how to register a new backend and
``tests/test_conformance.py`` for the cross-engine matrix every backend must
pass (required for any future backend PR, per ROADMAP).
"""
from .base import MERGE_POLICIES, ArrayBackend
from .registry import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    BackendUnavailable,
    available_backends,
    backend_failures,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_name,
)

__all__ = [
    "ArrayBackend",
    "MERGE_POLICIES",
    "BackendUnavailable",
    "available_backends",
    "backend_failures",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
]


def _numpy_factory() -> ArrayBackend:
    from .numpy_backend import NumpyBackend

    return NumpyBackend()


def _numba_factory() -> ArrayBackend:
    # Import happens here, not at package import: a missing/broken numba is
    # an *availability* fact recorded by the registry, never an import error
    # for `import repro`.
    from .numba_backend import NumbaBackend

    return NumbaBackend()


def _cupy_factory() -> ArrayBackend:
    from .cupy_backend import CupyBackend

    return CupyBackend()


register_backend("numpy", _numpy_factory)
register_backend("numba", _numba_factory)
register_backend("cupy", _cupy_factory)
