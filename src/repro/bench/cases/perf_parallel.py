"""CI smoke case gating the process-parallel shared-memory engine.

``perf_parallel_scaling`` runs the Chr.1-like smoke workload twice — flat
:class:`~repro.core.cpu_baseline.CpuBaselineEngine` versus
:class:`~repro.parallel.shm.ShmHogwildEngine` with two workers — and gates
the measured parallel path the way ``hogwild_scaling_guard`` gates the
modelled one:

* **speedup-per-worker guard** — the shm iteration time (the engine's
  ``parallel_iterate_s`` counter, which excludes process spawn/attach
  setup) over the flat time scaled by the *locally available* parallelism
  ``min(workers, cpu_count)``. The ratio is dimensionless and normalised by
  the machine's own core count, so the committed baseline gates every
  machine: on a single-core box the ideal is the flat time itself (the
  guard then bounds pure orchestration overhead), on a multi-core box it
  is ``flat / workers``. Healthy values sit well under the
  :data:`_RATIO_FLOOR` the guard is floored at; a parallel path whose
  overhead swamps its speedup trips the gate everywhere.
* **measured-vs-modelled collisions** — the empirical colliding-point
  fraction at the engine's round concurrency
  (:func:`~repro.parallel.hogwild.measure_collisions`) next to the analytic
  :func:`~repro.parallel.hogwild.expected_collision_probability`. Both are
  deterministic (they depend only on sampled indices, never on the store
  race), so any drift in the sampler or the collision model fails the
  determinism check outright.

Before recording anything the case asserts the acceptance-bar invariant:
a ``workers=1`` shm run — through the real process/shared-memory machinery —
is byte-identical to the flat engine on the NumPy backend.
"""
from __future__ import annotations

import os

import numpy as np

from ...backend import get_backend
from ...core import CpuBaselineEngine
from ...core.fused import slice_plan
from ...parallel.hogwild import expected_collision_probability, measure_collisions
from ...parallel.shm import ShmHogwildEngine
from ..registry import CaseResult, bench_case
from ..tables import format_table

#: Floor applied to the gated iterate-time / per-core-ideal ratio. Healthy
#: runs sit near 1.0-1.4 (orchestration overhead only); the 10% compare
#: threshold then only trips past ~2.0 — parallelism costing twice its
#: locally achievable ideal.
_RATIO_FLOOR = 1.8

#: Worker processes for the parallel variant.
_WORKERS = 2

#: Repeats per variant; best (minimum) wall time is recorded.
_REPEATS = 3

#: Iterations per measured run (the per-iteration contrast is identical
#: every iteration; short runs tighten the repeats).
_ITER_MAX = 4


def _host_params(ctx, **overrides):
    """Smoke params on a host-resident backend (shm needs mapped host RAM)."""
    params = ctx.smoke_params.with_(iter_max=_ITER_MAX, **overrides)
    probe = np.zeros(1)
    if get_backend(params.backend).from_host(probe) is not probe:
        params = params.with_(backend="numpy")
    return params


def _best_run(engine_factory, elapsed_of):
    """Best-of-:data:`_REPEATS` elapsed time per ``elapsed_of(result)``."""
    import gc

    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(_REPEATS):
            candidate = engine_factory().run()
            elapsed = elapsed_of(candidate)
            if elapsed < best:
                best = elapsed
            result = candidate
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, result


@bench_case("perf_parallel_scaling", source="Fig. 4 (measured, shm workers)",
            suites=("smoke",))
def run_parallel_scaling(ctx) -> CaseResult:
    """Process-parallel hogwild: bounded overhead, collisions match the model."""
    graph = ctx.chr1_graph
    params = _host_params(ctx)

    flat_s, flat = _best_run(lambda: CpuBaselineEngine(graph, params),
                             lambda r: r.wall_time_s)

    # Acceptance-bar invariant: one worker through the real process +
    # shared-memory machinery reproduces the flat engine bit for bit.
    one = ShmHogwildEngine(graph, params.with_(workers=1)).run()
    if params.backend in (None, "numpy"):
        assert np.array_equal(one.layout.coords, flat.layout.coords)
    else:
        np.testing.assert_allclose(one.layout.coords, flat.layout.coords,
                                   atol=1e-9, rtol=0)
    assert one.total_terms == flat.total_terms

    par_s, par = _best_run(
        lambda: ShmHogwildEngine(graph, params.with_(workers=_WORKERS)),
        lambda r: r.counters["parallel_iterate_s"])
    assert par.total_terms == flat.total_terms
    assert par.counters["effective_workers"] == float(_WORKERS)

    # Normalise by the parallelism this machine can actually deliver, so the
    # committed baseline is meaningful on any core count.
    local_ideal = flat_s / min(_WORKERS, os.cpu_count() or 1)
    ratio = par_s / max(local_ideal, 1e-12)
    speedup_per_worker = flat_s / max(par_s, 1e-12) / _WORKERS

    # Deterministic worker-balance check straight off the plan slicing.
    engine = ShmHogwildEngine(graph, params.with_(workers=_WORKERS))
    plan = engine.batch_plan(params.steps_per_iteration(graph.total_steps))
    shares = [sum(p) for p in slice_plan(plan, _WORKERS)]
    share_ratio = max(shares) / max(min(shares), 1)

    # Measured vs modelled collision probability at the round concurrency.
    concurrency = params.simulated_threads * engine.hogwild_round
    report = measure_collisions(graph, concurrency, n_batches=8,
                                params=params,
                                seed=ctx.seed_for("perf_parallel/collisions"))
    expected = expected_collision_probability(graph.n_nodes, concurrency)

    out = CaseResult(graph_properties=ctx.graph_properties(graph))
    out.add("worker_share_ratio", share_ratio, unit="x", direction="lower")
    out.add("measured_collision_fraction", report.mean_colliding_fraction,
            direction="info")
    out.add("modelled_collision_fraction", expected, direction="info")
    out.add("collision_model_ratio",
            report.mean_colliding_fraction / max(expected, 1e-12),
            unit="x", direction="info")
    out.add("flat_run_ms", flat_s * 1e3, unit="ms", direction="lower",
            deterministic=False)
    out.add("parallel_iterate_ms", par_s * 1e3, unit="ms", direction="lower",
            deterministic=False)
    out.add("parallel_setup_ms", par.counters["parallel_setup_s"] * 1e3,
            unit="ms", direction="info", deterministic=False)
    out.add("parallel_speedup_per_worker", speedup_per_worker, unit="x",
            direction="info", deterministic=False)
    out.add("parallel_scaling_guard", max(ratio, _RATIO_FLOOR), unit="x",
            direction="lower", deterministic=False)
    out.tables.append(format_table(
        ["Path", "Wall (ms)", "Workers", "Collision fraction"],
        [["flat cpu-baseline", f"{flat_s * 1e3:.1f}", "1",
          f"{expected:.4f} (model)"],
         [f"shm hogwild ×{_WORKERS}", f"{par_s * 1e3:.1f}", str(_WORKERS),
          f"{report.mean_colliding_fraction:.4f} (measured)"]],
        title="Smoke: measured process-parallel hogwild (Chr.1-like @0.1)",
    ))
    return out
