"""Table VII — run time and speedup over all 24 chromosomes (CPU / A6000 / A100).

For every chromosome of the (scaled) suite, collects the CPU cache profile and
the optimized-GPU kernel profile and converts them into modelled run times on
the 32-thread Xeon, the RTX A6000 and the A100. The reproduction targets are
the speedup bands and their geometric means (paper: 27.7x on A6000, 57.3x on
A100) and the CPU-time ordering across chromosomes.
"""
from __future__ import annotations

from ...synth import CHROMOSOME_PAPER_RUNTIMES
from ..perfmodel import evaluate_graph_performance
from ..registry import CaseResult, bench_case
from ..tables import format_hms, format_table, geometric_mean


@bench_case("table07_speedup", source="Table VII", suites=("tables",))
def run(ctx) -> CaseResult:
    """Geometric-mean GPU speedups land in the paper's band on every device."""
    params = ctx.bench_params
    seed = ctx.seed_for("table07/profile")
    reports = {}
    for name, graph in ctx.chromosome_graphs.items():
        reports[name] = evaluate_graph_performance(
            graph, name, params, n_trace_terms=512, cpu_threads=32, seed=seed
        )

    rows = []
    a6000_speedups = []
    a100_speedups = []
    for name, report in reports.items():
        paper = CHROMOSOME_PAPER_RUNTIMES[name]
        s6000 = report.speedup("A6000")
        s100 = report.speedup("A100")
        a6000_speedups.append(s6000)
        a100_speedups.append(s100)
        rows.append([
            name,
            format_hms(report.cpu.total_s), format_hms(paper["cpu"]),
            f"{s6000:.1f}x", f"{paper['cpu'] / paper['a6000']:.1f}x",
            f"{s100:.1f}x", f"{paper['cpu'] / paper['a100']:.1f}x",
        ])
        # Every chromosome must be faster on both GPUs than on the CPU.
        assert s6000 > 3.0
        assert s100 > 3.0

    gm_a6000 = geometric_mean(a6000_speedups)
    gm_a100 = geometric_mean(a100_speedups)
    rows.append(["GeoMean", "-", "-", f"{gm_a6000:.1f}x", "27.7x", f"{gm_a100:.1f}x", "57.3x"])

    # Shape targets: both geometric means land in a generous band around the
    # paper's values (27.7x / 57.3x at full scale; the scaled datasets shrink
    # the CPU's working set and thus its penalty, pulling the modelled ratios
    # down) and the A100 outperforms the A6000 on average.
    assert 5.0 < gm_a6000 < 90.0
    assert gm_a100 > gm_a6000
    assert 8.0 < gm_a100 < 200.0
    # CPU times track total path length: the largest chromosome is slower than
    # the smallest by a large factor, as in the paper (Chr.1 vs Chr.Y).
    cpu_times = {name: rep.cpu.total_s for name, rep in reports.items()}
    assert cpu_times["Chr.1"] > 3 * cpu_times["Chr.Y"]

    out = CaseResult()
    out.add("geomean_speedup_a6000", gm_a6000, unit="x", direction="higher")
    out.add("geomean_speedup_a100", gm_a100, unit="x", direction="higher")
    out.add("cpu_total_chr1_s", cpu_times["Chr.1"], unit="s(model)", direction="lower")
    out.add("cpu_total_chry_s", cpu_times["Chr.Y"], unit="s(model)", direction="lower")

    out.tables.append(format_table(
        ["Pan.", "CPU (model)", "CPU (paper)", "A6000 speedup", "A6000 (paper)",
         "A100 speedup", "A100 (paper)"],
        rows,
        title="Table VII: modelled run time and speedup over the 24-chromosome suite",
    ))
    return out
