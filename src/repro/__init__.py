"""repro — reproduction of "Rapid GPU-Based Pangenome Graph Layout" (SC 2024).

The package implements the paper's path-guided SGD pangenome layout algorithm
and every substrate its evaluation depends on:

* :mod:`repro.graph` — variation-graph model, GFA I/O, lean layout structure,
  path index (the ODGI stand-in);
* :mod:`repro.synth` — synthetic pangenome generation (HPRC dataset stand-in);
* :mod:`repro.prng` — Xoshiro256+ / XORWOW generators with AoS/SoA states;
* :mod:`repro.core` — the CPU baseline, the batched PyTorch-style engine and
  the optimized GPU kernel with the paper's three optimisations;
* :mod:`repro.backend` — pluggable array backends for the hot path (NumPy
  always; Numba / CuPy registered lazily when available);
* :mod:`repro.multilevel` — path-preserving chain-contraction hierarchy and
  the coarse-to-fine V-cycle driver (``LayoutParams(levels=N)``);
* :mod:`repro.gpusim` — the GPU execution-model simulator (coalescing, caches,
  warp divergence, analytical timing) standing in for the CUDA hardware;
* :mod:`repro.metrics` — path stress and sampled path stress;
* :mod:`repro.parallel` — Hogwild collision analysis and the
  process-parallel shared-memory engine (``repro.parallel.shm``,
  ``LayoutParams(workers=N)``);
* :mod:`repro.render`, :mod:`repro.io`, :mod:`repro.bench` — rendering,
  persistence and the benchmark harness.

Quickstart::

    from repro.synth import hla_drb1_like
    from repro.core import layout_graph
    from repro.metrics import sampled_path_stress

    graph = hla_drb1_like(scale=0.2)
    # Any LayoutParams field works as a keyword override; unknown names
    # raise TypeError with the valid-name list.
    result = layout_graph(graph, engine="gpu",
                          iter_max=10, steps_per_step_unit=2.0)
    print(sampled_path_stress(result.layout, graph).value)
    print(result.summary())          # engine, wall time, dispatch counters

    # Real multi-core hogwild: N processes racing over shared memory.
    result = layout_graph(graph, workers=4, iter_max=10)
"""
from . import (
    backend,
    bench,
    core,
    gpusim,
    graph,
    io,
    metrics,
    multilevel,
    parallel,
    prng,
    render,
    synth,
)
from .backend import available_backends, get_backend
from .core import LayoutParams, layout_graph, make_engine
from .multilevel import MultilevelDriver

__version__ = "1.0.0"

__all__ = [
    "backend",
    "available_backends",
    "get_backend",
    "bench",
    "core",
    "gpusim",
    "graph",
    "io",
    "metrics",
    "multilevel",
    "MultilevelDriver",
    "parallel",
    "prng",
    "render",
    "synth",
    "LayoutParams",
    "layout_graph",
    "make_engine",
    "__version__",
]
