"""Synthetic pangenome simulation.

The paper's evaluation uses the HPRC human pangenome graphs (24 chromosomes,
up to 1.1e7 nodes), which are neither redistributable here nor tractable on a
single CPU core. The simulator in this module produces variation graphs with
the *structural properties the layout algorithm is sensitive to*:

* a mostly linear backbone (genome homology) with node lengths drawn from a
  heavy-tailed distribution so that ``#nucleotides / #nodes`` matches the
  paper's datasets,
* bubbles — SNV and small-indel sites where a subset of paths diverges
  through an alternate node,
* deletion sites where some paths skip backbone nodes,
* structural variants — long alternate detours carried by few paths,
* optional loops — path segments that revisit earlier nodes (the "Loop"
  feature of Fig. 2), and
* many paths whose step counts differ, giving the skewed path-length
  distribution that path-weighted sampling (Alg. 1 line 5) depends on.

The resulting average node degree (≈1.4) and density (≈1e-7..1e-6) match the
ranges in Tables I and VI at the reduced scales used here.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graph.lean import LeanGraph

__all__ = ["PangenomeConfig", "simulate_pangenome", "simulate_sequence"]

_BASES = np.array(list("ACGT"))


@dataclass
class PangenomeConfig:
    """Parameters controlling a synthetic pangenome.

    The defaults produce a small gene-scale graph; the named datasets in
    :mod:`repro.synth.datasets` override them to hit the paper's per-dataset
    statistics (scaled down — see DESIGN.md §4).
    """

    n_backbone_nodes: int = 1000
    n_paths: int = 12
    mean_node_length: float = 5.0
    bubble_rate: float = 0.08         # fraction of backbone slots that are SNV/indel bubbles
    deletion_rate: float = 0.02       # fraction of backbone slots deletable by carriers
    n_structural_variants: int = 2    # long detours
    sv_length_nodes: int = 30         # nodes per SV detour
    sv_carrier_fraction: float = 0.25
    loop_rate: float = 0.0            # fraction of paths that traverse one repeated segment
    loop_span_nodes: int = 20
    allele_frequency_alpha: float = 0.6  # Beta(alpha, beta) allele frequency at bubbles
    allele_frequency_beta: float = 1.8
    path_dropout: float = 0.15        # fraction of each path's ends trimmed (varying |p|)
    seed: int = 42
    name: str = "synthetic"

    def validate(self) -> None:
        """Check parameter sanity before simulation."""
        if self.n_backbone_nodes < 2:
            raise ValueError("need at least two backbone nodes")
        if self.n_paths < 1:
            raise ValueError("need at least one path")
        if not 0.0 <= self.bubble_rate < 1.0:
            raise ValueError("bubble_rate must be in [0, 1)")
        if not 0.0 <= self.deletion_rate < 1.0:
            raise ValueError("deletion_rate must be in [0, 1)")
        if self.bubble_rate + self.deletion_rate >= 1.0:
            raise ValueError("bubble_rate + deletion_rate must be < 1")
        if self.mean_node_length <= 0:
            raise ValueError("mean_node_length must be positive")
        if not 0.0 <= self.path_dropout < 0.5:
            raise ValueError("path_dropout must be in [0, 0.5)")
        if not 0.0 <= self.loop_rate <= 1.0:
            raise ValueError("loop_rate must be in [0, 1]")
        if self.n_structural_variants < 0 or self.sv_length_nodes < 1:
            raise ValueError("invalid structural-variant parameters")


def _draw_node_lengths(rng: np.random.Generator, n: int, mean_length: float) -> np.ndarray:
    """Heavy-tailed node lengths with the requested mean (≥1 each)."""
    if mean_length <= 1.0:
        return np.ones(n, dtype=np.int64)
    # Geometric-like tail: most nodes are short (single variants), a few are
    # long homologous runs, which is what seqwish/smoothxg produce.
    raw = rng.pareto(2.5, size=n) + 1.0
    lengths = np.maximum(1, np.round(raw * (mean_length / np.mean(raw)))).astype(np.int64)
    return lengths


def simulate_sequence(rng: np.random.Generator, length: int) -> str:
    """Random nucleotide sequence of the given length."""
    if length <= 0:
        return ""
    return "".join(_BASES[rng.integers(0, 4, size=length)])


def simulate_pangenome(config: PangenomeConfig) -> LeanGraph:
    """Simulate a pangenome and return its lean graph.

    The simulation is fully deterministic given ``config.seed``.
    """
    config.validate()
    rng = np.random.default_rng(config.seed)  # det-ok: seeded by the generator config's explicit seed field
    B = config.n_backbone_nodes
    P = config.n_paths

    # ---- classify backbone slots ------------------------------------------
    slot_kind = np.zeros(B, dtype=np.int8)  # 0 plain, 1 bubble, 2 deletable
    u = rng.random(B)
    slot_kind[u < config.bubble_rate] = 1
    slot_kind[(u >= config.bubble_rate) & (u < config.bubble_rate + config.deletion_rate)] = 2
    # First and last slots stay plain so every path shares its termini.
    slot_kind[0] = 0
    slot_kind[-1] = 0

    backbone_ids = np.arange(B, dtype=np.int64)
    node_lengths_list: List[np.ndarray] = [
        _draw_node_lengths(rng, B, config.mean_node_length)
    ]
    next_id = B

    # ---- bubble alternate nodes -------------------------------------------
    bubble_slots = np.flatnonzero(slot_kind == 1)
    alt_ids = np.full(B, -1, dtype=np.int64)
    if bubble_slots.size:
        alt_ids[bubble_slots] = np.arange(next_id, next_id + bubble_slots.size)
        next_id += bubble_slots.size
        # Alternate alleles are short (SNVs / small indels).
        node_lengths_list.append(
            np.maximum(1, rng.geometric(0.6, size=bubble_slots.size)).astype(np.int64)
        )
    # Allele frequency per bubble (fraction of paths taking the alternate).
    allele_freq = rng.beta(
        config.allele_frequency_alpha, config.allele_frequency_beta, size=B
    )

    # ---- deletion carrier frequency ---------------------------------------
    deletion_freq = rng.beta(0.5, 2.0, size=B)

    # ---- structural variants ----------------------------------------------
    sv_records: List[Tuple[int, np.ndarray, np.ndarray]] = []  # (anchor slot, node ids, carriers)
    for _ in range(config.n_structural_variants):
        anchor = int(rng.integers(1, max(2, B - 2)))
        sv_nodes = np.arange(next_id, next_id + config.sv_length_nodes, dtype=np.int64)
        next_id += config.sv_length_nodes
        node_lengths_list.append(
            _draw_node_lengths(rng, config.sv_length_nodes, config.mean_node_length)
        )
        n_carriers = max(1, int(round(config.sv_carrier_fraction * P)))
        carriers = rng.choice(P, size=min(n_carriers, P), replace=False)
        sv_records.append((anchor, sv_nodes, carriers))

    node_lengths = np.concatenate(node_lengths_list)

    # ---- loops --------------------------------------------------------------
    loop_paths = set()
    if config.loop_rate > 0:
        n_loop_paths = int(round(config.loop_rate * P))
        if n_loop_paths:
            loop_paths = set(rng.choice(P, size=min(n_loop_paths, P), replace=False).tolist())

    # ---- assemble paths -----------------------------------------------------
    paths: List[np.ndarray] = []
    path_names: List[str] = []
    for g in range(P):
        takes_alt = rng.random(B) < allele_freq
        takes_del = rng.random(B) < deletion_freq
        walk = backbone_ids.copy()
        # Bubbles: replace backbone node with the alternate node.
        mask_alt = (slot_kind == 1) & takes_alt & (alt_ids >= 0)
        walk = np.where(mask_alt, alt_ids, walk)
        # Deletions: drop the backbone node entirely.
        keep = ~((slot_kind == 2) & takes_del)
        walk = walk[keep]
        # Trim ends so path step counts vary (skewed |p| distribution).
        if config.path_dropout > 0 and walk.size > 10:
            lo = int(rng.integers(0, max(1, int(config.path_dropout * walk.size))))
            hi = int(rng.integers(0, max(1, int(config.path_dropout * walk.size))))
            walk = walk[lo: walk.size - hi] if walk.size - hi > lo else walk
        # Structural variants: insert the detour after the anchor for carriers.
        for anchor, sv_nodes, carriers in sv_records:
            if g in carriers:
                insert_at = int(np.searchsorted(walk, anchor))
                walk = np.concatenate([walk[:insert_at], sv_nodes, walk[insert_at:]])
        # Loops: repeat a span of the walk once (tandem-duplication-like).
        if g in loop_paths and walk.size > 3 * config.loop_span_nodes:
            start = int(rng.integers(0, walk.size - 2 * config.loop_span_nodes))
            span = walk[start:start + config.loop_span_nodes]
            walk = np.concatenate([walk[:start + config.loop_span_nodes], span,
                                   walk[start + config.loop_span_nodes:]])
        if walk.size < 2:
            walk = backbone_ids[:2].copy()
        paths.append(walk)
        path_names.append(f"{config.name}#genome{g}")

    graph = LeanGraph.from_paths(node_lengths, paths, path_names=path_names)
    return graph
