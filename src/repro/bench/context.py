"""Shared execution context for benchmark cases.

One :class:`BenchContext` is built per ``repro bench run`` invocation (and
per pytest session of the ``benchmarks/`` harness). It plays the role the old
``benchmarks/conftest.py`` fixtures played — cached datasets and layout
parameters — with one crucial addition: **every stochastic choice a case
makes is derived from a single explicit master seed**, so two runs of the
same suite on the same commit produce byte-identical metric values.

Seed discipline
---------------
``seed_for(label)`` hashes a stable string label (convention:
``"<case>/<purpose>"``) together with the master seed through SplitMix64 and
returns a 31-bit seed. Cases use it for layout scrambles, engine seeds and
metric sampling. The *datasets themselves* keep the calibrated seeds of their
:class:`~repro.synth.datasets.DatasetSpec` — they are the benchmark's fixed
inputs, like GFA files on disk, and changing them would detach the suite from
the paper-calibrated graph shapes.
"""
from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..backend import ArrayBackend, get_backend, resolve_backend_name
from ..core.params import LayoutParams
from ..graph.lean import LeanGraph
from ..prng.splitmix import derive_seed
from ..synth import (
    chr1_like,
    chromosome_suite,
    hla_drb1_like,
    mhc_like,
    scale_graph,
    small_graph_collection,
)

__all__ = ["BenchContext", "DEFAULT_MASTER_SEED"]

#: odgi-layout's default path-SGD seed; kept as the suite default so the
#: committed baselines correspond to the documented upstream seed.
DEFAULT_MASTER_SEED = 9399


class BenchContext:
    """Datasets, layout parameters and derived seeds shared by bench cases."""

    def __init__(self, master_seed: int = DEFAULT_MASTER_SEED,
                 backend: Optional[str] = None,
                 fused: Optional[bool] = None) -> None:
        if not 0 <= int(master_seed) < 2**63:
            raise ValueError("master_seed must be a non-negative 63-bit integer")
        self.master_seed = int(master_seed)
        # Resolved eagerly (name + instance) so an unavailable backend fails
        # before any case runs, with the registry's recorded reason.
        self.backend_name = resolve_backend_name(backend)
        self.backend: ArrayBackend = get_backend(self.backend_name)
        # Fused-iteration override threaded into every case's layout params
        # (None = auto; see LayoutParams.fused). Layouts — and therefore the
        # deterministic metrics — are identical either way on numpy; the
        # override exists so the perf cases can be pinned to one path.
        self.fused = fused
        self._graphs: Dict[str, object] = {}

    # ------------------------------------------------------------------ seeds
    def seed_for(self, label: str) -> int:
        """Deterministic 31-bit seed for ``label`` under the master seed."""
        return derive_seed(self.master_seed, label)

    def rng(self, label: str) -> np.random.Generator:
        """Fresh NumPy generator seeded from :meth:`seed_for`."""
        return np.random.default_rng(self.seed_for(label))  # det-ok: seed_for() derives the stream from the master seed via derive_seed

    # ----------------------------------------------------------------- params
    @property
    def bench_params(self) -> LayoutParams:
        """Layout parameters for speed-oriented workloads (reduced schedule).

        The engine seed is the master seed itself (the historical conftest
        hardcoded odgi's 9399 here), so the default run reproduces the
        calibrated legacy trajectories exactly.
        """
        return LayoutParams(iter_max=10, steps_per_step_unit=2.0,
                            seed=self.master_seed, backend=self.backend_name,
                            fused=self.fused)

    @property
    def quality_bench_params(self) -> LayoutParams:
        """Stronger schedule used when layout quality (not speed) is measured."""
        return LayoutParams(iter_max=20, steps_per_step_unit=4.0,
                            seed=self.master_seed, backend=self.backend_name,
                            fused=self.fused)

    @property
    def smoke_params(self) -> LayoutParams:
        """Minimal schedule for the CI smoke gate (tiny graphs, seconds total)."""
        return LayoutParams(iter_max=6, steps_per_step_unit=1.5,
                            seed=self.seed_for("params/smoke"),
                            backend=self.backend_name,
                            fused=self.fused)

    @property
    def scale_params(self) -> LayoutParams:
        """Parameters for the ``scale`` suite's memory-ceiling workload.

        A deliberately short schedule (two iterations — the per-iteration
        transient footprint being gated is identical every iteration) over a
        small fraction of the huge step count, with ``simulated_threads``
        raised so the CPU baseline's Hogwild rounds are large enough that
        per-segment Python overhead does not dominate the measurement. The
        case layers ``memory_budget`` on top with ``with_()``.
        """
        return LayoutParams(iter_max=2, steps_per_step_unit=0.2,
                            simulated_threads=64,
                            seed=self.seed_for("params/scale"),
                            backend=self.backend_name,
                            fused=self.fused)

    # --------------------------------------------------------------- datasets
    def _cached(self, key: str, build):
        if key not in self._graphs:
            self._graphs[key] = build()
        return self._graphs[key]

    @property
    def hla_graph(self) -> LeanGraph:
        """HLA-DRB1-like graph at reduced scale."""
        return self._cached("hla", lambda: hla_drb1_like(scale=0.25))

    @property
    def mhc_graph(self) -> LeanGraph:
        """MHC-like graph at reduced scale."""
        return self._cached("mhc", lambda: mhc_like(scale=0.15))

    @property
    def chr1_graph(self) -> LeanGraph:
        """Chr.1-like graph at reduced scale."""
        return self._cached("chr1", lambda: chr1_like(scale=0.1))

    @property
    def perf_graph(self) -> LeanGraph:
        """Full-scale Chr.1-like graph for the hot-path wall-time cases.

        The update-kernel scaling bug the perf cases guard against (O(N)
        scratch per batch) only shows on a graph whose node count dwarfs the
        batch size, so these cases run at scale 1.0 (~23k nodes); build time
        is well under the smoke budget.
        """
        return self._cached("chr1_full", lambda: chr1_like(scale=1.0))

    @property
    def scale_graph(self) -> LeanGraph:
        """Synthetic 10⁶-node / 10⁷-step graph for the ``scale`` suite.

        Big enough that an *unchunked* fused iteration would materialise
        hundreds of megabytes of transients (~FUSED_BYTES_PER_TERM × the
        per-iteration term count), so the chunked path's budget actually
        binds. Built fully vectorised (:func:`repro.synth.scale_graph`);
        the seed is the dataset-identity seed, like the named specs.
        """
        return self._cached("scale", lambda: scale_graph())

    @property
    def representative_graphs(self) -> Dict[str, LeanGraph]:
        """The three representative pangenomes of Table I (scaled)."""
        return {"HLA-DRB1": self.hla_graph, "MHC": self.mhc_graph,
                "Chr.1": self.chr1_graph}

    @property
    def chromosome_graphs(self) -> Dict[str, LeanGraph]:
        """The 24-chromosome suite (quick scale)."""
        return self._cached("chromosomes",
                            lambda: chromosome_suite(scale=0.35, quick=True))

    @property
    def smoke_graph(self) -> LeanGraph:
        """Tiny HLA-DRB1-like graph used by the CI smoke suite."""
        return self._cached("smoke_hla", lambda: hla_drb1_like(scale=0.05))

    @property
    def smoke_graph_mhc(self) -> LeanGraph:
        """Tiny MHC-like graph used by the CI smoke suite."""
        return self._cached("smoke_mhc", lambda: mhc_like(scale=0.03))

    def small_graphs(self, n_graphs: int, seed: int) -> List[LeanGraph]:
        """Collection of small graphs for correlation-style studies.

        ``seed`` is a dataset-identity seed (like the spec seeds of the named
        graphs), not derived from the master seed — the collection is a fixed
        input, the measurement randomness on top of it is master-seeded.
        """
        return self._cached(
            f"small/{n_graphs}/{seed}",
            lambda: small_graph_collection(n_graphs=n_graphs, seed=seed),
        )

    def graph_properties(self, graph: LeanGraph) -> Dict[str, float]:
        """Schema-ready size description of one input graph."""
        return {
            "n_nodes": float(graph.n_nodes),
            "n_paths": float(graph.n_paths),
            "total_steps": float(graph.total_steps),
        }
