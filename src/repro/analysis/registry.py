"""Checker registry: named contract checkers, decorator registration.

Mirrors the :mod:`repro.bench` registry pattern: every invariant the
codebase depends on is a :class:`Checker` — a named callable that inspects
parsed source files and yields :class:`Finding`\\ s. Checkers register
themselves with the module-level :data:`REGISTRY` through the
:func:`checker` decorator; the engine and the CLI resolve the rule set
against that registry, so a new invariant lands by adding one decorated
function (the standing rule documented in ROADMAP: new invariants land
with a checker).

Two checker scopes exist:

* ``file`` — called once per analysed file with its :class:`SourceFile`;
* ``project`` — called once with *every* analysed file, for cross-file
  invariants (seed-label uniqueness cannot be judged one file at a time).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "SEVERITIES",
    "AnalysisError",
    "DuplicateCheckerError",
    "UnknownCheckerError",
    "Finding",
    "Checker",
    "CheckerRegistry",
    "REGISTRY",
    "checker",
    "load_builtin_checkers",
]

#: Severity levels understood by the engine and the CLI exit logic:
#: ``error`` findings always fail the run; ``warning`` findings fail it
#: only under ``--strict`` (the CI configuration).
SEVERITIES = ("error", "warning")

#: Rule ids the engine itself emits (not registered checkers).
ENGINE_RULES = ("PRAGMA001", "PARSE001")


class AnalysisError(Exception):
    """Base class for analysis-subsystem errors."""


class DuplicateCheckerError(AnalysisError):
    """A rule id was registered twice."""


class UnknownCheckerError(AnalysisError):
    """A rule id was requested that no module registered."""


@dataclass(frozen=True)
class Finding:
    """One contract violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    severity: str
    message: str
    snippet: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
        }


#: File checkers receive one SourceFile; project checkers the full list.
CheckFunc = Callable[..., List[Finding]]


@dataclass(frozen=True)
class Checker:
    """A registered contract checker.

    ``pragma`` is the per-line suppression token whose presence (with a
    mandatory reason — ``# det-ok: <why>``) silences this checker's findings
    on that line; several rules may share one token when they police the
    same family of invariants (DET001/DET002 both answer to ``det-ok``).
    """

    rule: str
    func: CheckFunc = field(repr=False)
    pragma: str = ""
    severity: str = "error"
    scope: str = "file"
    summary: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, "
                             f"got {self.severity!r}")
        if self.scope not in ("file", "project"):
            raise ValueError(f"scope must be 'file' or 'project', got {self.scope!r}")


class CheckerRegistry:
    """Mapping of rule id -> :class:`Checker`."""

    def __init__(self) -> None:
        self._checkers: Dict[str, Checker] = {}

    def register(self, chk: Checker) -> Checker:
        if chk.rule in self._checkers:
            raise DuplicateCheckerError(
                f"checker {chk.rule!r} is already registered "
                f"(by {self._checkers[chk.rule].func.__module__})")
        self._checkers[chk.rule] = chk
        return chk

    def get(self, rule: str) -> Checker:
        try:
            return self._checkers[rule]
        except KeyError:
            raise UnknownCheckerError(
                f"no checker registered for rule {rule!r}; "
                f"known: {sorted(self._checkers)}") from None

    def rules(self) -> List[str]:
        return sorted(self._checkers)

    def checkers(self) -> List[Checker]:
        return [self._checkers[r] for r in self.rules()]

    def pragma_tokens(self) -> List[str]:
        return sorted({c.pragma for c in self._checkers.values() if c.pragma})

    def pragma_for(self, rule: str) -> str:
        chk = self._checkers.get(rule)
        return chk.pragma if chk is not None else ""

    def clear(self) -> None:
        """Forget all checkers (test isolation helper)."""
        self._checkers.clear()

    def __len__(self) -> int:
        return len(self._checkers)

    def __contains__(self, rule: str) -> bool:
        return rule in self._checkers


#: Process-global registry the decorator writes into.
REGISTRY = CheckerRegistry()


def checker(
    rule: str,
    pragma: str,
    severity: str = "error",
    scope: str = "file",
    registry: Optional[CheckerRegistry] = None,
) -> Callable[[CheckFunc], CheckFunc]:
    """Decorator registering a checker function.

    >>> @checker("DET001", pragma="det-ok")
    ... def check(src):
    ...     return []
    """

    def decorate(func: CheckFunc) -> CheckFunc:
        summary = (func.__doc__ or "").strip().splitlines()
        chk = Checker(
            rule=rule,
            func=func,
            pragma=pragma,
            severity=severity,
            scope=scope,
            summary=summary[0] if summary else "",
        )
        (registry if registry is not None else REGISTRY).register(chk)
        func.checker = chk  # type: ignore[attr-defined]
        return func

    return decorate


def load_builtin_checkers() -> CheckerRegistry:
    """Import the built-in checker modules so they register themselves."""
    from . import checkers  # noqa: F401  (import side effect registers checkers)

    return REGISTRY
