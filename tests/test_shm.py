"""Process-parallel shared-memory engine: blocks, slicing, streams, runs, API.

The cross-engine byte-identity matrix lives in ``tests/test_conformance.py``
(``TestShmConformance``); this module covers the engine's building blocks
and the redesigned run API around it.
"""
from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.core import CpuBaselineEngine, LayoutParams, layout_graph, make_engine
from repro.core.fused import slice_plan
from repro.core.params import replace_params
from repro.parallel.hogwild import expected_collision_probability, measure_collisions
from repro.parallel.shm import (
    SharedArrayBlock,
    ShmHogwildEngine,
    resolve_start_method,
    run_workers_inline,
    worker_stream_states,
)
from repro.prng.xoshiro import Xoshiro256Plus


class TestSharedArrayBlock:
    def test_roundtrip_and_visibility(self):
        arrays = {
            "coords": np.arange(12, dtype=np.float64).reshape(6, 2),
            "ids": np.array([3, 1, 4], dtype=np.int64),
            "flags": np.array([True, False]),
        }
        block = SharedArrayBlock.create(arrays)
        try:
            attached = SharedArrayBlock.attach(block.name, block.manifest)
            try:
                for key, arr in arrays.items():
                    np.testing.assert_array_equal(attached.view(key), arr)
                # In-place writes through one mapping are visible in the other
                # (this is the hogwild write channel).
                attached.view("coords")[0, 0] = -7.5
                assert block.view("coords")[0, 0] == -7.5
            finally:
                attached.close()
        finally:
            block.close()
            block.unlink()

    def test_offsets_are_aligned(self):
        arrays = {"a": np.zeros(3, dtype=np.int8), "b": np.zeros(5, dtype=np.float64)}
        block = SharedArrayBlock.create(arrays)
        try:
            for _, _, _, offset in block.manifest:
                assert offset % 16 == 0
        finally:
            block.close()
            block.unlink()

    def test_unlink_removes_segment(self):
        block = SharedArrayBlock.create({"x": np.zeros(4)})
        name, manifest = block.name, block.manifest
        block.close()
        block.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArrayBlock.attach(name, manifest)

    def test_attach_side_never_unlinks(self):
        block = SharedArrayBlock.create({"x": np.arange(4.0)})
        try:
            attached = SharedArrayBlock.attach(block.name, block.manifest)
            attached.close()
            attached.unlink()  # non-owner: must be a no-op
            again = SharedArrayBlock.attach(block.name, block.manifest)
            np.testing.assert_array_equal(again.view("x"), np.arange(4.0))
            again.close()
        finally:
            block.close()
            block.unlink()


class TestSlicePlan:
    def test_workers1_is_identity(self):
        plan = [64, 64, 64, 17]
        assert slice_plan(plan, 1) == [plan]

    def test_partition_is_exact_and_contiguous(self):
        plan = [64] * 7 + [11]
        parts = slice_plan(plan, 3)
        assert sum(parts, []) == plan
        assert all(parts)

    def test_balanced_by_terms(self):
        plan = [64] * 10
        parts = slice_plan(plan, 2)
        shares = [sum(p) for p in parts]
        assert max(shares) / min(shares) <= 1.5

    def test_workers_clamped_to_segments(self):
        parts = slice_plan([5, 5], 8)
        assert parts == [[5], [5]]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            slice_plan([1], 0)


class TestWorkerStreams:
    def test_worker0_is_the_base_generator(self):
        base = Xoshiro256Plus(17, n_streams=8)
        states = worker_stream_states(base, 3, seed=17)
        np.testing.assert_array_equal(states[0],
                                      Xoshiro256Plus(17, n_streams=8).state)

    def test_streams_distinct_across_workers(self):
        base = Xoshiro256Plus(17, n_streams=8)
        states = worker_stream_states(base, 4, seed=17)
        stacked = np.vstack(states)
        assert len({tuple(row) for row in stacked.tolist()}) == stacked.shape[0]

    def test_derivation_is_seed_deterministic(self):
        a = worker_stream_states(Xoshiro256Plus(5, n_streams=4), 3, seed=5)
        b = worker_stream_states(Xoshiro256Plus(5, n_streams=4), 3, seed=5)
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(sa, sb)

    def test_single_worker_shape(self):
        base = Xoshiro256Plus(1, n_streams=6)
        states = worker_stream_states(base, 1, seed=1)
        assert len(states) == 1 and states[0].shape == (6, 4)


class TestShmEngine:
    def test_workers1_byte_identical_to_flat(self, small_synthetic, fast_params):
        flat = CpuBaselineEngine(small_synthetic, fast_params).run()
        shm = ShmHogwildEngine(small_synthetic,
                               fast_params.with_(workers=1)).run()
        assert shm.total_terms == flat.total_terms
        np.testing.assert_array_equal(shm.layout.coords, flat.layout.coords)

    def test_two_workers_end_to_end(self, small_synthetic, fast_params):
        flat = CpuBaselineEngine(small_synthetic, fast_params).run()
        result = ShmHogwildEngine(small_synthetic,
                                  fast_params.with_(workers=2)).run()
        assert result.total_terms == flat.total_terms
        assert np.all(np.isfinite(result.layout.coords))
        assert result.counters["effective_workers"] == 2.0
        assert result.counters["parallel_setup_s"] > 0.0
        assert result.counters["parallel_iterate_s"] > 0.0
        assert result.wall_time_s > 0.0

    def test_spawn_start_method(self, small_synthetic, fast_params, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_START", "spawn")
        flat = CpuBaselineEngine(small_synthetic, fast_params).run()
        engine = ShmHogwildEngine(small_synthetic,
                                  fast_params.with_(workers=1))
        assert engine.start_method == "spawn"
        result = engine.run()
        np.testing.assert_array_equal(result.layout.coords, flat.layout.coords)

    def test_inline_matches_process_run_for_one_worker(self, small_synthetic,
                                                       fast_params):
        params = fast_params.with_(workers=1)
        proc = ShmHogwildEngine(small_synthetic, params).run()
        inline = run_workers_inline(small_synthetic, params)
        np.testing.assert_array_equal(inline.layout.coords, proc.layout.coords)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError):
            resolve_start_method("osthread")

    def test_seed_changes_two_worker_layout(self, small_synthetic, fast_params):
        a = run_workers_inline(small_synthetic, fast_params.with_(workers=2))
        b = run_workers_inline(small_synthetic,
                               fast_params.with_(workers=2, seed=777))
        assert not np.allclose(a.layout.coords, b.layout.coords)


class TestRunApi:
    def test_layout_graph_workers2(self, small_synthetic, fast_params):
        result = layout_graph(small_synthetic, params=fast_params, workers=2)
        assert result.engine == "shm-hogwild"
        assert result.params.workers == 2
        assert np.all(np.isfinite(result.layout.coords))

    def test_overrides_do_not_mutate_params(self, small_synthetic, fast_params):
        layout_graph(small_synthetic, params=fast_params, iter_max=2)
        assert fast_params.iter_max == 6

    def test_unknown_override_rejected(self, small_synthetic):
        with pytest.raises(TypeError, match="valid names"):
            layout_graph(small_synthetic, bogus_knob=3)

    def test_workers_require_cpu_engine(self, small_synthetic, fast_params):
        with pytest.raises(ValueError, match="cpu"):
            layout_graph(small_synthetic, engine="gpu", params=fast_params,
                         workers=2)

    def test_workers_exclude_multilevel(self, small_synthetic, fast_params):
        with pytest.raises(ValueError, match="levels"):
            layout_graph(small_synthetic, params=fast_params, workers=2,
                         levels=2)

    def test_make_engine_shm_name(self, small_synthetic, fast_params):
        engine = make_engine(small_synthetic, "shm", fast_params)
        assert isinstance(engine, ShmHogwildEngine)

    def test_make_engine_accepts_overrides(self, small_synthetic, fast_params):
        engine = make_engine(small_synthetic, "cpu", fast_params, seed=99)
        assert engine.params.seed == 99

    def test_replace_params_noop_returns_same_object(self, fast_params):
        assert replace_params(fast_params, {}) is fast_params


class TestDeprecatedThreadsAlias:
    def test_constructor_alias_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="simulated_threads"):
            p = LayoutParams(n_threads=4)
        assert p.simulated_threads == 4

    def test_read_alias_warns(self):
        p = LayoutParams(simulated_threads=3)
        with pytest.warns(DeprecationWarning):
            assert p.n_threads == 3

    def test_with_alias_warns_and_wins(self):
        p = LayoutParams(simulated_threads=2)
        with pytest.warns(DeprecationWarning):
            q = p.with_(n_threads=8)
        assert q.simulated_threads == 8

    def test_new_name_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            p = LayoutParams(simulated_threads=2).with_(simulated_threads=5)
        assert p.simulated_threads == 5

    def test_cli_threads_flag_maps_with_warning(self, capsys):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--dataset", "MHC", "--threads", "4"])
        assert args.simulated_threads == 4
        assert "deprecated" in capsys.readouterr().err

    def test_cli_simulated_threads_flag(self, capsys):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--dataset", "MHC", "--simulated-threads", "6", "--workers", "2"])
        assert args.simulated_threads == 6
        assert args.workers == 2
        assert "deprecated" not in capsys.readouterr().err


class TestResultSummary:
    def test_summary_contract(self, small_synthetic, fast_params):
        result = layout_graph(small_synthetic, params=fast_params, workers=2)
        summary = result.summary()
        for key in ("engine", "n_points", "iterations", "total_terms",
                    "wall_time_s", "point_collisions", "collision_fraction",
                    "update_dispatches", "fused_iterations", "workers",
                    "final_stress"):
            assert key in summary
        assert summary["engine"] == "shm-hogwild"
        assert summary["workers"] == 2
        assert summary["total_terms"] > 0
        assert 0.0 <= summary["collision_fraction"] <= 1.0

    def test_to_dict_is_json_ready(self, small_synthetic, fast_params):
        result = layout_graph(small_synthetic, params=fast_params)
        payload = result.to_dict()
        assert payload["params"]["seed"] == fast_params.seed
        assert "n_threads" not in payload["params"]
        assert isinstance(payload["counters"], dict)
        json.dumps(payload)  # must not raise

    def test_flat_engine_summary_counters(self, small_synthetic, fast_params):
        result = CpuBaselineEngine(small_synthetic, fast_params).run()
        summary = result.summary()
        assert summary["workers"] == 1
        assert summary["update_dispatches"] >= fast_params.iter_max
        assert summary["wall_time_s"] > 0.0


class TestCollisionBracket:
    """Measured collision rates bracket the analytic model (Sec. III-A)."""

    @pytest.mark.parametrize("concurrency", [32, 128])
    def test_expected_brackets_measured(self, small_synthetic, concurrency):
        report = measure_collisions(small_synthetic, concurrency,
                                    n_batches=8, seed=3)
        expected = expected_collision_probability(small_synthetic.n_nodes,
                                                  concurrency)
        # The model counts the per-term collision probability, the
        # measurement the colliding-point fraction; empirically the model
        # sits between the measured mean and a few times it.
        assert report.mean_colliding_fraction <= expected
        assert expected <= 4.0 * report.mean_colliding_fraction
        assert report.max_colliding_fraction >= report.mean_colliding_fraction

    def test_measured_fraction_grows_with_concurrency(self, small_synthetic):
        fractions = [
            measure_collisions(small_synthetic, c, n_batches=8, seed=3)
            .mean_colliding_fraction
            for c in (8, 64, 256)
        ]
        assert fractions == sorted(fractions)

    def test_engine_collision_counter_in_model_ballpark(self, small_synthetic,
                                                        fast_params):
        result = CpuBaselineEngine(small_synthetic, fast_params).run()
        frac = result.summary()["collision_fraction"]
        expected = expected_collision_probability(small_synthetic.n_nodes, 64)
        assert 0.0 < frac < 1.0
        # Same regime as the model at the engine's round concurrency of 64.
        assert frac <= 3.0 * expected
