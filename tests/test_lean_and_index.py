"""Tests for the lean graph structure, path index and graph statistics."""
from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    LeanGraph,
    PathIndex,
    aggregate_stats,
    compute_stats,
    estimate_edge_count,
    figure1_example,
)


class TestLeanGraph:
    def test_from_variation_graph_positions(self, fig1_lean):
        # path0 = [v0,v2,v4,v5,v6,v7] with lengths 2,2,1,2,2,1
        sl = fig1_lean.path_steps(0)
        assert fig1_lean.step_positions[sl].tolist() == [0, 2, 4, 5, 7, 9]

    def test_counts(self, fig1_lean):
        assert fig1_lean.n_nodes == 8
        assert fig1_lean.n_paths == 3
        assert fig1_lean.total_steps == 18
        assert fig1_lean.path_step_counts.tolist() == [6, 5, 7]

    def test_from_paths_positions(self, tiny_graph):
        sl = tiny_graph.path_steps(0)
        # node lengths 3,1,2,5,4 -> positions 0,3,4,6,11
        assert tiny_graph.step_positions[sl].tolist() == [0, 3, 4, 6, 11]
        sl1 = tiny_graph.path_steps(1)
        assert tiny_graph.step_positions[sl1].tolist() == [0, 3, 5]

    def test_path_nucleotide_length(self, tiny_graph):
        assert tiny_graph.path_nucleotide_length(0) == 15
        assert tiny_graph.path_nucleotide_length(1) == 9

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            LeanGraph(
                node_lengths=[1, 1],
                path_offsets=[1, 2],
                step_nodes=[0, 1],
                step_reverse=[False, False],
                step_positions=[0, 1],
            )

    def test_step_node_out_of_range(self):
        with pytest.raises(ValueError):
            LeanGraph.from_paths([1, 2], [[0, 5]])

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            LeanGraph.from_paths([1, -2], [[0, 1]])

    def test_path_names_default(self):
        g = LeanGraph.from_paths([1, 1], [[0, 1], [1, 0]])
        assert g.path_names == ["path0", "path1"]

    def test_path_names_mismatch(self):
        with pytest.raises(ValueError):
            LeanGraph.from_paths([1, 1], [[0, 1]], path_names=["a", "b"])

    def test_orientations(self):
        g = LeanGraph.from_paths([1, 1], [[0, 1]], orientations=[[True, False]])
        assert g.step_reverse.tolist() == [True, False]

    def test_subset_paths(self, fig1_lean):
        sub = fig1_lean.subset_paths([0, 2])
        assert sub.n_paths == 2
        assert sub.path_names == ["path0", "path2"]
        assert sub.total_steps == 6 + 7
        assert sub.n_nodes == fig1_lean.n_nodes

    def test_structure_bytes(self, fig1_lean):
        assert fig1_lean.lean_structure_bytes() < fig1_lean.heavy_structure_bytes()

    def test_path_steps_out_of_range(self, fig1_lean):
        with pytest.raises(IndexError):
            fig1_lean.path_steps(99)

    def test_total_sequence_length(self, tiny_graph):
        assert tiny_graph.total_sequence_length == 15


class TestPathIndex:
    def test_reference_distance_local(self, tiny_graph):
        idx = PathIndex(tiny_graph)
        # path alpha positions 0,3,4,6,11
        assert idx.reference_distance(0, np.array([0]), np.array([3]))[0] == 6
        assert idx.reference_distance(0, np.array([4]), np.array([1]))[0] == 8

    def test_reference_distance_out_of_range(self, tiny_graph):
        idx = PathIndex(tiny_graph)
        with pytest.raises(IndexError):
            idx.reference_distance(0, np.array([0]), np.array([9]))

    def test_reference_distance_global(self, tiny_graph):
        idx = PathIndex(tiny_graph)
        d = idx.reference_distance_global(np.array([0]), np.array([2]))
        assert d[0] == 4

    def test_path_of_global_step(self, tiny_graph):
        idx = PathIndex(tiny_graph)
        paths = idx.path_of_global_step(np.array([0, 4, 5, 7]))
        assert paths.tolist() == [0, 0, 1, 1]

    def test_path_weights_proportional_to_steps(self, fig1_lean):
        idx = PathIndex(fig1_lean)
        w = idx.path_weights
        assert w.shape == (3,)
        assert np.isclose(w.sum(), 1.0)
        assert np.argmax(w) == 2  # path2 has the most steps

    def test_sample_paths_distribution(self, fig1_lean, rng):
        idx = PathIndex(fig1_lean)
        draws = rng.random(20000)
        picks = idx.sample_paths(draws)
        frac2 = (picks == 2).mean()
        assert abs(frac2 - 7 / 18) < 0.03

    def test_sample_paths_bounds(self, fig1_lean):
        idx = PathIndex(fig1_lean)
        picks = idx.sample_paths(np.array([0.0, 0.999999]))
        assert picks.min() >= 0 and picks.max() < fig1_lean.n_paths

    def test_steps_on_node(self, fig1_lean):
        idx = PathIndex(fig1_lean)
        visits = idx.steps_on_node(0)
        assert len(visits) == 3  # node 0 shared by all three paths
        assert idx.paths_through_node(1) == [2]  # the T insertion is private to path2

    def test_memory_bytes_positive(self, fig1_lean):
        assert PathIndex(fig1_lean).memory_bytes() > 0


class TestStats:
    def test_estimate_edge_count_matches_graph(self, fig1_lean):
        g = figure1_example()
        # Path-adjacency pairs are exactly the edges built by the builder.
        assert estimate_edge_count(fig1_lean) == g.edge_count

    def test_compute_stats_lean(self, small_synthetic):
        st = compute_stats(small_synthetic, name="syn")
        assert st.n_nodes == small_synthetic.n_nodes
        assert st.n_paths == small_synthetic.n_paths
        assert 0 < st.density < 1
        assert st.avg_degree > 1.0

    def test_aggregate_stats(self, small_synthetic, medium_synthetic):
        rows = [compute_stats(small_synthetic, "a"), compute_stats(medium_synthetic, "b")]
        agg = aggregate_stats(rows)
        assert set(agg) == {"min", "max", "mean"}
        assert agg["min"]["n_nodes"] <= agg["max"]["n_nodes"]
        assert agg["mean"]["n_nodes"] == pytest.approx(
            (rows[0].n_nodes + rows[1].n_nodes) / 2
        )

    def test_aggregate_requires_rows(self):
        with pytest.raises(ValueError):
            aggregate_stats([])

    def test_stats_as_dict(self, fig1_lean):
        d = compute_stats(fig1_lean, "fig1").as_dict()
        assert d["name"] == "fig1"
        assert d["n_nodes"] == 8
