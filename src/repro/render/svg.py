"""Layout rendering to SVG (odgi draw stand-in).

The paper's qualitative evaluation (Figs. 2, 6, 12, 14) inspects rendered
layouts: every node is a line segment between its two visualisation points,
coloured by how many paths traverse it so variants stand out against the
shared backbone. This module emits standalone SVG documents with no external
dependencies, which the examples use to produce the qualitative figures.
"""
from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from ..core.layout import Layout
from ..graph.lean import LeanGraph

__all__ = ["render_svg", "save_svg"]

_PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
]


def _node_path_multiplicity(graph: LeanGraph) -> np.ndarray:
    """Number of distinct paths visiting each node (for colouring)."""
    counts = np.zeros(graph.n_nodes, dtype=np.int64)
    offsets = graph.path_offsets
    for p in range(graph.n_paths):
        sl = graph.path_steps(p)
        nodes = np.unique(graph.step_nodes[sl])
        counts[nodes] += 1
    return counts


def render_svg(
    layout: Layout,
    graph: Optional[LeanGraph] = None,
    width: int = 1000,
    height: int = 600,
    margin: int = 20,
    stroke_width: float = 1.0,
    color_by_multiplicity: bool = True,
) -> str:
    """Render a layout as an SVG string.

    When ``graph`` is provided, segments are coloured by path multiplicity
    (backbone nodes shared by all paths appear in the first palette colour,
    private variant nodes in later colours).
    """
    if width <= 2 * margin or height <= 2 * margin:
        raise ValueError("canvas too small for the requested margin")
    coords = layout.coords
    min_x, min_y, max_x, max_y = layout.bounding_box()
    # Degenerate bounding boxes (a single node, or a fully contracted layout
    # whose points coincide) must not divide by zero or blow the scale up to
    # ~1e12: an axis with no extent contributes no scale constraint, and a
    # layout with no extent at all renders at scale 0 (every point lands on
    # the margin corner, a well-formed one-dot document).
    span_x = max_x - min_x
    span_y = max_y - min_y
    scales = []
    if span_x > 0:
        scales.append((width - 2 * margin) / span_x)
    if span_y > 0:
        scales.append((height - 2 * margin) / span_y)
    scale = min(scales) if scales else 0.0

    def tx(x: float) -> float:
        return margin + (x - min_x) * scale

    def ty(y: float) -> float:
        return margin + (y - min_y) * scale

    if graph is not None and color_by_multiplicity:
        multiplicity = _node_path_multiplicity(graph)
        max_mult = max(int(multiplicity.max()), 1)
    else:
        multiplicity = None
        max_mult = 1

    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    n_nodes = layout.n_nodes
    for node in range(n_nodes):
        sx, sy = coords[2 * node]
        ex, ey = coords[2 * node + 1]
        if multiplicity is not None:
            # Shared nodes -> dark blue; rarer nodes -> warmer palette colours.
            rarity = 1.0 - (multiplicity[node] / max_mult)
            color = _PALETTE[min(int(rarity * (len(_PALETTE) - 1)), len(_PALETTE) - 1)]
        else:
            color = _PALETTE[0]
        lines.append(
            f'<line x1="{tx(sx):.2f}" y1="{ty(sy):.2f}" x2="{tx(ex):.2f}" y2="{ty(ey):.2f}" '
            f'stroke="{color}" stroke-width="{stroke_width}" stroke-linecap="round"/>'
        )
    lines.append("</svg>")
    return "\n".join(lines)


def save_svg(
    layout: Layout,
    destination: Union[str, os.PathLike],
    graph: Optional[LeanGraph] = None,
    **kwargs,
) -> None:
    """Render and write an SVG file."""
    svg = render_svg(layout, graph=graph, **kwargs)
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write(svg)
