"""Pytest shim for the CI smoke suite (the perf-regression gate workloads).

The case bodies live in :mod:`repro.bench.cases.smoke`. The canonical entry
point is ``repro bench run --suite smoke``; this shim lets the same cases run
under pytest (``pytest benchmarks/bench_smoke.py``).
"""
from __future__ import annotations

import pytest

from repro.bench.registry import load_builtin_cases

_SMOKE_CASES = load_builtin_cases().suite("smoke")


@pytest.mark.paper_table("CI smoke gate")
@pytest.mark.parametrize("case", _SMOKE_CASES, ids=lambda c: c.name)
def test_smoke_case(case, bench_ctx):
    result = case.run(bench_ctx)
    assert result.metrics, f"smoke case {case.name} recorded no metrics"


if __name__ == "__main__":
    from repro.bench.runner import run_suite

    run_suite("smoke")
