"""Fused per-iteration execution path: one backend dispatch per iteration.

The paper's headline speedup comes from running an entire SGD iteration as a
*single* CUDA kernel launch (Sec. V; Table IV counts the launches), where the
batched tensor formulation pays per-batch launch overhead. The Python
analogue of that overhead is interpreter dispatch: the classic
:meth:`~repro.core.base.LayoutEngine.run` loop crosses the engine→backend
seam once per batch (``sampler.sample`` → ``apply_batch``), and on
Chr.1-like graphs that dispatch now rivals the O(batch) numeric work.

The fused path hoists the whole iteration below the backend seam:

1. the engine pre-draws the iteration's full term budget as one uniform
   megablock (:meth:`~repro.prng.xoshiro.Xoshiro256Plus.next_double_block`),
2. hands it — plus this :class:`FusedIterationPlan` — to
   :meth:`~repro.backend.base.ArrayBackend.run_iteration`, one call per
   iteration, which performs selection + displacement + merge for every
   planned batch segment internally, and
3. receives aggregate :class:`FusedIterationStats` back.

Segment semantics are *unchanged*: segments execute sequentially, each term
reads the coordinates as of its segment's start, and the write merge per
segment is the same hogwild/accumulate/last_writer scatter — so the fused
path is a re-sequencing of the historical computation, not a new algorithm.
On the NumPy backend it is the exact historical call sequence re-expressed
segment by segment (only the per-batch *statistics* reductions are skipped,
which touch no coordinate state), making fused layouts byte-identical to
unfused ones; other backends are held to the conformance matrix's 1e-9.

The megablock consumes the PRNG streams in the exact order the per-batch
draws did (vector-major, call-minor per segment, segments in plan order), so
fused and unfused runs see identical sampled terms.

Memory is bounded, not O(iteration). The whole-iteration megablock costs
~:data:`FUSED_BYTES_PER_TERM` bytes of transient state per term, which is
fine at smoke scale and fatal at the paper's chromosome-scale workloads
(~10^8 terms/iteration). Under ``LayoutParams(memory_budget=...)`` the
engine therefore splits each iteration's plan into contiguous segment
*chunks* (:func:`chunk_spans` / :func:`build_iteration_plans`) and runs one
dispatch per chunk. Chunk boundaries are segment boundaries and the bulk
PRNG draw is interchangeable mid-stream, so drawing and dispatching the
chunks in plan order consumes identical stream state and executes the
identical per-segment computation — budgeted layouts are byte-identical to
unbudgeted ones on the NumPy backend, for every budget.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .params import LayoutParams
from .selection import PairSampler, SelectionArrays
from .updates import UpdateWorkspace, merge_batch

__all__ = [
    "FUSED_BYTES_PER_TERM",
    "FusedIterationStats",
    "FusedIterationPlan",
    "build_iteration_plans",
    "chunk_spans",
    "uniform_call_plan",
    "run_iteration_host",
    "slice_plan",
]

#: Uniform vectors consumed per term by the default selection branch
#: (6 path/cooling/pair vectors + 2 endpoint coin flips).
SAMPLE_VECTORS = 8

#: Conservative estimate of the fused path's peak transient bytes per term,
#: used by :func:`chunk_spans` to turn a byte budget into a term budget. The
#: dominant residents while a chunk is in flight: the uniform megablock
#: (``SAMPLE_VECTORS × 8`` = 64 B/term), the re-laid selection block (64),
#: its transpose/reshape temporary (64), and the selection pass's per-term
#: index/distance vectors plus the StepBatch views (~190). Measured peaks on
#: the ``scale`` bench suite sit below this figure; keeping the estimate
#: conservative means a budget is an upper bound, not a target.
FUSED_BYTES_PER_TERM = 384


def uniform_call_plan(plan: List[int], n_streams: int) -> Tuple[np.ndarray, int]:
    """PRNG calls each batch segment consumes from the per-iteration megablock.

    Segment ``s`` of ``plan[s]`` terms needs ``ceil(plan[s] / n_streams)``
    calls per uniform vector, hence ``SAMPLE_VECTORS ×`` that many calls in
    total — exactly what the unfused per-batch ``PairSampler._uniforms``
    would have drawn, in the same stream order. Returns the per-segment
    per-vector call counts and the iteration's total call count.
    """
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    need = np.asarray([-(-int(b) // n_streams) for b in plan], dtype=np.int64)
    return need, int(SAMPLE_VECTORS * need.sum())


def slice_plan(plan: List[int], workers: int) -> List[List[int]]:
    """Partition a batch plan into contiguous per-worker sub-plans.

    The process-parallel engine (:mod:`repro.parallel.shm`) hands each
    worker a contiguous run of the iteration's batch segments; boundaries
    are chosen on the cumulative term count, so worker loads stay balanced
    even when the plan ends in a small remainder segment. Segments are
    never split — each sub-plan is a valid plan for a worker-local
    :class:`FusedIterationPlan` — and the effective worker count is clamped
    to ``len(plan)`` so every returned sub-plan is non-empty. With
    ``workers=1`` the single sub-plan is the plan itself, which is what
    pins the one-worker engine byte-identical to the flat path.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    plan = [int(b) for b in plan]
    if not plan:
        return [[]]
    n_workers = min(int(workers), len(plan))
    if n_workers == 1:
        return [plan]
    cum = np.cumsum(plan)
    total = int(cum[-1])
    bounds = [0]
    for k in range(1, n_workers):
        target = total * k / n_workers
        idx = int(np.searchsorted(cum, target))
        # Keep every part non-empty: leave room for the remaining workers.
        bounds.append(min(max(idx, bounds[-1] + 1), len(plan) - (n_workers - k)))
    bounds.append(len(plan))
    return [plan[bounds[k]:bounds[k + 1]] for k in range(n_workers)]


def chunk_spans(plan: List[int], memory_budget: Optional[int] = None,
                bytes_per_term: int = FUSED_BYTES_PER_TERM) -> List[Tuple[int, int]]:
    """Pack a batch plan's segments into contiguous budget-sized chunks.

    Returns half-open ``(start, end)`` segment-index spans covering ``plan``
    in order. ``memory_budget=None`` returns the single whole-plan span —
    the historical one-dispatch-per-iteration behaviour. Otherwise segments
    are packed greedily so each chunk's term count stays within
    ``memory_budget // bytes_per_term``; segments are the merge-semantics
    quantum and are never split, so a budget smaller than one segment
    degrades to one segment per chunk (the footprint floor) rather than
    failing. Chunk boundaries land on segment boundaries by construction,
    which is what lets the draw-order contract guarantee budgeted runs are
    byte-identical to unbudgeted ones.
    """
    n_seg = len(plan)
    if n_seg == 0:
        return []
    if memory_budget is None:
        return [(0, n_seg)]
    if memory_budget < 1:
        raise ValueError("memory_budget must be a positive number of bytes")
    if bytes_per_term < 1:
        raise ValueError("bytes_per_term must be >= 1")
    target_terms = max(1, int(memory_budget) // int(bytes_per_term))
    spans: List[Tuple[int, int]] = []
    start = 0
    terms = 0
    for seg, batch in enumerate(plan):
        batch = int(batch)
        if seg > start and terms + batch > target_terms:
            spans.append((start, seg))
            start = seg
            terms = 0
        terms += batch
    spans.append((start, n_seg))
    return spans


def build_iteration_plans(sampler: PairSampler, workspace: UpdateWorkspace,
                          merge: str, plan: List[int], n_streams: int,
                          memory_budget: Optional[int] = None,
                          tracer=None,
                          ) -> List["FusedIterationPlan"]:
    """One :class:`FusedIterationPlan` per budget chunk, in plan order.

    The chunked analogue of building a single whole-iteration plan: with no
    budget the returned list holds exactly one plan over the full batch plan
    (identical dispatch economics to PR 5), with a budget each chunk gets
    its *own* plan object — and therefore its own :attr:`cache`, because
    backends stash chunk-shaped derived state there (the numba arg tuple
    embeds the chunk's plan array and call counts). All chunks share the
    caller's workspace *and* one :attr:`scratch` dict: chunks run strictly
    sequentially, so chunk-invariant derived state — device copies of the
    selection arrays, the re-laid draws buffer sized to the widest chunk —
    lives once per run, not once per chunk. Without the shared scratch the
    per-chunk caches would collectively re-materialise the whole
    iteration's footprint, defeating the budget.

    Per-iteration usage is one ``rng.next_double_block(chunk.calls_per_iteration)``
    + ``backend.run_iteration(chunk, ...)`` per chunk, in order. The bulk
    draw is interchangeable mid-stream (see ``next_double_block``), so the
    sequential per-chunk draws consume exactly the stream state one
    whole-iteration draw would have — chunked execution is byte-identical
    to unchunked on the NumPy backend.
    """
    plan = [int(b) for b in plan]
    spans = chunk_spans(plan, memory_budget)
    if not spans:
        spans = [(0, 0)]
    scratch: Dict[str, object] = {}
    return [
        FusedIterationPlan(sampler=sampler, workspace=workspace, merge=merge,
                           plan=plan[start:end], n_streams=n_streams,
                           scratch=scratch, tracer=tracer)
        for start, end in spans
    ]


@dataclass
class FusedIterationStats:
    """Aggregate counters one fused iteration hands back to the engine."""

    n_terms: int
    n_point_collisions: int


@dataclass
class FusedIterationPlan:
    """Everything a backend needs to run whole iterations without the engine.

    Built once per :meth:`LayoutEngine.run` (one per budget chunk) and
    passed to every ``backend.run_iteration`` call of the run. Backends may
    stash derived state in two places, split by what it depends on:

    * :attr:`cache` — *chunk-shaped* state (the numba arg pair embedding
      this plan's segment array and call counts). Private to this plan.
    * :attr:`scratch` — *chunk-invariant* state (device copies of the
      selection arrays, the re-laid draws buffer). Shared by every chunk of
      one :func:`build_iteration_plans` call; since chunks run sequentially
      this keeps cached state O(chunk + graph) instead of O(iteration).
    """

    sampler: PairSampler
    workspace: UpdateWorkspace
    merge: str
    plan: List[int]
    n_streams: int
    need_calls: np.ndarray = field(init=False)
    calls_per_iteration: int = field(init=False)
    cache: Dict[str, object] = field(default_factory=dict)
    scratch: Dict[str, object] = field(default_factory=dict)
    #: Optional :class:`repro.obs.tracer.Tracer` (duck-typed to avoid a core
    #: -> obs import at dataclass-field level). When live, host-path fused
    #: execution attributes selection/merge time per chunk; ``None`` or a
    #: disabled tracer costs one attribute read per run_iteration call.
    tracer: Optional[object] = None

    def __post_init__(self) -> None:
        self.plan = [int(b) for b in self.plan]
        if any(b < 1 for b in self.plan):
            raise ValueError("batch plan segments must all be >= 1")
        self.need_calls, self.calls_per_iteration = uniform_call_plan(
            self.plan, self.n_streams)

    # ------------------------------------------------------------ accessors
    @property
    def params(self) -> LayoutParams:
        """Layout parameters governing selection (zipf/cooling knobs)."""
        return self.sampler.params

    @property
    def host_arrays(self) -> SelectionArrays:
        """Host-resident selection arrays (the sampler's own bundle)."""
        return self.sampler.arrays

    def device_arrays(self, backend) -> SelectionArrays:
        """Selection arrays in ``backend``'s memory space, converted once.

        Host backends get the sampler's bundle back untouched; device
        backends pay one upload per run and afterwards select terms without
        touching host memory.
        """
        key = f"arrays/{backend.name}"
        arrays = self.scratch.get(key)
        if arrays is None:
            host = self.host_arrays
            if backend.asarray(host.cum_steps) is host.cum_steps:
                arrays = host
            else:
                arrays = SelectionArrays(*(backend.asarray(a) for a in host))
            self.scratch[key] = arrays
        return arrays


def iteration_draws(uniforms, plan: List[int], need_calls: np.ndarray,
                    n_streams: int, xp=np, out=None):
    """Re-lay the megablock into one ``(8, total_terms)`` selection block.

    Segment ``s``'s unfused draws are
    ``megablock_rows.reshape(8, need·streams)[:, :batch]``; this concatenates
    those per-segment vectors in plan order, coalescing runs of equally-sized
    segments into a single reshape/transpose (the common plan is uniform
    batches plus one remainder, so an iteration re-lays in ~2 array ops).
    Every element keeps its per-segment value — the transform is pure layout.

    ``out``, when given, must be a ``(SAMPLE_VECTORS, total_terms)`` float64
    array in ``xp``'s namespace; it is filled and returned instead of
    allocating. :func:`run_iteration_host` passes a view of the chunk-shared
    scratch buffer, so steady-state iterations allocate nothing here (the
    PR 2 zero steady-state-allocation contract).
    """
    n_terms = sum(int(b) for b in plan)
    if out is None:
        out = xp.empty((SAMPLE_VECTORS, n_terms), dtype=np.float64)  # alloc-ok: fallback for direct callers only; the fused run path passes the chunk-shared scratch buffer
    elif out.shape != (SAMPLE_VECTORS, n_terms):
        raise ValueError(
            f"out must have shape {(SAMPLE_VECTORS, n_terms)}, got {out.shape}")
    n_seg = len(plan)
    seg = 0
    row = 0
    col = 0
    while seg < n_seg:
        batch = plan[seg]
        need = int(need_calls[seg])
        run_end = seg
        while (run_end + 1 < n_seg and plan[run_end + 1] == batch
               and int(need_calls[run_end + 1]) == need):
            run_end += 1
        k = run_end - seg + 1
        rows = SAMPLE_VECTORS * need
        block = uniforms[row:row + k * rows].reshape(
            k, SAMPLE_VECTORS, need * n_streams)[:, :, :batch]
        out[:, col:col + k * batch] = block.transpose(1, 0, 2).reshape(
            SAMPLE_VECTORS, k * batch)
        row += k * rows
        col += k * batch
        seg = run_end + 1
    return out


def run_iteration_host(backend, plan: FusedIterationPlan, coords,
                       uniforms: np.ndarray, eta: float,
                       iteration: int) -> FusedIterationStats:
    """Generic fused iteration over the backend's array namespace.

    The reference implementation of the ``run_iteration`` contract, split
    the way the data dependencies allow:

    * **selection is batch-free** — a term's identity depends only on its
      own uniforms and the static graph arrays, never on the coordinates —
      so the *whole iteration's* terms are selected in one vectorised pass
      over the re-laid megablock (every selection op is elementwise, so the
      per-term values are byte-identical to segment-at-a-time selection);
    * **merges stay sequential** — the planned segments walk the selected
      terms as views, each reading coordinates as of its segment start and
      scattering through the backend's merge kernel, exactly the unfused
      staleness/merge semantics.

    On host backends the pass runs on NumPy; a backend advertising
    ``fused_device_selection`` gets the megablock uploaded once per
    iteration and selection executed in its own namespace over a
    device-resident :class:`SelectionArrays` bundle, which is what stops
    per-batch host→device round trips on CuPy.
    """
    sampler = plan.sampler
    if getattr(backend, "fused_device_selection", False):
        xp = backend.xp
        arrays = plan.device_arrays(backend)
        uniforms = backend.asarray(uniforms)
        draws_key = f"draws/{backend.name}"
        draws_xp = xp
    else:
        xp = None
        arrays = None
        draws_key = "draws/host"
        draws_xp = np
    n_terms = sum(plan.plan)  # this plan's terms: one budget chunk, not the iteration
    buf = plan.scratch.get(draws_key)
    if buf is None or buf.shape[1] < n_terms:
        # Grown to the widest chunk during the first iteration, then reused
        # by every chunk of every later one — the scratch is shared across
        # the run's chunk plans (they execute sequentially), so the cached
        # draws state totals one chunk, not the whole iteration. Hoisting
        # this (8, n_terms) block out of the per-iteration path is what
        # keeps fused steady-state allocation-free.
        buf = draws_xp.empty((SAMPLE_VECTORS, n_terms), dtype=np.float64)  # alloc-ok: warm-up allocation; kept in the chunk-shared scratch and reused by later chunks and iterations
        plan.scratch[draws_key] = buf
    out = buf if buf.shape[1] == n_terms else buf[:, :n_terms]
    # Span attribution (repro.obs): selection is the one vectorised pass,
    # merge is the sequential segment walk — the interpreter analogue of the
    # paper's per-kernel Table IV split. One event per chunk, not per
    # segment, so event volume stays O(iterations x chunks).
    tracer = plan.tracer
    trace = tracer is not None and tracer.enabled
    t_sel = tracer.now() if trace else 0.0
    draws = iteration_draws(uniforms, plan.plan, plan.need_calls,
                            plan.n_streams, xp=draws_xp, out=out)
    terms = sampler.select_from_uniforms(draws, n_terms, iteration,
                                         xp=xp, arrays=arrays)
    if trace:
        tracer.emit("selection", t_sel, tracer.now() - t_sel, iteration,
                    count=n_terms)
    t_mrg = tracer.now() if trace else 0.0
    n_collisions = 0
    offset = 0
    for batch_size in plan.plan:
        segment = terms.slice(offset, offset + batch_size)
        offset += batch_size
        _, collisions = merge_batch(coords, segment, eta, plan.merge,
                                    plan.workspace)
        n_collisions += collisions
    if trace:
        tracer.emit("merge", t_mrg, tracer.now() - t_mrg, iteration,
                    count=len(plan.plan))
    return FusedIterationStats(n_terms=n_terms,
                               n_point_collisions=n_collisions)
