"""Path-preserving chain contraction over a lean graph.

Pangenome graphs are dominated by linear chains: runs of nodes that every
path traverses identically, one after the other (the homologous backbone
between variant sites). Contracting each such run into one coarse node
shrinks the graph — often by an order of magnitude — while preserving
*exactly* the information the path-guided SGD layout consumes:

* path step **order** (a chain is entered at its head and left at its tail
  by every traversal, so replacing the member steps with one coarse step
  keeps every path's node sequence faithful), and
* nucleotide **distances** (the coarse node's length is the sum of its
  members' lengths, so step positions — and therefore the reference
  distances ``d_ref`` and the schedule's ``d_min``/``d_max`` bounds — are
  computed over the same genomic coordinate system).

Two nodes ``u → v`` may share a chain iff every occurrence of ``u`` on any
path is immediately followed by ``v``, every occurrence of ``v`` is
immediately preceded by ``u``, and both are only ever traversed forward.
These conditions are evaluated vectorised over the flat step arrays; the
merge links they induce form disjoint simple chains (a cycle would need a
path that never starts or ends inside it, which finite paths cannot do — a
deterministic break-at-min-id guard covers adversarial inputs anyway).

Coarse node ids are assigned in ascending order of the chain head's fine
node id, which makes the whole construction a pure function of the input
graph — coarsening order is part of the multilevel seed contract (see
ROADMAP "Multilevel pipeline").
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph.lean import LeanGraph

__all__ = ["CoarseningLevel", "Hierarchy", "chain_merge_links", "coarsen_graph",
           "build_hierarchy"]

_NO_LINK = -1
_SENTINEL = np.iinfo(np.int64).max


@dataclass
class CoarseningLevel:
    """One fine → coarse contraction step with explicit projection arrays.

    Attributes
    ----------
    fine / coarse:
        The graphs on either side of the contraction.
    projection:
        ``(n_fine,)`` int64 — coarse node id of every fine node. Every fine
        node maps to exactly one coarse node (total, single-valued).
    member_offset:
        ``(n_fine,)`` int64 — nucleotide offset of the fine node's start
        within its chain (0 for chain heads and uncontracted nodes).
    chain_offsets / chain_members:
        CSR listing of each coarse node's members in traversal order:
        coarse node ``c`` owns fine nodes
        ``chain_members[chain_offsets[c]:chain_offsets[c+1]]``.
    """

    fine: LeanGraph
    coarse: LeanGraph
    projection: np.ndarray
    member_offset: np.ndarray
    chain_offsets: np.ndarray
    chain_members: np.ndarray

    @property
    def n_fine(self) -> int:
        """Number of fine nodes."""
        return int(self.projection.size)

    @property
    def n_coarse(self) -> int:
        """Number of coarse nodes (chains)."""
        return int(self.chain_offsets.size - 1)

    def chain_sizes(self) -> np.ndarray:
        """``(n_coarse,)`` member count of every chain."""
        return np.diff(self.chain_offsets)


@dataclass
class Hierarchy:
    """A multilevel graph hierarchy: ``graphs[0]`` is the input (finest).

    ``levels[i]`` contracts ``graphs[i]`` into ``graphs[i + 1]``; the list is
    empty when the input could not (or was not asked to) be coarsened.
    """

    graphs: List[LeanGraph]
    levels: List[CoarseningLevel]

    @property
    def depth(self) -> int:
        """Number of graphs in the hierarchy (1 = flat)."""
        return len(self.graphs)

    def node_counts(self) -> List[int]:
        """Per-level node counts, finest first."""
        return [g.n_nodes for g in self.graphs]


def chain_merge_links(graph: LeanGraph) -> np.ndarray:
    """Per-node merge link: ``links[u] = v`` when ``u`` and ``v`` share a chain.

    ``links[u] == -1`` means ``u`` ends its chain (or is not contractible at
    all). The returned links form disjoint simple chains: every node has at
    most one successor and at most one predecessor by construction.
    """
    n = graph.n_nodes
    links = np.full(n, _NO_LINK, dtype=np.int64)
    if n == 0 or graph.total_steps == 0:
        return links
    nodes = graph.step_nodes
    occ = np.bincount(nodes, minlength=n)
    # Consecutive same-path step pairs (k, k+1): drop each path's last step.
    not_last = np.ones(graph.total_steps, dtype=bool)
    tails = graph.path_offsets[1:] - 1
    not_last[tails[tails >= 0]] = False
    src = nodes[:-1][not_last[:-1]] if graph.total_steps > 1 else np.empty(0, np.int64)
    dst = nodes[1:][not_last[:-1]] if graph.total_steps > 1 else np.empty(0, np.int64)
    if src.size == 0:
        return links
    out_cnt = np.bincount(src, minlength=n)
    in_cnt = np.bincount(dst, minlength=n)
    # Unique successor/predecessor via min == max over the edge multiset.
    succ_min = np.full(n, _SENTINEL, dtype=np.int64)
    succ_max = np.full(n, -1, dtype=np.int64)
    np.minimum.at(succ_min, src, dst)
    np.maximum.at(succ_max, src, dst)
    pred_min = np.full(n, _SENTINEL, dtype=np.int64)
    pred_max = np.full(n, -1, dtype=np.int64)
    np.minimum.at(pred_min, dst, src)
    np.maximum.at(pred_max, dst, src)
    # Chain offsets only make sense when every traversal runs head → tail,
    # so any node with a reverse-oriented step stays uncontracted.
    forward_only = np.bincount(nodes[graph.step_reverse], minlength=n) == 0
    cand = (
        (occ > 0)
        & (out_cnt == occ)          # u is never a path-terminal step
        & (succ_min == succ_max)    # unique successor v
        & forward_only
    )
    v = np.where(cand, np.minimum(succ_min, n - 1), 0)
    ok = (
        cand
        & (v != np.arange(n))                  # no self-loops
        & (in_cnt[v] == occ[v])                # v is never a path-initial step
        & (pred_min[v] == pred_max[v])         # unique predecessor
        & (pred_min[v] == np.arange(n))        # ... and it is u
        & forward_only[v]
    )
    links[ok] = v[ok]
    return links


def _walk_chains(
    links: np.ndarray, max_chain: Optional[int] = None
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Group nodes into chains; returns (projection, chain_offsets, chain_members).

    ``max_chain`` caps the member count per chain: a maximal run is split
    into consecutive segments of at most that many nodes (still head-to-tail
    contiguous, so the contraction invariants are untouched). This is what
    lets :func:`build_hierarchy` produce *gradual* hierarchies — unbounded
    chain contraction is a closure and would collapse to its fixpoint in a
    single round.
    """
    n = links.size
    cap = n if max_chain is None else int(max_chain)
    if cap < 1:
        raise ValueError("max_chain must be >= 1")
    has_pred = np.zeros(n, dtype=bool)
    valid = links >= 0
    has_pred[links[valid]] = True
    projection = np.full(n, _NO_LINK, dtype=np.int64)
    members: List[int] = []
    offsets: List[int] = [0]
    cid = 0

    def walk(node: int) -> int:
        size = 0
        while node != _NO_LINK and projection[node] == _NO_LINK:
            if size == cap:  # split the run: start a fresh chain here
                offsets.append(len(members))
                return node
            projection[node] = cid
            members.append(node)
            size += 1
            node = int(links[node])
        offsets.append(len(members))
        return _NO_LINK

    for head in np.flatnonzero(~has_pred):
        node = int(head)
        while node != _NO_LINK:
            node = walk(node)
            cid += 1
    # Defensive cycle break (unreachable for link arrays produced by
    # chain_merge_links, where finite paths always break a would-be cycle):
    # start a chain at the smallest unassigned id, deterministically.
    while True:
        unassigned = np.flatnonzero(projection == _NO_LINK)
        if unassigned.size == 0:
            break
        node = int(unassigned[0])
        while node != _NO_LINK:
            node = walk(node)
            cid += 1
    return (projection,
            np.asarray(offsets, dtype=np.int64),
            np.asarray(members, dtype=np.int64))


def coarsen_graph(graph: LeanGraph,
                  max_chain: Optional[int] = None) -> CoarseningLevel:
    """Contract every maximal path-identical chain of ``graph`` into one node.

    ``max_chain`` bounds the members per contracted chain (see
    :func:`_walk_chains`); ``None`` contracts maximal runs. The construction
    is deterministic: coarse ids follow ascending chain-head fine ids, and
    every array is a pure function of the input graph (and ``max_chain``).
    """
    links = chain_merge_links(graph)
    projection, chain_offsets, chain_members = _walk_chains(links, max_chain)
    n_coarse = int(chain_offsets.size - 1)
    # Coarse node length = sum of member lengths; member offsets are the
    # exclusive prefix sums within each chain, so distances stay nucleotide-
    # faithful after contraction.
    coarse_lengths = np.zeros(n_coarse, dtype=np.int64)
    np.add.at(coarse_lengths, projection, graph.node_lengths)
    member_lengths = graph.node_lengths[chain_members]
    cum = np.cumsum(member_lengths) - member_lengths
    base = cum[chain_offsets[:-1]]
    member_offset_in_order = cum - np.repeat(base, np.diff(chain_offsets))
    member_offset = np.empty(graph.n_nodes, dtype=np.int64)
    member_offset[chain_members] = member_offset_in_order
    # Coarse paths: every chain traversal covers the full chain head → tail,
    # so keeping exactly the head steps preserves the traversal sequence.
    heads = chain_members[chain_offsets[:-1]]
    is_head = np.zeros(graph.n_nodes, dtype=bool)
    is_head[heads] = True
    keep = is_head[graph.step_nodes]
    coarse_paths: List[np.ndarray] = []
    coarse_orients: List[np.ndarray] = []
    for p in range(graph.n_paths):
        sl = graph.path_steps(p)
        kept = keep[sl]
        coarse_paths.append(projection[graph.step_nodes[sl][kept]])
        coarse_orients.append(graph.step_reverse[sl][kept])
    coarse = LeanGraph.from_paths(
        node_lengths=coarse_lengths,
        paths=coarse_paths,
        path_names=list(graph.path_names),
        orientations=coarse_orients,
    )
    return CoarseningLevel(
        fine=graph,
        coarse=coarse,
        projection=projection,
        member_offset=member_offset,
        chain_offsets=chain_offsets,
        chain_members=chain_members,
    )


def build_hierarchy(graph: LeanGraph, max_levels: int,
                    min_nodes: int = 32) -> Hierarchy:
    """Coarsen ``graph`` repeatedly into at most ``max_levels`` graphs.

    Coarsening stops early when a graph already has ``min_nodes`` nodes or
    fewer, or when a contraction round no longer shrinks the graph (every
    chain is a singleton). ``max_levels == 1`` returns the flat hierarchy
    without computing any contraction.
    """
    if max_levels < 1:
        raise ValueError("max_levels must be >= 1")
    if min_nodes < 1:
        raise ValueError("min_nodes must be >= 1")
    graphs = [graph]
    levels: List[CoarseningLevel] = []
    while len(graphs) < max_levels and graphs[-1].n_nodes > min_nodes:
        # Unbounded chain contraction is a closure (one round reaches its
        # fixpoint), so intermediate rounds cap the chain size at 2^round —
        # a pairwise-then-coarser ladder — and only the last permitted round
        # contracts maximal runs. Hierarchies therefore interpolate smoothly
        # between the input and the contraction fixpoint.
        last_round = len(graphs) == max_levels - 1
        cap = None if last_round else 2 ** len(graphs)
        level = coarsen_graph(graphs[-1], max_chain=cap)
        if level.coarse.n_nodes >= level.fine.n_nodes:
            break
        levels.append(level)
        graphs.append(level.coarse)
    return Hierarchy(graphs=graphs, levels=levels)
